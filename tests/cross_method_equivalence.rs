//! Cross-crate integration: the three access methods (adaptive
//! clustering, R*-tree, sequential scan) must return identical result
//! sets on identical workloads — the scan is the trivially correct
//! reference.

use acx::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sorted(mut v: Vec<ObjectId>) -> Vec<ObjectId> {
    v.sort_unstable();
    v
}

fn queries(workload: &UniformWorkload, rng: &mut StdRng, n: usize) -> Vec<SpatialQuery> {
    (0..n)
        .map(|k| match k % 4 {
            0 => SpatialQuery::intersection(workload.sample_window(rng, 0.2)),
            1 => SpatialQuery::containment(workload.sample_window(rng, 0.7)),
            2 => SpatialQuery::enclosure(workload.sample_window(rng, 0.01)),
            _ => SpatialQuery::point_enclosing(workload.sample_point(rng)),
        })
        .collect()
}

#[test]
fn all_methods_agree_on_uniform_workload() {
    let dims = 5;
    let workload = UniformWorkload::new(WorkloadConfig::new(dims, 3000, 42));
    let objects = workload.generate_objects();

    let mut ac = AdaptiveClusterIndex::new(IndexConfig::memory(dims)).unwrap();
    let mut rs = RStarTree::new(RStarConfig {
        page_size: 512, // deep tree to stress the structure
        ..RStarConfig::memory(dims)
    });
    let mut ss = SeqScan::new(dims, StorageScenario::Memory);
    for (i, rect) in objects.iter().enumerate() {
        ac.insert(ObjectId(i as u32), rect.clone()).unwrap();
        rs.insert(ObjectId(i as u32), rect);
        ss.insert(ObjectId(i as u32), rect);
    }

    let mut rng = StdRng::seed_from_u64(7);
    for (k, q) in queries(&workload, &mut rng, 80).iter().enumerate() {
        let expected = sorted(ss.execute(q).matches);
        assert_eq!(sorted(ac.execute(q).matches), expected, "AC diverged on query {k}");
        assert_eq!(sorted(rs.execute(q).matches), expected, "RS diverged on query {k}");
    }
    // The adaptive index reorganized during the stream; verify and recheck.
    ac.check_invariants().unwrap();
    rs.check_invariants().unwrap();
    let more = queries(&workload, &mut rng, 40);
    for (k, q) in more.iter().enumerate() {
        assert_eq!(
            sorted(ac.execute(q).matches),
            sorted(ss.execute(q).matches),
            "AC diverged after reorganization on query {k}"
        );
    }
}

#[test]
fn all_methods_agree_on_skewed_workload() {
    let dims = 8;
    let workload = SkewedWorkload::new(WorkloadConfig::new(dims, 2500, 5), 0.35);
    let objects = workload.generate_objects();

    let mut ac = AdaptiveClusterIndex::new(IndexConfig::disk(dims)).unwrap();
    let mut rs = RStarTree::new(RStarConfig::memory(dims));
    let mut ss = SeqScan::new(dims, StorageScenario::Disk);
    for (i, rect) in objects.iter().enumerate() {
        ac.insert(ObjectId(i as u32), rect.clone()).unwrap();
        rs.insert(ObjectId(i as u32), rect);
        ss.insert(ObjectId(i as u32), rect);
    }
    let mut rng = StdRng::seed_from_u64(31);
    for k in 0..60 {
        let q = if k % 2 == 0 {
            SpatialQuery::intersection(workload.sample_unconstrained_window(&mut rng))
        } else {
            SpatialQuery::point_enclosing(
                (0..dims).map(|_| rng.gen_range(0.0..=1.0)).collect(),
            )
        };
        let expected = sorted(ss.execute(&q).matches);
        assert_eq!(sorted(ac.execute(&q).matches), expected, "AC diverged on query {k}");
        assert_eq!(sorted(rs.execute(&q).matches), expected, "RS diverged on query {k}");
    }
    ac.check_invariants().unwrap();
}

#[test]
fn methods_agree_under_concurrent_churn() {
    // Interleave inserts/removes with queries across all three methods.
    let dims = 4;
    let workload = UniformWorkload::new(WorkloadConfig::new(dims, 1, 9));
    let mut rng = StdRng::seed_from_u64(13);

    let mut ac = AdaptiveClusterIndex::new(IndexConfig::memory(dims)).unwrap();
    let mut rs = RStarTree::new(RStarConfig {
        page_size: 512,
        ..RStarConfig::memory(dims)
    });
    let mut ss = SeqScan::new(dims, StorageScenario::Memory);
    let mut live: Vec<(u32, HyperRect)> = Vec::new();
    let mut next_id = 0u32;

    for round in 0..8 {
        for _ in 0..250 {
            let r = workload.sample_object(&mut rng);
            ac.insert(ObjectId(next_id), r.clone()).unwrap();
            rs.insert(ObjectId(next_id), &r);
            ss.insert(ObjectId(next_id), &r);
            live.push((next_id, r));
            next_id += 1;
        }
        for _ in 0..100 {
            if live.is_empty() {
                break;
            }
            let k = rng.gen_range(0..live.len());
            let (id, r) = live.swap_remove(k);
            ac.remove(ObjectId(id)).unwrap();
            assert!(rs.remove(ObjectId(id), &r));
            assert!(ss.remove(ObjectId(id)));
        }
        for k in 0..20 {
            let q = match k % 3 {
                0 => SpatialQuery::intersection(workload.sample_window(&mut rng, 0.15)),
                1 => SpatialQuery::point_enclosing(workload.sample_point(&mut rng)),
                _ => SpatialQuery::containment(workload.sample_window(&mut rng, 0.5)),
            };
            let expected = sorted(ss.execute(&q).matches);
            assert_eq!(
                sorted(ac.execute(&q).matches),
                expected,
                "AC diverged in round {round}"
            );
            assert_eq!(
                sorted(rs.execute(&q).matches),
                expected,
                "RS diverged in round {round}"
            );
        }
        ac.check_invariants().unwrap();
        rs.check_invariants().unwrap();
    }
}

#[test]
fn execute_batch_agrees_with_sequential_execution_and_the_scan() {
    // The batched parallel read path must produce the same match sets as
    // sequentially executing the same stream (and as the trivially
    // correct scan), AND leave the index with identical clustering state
    // and reorganization decisions — the statistics deltas recorded by
    // the workers merge to exactly the sequential counters.
    let dims = 6;
    let workload = UniformWorkload::new(WorkloadConfig::new(dims, 2500, 77));
    let objects = workload.generate_objects();

    let mut sequential = AdaptiveClusterIndex::new(IndexConfig::memory(dims)).unwrap();
    let mut batched = AdaptiveClusterIndex::new(IndexConfig::memory(dims)).unwrap();
    let mut ss = SeqScan::new(dims, StorageScenario::Memory);
    for (i, r) in objects.iter().enumerate() {
        sequential.insert(ObjectId(i as u32), r.clone()).unwrap();
        batched.insert(ObjectId(i as u32), r.clone()).unwrap();
        ss.insert(ObjectId(i as u32), r);
    }

    let mut rng = StdRng::seed_from_u64(78);
    // 330 queries cross three reorganization boundaries (period 100).
    let stream = queries(&workload, &mut rng, 330);
    let seq_results: Vec<_> = stream.iter().map(|q| sequential.execute(q)).collect();
    let batch_results = batched.execute_batch(&stream, 4);

    for (k, ((q, s), b)) in stream.iter().zip(&seq_results).zip(&batch_results).enumerate() {
        assert_eq!(s.matches, b.matches, "batch diverged from sequential on query {k}");
        assert_eq!(
            sorted(b.matches.clone()),
            sorted(ss.execute(q).matches),
            "batch diverged from the scan on query {k}"
        );
    }
    assert_eq!(sequential.reorganizations(), batched.reorganizations());
    assert_eq!(sequential.total_merges(), batched.total_merges());
    assert_eq!(sequential.total_splits(), batched.total_splits());
    assert_eq!(
        sequential.snapshots(),
        batched.snapshots(),
        "post-batch clustering state diverged"
    );
    sequential.check_invariants().unwrap();
    batched.check_invariants().unwrap();
}
