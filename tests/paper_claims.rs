//! Integration tests asserting the paper's headline claims hold in this
//! reproduction (at reduced scale — the *shape*, not the 2004 absolute
//! numbers).

use acx::prelude::*;
use acx::workloads::calibrate;
use acx_storage::AccessStats;
use rand::SeedableRng;

struct Measured {
    priced_ms: f64,
    stats: AccessStats,
    units: usize,
}

fn measure_ac(
    scenario: StorageScenario,
    objects: &[HyperRect],
    warmup: &[SpatialQuery],
    measured: &[SpatialQuery],
) -> Measured {
    let dims = objects[0].dims();
    let config = match scenario {
        StorageScenario::Memory => IndexConfig::memory(dims),
        StorageScenario::Disk => IndexConfig::disk(dims),
    };
    let mut index = AdaptiveClusterIndex::new(config).unwrap();
    for (i, r) in objects.iter().enumerate() {
        index.insert(ObjectId(i as u32), r.clone()).unwrap();
    }
    for q in warmup {
        index.execute(q);
    }
    let mut agg = AccessStats::new();
    let mut priced = 0.0;
    for q in measured {
        let r = index.execute(q);
        agg.merge(&r.metrics.stats);
        priced += r.metrics.priced_ms;
    }
    index.check_invariants().unwrap();
    Measured {
        priced_ms: priced / measured.len() as f64,
        stats: agg,
        units: index.cluster_count(),
    }
}

fn measure_ss(
    scenario: StorageScenario,
    objects: &[HyperRect],
    measured: &[SpatialQuery],
) -> Measured {
    let dims = objects[0].dims();
    let mut ss = SeqScan::new(dims, scenario);
    for (i, r) in objects.iter().enumerate() {
        ss.insert(ObjectId(i as u32), r);
    }
    let mut agg = AccessStats::new();
    let mut priced = 0.0;
    for q in measured {
        let r = ss.execute(q);
        agg.merge(&r.metrics.stats);
        priced += r.metrics.priced_ms;
    }
    Measured {
        priced_ms: priced / measured.len() as f64,
        stats: agg,
        units: 1,
    }
}

/// "Using the cost-based clustering we always guarantee better average
/// performance than Sequential Scan" (§1) — in both storage scenarios,
/// on a selective workload.
#[test]
fn ac_beats_seqscan_on_selective_queries_in_both_scenarios() {
    let dims = 16;
    let n = 15_000;
    let workload = UniformWorkload::with_max_length(WorkloadConfig::new(dims, n, 77), 0.5);
    let objects = workload.generate_objects();
    let extent = calibrate::uniform_query_extent(&workload, 5e-5, 3);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let warmup: Vec<_> = (0..600)
        .map(|_| SpatialQuery::intersection(workload.sample_window(&mut rng, extent)))
        .collect();
    let measured: Vec<_> = (0..150)
        .map(|_| SpatialQuery::intersection(workload.sample_window(&mut rng, extent)))
        .collect();

    for scenario in [StorageScenario::Memory, StorageScenario::Disk] {
        let ac = measure_ac(scenario, &objects, &warmup, &measured);
        let ss = measure_ss(scenario, &objects, &measured);
        assert!(
            ac.priced_ms <= ss.priced_ms * 1.05,
            "{scenario}: AC {:.4} ms should not exceed SS {:.4} ms",
            ac.priced_ms,
            ss.priced_ms
        );
        assert!(
            ac.stats.objects_verified < ss.stats.objects_verified,
            "{scenario}: AC must verify fewer objects"
        );
    }
}

/// On non-selective queries AC degenerates gracefully towards a single
/// sequentially scanned cluster rather than falling behind SS (§7.2:
/// "the cost model … always ensures better performance for AC compared
/// to SS").
#[test]
fn ac_degenerates_to_scan_on_non_selective_queries() {
    let dims = 8;
    let n = 10_000;
    let workload = UniformWorkload::with_max_length(WorkloadConfig::new(dims, n, 21), 0.5);
    let objects = workload.generate_objects();
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    // Huge windows: selectivity near 50 %.
    let warmup: Vec<_> = (0..500)
        .map(|_| SpatialQuery::intersection(workload.sample_window(&mut rng, 0.9)))
        .collect();
    let measured: Vec<_> = (0..100)
        .map(|_| SpatialQuery::intersection(workload.sample_window(&mut rng, 0.9)))
        .collect();
    let ac = measure_ac(StorageScenario::Memory, &objects, &warmup, &measured);
    let ss = measure_ss(StorageScenario::Memory, &objects, &measured);
    assert!(
        ac.units <= 4,
        "non-selective workload should keep clustering trivial, got {} clusters",
        ac.units
    );
    assert!(ac.priced_ms <= ss.priced_ms * 1.10);
}

/// The disk cost model produces far fewer clusters than the memory one
/// (Fig. 7: 25,561 memory clusters vs 1,360 disk clusters at the same
/// selectivity) because every exploration pays a 15 ms seek.
#[test]
fn disk_clustering_is_much_coarser_than_memory() {
    let dims = 16;
    let n = 15_000;
    let workload = UniformWorkload::with_max_length(WorkloadConfig::new(dims, n, 4), 0.5);
    let objects = workload.generate_objects();
    let extent = calibrate::uniform_query_extent(&workload, 5e-5, 8);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let warmup: Vec<_> = (0..600)
        .map(|_| SpatialQuery::intersection(workload.sample_window(&mut rng, extent)))
        .collect();
    let measured: Vec<_> = (0..50)
        .map(|_| SpatialQuery::intersection(workload.sample_window(&mut rng, extent)))
        .collect();
    let mem = measure_ac(StorageScenario::Memory, &objects, &warmup, &measured);
    let disk = measure_ac(StorageScenario::Disk, &objects, &warmup, &measured);
    assert!(
        disk.units * 4 < mem.units,
        "disk clusters ({}) should be several times fewer than memory ({})",
        disk.units,
        mem.units
    );
}

/// Point-enclosing queries are the best case (§7.2): AC's advantage over
/// SS is larger than for range queries.
#[test]
fn point_enclosing_is_best_case_for_ac() {
    let dims = 16;
    let n = 15_000;
    let workload = UniformWorkload::with_max_length(WorkloadConfig::new(dims, n, 6), 0.3);
    let objects = workload.generate_objects();
    let mut rng = rand::rngs::StdRng::seed_from_u64(44);
    let warmup: Vec<_> = (0..600)
        .map(|_| SpatialQuery::point_enclosing(workload.sample_point(&mut rng)))
        .collect();
    let measured: Vec<_> = (0..150)
        .map(|_| SpatialQuery::point_enclosing(workload.sample_point(&mut rng)))
        .collect();
    let ac = measure_ac(StorageScenario::Memory, &objects, &warmup, &measured);
    let ss = measure_ss(StorageScenario::Memory, &objects, &measured);
    let speedup = ss.priced_ms / ac.priced_ms;
    assert!(
        speedup > 2.0,
        "point queries should give a clear speedup, got {speedup:.1}x"
    );
}
