//! Disk persistence and crash recovery (paper §6, "Fail Recovery"):
//! cluster signatures are stored with the member objects behind a
//! one-block directory, so the search structure survives restarts;
//! statistics are simply re-gathered.
//!
//! ```text
//! cargo run --release --example persistence
//! ```

use acx::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = 6;
    let workload = UniformWorkload::new(WorkloadConfig::new(dims, 10_000, 77));
    let mut index = AdaptiveClusterIndex::new(IndexConfig::memory(dims))?;
    for (i, rect) in workload.generate_objects().into_iter().enumerate() {
        index.insert(ObjectId(i as u32), rect)?;
    }

    // Shape the clustering with a query stream, then persist.
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    for _ in 0..500 {
        let p: Vec<f32> = (0..dims).map(|_| rand::Rng::gen_range(&mut rng, 0.0..=1.0)).collect();
        index.execute(&SpatialQuery::point_enclosing(p));
    }
    let path = std::env::temp_dir().join("acx_persistence_example.acx");
    index.save(&path)?;
    println!(
        "saved {} objects in {} clusters to {}",
        index.len(),
        index.cluster_count(),
        path.display()
    );

    // "Crash" and restore.
    drop(index);
    let mut restored = AdaptiveClusterIndex::load(&path, IndexConfig::memory(dims))?;
    restored.check_invariants().map_err(std::io::Error::other)?;
    println!(
        "restored {} objects in {} clusters (invariants verified)",
        restored.len(),
        restored.cluster_count()
    );

    let probe = SpatialQuery::point_enclosing(vec![0.4; 6]);
    let result = restored.execute(&probe);
    println!("probe query matches {} objects after recovery", result.matches.len());
    std::fs::remove_file(&path).ok();
    Ok(())
}
