//! Demonstrates the cost-based clustering *adapting to a changing query
//! distribution* — the capability that motivates dropping the R-tree
//! constraints (paper §1, §8).
//!
//! A hotspot query stream focuses on one region; the index splits
//! clusters there. When the hotspot jumps, the old region's clusters
//! lose their access-probability advantage and the merging benefit
//! function reclaims them while new splits develop under the new hotspot.
//!
//! ```text
//! cargo run --release --example adaptive_shift
//! ```

use acx::prelude::*;
use acx::workloads::ShiftingHotspot;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = 8;
    let n = 20_000;
    let workload = UniformWorkload::with_max_length(WorkloadConfig::new(dims, n, 3), 0.4);
    let mut index = AdaptiveClusterIndex::new(IndexConfig::memory(dims))?;
    for (i, rect) in workload.generate_objects().into_iter().enumerate() {
        index.insert(ObjectId(i as u32), rect)?;
    }

    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let phase_len = 800u64;
    let mut stream = ShiftingHotspot::new(dims, phase_len, 0.35, 0.08, &mut rng);

    println!(
        "{:>6} {:>16} {:>14} {:>10} {:>8} {:>8}",
        "phase", "hotspot center", "avg cost [ms]", "clusters", "merges", "splits"
    );
    for phase in 0..5 {
        let mut cost = 0.0;
        for _ in 0..phase_len {
            let w = stream.next_window(&mut rng);
            cost += index
                .execute(&SpatialQuery::intersection(w))
                .metrics
                .priced_ms;
        }
        let center = stream.center();
        println!(
            "{:>6} ({:.2}, {:.2}, …) {:>14.4} {:>10} {:>8} {:>8}",
            phase,
            center[0],
            center[1],
            cost / phase_len as f64,
            index.cluster_count(),
            index.total_merges(),
            index.total_splits()
        );
    }
    println!(
        "\nEach phase uses a different hotspot; merges climb as clusters built\n\
         for abandoned hotspots are reclaimed, keeping the clustering tuned\n\
         to the *current* query distribution."
    );
    Ok(())
}
