//! Quickstart: index a small collection of multidimensional extended
//! objects and run all four query kinds.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use acx::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 3-dimensional extended objects: each defines a range interval per
    // dimension (think price × surface × distance, normalized to [0,1]).
    let mut index = AdaptiveClusterIndex::new(IndexConfig::memory(3))?;

    let objects = [
        (1, [0.10, 0.20, 0.30], [0.20, 0.40, 0.50]),
        (2, [0.15, 0.25, 0.35], [0.25, 0.45, 0.55]),
        (3, [0.60, 0.60, 0.60], [0.90, 0.90, 0.90]),
        (4, [0.00, 0.00, 0.00], [1.00, 1.00, 1.00]),
        (5, [0.40, 0.45, 0.50], [0.42, 0.47, 0.52]),
    ];
    for (id, lo, hi) in &objects {
        index.insert(ObjectId(*id), HyperRect::from_bounds(lo, hi)?)?;
    }
    println!("indexed {} objects in {} cluster(s)", index.len(), index.cluster_count());

    // Intersection: who overlaps this window?
    let window = HyperRect::from_bounds(&[0.18, 0.30, 0.40], &[0.50, 0.50, 0.60])?;
    let result = index.execute(&SpatialQuery::intersection(window.clone()));
    println!("intersection  → {:?}", sorted(result.matches));

    // Containment: who lies entirely inside the window?
    let result = index.execute(&SpatialQuery::containment(
        HyperRect::from_bounds(&[0.0, 0.0, 0.0], &[0.5, 0.5, 0.6])?,
    ));
    println!("containment   → {:?}", sorted(result.matches));

    // Enclosure: who encloses this small box?
    let result = index.execute(&SpatialQuery::enclosure(
        HyperRect::from_bounds(&[0.41, 0.46, 0.51], &[0.415, 0.465, 0.515])?,
    ));
    println!("enclosure     → {:?}", sorted(result.matches));

    // Point-enclosing: who covers this exact point?
    let result = index.execute(&SpatialQuery::point_enclosing(vec![0.7, 0.7, 0.7]));
    println!("point         → {:?}", sorted(result.matches));

    // Every query returns metrics usable for cost analysis.
    println!(
        "last query: {} clusters explored, {} objects verified, {:.6} ms (cost model)",
        result.metrics.stats.clusters_explored,
        result.metrics.stats.objects_verified,
        result.metrics.priced_ms
    );

    // Updates are first-class: objects can move or leave.
    index.update(ObjectId(5), HyperRect::from_bounds(&[0.8, 0.8, 0.8], &[0.85, 0.85, 0.85])?)?;
    index.remove(ObjectId(4))?;
    let result = index.execute(&SpatialQuery::point_enclosing(vec![0.82, 0.82, 0.82]));
    println!("after update  → {:?}", sorted(result.matches));
    Ok(())
}

fn sorted(mut v: Vec<ObjectId>) -> Vec<ObjectId> {
    v.sort_unstable();
    v
}
