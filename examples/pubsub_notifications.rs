//! The paper's motivating application (§1): a publish/subscribe
//! notification system for apartment small-ads. Subscriptions define
//! range intervals over many attributes ("3 to 5 rooms, 1 or 2 baths,
//! 600$–900$ …"); each incoming offer is a point-enclosing query that
//! must quickly retrieve every matching subscription.
//!
//! ```text
//! cargo run --release --example pubsub_notifications
//! ```

use std::time::Instant;

use acx::prelude::*;
use acx::workloads::PubSubGenerator;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let generator = PubSubGenerator::apartments();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2004);

    println!("attribute schema:");
    for attr in generator.attributes() {
        println!("  {:>15}: {:>8.0} … {:<8.0}", attr.name, attr.min, attr.max);
    }

    // Load 20,000 subscriptions into the adaptive clustering index.
    let mut index = AdaptiveClusterIndex::new(IndexConfig::memory(generator.dims()))?;
    let subscriptions: Vec<_> = (0..20_000u32)
        .map(|i| generator.subscription(i, &mut rng))
        .collect();
    for sub in &subscriptions {
        index.insert(ObjectId(sub.subscriber), sub.ranges.clone())?;
    }
    println!("\n{} subscriptions indexed", index.len());

    // Publish a stream of offers in batches: the read-only matching
    // phase fans across worker threads while the index keeps adapting
    // its clustering exactly as under sequential execution (reorganizing
    // every 100 events by default).
    let threads = 4;
    let mut stream = EventStream::new(generator.clone(), 2004);
    let mut notified = 0u64;
    let mut verified = 0u64;
    let events = 2_000;
    let started = Instant::now();
    for _ in 0..(events / 250) {
        let batch = stream.next_batch(250);
        for result in index.execute_batch(&batch, threads) {
            notified += result.matches.len() as u64;
            verified += result.metrics.stats.objects_verified;
        }
    }
    let elapsed = started.elapsed();
    println!(
        "{events} offers published ({threads} threads, {:.0} offers/sec), \
         {notified} notifications, {:.1} subscriptions verified per offer (of {} total)",
        events as f64 / elapsed.as_secs_f64(),
        verified as f64 / events as f64,
        index.len()
    );
    println!(
        "clustering adapted to {} clusters after {} reorganizations",
        index.cluster_count(),
        index.reorganizations()
    );

    // A concrete offer, decoded back to real-world units.
    let offer = generator.event(&mut rng);
    let result = index.execute(&SpatialQuery::point_enclosing(offer.clone()));
    println!("\nexample offer:");
    for (attr, v) in generator.attributes().iter().zip(&offer) {
        println!("  {:>15}: {:.0}", attr.name, attr.denormalize(*v));
    }
    let mut subscribers = result.matches;
    subscribers.sort_unstable();
    subscribers.truncate(10);
    println!("matching subscribers (first 10): {subscribers:?}");
    Ok(())
}
