//! Head-to-head comparison of the three access methods on one workload:
//! Adaptive Clustering (AC) vs R*-tree (RS) vs Sequential Scan (SS),
//! reporting the paper's indicators for both storage scenarios.
//!
//! ```text
//! cargo run --release --example index_comparison
//! ```

use acx::prelude::*;
use acx::workloads::calibrate;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = 16;
    let n = 20_000;
    let workload = UniformWorkload::with_max_length(WorkloadConfig::new(dims, n, 7), 0.5);
    let objects = workload.generate_objects();
    let extent = calibrate::uniform_query_extent(&workload, 5e-4, 11);
    println!("{n} objects, {dims} dims, intersection selectivity 0.05% (window extent {extent:.3})");

    // Build all methods over the same data. The adaptive index shapes its
    // clustering to the storage scenario (the 15 ms seek makes disk
    // clusters far coarser), so one AC instance per scenario.
    let mut ac = AdaptiveClusterIndex::new(IndexConfig::memory(dims))?;
    let mut ac_disk = AdaptiveClusterIndex::new(IndexConfig::disk(dims))?;
    let mut rs = RStarTree::new(RStarConfig::memory(dims));
    let mut ss = SeqScan::new(dims, StorageScenario::Memory);
    for (i, rect) in objects.iter().enumerate() {
        ac.insert(ObjectId(i as u32), rect.clone())?;
        ac_disk.insert(ObjectId(i as u32), rect.clone())?;
        rs.insert(ObjectId(i as u32), rect);
        ss.insert(ObjectId(i as u32), rect);
    }

    // Warm the adaptive indexes into their stable clustering states.
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    for _ in 0..600 {
        let w = workload.sample_window(&mut rng, extent);
        ac.execute(&SpatialQuery::intersection(w.clone()));
        ac_disk.execute(&SpatialQuery::intersection(w));
    }
    println!(
        "AC stabilized at {} clusters (memory) / {} clusters (disk) after {} reorganizations\n",
        ac.cluster_count(),
        ac_disk.cluster_count(),
        ac.reorganizations()
    );

    // Measure the same 200 queries on each method.
    let queries: Vec<_> = (0..200)
        .map(|_| SpatialQuery::intersection(workload.sample_window(&mut rng, extent)))
        .collect();
    let disk_model = IndexConfig::disk(dims).cost_model();

    let mut rows = Vec::new();
    for (name, mut run) in [
        (
            "AC-mem",
            Box::new(|q: &SpatialQuery| ac.execute(q)) as Box<dyn FnMut(&SpatialQuery) -> _>,
        ),
        ("AC-disk", Box::new(|q: &SpatialQuery| ac_disk.execute(q))),
        ("RS", Box::new(|q: &SpatialQuery| rs.execute(q))),
        ("SS", Box::new(|q: &SpatialQuery| ss.execute(q))),
    ] {
        let mut agg = acx::storage::AccessStats::new();
        let mut wall = std::time::Duration::ZERO;
        for q in &queries {
            let r = run(q);
            agg.merge(&r.metrics.stats);
            wall += r.metrics.wall;
        }
        let nq = queries.len() as f64;
        let mem_model = IndexConfig::memory(dims).cost_model();
        rows.push((
            name,
            wall.as_secs_f64() * 1000.0 / nq,
            mem_model.price(&agg) / nq,
            disk_model.price(&agg) / nq,
            agg.objects_verified as f64 / nq / n as f64 * 100.0,
        ));
    }

    println!(
        "{:>8} {:>12} {:>14} {:>14} {:>12}",
        "", "wall [ms]", "memory [ms]", "disk [ms]", "objs verified"
    );
    for (name, wall, mem, disk, objs) in rows {
        println!("{name:>8} {wall:>12.4} {mem:>14.4} {disk:>14.1} {objs:>11.1}%");
    }
    println!("\n(memory/disk columns price each execution with the paper's Table 2");
    println!(" constants; read AC-mem in the memory column and AC-disk in the disk");
    println!(" column — each index shaped its clustering for its own scenario)");
    Ok(())
}
