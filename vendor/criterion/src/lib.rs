//! Offline stand-in for the crates.io
//! [`criterion`](https://crates.io/crates/criterion) crate, implementing
//! the API subset the `acx_bench` benches use: [`Criterion`],
//! [`Criterion::bench_function`] / [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`], [`Bencher::iter`] /
//! [`Bencher::iter_custom`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is a simple calibrated loop: each benchmark warms up for
//! ~`WARMUP_MS`, picks an iteration count that makes one sample take
//! ~`SAMPLE_TARGET_MS`, then records `sample_size` samples and prints the
//! median with a min–max spread. No plots, no statistical regression —
//! numbers are comparable within a run, which is what the experiment
//! harness needs.
//!
//! The workspace builds in network-isolated environments; this crate
//! exists so `cargo bench` needs no registry access. To use the real
//! dependency, repoint the `criterion` entry in the root `Cargo.toml`'s
//! `[workspace.dependencies]` at crates.io.

use std::fmt::Display;
use std::time::{Duration, Instant};

const WARMUP_MS: u64 = 300;
const SAMPLE_TARGET_MS: u64 = 50;
const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Prevents the compiler from optimizing away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark driver: registry of benchmark functions plus a CLI filter
/// (`cargo bench -- <substring>` runs only matching benchmarks).
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo's bench harness protocol passes `--bench`; every other
        // non-flag argument is a name filter, like real criterion.
        let filter = std::env::args()
            .skip(1)
            .find(|arg| !arg.starts_with('-'));
        Self { filter }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&self.filter, &id.0, DEFAULT_SAMPLE_SIZE, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of recorded samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        run_benchmark(&self.criterion.filter, &full, self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self(format!("{}/{}", name.into(), parameter))
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self(name.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self(name)
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times with caller-provided measurement, mirroring real
    /// criterion's `iter_custom`: the closure receives the iteration
    /// count and returns the total measured duration for exactly that
    /// many iterations. Lets a benchmark run un-timed setup work per
    /// iteration (e.g. feeding queries to an index) while reporting
    /// only the operation under test (e.g. the reorganization pass).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        self.elapsed = routine(self.iters);
    }
}

fn run_benchmark<F>(filter: &Option<String>, name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }

    // Warm up and calibrate the per-sample iteration count.
    let mut iters = 1u64;
    let warmup_deadline = Instant::now() + Duration::from_millis(WARMUP_MS);
    let mut per_iter = Duration::from_secs(1);
    while Instant::now() < warmup_deadline {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        per_iter = bencher.elapsed / u32::try_from(iters).unwrap_or(u32::MAX);
        if bencher.elapsed < Duration::from_millis(5) {
            iters = iters.saturating_mul(4);
        }
    }
    let target = Duration::from_millis(SAMPLE_TARGET_MS);
    if !per_iter.is_zero() {
        let fit = target.as_nanos() / per_iter.as_nanos().max(1);
        iters = u64::try_from(fit).unwrap_or(u64::MAX).clamp(1, 1_000_000_000);
    }

    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        samples.push(bencher.elapsed / u32::try_from(iters).unwrap_or(u32::MAX));
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{name:<50} time: [{} {} {}]  ({iters} iters/sample, {sample_size} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(max),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark functions into one runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a bench target built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
