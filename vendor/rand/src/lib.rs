//! Offline stand-in for the crates.io [`rand`](https://crates.io/crates/rand)
//! crate, implementing the 0.8-era API subset this workspace uses:
//!
//! * [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen_range`] over half-open and inclusive integer/float ranges,
//! * [`Rng::gen`] for `f32`/`f64`/`u32`/`u64`/`bool`,
//! * [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! given a seed, statistically solid for test workloads, but **not** a
//! drop-in stream-compatible replacement for the real `StdRng` (which is
//! ChaCha12-based). Workload seeds reproduce within this workspace only.
//!
//! The workspace builds in network-isolated environments; this crate exists
//! so `cargo build` needs no registry access. To use the real dependency,
//! repoint the `rand` entry in the root `Cargo.toml`'s
//! `[workspace.dependencies]` at crates.io.

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Rngs constructible from an integer seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    ///
    /// Panics if the range is empty, matching `rand 0.8` behavior.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let x: f64 = self.gen();
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly from the unit distribution (`rand`'s
/// `Standard`).
pub trait Standard: Sized {
    /// Draws one value from the given generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform sampler over an `[lo, hi)` / `[lo, hi]` range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    lo < hi || (inclusive && lo == hi),
                    "cannot sample from an empty range"
                );
                let span = (hi as u64) - (lo as u64) + u64::from(inclusive);
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, usize);

impl SampleUniform for u64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
        assert!(
            lo < hi || (inclusive && lo == hi),
            "cannot sample from an empty range"
        );
        if inclusive && lo == u64::MIN && hi == u64::MAX {
            return rng.next_u64();
        }
        let span = hi - lo + u64::from(inclusive);
        lo + rng.next_u64() % span
    }
}

macro_rules! uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    lo < hi || (inclusive && lo == hi),
                    "cannot sample from an empty range"
                );
                let span = (hi as $u).wrapping_sub(lo as $u) as u64 + u64::from(inclusive);
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

uniform_signed!(i32 => u32, i64 => u64, isize => usize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    lo < hi || (inclusive && lo == hi),
                    "cannot sample from an empty range"
                );
                let unit = <$t as Standard>::sample(rng); // [0, 1)
                let v = lo + (hi - lo) * unit;
                // Guard against rounding past the upper bound.
                if v >= hi && !inclusive { lo } else { v.min(hi) }
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: f32 = rng.gen_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&x));
            let y: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&y));
            let z: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&z));
        }
    }

    #[test]
    fn gen_range_accepts_degenerate_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let x: f32 = rng.gen_range(0.5..=0.5);
        assert_eq!(x, 0.5);
        let k: usize = rng.gen_range(4..=4);
        assert_eq!(k, 4);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn inverted_int_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let (hi, lo) = (5u32, 2u32); // inverted bounds, opaque to lints
        let _ = rng.gen_range(hi..lo);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_exclusive_int_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: usize = rng.gen_range(4..4);
    }

    #[test]
    fn unit_floats_cover_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }
}
