//! Sequence-related helpers: the [`SliceRandom`] extension trait.

use crate::{Rng, SampleUniform};

/// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type of the sequence.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen reference, or `None` if empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = usize::sample_in(rng, 0, i, true);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[usize::sample_in(rng, 0, self.len(), false)])
        }
    }
}
