//! The [`Strategy`] trait and primitive strategy types.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Mirrors `proptest::strategy::Strategy` without shrinking: `sample`
/// plays the role of the real crate's value-tree generation.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Boxed, type-erased strategy (the stub's `BoxedStrategy`).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// Boxes a strategy, erasing its concrete type.
pub fn boxed<S>(strategy: S) -> BoxedStrategy<S::Value>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of boxed strategies — what [`crate::prop_oneof!`]
/// expands to.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! needs positive total weight");
        Self { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (weight, strategy) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strategy.sample(rng);
            }
            pick -= weight;
        }
        unreachable!("pick is always below the total weight")
    }
}

impl<T: SampleUniform + 'static> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform + 'static> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
