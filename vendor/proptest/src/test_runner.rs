//! Test-runner configuration and deterministic per-test seeding.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases each property test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` samples per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Error a property-test body may return early with `?`, mirroring
/// `proptest::test_runner::TestCaseError` (the reject/fail distinction is
/// dropped — every error fails the test).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps any displayable reason as a test failure.
    pub fn fail(reason: impl std::fmt::Display) -> Self {
        Self(reason.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Deterministic generator for a named test: same name, same stream, so
/// failures reproduce across runs.
pub fn rng_for_test(name: &str) -> StdRng {
    // FNV-1a over the test name.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}
