//! Collection strategies: [`vec()`].

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Element-count specification for [`vec()`]: an exact length or a length
/// range (mirrors `proptest::collection::SizeRange`).
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            lo: exact,
            hi_exclusive: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(!range.is_empty(), "empty size range for collection::vec");
        Self {
            lo: range.start,
            hi_exclusive: range.end,
        }
    }
}

/// Strategy generating `Vec`s of values from `element`, with a length
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
