//! Offline stand-in for the crates.io
//! [`proptest`](https://crates.io/crates/proptest) crate, implementing the
//! API subset this workspace's property tests use:
//!
//! * the [`strategy::Strategy`] trait with
//!   [`prop_map`](strategy::Strategy::prop_map),
//! * range strategies (`0u8..8`, `0.0f32..=1.0`), tuple strategies,
//!   [`strategy::Just`], weighted [`prop_oneof!`] unions, and
//!   [`collection::vec()`],
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Each generated test runs its body over `cases` freshly sampled inputs
//! (default 256), seeded deterministically from the test's name, so runs
//! are reproducible. **No shrinking** is performed on failure — the failing
//! input is printed as-is via the panic message of the underlying assert.
//!
//! The workspace builds in network-isolated environments; this crate exists
//! so `cargo build` needs no registry access. To use the real dependency,
//! repoint the `proptest` entry in the root `Cargo.toml`'s
//! `[workspace.dependencies]` at crates.io.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-line import for tests, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace alias so `prop::collection::vec(...)` resolves as it does
    /// with the real crate.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a [`proptest!`] body.
///
/// Unlike the real crate this panics immediately (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted union of strategies producing the same value type:
/// `prop_oneof![2 => strat_a, 1 => strat_b]`. Unweighted arms default to
/// weight 1.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies `cases` times and runs
/// the body on each sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for_test(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg =
                    $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                // The body may bail out early with `?`, as in real proptest.
                let outcome: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(error) = outcome {
                    panic!("property test {} failed: {error}", stringify!($name));
                }
            }
        }
    )*};
}
