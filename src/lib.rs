//! # acx — adaptive clustering of multidimensional extended objects
//!
//! Facade crate re-exporting the full system: a reproduction of
//! *"Clustering Multidimensional Extended Objects to Speed Up Execution of
//! Spatial Queries"* (Saita & Llirbat, EDBT 2004).
//!
//! The system answers intersection, containment, enclosure and
//! point-enclosing queries over large collections of hyper-rectangles with
//! many dimensions, using a **cost-based adaptive clustering** strategy that
//! follows both the data distribution and the query distribution.
//!
//! ## Crate map
//!
//! * [`geom`] — intervals, hyper-rectangles, spatial relations.
//! * [`storage`] — device cost profiles, simulated disk, segment and
//!   file-backed stores.
//! * [`index`] — the paper's contribution: signatures, candidate
//!   subclusters, benefit functions, reorganization, the
//!   [`index::AdaptiveClusterIndex`] itself.
//! * [`baselines`] — Sequential Scan and a full R*-tree, used as
//!   competitors in the paper's evaluation.
//! * [`serve`] — the shard-per-core serving tier: partitioned indexes
//!   behind bounded ingestion queues with event fan-out and per-shard
//!   off-path reorganization.
//! * [`workloads`] — uniform/skewed workload generators with selectivity
//!   calibration, plus a publish/subscribe domain generator.
//!
//! ## Quickstart
//!
//! ```
//! use acx::prelude::*;
//!
//! // Build an index over 3-dimensional extended objects.
//! let mut index = AdaptiveClusterIndex::new(IndexConfig::memory(3)).unwrap();
//! let rect = HyperRect::from_bounds(&[0.1, 0.2, 0.3], &[0.2, 0.4, 0.5]).unwrap();
//! index.insert(ObjectId(1), rect).unwrap();
//!
//! let query = SpatialQuery::point_enclosing(vec![0.15, 0.3, 0.4]);
//! let result = index.execute(&query);
//! assert_eq!(result.matches, vec![ObjectId(1)]);
//! ```

pub use acx_baselines as baselines;
pub use acx_core as index;
pub use acx_geom as geom;
pub use acx_serve as serve;
pub use acx_storage as storage;
pub use acx_workloads as workloads;

/// Commonly used types, importable in one line.
pub mod prelude {
    pub use acx_baselines::{BatchExecute, RStarConfig, RStarTree, SeqScan};
    pub use acx_core::{
        AdaptiveClusterIndex, ClusterSnapshot, IndexConfig, IndexError, QueryMetrics, QueryResult,
        QueryScratch, ReorgMode, ReorgProfile, ReorgReport, ScanMode, StatsDelta,
    };
    pub use acx_geom::{
        HyperRect, Interval, ObjectId, Scalar, SpatialQuery, SpatialRelation,
    };
    pub use acx_serve::{ServeConfig, ServeStats, ShardBy, ShardedIndex, SubmitError};
    pub use acx_storage::{AccessStats, CostModel, DeviceProfile, StorageScenario};
    pub use acx_workloads::{
        EventStream, SkewedWorkload, UniformWorkload, Workload, WorkloadConfig,
    };
}
