use crate::{GeomError, Interval, Scalar};

/// A multidimensional extended object: one closed interval per dimension.
///
/// Also called *hyper-interval* or *hyper-rectangle* in the paper. Points
/// are representable as degenerate rectangles (zero-length intervals), but
/// the system is designed for objects with real extensions.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperRect {
    intervals: Box<[Interval]>,
}

impl HyperRect {
    /// Builds a rectangle from per-dimension intervals.
    pub fn new(intervals: Vec<Interval>) -> Result<Self, GeomError> {
        if intervals.is_empty() {
            return Err(GeomError::EmptyRect);
        }
        Ok(Self {
            intervals: intervals.into_boxed_slice(),
        })
    }

    /// Builds a rectangle from parallel lower/upper bound slices.
    pub fn from_bounds(lo: &[Scalar], hi: &[Scalar]) -> Result<Self, GeomError> {
        if lo.len() != hi.len() {
            return Err(GeomError::DimensionMismatch {
                left: lo.len(),
                right: hi.len(),
            });
        }
        let mut intervals = Vec::with_capacity(lo.len());
        for (&l, &h) in lo.iter().zip(hi) {
            intervals.push(Interval::new(l, h)?);
        }
        Self::new(intervals)
    }

    /// Builds a rectangle from a flat `[lo0, hi0, lo1, hi1, …]` slice —
    /// the storage layout used by cluster segments.
    pub fn from_flat(coords: &[Scalar]) -> Result<Self, GeomError> {
        if !coords.len().is_multiple_of(2) {
            return Err(GeomError::OddCoordinateCount { len: coords.len() });
        }
        let mut intervals = Vec::with_capacity(coords.len() / 2);
        for pair in coords.chunks_exact(2) {
            intervals.push(Interval::new(pair[0], pair[1])?);
        }
        Self::new(intervals)
    }

    /// The full-domain rectangle (`[0,1]` in every dimension).
    pub fn unit(dims: usize) -> Self {
        assert!(dims > 0, "rectangle must have at least one dimension");
        Self {
            intervals: vec![Interval::domain(); dims].into_boxed_slice(),
        }
    }

    /// A degenerate rectangle representing a point.
    pub fn from_point(point: &[Scalar]) -> Result<Self, GeomError> {
        if point.is_empty() {
            return Err(GeomError::EmptyRect);
        }
        let mut intervals = Vec::with_capacity(point.len());
        for &p in point {
            intervals.push(Interval::new(p, p)?);
        }
        Self::new(intervals)
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.intervals.len()
    }

    /// The interval in dimension `d`.
    #[inline]
    pub fn interval(&self, d: usize) -> &Interval {
        &self.intervals[d]
    }

    /// All intervals, one per dimension.
    #[inline]
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Whether the two rectangles share at least one point in every
    /// dimension (spatial *intersection*).
    pub fn intersects(&self, other: &HyperRect) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.intervals
            .iter()
            .zip(other.intervals.iter())
            .all(|(a, b)| a.intersects(b))
    }

    /// Whether `other` lies entirely inside `self` (`other ⊆ self`).
    pub fn contains(&self, other: &HyperRect) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.intervals
            .iter()
            .zip(other.intervals.iter())
            .all(|(a, b)| a.contains(b))
    }

    /// Whether the point lies inside the rectangle (closed bounds).
    pub fn contains_point(&self, point: &[Scalar]) -> bool {
        debug_assert_eq!(self.dims(), point.len());
        self.intervals
            .iter()
            .zip(point.iter())
            .all(|(i, &p)| i.contains_point(p))
    }

    /// Volume of the rectangle (product of interval lengths).
    pub fn volume(&self) -> f64 {
        self.intervals
            .iter()
            .map(|i| i.length() as f64)
            .product()
    }

    /// Sum of interval lengths — the *margin* used by the R*-tree split.
    pub fn margin(&self) -> f64 {
        self.intervals.iter().map(|i| i.length() as f64).sum()
    }

    /// Smallest rectangle covering both inputs.
    pub fn union(&self, other: &HyperRect) -> HyperRect {
        debug_assert_eq!(self.dims(), other.dims());
        let intervals = self
            .intervals
            .iter()
            .zip(other.intervals.iter())
            .map(|(a, b)| a.union(b))
            .collect::<Vec<_>>();
        HyperRect {
            intervals: intervals.into_boxed_slice(),
        }
    }

    /// Volume of the intersection of the two rectangles (zero if disjoint).
    pub fn overlap_volume(&self, other: &HyperRect) -> f64 {
        debug_assert_eq!(self.dims(), other.dims());
        let mut v = 1.0f64;
        for (a, b) in self.intervals.iter().zip(other.intervals.iter()) {
            let o = a.overlap_length(b) as f64;
            if o == 0.0 {
                return 0.0;
            }
            v *= o;
        }
        v
    }

    /// Appends the flat `[lo0, hi0, …]` coordinates to `out`.
    pub fn write_flat(&self, out: &mut Vec<Scalar>) {
        out.reserve(self.intervals.len() * 2);
        for i in self.intervals.iter() {
            out.push(i.lo());
            out.push(i.hi());
        }
    }

    /// Returns the flat coordinates as a fresh vector.
    pub fn to_flat(&self) -> Vec<Scalar> {
        let mut v = Vec::with_capacity(self.dims() * 2);
        self.write_flat(&mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rect(lo: &[Scalar], hi: &[Scalar]) -> HyperRect {
        HyperRect::from_bounds(lo, hi).unwrap()
    }

    #[test]
    fn new_rejects_empty() {
        assert_eq!(HyperRect::new(vec![]).unwrap_err(), GeomError::EmptyRect);
    }

    #[test]
    fn from_bounds_rejects_mismatched_lengths() {
        let err = HyperRect::from_bounds(&[0.0], &[1.0, 1.0]).unwrap_err();
        assert_eq!(err, GeomError::DimensionMismatch { left: 1, right: 2 });
    }

    #[test]
    fn from_flat_roundtrip() {
        let r = rect(&[0.1, 0.2, 0.3], &[0.4, 0.5, 0.6]);
        let flat = r.to_flat();
        assert_eq!(flat, vec![0.1, 0.4, 0.2, 0.5, 0.3, 0.6]);
        let r2 = HyperRect::from_flat(&flat).unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn from_flat_rejects_odd_length() {
        assert!(matches!(
            HyperRect::from_flat(&[0.0, 1.0, 0.5]),
            Err(GeomError::OddCoordinateCount { len: 3 })
        ));
    }

    #[test]
    fn unit_rect_contains_everything() {
        let u = HyperRect::unit(4);
        let r = rect(&[0.2, 0.0, 0.9, 0.5], &[0.3, 1.0, 1.0, 0.5]);
        assert!(u.contains(&r));
        assert!(u.intersects(&r));
    }

    #[test]
    fn intersects_requires_overlap_in_all_dims() {
        let a = rect(&[0.0, 0.0], &[0.5, 0.5]);
        let b = rect(&[0.4, 0.4], &[0.9, 0.9]);
        assert!(a.intersects(&b));
        // Disjoint in the second dimension only.
        let c = rect(&[0.4, 0.6], &[0.9, 0.9]);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn containment_is_per_dimension() {
        let outer = rect(&[0.0, 0.0], &[1.0, 0.5]);
        let inner = rect(&[0.1, 0.1], &[0.9, 0.4]);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        // Sticking out in one dimension breaks containment.
        let poking = rect(&[0.1, 0.1], &[0.9, 0.6]);
        assert!(!outer.contains(&poking));
    }

    #[test]
    fn contains_point_closed_bounds() {
        let r = rect(&[0.25, 0.25], &[0.75, 0.75]);
        assert!(r.contains_point(&[0.25, 0.75]));
        assert!(r.contains_point(&[0.5, 0.5]));
        assert!(!r.contains_point(&[0.76, 0.5]));
    }

    #[test]
    fn volume_and_margin() {
        let r = rect(&[0.0, 0.0], &[0.5, 0.25]);
        assert!((r.volume() - 0.125).abs() < 1e-9);
        assert!((r.margin() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn overlap_volume_zero_when_disjoint() {
        let a = rect(&[0.0, 0.0], &[0.2, 0.2]);
        let b = rect(&[0.5, 0.5], &[0.9, 0.9]);
        assert_eq!(a.overlap_volume(&b), 0.0);
        let c = rect(&[0.1, 0.1], &[0.3, 0.3]);
        assert!((a.overlap_volume(&c) - 0.01).abs() < 1e-6);
    }

    #[test]
    fn point_rect_is_degenerate() {
        let p = HyperRect::from_point(&[0.3, 0.7]).unwrap();
        assert_eq!(p.volume(), 0.0);
        assert!(p.contains_point(&[0.3, 0.7]));
    }

    fn rect_strategy(dims: usize) -> impl Strategy<Value = HyperRect> {
        prop::collection::vec((0.0f32..=1.0, 0.0f32..=1.0), dims).prop_map(|pairs| {
            let mut intervals = Vec::with_capacity(pairs.len());
            for (a, b) in pairs {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                intervals.push(Interval::new_unchecked(lo, hi));
            }
            HyperRect::new(intervals).unwrap()
        })
    }

    proptest! {
        #[test]
        fn prop_intersects_symmetric(a in rect_strategy(3), b in rect_strategy(3)) {
            prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        }

        #[test]
        fn prop_union_contains_operands(a in rect_strategy(3), b in rect_strategy(3)) {
            let u = a.union(&b);
            prop_assert!(u.contains(&a));
            prop_assert!(u.contains(&b));
        }

        #[test]
        fn prop_contains_implies_intersects(a in rect_strategy(3), b in rect_strategy(3)) {
            if a.contains(&b) {
                prop_assert!(a.intersects(&b));
            }
        }

        #[test]
        fn prop_flat_roundtrip(a in rect_strategy(5)) {
            let r = HyperRect::from_flat(&a.to_flat()).unwrap();
            prop_assert_eq!(a, r);
        }

        #[test]
        fn prop_overlap_volume_bounded(a in rect_strategy(3), b in rect_strategy(3)) {
            let o = a.overlap_volume(&b);
            prop_assert!(o >= 0.0);
            prop_assert!(o <= a.volume() + 1e-9);
            prop_assert!(o <= b.volume() + 1e-9);
        }
    }
}
