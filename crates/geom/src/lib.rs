//! Geometry substrate for the adaptive-clustering spatial index.
//!
//! This crate defines *multidimensional extended objects* — hyper-rectangles
//! (equivalently, hyper-intervals) over the normalized domain `[0, 1]` in
//! each dimension — together with the spatial relations the index answers:
//!
//! * [`SpatialRelation::Intersection`] — the object overlaps the query window,
//! * [`SpatialRelation::Containment`] — the object lies inside the query window,
//! * [`SpatialRelation::Enclosure`]   — the object encloses the query window,
//! * point-enclosing queries — the object contains a query point.
//!
//! Coordinates are `f32` on purpose: the paper stores each interval limit on
//! 4 bytes and the cost model prices verification and transfer *per byte*,
//! so the in-memory layout (`4 + 8·Nd` bytes per object) is part of the
//! reproduced system, not an implementation detail.
//!
//! # Example
//!
//! ```
//! use acx_geom::{HyperRect, SpatialQuery};
//!
//! // A 2-d object: [0.1, 0.4] × [0.2, 0.3]
//! let object = HyperRect::from_bounds(&[0.1, 0.2], &[0.4, 0.3]).unwrap();
//! // An intersection query window: [0.3, 0.9] × [0.0, 1.0]
//! let window = HyperRect::from_bounds(&[0.3, 0.0], &[0.9, 1.0]).unwrap();
//! let query = SpatialQuery::intersection(window);
//! assert!(query.matches_rect(&object));
//! ```

mod error;
mod interval;
mod object;
mod query;
mod rect;
pub mod scan;

pub use error::GeomError;
pub use interval::Interval;
pub use object::{object_size_bytes, ObjectId, OBJECT_ID_BYTES};
pub use query::{MatchOutcome, SpatialQuery, SpatialRelation};
pub use rect::HyperRect;

/// Coordinate scalar used throughout the system.
///
/// The paper represents every interval limit on 4 bytes; all cost accounting
/// (verification rate, disk transfer) is derived from this layout.
pub type Scalar = f32;

/// Lower bound of the normalized data domain in every dimension.
pub const DOMAIN_MIN: Scalar = 0.0;

/// Upper bound of the normalized data domain in every dimension.
pub const DOMAIN_MAX: Scalar = 1.0;
