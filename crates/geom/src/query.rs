use crate::{HyperRect, Scalar};

/// The spatial relation requested between a database object and the query
/// object (paper §3.6).
///
/// Conventions follow the paper's subscription-matching motivation: the
/// *object* is the stored hyper-rectangle, the *query* is the incoming one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpatialRelation {
    /// Object and query share at least one point (spatial range query).
    Intersection,
    /// The object lies entirely inside the query window (`object ⊆ query`).
    Containment,
    /// The object encloses the query window (`object ⊇ query`).
    Enclosure,
}

impl SpatialRelation {
    /// All supported relations, handy for exhaustive tests and benches.
    pub const ALL: [SpatialRelation; 3] = [
        SpatialRelation::Intersection,
        SpatialRelation::Containment,
        SpatialRelation::Enclosure,
    ];
}

impl std::fmt::Display for SpatialRelation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SpatialRelation::Intersection => "intersection",
            SpatialRelation::Containment => "containment",
            SpatialRelation::Enclosure => "enclosure",
        };
        f.write_str(s)
    }
}

/// Result of verifying one object against a query, with early-exit cost
/// accounting.
///
/// The paper observes (footnote 4) that Sequential Scan rejects an object
/// as soon as one dimension fails the selection criterion, so the amount of
/// *verified data* depends on the query selectivity. `dims_checked` is the
/// number of dimensions actually inspected; callers convert it into bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchOutcome {
    /// Whether the object satisfies the query.
    pub matched: bool,
    /// Number of dimensions inspected before acceptance or rejection.
    pub dims_checked: u32,
}

/// A spatial selection: a query object plus the requested relation
/// (or a point for point-enclosing queries).
///
/// ```
/// use acx_geom::{HyperRect, SpatialQuery};
/// let q = SpatialQuery::point_enclosing(vec![0.5, 0.5]);
/// let obj = HyperRect::from_bounds(&[0.4, 0.0], &[0.6, 1.0]).unwrap();
/// assert!(q.matches_rect(&obj));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum SpatialQuery {
    /// Find objects intersecting the window.
    Intersection(HyperRect),
    /// Find objects contained in the window.
    Containment(HyperRect),
    /// Find objects enclosing the window.
    Enclosure(HyperRect),
    /// Find objects containing the point (best case for the index:
    /// high selectivity, see paper §7.2).
    PointEnclosing(Box<[Scalar]>),
}

impl SpatialQuery {
    /// Intersection query over `window`.
    pub fn intersection(window: HyperRect) -> Self {
        SpatialQuery::Intersection(window)
    }

    /// Containment query over `window`.
    pub fn containment(window: HyperRect) -> Self {
        SpatialQuery::Containment(window)
    }

    /// Enclosure query over `window`.
    pub fn enclosure(window: HyperRect) -> Self {
        SpatialQuery::Enclosure(window)
    }

    /// Point-enclosing query at `point`.
    pub fn point_enclosing(point: Vec<Scalar>) -> Self {
        SpatialQuery::PointEnclosing(point.into_boxed_slice())
    }

    /// Builds a query with an explicit relation over a window rectangle.
    pub fn with_relation(relation: SpatialRelation, window: HyperRect) -> Self {
        match relation {
            SpatialRelation::Intersection => SpatialQuery::Intersection(window),
            SpatialRelation::Containment => SpatialQuery::Containment(window),
            SpatialRelation::Enclosure => SpatialQuery::Enclosure(window),
        }
    }

    /// Dimensionality of the query object.
    pub fn dims(&self) -> usize {
        match self {
            SpatialQuery::Intersection(r)
            | SpatialQuery::Containment(r)
            | SpatialQuery::Enclosure(r) => r.dims(),
            SpatialQuery::PointEnclosing(p) => p.len(),
        }
    }

    /// Verifies a materialized rectangle against the query.
    pub fn matches_rect(&self, object: &HyperRect) -> bool {
        match self {
            SpatialQuery::Intersection(q) => object.intersects(q),
            SpatialQuery::Containment(q) => q.contains(object),
            SpatialQuery::Enclosure(q) => object.contains(q),
            SpatialQuery::PointEnclosing(p) => object.contains_point(p),
        }
    }

    /// Verifies an object stored as flat `[lo0, hi0, lo1, hi1, …]`
    /// coordinates, with early exit on the first failing dimension.
    ///
    /// This is the hot verification path used by every access method
    /// (cluster exploration, sequential scan, R*-tree leaf check); the
    /// returned [`MatchOutcome::dims_checked`] feeds byte-level cost
    /// accounting.
    #[inline]
    pub fn matches_flat(&self, coords: &[Scalar]) -> MatchOutcome {
        debug_assert_eq!(coords.len(), self.dims() * 2);
        let mut checked = 0u32;
        let matched = match self {
            SpatialQuery::Intersection(q) => {
                let mut ok = true;
                for (d, pair) in coords.chunks_exact(2).enumerate() {
                    checked += 1;
                    let qi = q.interval(d);
                    // object [a,b] intersects query [qlo,qhi] iff a<=qhi && b>=qlo
                    if !(pair[0] <= qi.hi() && pair[1] >= qi.lo()) {
                        ok = false;
                        break;
                    }
                }
                ok
            }
            SpatialQuery::Containment(q) => {
                let mut ok = true;
                for (d, pair) in coords.chunks_exact(2).enumerate() {
                    checked += 1;
                    let qi = q.interval(d);
                    if !(pair[0] >= qi.lo() && pair[1] <= qi.hi()) {
                        ok = false;
                        break;
                    }
                }
                ok
            }
            SpatialQuery::Enclosure(q) => {
                let mut ok = true;
                for (d, pair) in coords.chunks_exact(2).enumerate() {
                    checked += 1;
                    let qi = q.interval(d);
                    if !(pair[0] <= qi.lo() && pair[1] >= qi.hi()) {
                        ok = false;
                        break;
                    }
                }
                ok
            }
            SpatialQuery::PointEnclosing(p) => {
                let mut ok = true;
                for (pair, &v) in coords.chunks_exact(2).zip(p.iter()) {
                    checked += 1;
                    if !(pair[0] <= v && v <= pair[1]) {
                        ok = false;
                        break;
                    }
                }
                ok
            }
        };
        MatchOutcome {
            matched,
            dims_checked: checked,
        }
    }

    /// The query window as a rectangle (point queries yield a degenerate
    /// rectangle) — used by baselines that reason over MBBs.
    pub fn window(&self) -> HyperRect {
        match self {
            SpatialQuery::Intersection(r)
            | SpatialQuery::Containment(r)
            | SpatialQuery::Enclosure(r) => r.clone(),
            SpatialQuery::PointEnclosing(p) => {
                HyperRect::from_point(p).expect("point query is non-empty")
            }
        }
    }

    /// The relation implemented by this query. Point-enclosing queries are
    /// enclosure queries over a degenerate window.
    pub fn relation(&self) -> SpatialRelation {
        match self {
            SpatialQuery::Intersection(_) => SpatialRelation::Intersection,
            SpatialQuery::Containment(_) => SpatialRelation::Containment,
            SpatialQuery::Enclosure(_) | SpatialQuery::PointEnclosing(_) => {
                SpatialRelation::Enclosure
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rect(lo: &[Scalar], hi: &[Scalar]) -> HyperRect {
        HyperRect::from_bounds(lo, hi).unwrap()
    }

    #[test]
    fn intersection_semantics() {
        let q = SpatialQuery::intersection(rect(&[0.4, 0.4], &[0.6, 0.6]));
        assert!(q.matches_rect(&rect(&[0.5, 0.5], &[0.9, 0.9])));
        assert!(q.matches_rect(&rect(&[0.0, 0.0], &[0.4, 0.4]))); // touching
        assert!(!q.matches_rect(&rect(&[0.7, 0.0], &[0.9, 1.0])));
    }

    #[test]
    fn containment_semantics() {
        let q = SpatialQuery::containment(rect(&[0.2, 0.2], &[0.8, 0.8]));
        assert!(q.matches_rect(&rect(&[0.3, 0.3], &[0.7, 0.7])));
        assert!(q.matches_rect(&rect(&[0.2, 0.2], &[0.8, 0.8]))); // equal
        assert!(!q.matches_rect(&rect(&[0.1, 0.3], &[0.7, 0.7])));
    }

    #[test]
    fn enclosure_semantics() {
        let q = SpatialQuery::enclosure(rect(&[0.45, 0.45], &[0.55, 0.55]));
        assert!(q.matches_rect(&rect(&[0.4, 0.4], &[0.6, 0.6])));
        assert!(!q.matches_rect(&rect(&[0.5, 0.4], &[0.6, 0.6])));
    }

    #[test]
    fn point_enclosing_semantics() {
        let q = SpatialQuery::point_enclosing(vec![0.5, 0.5]);
        assert!(q.matches_rect(&rect(&[0.5, 0.0], &[0.5, 1.0]))); // boundary
        assert!(!q.matches_rect(&rect(&[0.6, 0.0], &[0.9, 1.0])));
        assert_eq!(q.relation(), SpatialRelation::Enclosure);
    }

    #[test]
    fn flat_matching_agrees_with_rect_matching() {
        let q = SpatialQuery::intersection(rect(&[0.3, 0.3], &[0.7, 0.7]));
        let obj = rect(&[0.1, 0.5], &[0.2, 0.9]);
        let outcome = q.matches_flat(&obj.to_flat());
        assert_eq!(outcome.matched, q.matches_rect(&obj));
        // First dimension fails (0.1..0.2 vs 0.3..0.7) → early exit.
        assert_eq!(outcome.dims_checked, 1);
    }

    #[test]
    fn flat_matching_checks_all_dims_on_success() {
        let q = SpatialQuery::containment(rect(&[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]));
        let obj = rect(&[0.1, 0.1, 0.1], &[0.2, 0.2, 0.2]);
        let outcome = q.matches_flat(&obj.to_flat());
        assert!(outcome.matched);
        assert_eq!(outcome.dims_checked, 3);
    }

    #[test]
    fn window_of_point_query_is_degenerate() {
        let q = SpatialQuery::point_enclosing(vec![0.25, 0.75]);
        let w = q.window();
        assert_eq!(w.volume(), 0.0);
        assert!(w.contains_point(&[0.25, 0.75]));
    }

    #[test]
    fn with_relation_constructs_matching_variant() {
        let w = rect(&[0.0], &[1.0]);
        for rel in SpatialRelation::ALL {
            let q = SpatialQuery::with_relation(rel, w.clone());
            assert_eq!(q.relation(), rel);
        }
    }

    #[test]
    fn relation_display_names() {
        assert_eq!(SpatialRelation::Intersection.to_string(), "intersection");
        assert_eq!(SpatialRelation::Containment.to_string(), "containment");
        assert_eq!(SpatialRelation::Enclosure.to_string(), "enclosure");
    }

    fn rect_strategy(dims: usize) -> impl Strategy<Value = HyperRect> {
        prop::collection::vec((0.0f32..=1.0, 0.0f32..=1.0), dims).prop_map(|pairs| {
            let intervals = pairs
                .into_iter()
                .map(|(a, b)| {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    crate::Interval::new_unchecked(lo, hi)
                })
                .collect::<Vec<_>>();
            HyperRect::new(intervals).unwrap()
        })
    }

    proptest! {
        #[test]
        fn prop_flat_agrees_with_rect(
            obj in rect_strategy(4),
            win in rect_strategy(4),
            rel_idx in 0usize..3,
        ) {
            let q = SpatialQuery::with_relation(SpatialRelation::ALL[rel_idx], win);
            prop_assert_eq!(q.matches_flat(&obj.to_flat()).matched, q.matches_rect(&obj));
        }

        #[test]
        fn prop_point_query_equals_degenerate_enclosure(
            obj in rect_strategy(4),
            p in prop::collection::vec(0.0f32..=1.0, 4),
        ) {
            let point_q = SpatialQuery::point_enclosing(p.clone());
            let rect_q = SpatialQuery::enclosure(HyperRect::from_point(&p).unwrap());
            prop_assert_eq!(point_q.matches_rect(&obj), rect_q.matches_rect(&obj));
        }

        #[test]
        fn prop_containment_implies_intersection(
            obj in rect_strategy(4),
            win in rect_strategy(4),
        ) {
            let c = SpatialQuery::containment(win.clone());
            let i = SpatialQuery::intersection(win);
            if c.matches_rect(&obj) {
                prop_assert!(i.matches_rect(&obj));
            }
        }

        #[test]
        fn prop_dims_checked_bounded(
            obj in rect_strategy(4),
            win in rect_strategy(4),
            rel_idx in 0usize..3,
        ) {
            let q = SpatialQuery::with_relation(SpatialRelation::ALL[rel_idx], win);
            let out = q.matches_flat(&obj.to_flat());
            prop_assert!(out.dims_checked >= 1 && out.dims_checked <= 4);
            if out.matched {
                prop_assert_eq!(out.dims_checked, 4);
            }
        }
    }
}
