use crate::{GeomError, Scalar};

/// A closed one-dimensional interval `[lo, hi]` with `lo <= hi`.
///
/// Intervals are the per-dimension building block of extended objects: a
/// multidimensional extended object defines one interval per dimension
/// (instead of a single value, as a point would).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: Scalar,
    hi: Scalar,
}

impl Interval {
    /// Creates an interval, validating `lo <= hi` and finiteness.
    pub fn new(lo: Scalar, hi: Scalar) -> Result<Self, GeomError> {
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(GeomError::InvalidInterval {
                detail: format!("lo={lo} hi={hi}"),
            });
        }
        Ok(Self { lo, hi })
    }

    /// Creates an interval without validation.
    ///
    /// In debug builds the invariant is still checked. Useful on hot paths
    /// where the bounds were already validated (e.g. decoding a store).
    #[inline]
    pub fn new_unchecked(lo: Scalar, hi: Scalar) -> Self {
        debug_assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
        Self { lo, hi }
    }

    /// A degenerate interval `[v, v]` (used to represent point coordinates).
    #[inline]
    pub fn point(v: Scalar) -> Self {
        Self::new_unchecked(v, v)
    }

    /// The full normalized domain `[0, 1]`.
    #[inline]
    pub fn domain() -> Self {
        Self::new_unchecked(crate::DOMAIN_MIN, crate::DOMAIN_MAX)
    }

    /// Lower bound.
    #[inline]
    pub fn lo(&self) -> Scalar {
        self.lo
    }

    /// Upper bound.
    #[inline]
    pub fn hi(&self) -> Scalar {
        self.hi
    }

    /// Interval length `hi - lo` (zero for point intervals).
    #[inline]
    pub fn length(&self) -> Scalar {
        self.hi - self.lo
    }

    /// Midpoint of the interval.
    #[inline]
    pub fn center(&self) -> Scalar {
        self.lo + 0.5 * (self.hi - self.lo)
    }

    /// Whether the two closed intervals share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Interval) -> bool {
        self.lo <= other.hi && self.hi >= other.lo
    }

    /// Whether `other` lies entirely inside `self`.
    #[inline]
    pub fn contains(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Whether the scalar `v` lies inside the closed interval.
    #[inline]
    pub fn contains_point(&self, v: Scalar) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Smallest interval covering both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Interval) -> Interval {
        Interval::new_unchecked(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Overlap length between the two intervals (zero when disjoint).
    #[inline]
    pub fn overlap_length(&self, other: &Interval) -> Scalar {
        (self.hi.min(other.hi) - self.lo.max(other.lo)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_validates_order_and_finiteness() {
        assert!(Interval::new(0.2, 0.1).is_err());
        assert!(Interval::new(Scalar::NAN, 0.5).is_err());
        assert!(Interval::new(0.0, Scalar::INFINITY).is_err());
        let i = Interval::new(0.25, 0.75).unwrap();
        assert_eq!(i.lo(), 0.25);
        assert_eq!(i.hi(), 0.75);
    }

    #[test]
    fn point_interval_has_zero_length() {
        let p = Interval::point(0.4);
        assert_eq!(p.length(), 0.0);
        assert!(p.contains_point(0.4));
        assert!(!p.contains_point(0.40001));
    }

    #[test]
    fn domain_covers_unit_range() {
        let d = Interval::domain();
        assert_eq!(d.lo(), 0.0);
        assert_eq!(d.hi(), 1.0);
        assert!(d.contains_point(0.0));
        assert!(d.contains_point(1.0));
    }

    #[test]
    fn intersects_handles_touching_endpoints() {
        let a = Interval::new(0.0, 0.5).unwrap();
        let b = Interval::new(0.5, 1.0).unwrap();
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        let c = Interval::new(0.6, 1.0).unwrap();
        assert!(!a.intersects(&c));
    }

    #[test]
    fn contains_is_reflexive_and_antisymmetric_on_proper_subsets() {
        let outer = Interval::new(0.1, 0.9).unwrap();
        let inner = Interval::new(0.2, 0.8).unwrap();
        assert!(outer.contains(&outer));
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
    }

    #[test]
    fn union_covers_both() {
        let a = Interval::new(0.1, 0.3).unwrap();
        let b = Interval::new(0.6, 0.8).unwrap();
        let u = a.union(&b);
        assert_eq!(u.lo(), 0.1);
        assert_eq!(u.hi(), 0.8);
    }

    #[test]
    fn overlap_length_is_zero_for_disjoint() {
        let a = Interval::new(0.0, 0.2).unwrap();
        let b = Interval::new(0.5, 0.9).unwrap();
        assert_eq!(a.overlap_length(&b), 0.0);
        let c = Interval::new(0.1, 0.6).unwrap();
        assert!((a.overlap_length(&c) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn center_is_midpoint() {
        let i = Interval::new(0.2, 0.6).unwrap();
        assert!((i.center() - 0.4).abs() < 1e-6);
    }

    fn interval_strategy() -> impl Strategy<Value = Interval> {
        (0.0f32..=1.0, 0.0f32..=1.0).prop_map(|(a, b)| {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            Interval::new_unchecked(lo, hi)
        })
    }

    proptest! {
        #[test]
        fn prop_intersects_symmetric(a in interval_strategy(), b in interval_strategy()) {
            prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        }

        #[test]
        fn prop_contains_implies_intersects(a in interval_strategy(), b in interval_strategy()) {
            if a.contains(&b) {
                prop_assert!(a.intersects(&b));
            }
        }

        #[test]
        fn prop_union_contains_both(a in interval_strategy(), b in interval_strategy()) {
            let u = a.union(&b);
            prop_assert!(u.contains(&a));
            prop_assert!(u.contains(&b));
        }

        #[test]
        fn prop_overlap_bounded_by_lengths(a in interval_strategy(), b in interval_strategy()) {
            let o = a.overlap_length(&b);
            prop_assert!(o >= 0.0);
            prop_assert!(o <= a.length() + 1e-6);
            prop_assert!(o <= b.length() + 1e-6);
        }

        #[test]
        fn prop_contains_point_endpoints(a in interval_strategy()) {
            prop_assert!(a.contains_point(a.lo()));
            prop_assert!(a.contains_point(a.hi()));
        }
    }
}
