use std::fmt;

/// Errors raised when constructing geometric values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeomError {
    /// An interval was constructed with `lo > hi` or a non-finite bound.
    InvalidInterval {
        /// Human-readable rendering of the offending bounds.
        detail: String,
    },
    /// A hyper-rectangle was constructed with zero dimensions.
    EmptyRect,
    /// Two multi-dimensional values had different dimensionalities.
    DimensionMismatch {
        /// Dimensionality of the left-hand value.
        left: usize,
        /// Dimensionality of the right-hand value.
        right: usize,
    },
    /// A flat coordinate slice had an odd length.
    OddCoordinateCount {
        /// The offending length.
        len: usize,
    },
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::InvalidInterval { detail } => {
                write!(f, "invalid interval: {detail}")
            }
            GeomError::EmptyRect => write!(f, "hyper-rectangle must have at least one dimension"),
            GeomError::DimensionMismatch { left, right } => {
                write!(f, "dimension mismatch: {left} vs {right}")
            }
            GeomError::OddCoordinateCount { len } => {
                write!(f, "flat coordinate slice must have even length, got {len}")
            }
        }
    }
}

impl std::error::Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = GeomError::InvalidInterval {
            detail: "lo=2 hi=1".into(),
        };
        assert!(e.to_string().contains("lo=2 hi=1"));
        assert!(GeomError::EmptyRect.to_string().contains("at least one"));
        let e = GeomError::DimensionMismatch { left: 3, right: 5 };
        assert!(e.to_string().contains("3 vs 5"));
        let e = GeomError::OddCoordinateCount { len: 7 };
        assert!(e.to_string().contains('7'));
    }
}
