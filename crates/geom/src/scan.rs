//! Columnar (dimension-major) batch verification kernel over `u64`
//! survivors bitmasks.
//!
//! Sequential verification of a whole segment is the hot loop of the
//! system (paper §3.6, Fig. 5): the clustering bet only pays off if
//! scanning a cluster's members is cheap enough to beat fine-grained
//! indexing. [`SpatialQuery::matches_flat`] walks one object at a time
//! over interleaved `[lo0, hi0, lo1, hi1, …]` coordinates; this module
//! provides the batch counterpart over a *dimension-major* (SoA) layout:
//! one contiguous `lo` column and one `hi` column per dimension.
//!
//! The kernel tests a whole block of [`BLOCK`] = 64 objects against one
//! query dimension at a time, keeping the survivors of each block as one
//! `u64` bitmask (bit `i` = object `i` of the block still matches).
//! Per dimension the pass bits of the block are packed movemask-style
//! into a word and ANDed into the mask; survivor counting is a single
//! `popcount`. A block whose mask reaches zero skips its remaining
//! dimensions — the columnar analogue of the scalar path's per-object
//! early exit.
//!
//! Three layers build on the same mask machinery:
//!
//! * [`scan_columns`] — member verification over any [`ColumnAccess`]
//!   (the adaptive index's segments, the sequential-scan baseline).
//! * [`scan_interleaved`] — the same kernel over row-major input
//!   (R*-tree leaf pages), gathering one block-sized tile per
//!   (block, dimension) lazily.
//! * [`scan_candidates`] — one query against *all candidate subclusters*
//!   of a cluster, dimension-major over [`CandidateColumns`]; every
//!   candidate is a single two-sided comparison on its own specialized
//!   dimension, so the result is a match bitmask, not a refinement.
//!
//! ## Zone maps
//!
//! A [`ColumnAccess`] implementation may additionally expose per-block
//! min/max bounds per dimension ([`ZoneEntry`], one entry per 64-lane
//! block). When the entry proves that *every* lane of the block fails
//! the dimension, the kernel zeroes the block without reading the
//! columns; when it proves every lane passes, it skips the read and
//! keeps the mask. Both skips charge exactly the `dims_checked` the full
//! evaluation would have charged (all surviving lanes inspected this
//! dimension), so byte accounting stays bit-identical — see below.
//!
//! ## Metrics are bit-identical to the scalar path
//!
//! The scalar loop charges each object `dims_checked` = the index of its
//! first failing dimension plus one (or the full dimensionality when it
//! matches). Since an object reaches the check of dimension `d` exactly
//! when it survived dimensions `0..d`, the total over a segment equals
//! the sum over dimensions of the number of objects still alive when
//! that dimension is evaluated — which is precisely the sum of mask
//! popcounts the kernel accumulates. Dimensions are evaluated in the
//! same order (`0, 1, 2, …`) with the same comparisons (a zone skip only
//! triggers when the per-lane outcome is implied for every lane), so
//! [`ScanOutcome`] totals — and every byte counter and reorganization
//! decision derived from them — are bit-identical to object-at-a-time
//! verification.
//!
//! ## SIMD
//!
//! The default pass-word packing is portable: a branch-free compare loop
//! the compiler auto-vectorizes, followed by a multiply-gather of the
//! 0/1 bytes into mask bits. On x86_64 the loop is additionally
//! dispatched to an AVX2-compiled clone when the CPU supports it
//! (runtime-detected once, like the candidate kernel's byte fill), so
//! the default build vectorizes at eight lanes. The `simd` cargo
//! feature instead swaps in an explicit `core::arch::x86_64` path
//! (SSE `cmpleps` + `movmskps` baseline, AVX2 `vcmpps` when detected)
//! producing the same words bit for bit. (`std::simd` would be
//! preferable but is still nightly-only; the stable intrinsics express
//! the same kernel.)

use crate::{Scalar, SpatialQuery, OBJECT_ID_BYTES};

/// Objects per kernel block — and lanes per survivors-mask word: small
/// enough that a block of rejected objects stops paying for further
/// dimensions quickly, large enough that the per-dimension loops
/// vectorize and survivor counting is one `popcount`.
pub const BLOCK: usize = 64;

/// Per-block, per-dimension min/max bounds used to skip whole blocks
/// without reading their columns (zone maps). Entry `k` of dimension `d`
/// summarizes lanes `64·k .. 64·(k+1)` of that dimension's columns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneEntry {
    /// Minimum of the block's lower bounds.
    pub min_lo: Scalar,
    /// Maximum of the block's lower bounds.
    pub max_lo: Scalar,
    /// Minimum of the block's upper bounds.
    pub min_hi: Scalar,
    /// Maximum of the block's upper bounds.
    pub max_hi: Scalar,
}

/// What a [`ZoneEntry`] proves about a block for one query dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ZoneVerdict {
    /// Every lane of the block fails this dimension.
    AllFail,
    /// Every lane of the block passes this dimension.
    AllPass,
    /// Inconclusive: the columns must be read.
    Mixed,
}

/// Read access to a dimension-major coordinate layout: one `lo` and one
/// `hi` column per dimension, each holding one scalar per object.
pub trait ColumnAccess {
    /// Number of objects (every column has exactly this length).
    fn len(&self) -> usize;
    /// Whether the column set holds no objects.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Lower-bound column of dimension `d`.
    fn lo_col(&self, d: usize) -> &[Scalar];
    /// Upper-bound column of dimension `d`.
    fn hi_col(&self, d: usize) -> &[Scalar];
    /// Zone-map entry for dimension `d`, 64-lane block `block`, when the
    /// layout maintains one. `None` (the default) always reads columns.
    ///
    /// Entries must summarize exactly lanes `64·block ..
    /// min(64·(block+1), len)` of the dimension's columns; a stale entry
    /// breaks the kernel's bit-identical accounting guarantee.
    fn zone(&self, _d: usize, _block: usize) -> Option<ZoneEntry> {
        None
    }
}

/// Borrowed view over paired columns stored as `[lo0, hi0, lo1, hi1, …]`
/// — the convention used by `acx_storage::SegmentStore` and the
/// sequential-scan baseline. Supports sub-ranges so parallel scans can
/// hand each worker a disjoint slice of every column. Carries no zone
/// maps (sub-ranges are not 64-lane aligned).
#[derive(Debug, Clone, Copy)]
pub struct PairedColumns<'a> {
    cols: &'a [Vec<Scalar>],
    start: usize,
    len: usize,
}

impl<'a> PairedColumns<'a> {
    /// View over all objects of the column set. `cols` must hold `2·dims`
    /// equal-length vectors, lower bounds at even indices.
    pub fn new(cols: &'a [Vec<Scalar>]) -> Self {
        let len = cols.first().map_or(0, Vec::len);
        Self {
            cols,
            start: 0,
            len,
        }
    }

    /// View over objects `start..start + len`.
    pub fn slice(cols: &'a [Vec<Scalar>], start: usize, len: usize) -> Self {
        debug_assert!(cols.first().map_or(0, Vec::len) >= start + len);
        Self { cols, start, len }
    }
}

impl ColumnAccess for PairedColumns<'_> {
    fn len(&self) -> usize {
        self.len
    }

    fn lo_col(&self, d: usize) -> &[Scalar] {
        &self.cols[2 * d][self.start..self.start + self.len]
    }

    fn hi_col(&self, d: usize) -> &[Scalar] {
        &self.cols[2 * d + 1][self.start..self.start + self.len]
    }
}

/// Aggregate outcome of scanning one column set against a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Objects scanned (every object is verified, as in the scalar path).
    pub objects: usize,
    /// Objects that satisfied the query; their indices are in
    /// [`ScanScratch::matches`].
    pub matched: usize,
    /// Total dimensions inspected across all objects, accounting for the
    /// early exit on the first failing dimension — bit-identical to
    /// summing [`crate::MatchOutcome::dims_checked`] over the objects.
    pub dims_checked: u64,
}

impl ScanOutcome {
    /// Verified bytes under the paper's accounting (footnote 4): the
    /// object identifier plus both 4-byte bounds of every inspected
    /// dimension.
    pub fn verified_bytes(&self) -> u64 {
        self.objects as u64 * OBJECT_ID_BYTES as u64 + 8 * self.dims_checked
    }
}

/// Reusable scan state: the survivors bitmask (one `u64` word per
/// [`BLOCK`] lanes), the match index buffer, per-dimension query bounds,
/// and transpose buffers for interleaved inputs. Allocations grow to the
/// largest scanned segment and are then reused, so a warmed-up scratch
/// performs no allocation per scan.
#[derive(Debug, Default)]
pub struct ScanScratch {
    /// Survivors bitmask: word `k` covers lanes `64·k .. 64·k + 63`,
    /// bit `i` set = lane `64·k + i` still matching.
    mask: Vec<u64>,
    /// Indices (ascending) of the objects that matched the last scan.
    matches: Vec<u32>,
    /// Per-dimension query bounds (`a` side), see the relation mapping.
    qa: Vec<Scalar>,
    /// Per-dimension query bounds (`b` side).
    qb: Vec<Scalar>,
    /// Per-block lower-bound gather tile ([`BLOCK`] scalars) for
    /// interleaved inputs.
    t_lo: Vec<Scalar>,
    /// Per-block upper-bound gather tile for interleaved inputs.
    t_hi: Vec<Scalar>,
    /// Per-candidate pass bytes of [`scan_candidates`] (packed into
    /// `mask` once all dimension runs are evaluated).
    bytes: Vec<u8>,
}

impl ScanScratch {
    /// An empty scratch; buffers are sized lazily by the first scans.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indices of the objects that matched the most recent scan, in
    /// ascending (storage) order.
    pub fn matches(&self) -> &[u32] {
        &self.matches
    }

    /// The bitmask words written by the most recent scan: for
    /// [`scan_columns`]/[`scan_interleaved`] the survivors of every
    /// block, for [`scan_candidates`] the matching candidates. Word `k`
    /// bit `i` corresponds to lane `64·k + i`.
    pub fn mask_words(&self) -> &[u64] {
        &self.mask
    }
}

/// Mask word with the lowest `len` bits set (`len` in `1..=64`).
#[inline]
fn lane_mask(len: usize) -> u64 {
    debug_assert!((1..=BLOCK).contains(&len));
    !0u64 >> (BLOCK - len)
}

/// Packs up to [`BLOCK`] 0/1 bytes into mask bits (byte `i` → bit `i`):
/// eight bytes at a time, a multiply gathers their low bits into the top
/// byte of the product — the portable movemask. (The SSE build replaces
/// its only production caller but keeps it compiled for the unit tests.)
#[cfg_attr(all(feature = "simd", target_arch = "x86_64"), allow(dead_code))]
#[inline]
fn pack_tile(tile: &[u8; BLOCK], len: usize) -> u64 {
    let mut word = 0u64;
    for (k, chunk) in tile.chunks_exact(8).enumerate() {
        let bytes = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"))
            & 0x0101_0101_0101_0101;
        word |= (bytes.wrapping_mul(0x0102_0408_1020_4080) >> 56) << (8 * k);
    }
    word & lane_mask(len)
}

/// Portable pass-word evaluation: branch-free compares into a byte tile
/// (auto-vectorized), then [`pack_tile`].
#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
#[inline(always)]
fn portable_word<L>(lo: &[Scalar], hi: &[Scalar], a: Scalar, b: Scalar, lane: L) -> u64
where
    L: Fn(Scalar, Scalar, Scalar, Scalar) -> bool,
{
    debug_assert!(lo.len() == hi.len() && !lo.is_empty() && lo.len() <= BLOCK);
    let mut tile = [0u8; BLOCK];
    for ((t, &l), &h) in tile.iter_mut().zip(lo).zip(hi) {
        *t = lane(l, h, a, b) as u8;
    }
    pack_tile(&tile, lo.len())
}

/// [`portable_word`] dispatched by relation tag — the non-generic shape
/// shared by the baseline entry point and its AVX2-compiled clone.
#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
#[inline(always)]
fn portable_word_rel(rel: u8, lo: &[Scalar], hi: &[Scalar], a: Scalar, b: Scalar) -> u64 {
    match rel {
        REL_INTERSECTION => portable_word(lo, hi, a, b, Intersects::lane),
        REL_CONTAINMENT => portable_word(lo, hi, a, b, Contained::lane),
        _ => portable_word(lo, hi, a, b, Encloses::lane),
    }
}

/// [`portable_word_rel`] compiled for AVX2, selected at runtime when the
/// CPU supports it (detected once, cached) — the same trick
/// [`fill_candidate_bytes`] uses for the candidate kernel, so the
/// default build's member kernel vectorizes at eight lanes without the
/// `simd` feature. Comparison outcomes are identical; only the lane
/// width changes.
#[cfg(all(target_arch = "x86_64", not(feature = "simd")))]
#[target_feature(enable = "avx2")]
fn portable_word_avx2(rel: u8, lo: &[Scalar], hi: &[Scalar], a: Scalar, b: Scalar) -> u64 {
    portable_word_rel(rel, lo, hi, a, b)
}

/// Relation tags shared by the SIMD path (`match` on a constant folds
/// away after inlining).
const REL_INTERSECTION: u8 = 0;
const REL_CONTAINMENT: u8 = 1;
const REL_ENCLOSURE: u8 = 2;

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod simd {
    //! Explicit SIMD pass-word packing: `cmpleps`/`vcmpps` compare
    //! masks turned straight into mask bits by `movmskps`. SSE is part
    //! of the x86_64 baseline, so the four-lane path is sound
    //! unconditionally; when the CPU reports AVX2 (checked once,
    //! cached), eight-lane steps are used instead. Comparison semantics
    //! (`<=` on possibly-NaN floats is false, `_CMP_LE_OQ`) match the
    //! scalar operators, so the words are bit-identical to
    //! [`super::portable_word`] either way.

    use super::{avx2_detected, Scalar, BLOCK, REL_CONTAINMENT, REL_INTERSECTION};
    #[allow(clippy::wildcard_imports)]
    use core::arch::x86_64::*;

    #[inline]
    pub(super) fn word(rel: u8, lo: &[Scalar], hi: &[Scalar], a: Scalar, b: Scalar) -> u64 {
        debug_assert!(lo.len() == hi.len() && !lo.is_empty() && lo.len() <= BLOCK);
        if avx2_detected() {
            // SAFETY: AVX2 presence was just verified.
            unsafe { word_avx2(rel, lo, hi, a, b) }
        } else {
            word_sse(rel, lo, hi, a, b)
        }
    }

    #[inline]
    fn word_sse(rel: u8, lo: &[Scalar], hi: &[Scalar], a: Scalar, b: Scalar) -> u64 {
        let n = lo.len();
        let mut out = 0u64;
        let mut i = 0usize;
        // SAFETY: SSE is baseline on x86_64; loads stay in bounds.
        unsafe {
            let av = _mm_set1_ps(a);
            let bv = _mm_set1_ps(b);
            while i + 4 <= n {
                let l = _mm_loadu_ps(lo.as_ptr().add(i));
                let h = _mm_loadu_ps(hi.as_ptr().add(i));
                let pass = match rel {
                    // l ≤ b ∧ h ≥ a
                    REL_INTERSECTION => _mm_and_ps(_mm_cmple_ps(l, bv), _mm_cmple_ps(av, h)),
                    // l ≥ a ∧ h ≤ b
                    REL_CONTAINMENT => _mm_and_ps(_mm_cmple_ps(av, l), _mm_cmple_ps(h, bv)),
                    // l ≤ a ∧ h ≥ b
                    _ => _mm_and_ps(_mm_cmple_ps(l, av), _mm_cmple_ps(bv, h)),
                };
                out |= (_mm_movemask_ps(pass) as u64) << i;
                i += 4;
            }
        }
        out | scalar_tail(rel, lo, hi, a, b, i)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn word_avx2(rel: u8, lo: &[Scalar], hi: &[Scalar], a: Scalar, b: Scalar) -> u64 {
        let n = lo.len();
        let mut out = 0u64;
        let mut i = 0usize;
        let av = _mm256_set1_ps(a);
        let bv = _mm256_set1_ps(b);
        while i + 8 <= n {
            let l = _mm256_loadu_ps(lo.as_ptr().add(i));
            let h = _mm256_loadu_ps(hi.as_ptr().add(i));
            let pass = match rel {
                REL_INTERSECTION => _mm256_and_ps(
                    _mm256_cmp_ps::<_CMP_LE_OQ>(l, bv),
                    _mm256_cmp_ps::<_CMP_LE_OQ>(av, h),
                ),
                REL_CONTAINMENT => _mm256_and_ps(
                    _mm256_cmp_ps::<_CMP_LE_OQ>(av, l),
                    _mm256_cmp_ps::<_CMP_LE_OQ>(h, bv),
                ),
                _ => _mm256_and_ps(
                    _mm256_cmp_ps::<_CMP_LE_OQ>(l, av),
                    _mm256_cmp_ps::<_CMP_LE_OQ>(bv, h),
                ),
            };
            out |= (_mm256_movemask_ps(pass) as u32 as u64) << i;
            i += 8;
        }
        out | scalar_tail(rel, lo, hi, a, b, i)
    }

    #[inline]
    fn scalar_tail(rel: u8, lo: &[Scalar], hi: &[Scalar], a: Scalar, b: Scalar, from: usize) -> u64 {
        let mut out = 0u64;
        for i in from..lo.len() {
            let pass = match rel {
                REL_INTERSECTION => lo[i] <= b && hi[i] >= a,
                REL_CONTAINMENT => lo[i] >= a && hi[i] <= b,
                _ => lo[i] <= a && hi[i] >= b,
            };
            out |= (pass as u64) << i;
        }
        out
    }

}

/// One comparison shape of the kernel: the scalar lane predicate, the
/// packed pass-word over up to [`BLOCK`] lanes, and the zone-map
/// implication tests. Implementations are zero-sized tags so the block
/// loops monomorphize.
trait Pred {
    /// Tag for the explicit-SIMD and AVX2-clone dispatches.
    const REL: u8;

    /// Whether one object interval `[l, h]` passes the dimension with
    /// query bounds `(a, b)` — the scalar spec of [`Pred::word`] (only
    /// compiled into the portable build).
    #[allow(dead_code)]
    fn lane(l: Scalar, h: Scalar, a: Scalar, b: Scalar) -> bool;

    /// What the zone entry proves about a whole block for `(a, b)`.
    fn zone(z: &ZoneEntry, a: Scalar, b: Scalar) -> ZoneVerdict;

    /// Pass bits of `lo.len() ≤ 64` lanes (bit `i` = lane `i` passes).
    #[inline]
    fn word(lo: &[Scalar], hi: &[Scalar], a: Scalar, b: Scalar) -> u64 {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        {
            simd::word(Self::REL, lo, hi, a, b)
        }
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        {
            #[cfg(target_arch = "x86_64")]
            if avx2_detected() {
                // SAFETY: AVX2 presence was just verified; the callee is
                // the same safe loop compiled with the feature enabled.
                return unsafe { portable_word_avx2(Self::REL, lo, hi, a, b) };
            }
            portable_word_rel(Self::REL, lo, hi, a, b)
        }
    }
}

/// pass ⇔ `lo ≤ b ∧ hi ≥ a` with `a = q.lo(d)`, `b = q.hi(d)`.
struct Intersects;
/// pass ⇔ `lo ≥ a ∧ hi ≤ b`.
struct Contained;
/// pass ⇔ `lo ≤ a ∧ hi ≥ b` (point queries: `a = b = p[d]`).
struct Encloses;

impl Pred for Intersects {
    const REL: u8 = REL_INTERSECTION;

    #[inline]
    fn lane(l: Scalar, h: Scalar, a: Scalar, b: Scalar) -> bool {
        l <= b && h >= a
    }

    #[inline]
    fn zone(z: &ZoneEntry, a: Scalar, b: Scalar) -> ZoneVerdict {
        if z.min_lo > b || z.max_hi < a {
            ZoneVerdict::AllFail
        } else if z.max_lo <= b && z.min_hi >= a {
            ZoneVerdict::AllPass
        } else {
            ZoneVerdict::Mixed
        }
    }
}

impl Pred for Contained {
    const REL: u8 = REL_CONTAINMENT;

    #[inline]
    fn lane(l: Scalar, h: Scalar, a: Scalar, b: Scalar) -> bool {
        l >= a && h <= b
    }

    #[inline]
    fn zone(z: &ZoneEntry, a: Scalar, b: Scalar) -> ZoneVerdict {
        if z.max_lo < a || z.min_hi > b {
            ZoneVerdict::AllFail
        } else if z.min_lo >= a && z.max_hi <= b {
            ZoneVerdict::AllPass
        } else {
            ZoneVerdict::Mixed
        }
    }
}

impl Pred for Encloses {
    const REL: u8 = REL_ENCLOSURE;

    #[inline]
    fn lane(l: Scalar, h: Scalar, a: Scalar, b: Scalar) -> bool {
        l <= a && h >= b
    }

    #[inline]
    fn zone(z: &ZoneEntry, a: Scalar, b: Scalar) -> ZoneVerdict {
        if z.min_lo > a || z.max_hi < b {
            ZoneVerdict::AllFail
        } else if z.max_lo <= a && z.min_hi >= b {
            ZoneVerdict::AllPass
        } else {
            ZoneVerdict::Mixed
        }
    }
}

/// The three comparison shapes; point-enclosing queries reduce to
/// [`Relation::Enclosure`] with degenerate per-dimension bounds.
#[derive(Debug, Clone, Copy)]
enum Relation {
    Intersection,
    Containment,
    Enclosure,
}

/// Loads the per-dimension bounds of `query` into `qa`/`qb` and returns
/// the comparison shape.
fn load_bounds(query: &SpatialQuery, qa: &mut Vec<Scalar>, qb: &mut Vec<Scalar>) -> Relation {
    qa.clear();
    qb.clear();
    match query {
        SpatialQuery::Intersection(q) | SpatialQuery::Containment(q) | SpatialQuery::Enclosure(q) => {
            for d in 0..q.dims() {
                qa.push(q.interval(d).lo());
                qb.push(q.interval(d).hi());
            }
            match query {
                SpatialQuery::Intersection(_) => Relation::Intersection,
                SpatialQuery::Containment(_) => Relation::Containment,
                _ => Relation::Enclosure,
            }
        }
        SpatialQuery::PointEnclosing(p) => {
            qa.extend_from_slice(p);
            qb.extend_from_slice(p);
            Relation::Enclosure
        }
    }
}

/// Scans a dimension-major column set against the query, leaving the
/// matching indices in `scratch.matches()`.
///
/// Match set, match order, and [`ScanOutcome::dims_checked`] are
/// bit-identical to calling [`SpatialQuery::matches_flat`] on every
/// object in storage order — with or without zone maps.
///
/// ```
/// use acx_geom::scan::{scan_columns, PairedColumns, ScanScratch};
/// use acx_geom::SpatialQuery;
///
/// // Two 1-d objects: [0.0, 0.4] and [0.6, 0.9].
/// let cols = vec![vec![0.0, 0.6], vec![0.4, 0.9]];
/// let mut scratch = ScanScratch::new();
/// let q = SpatialQuery::point_enclosing(vec![0.25]);
/// let outcome = scan_columns(&q, &PairedColumns::new(&cols), &mut scratch);
/// assert_eq!(outcome.matched, 1);
/// assert_eq!(scratch.matches(), &[0]);
/// ```
pub fn scan_columns<C: ColumnAccess + ?Sized>(
    query: &SpatialQuery,
    cols: &C,
    scratch: &mut ScanScratch,
) -> ScanOutcome {
    let rel = load_bounds(query, &mut scratch.qa, &mut scratch.qb);
    let ScanScratch {
        mask, matches, qa, qb, ..
    } = scratch;
    match rel {
        Relation::Intersection => run::<C, Intersects>(cols, qa, qb, mask, matches),
        Relation::Containment => run::<C, Contained>(cols, qa, qb, mask, matches),
        Relation::Enclosure => run::<C, Encloses>(cols, qa, qb, mask, matches),
    }
}

/// The blocked kernel: per block of [`BLOCK`] objects, AND each
/// dimension's pass word into the block's survivors mask; survivor
/// counting is a popcount and a block with no survivors skips its
/// remaining dimensions. Zone entries, when the layout provides them,
/// resolve a whole (block, dimension) pair without reading the columns.
fn run<C, P>(
    cols: &C,
    qa: &[Scalar],
    qb: &[Scalar],
    mask: &mut Vec<u64>,
    matches: &mut Vec<u32>,
) -> ScanOutcome
where
    C: ColumnAccess + ?Sized,
    P: Pred,
{
    let n = cols.len();
    let dims = qa.len();
    let blocks = n.div_ceil(BLOCK);
    mask.clear();
    mask.resize(blocks, 0);
    matches.clear();
    let mut dims_checked = 0u64;
    for (block, word_out) in mask.iter_mut().enumerate() {
        let start = block * BLOCK;
        let end = (start + BLOCK).min(n);
        let mut word = lane_mask(end - start);
        for d in 0..dims {
            let alive = word.count_ones() as u64;
            if alive == 0 {
                break;
            }
            dims_checked += alive;
            let (a, b) = (qa[d], qb[d]);
            if let Some(zone) = cols.zone(d, block) {
                match P::zone(&zone, a, b) {
                    // Every alive lane fails this dimension — exactly
                    // the `dims_checked` charge made above, then death.
                    ZoneVerdict::AllFail => {
                        word = 0;
                        break;
                    }
                    // Every alive lane passes: mask unchanged, column
                    // read skipped.
                    ZoneVerdict::AllPass => continue,
                    ZoneVerdict::Mixed => {}
                }
            }
            let lo = &cols.lo_col(d)[start..end];
            let hi = &cols.hi_col(d)[start..end];
            word &= P::word(lo, hi, a, b);
        }
        *word_out = word;
        let mut bits = word;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            matches.push((start + i) as u32);
            bits &= bits - 1;
        }
    }
    ScanOutcome {
        objects: n,
        matched: matches.len(),
        dims_checked,
    }
}

/// Scans objects stored as interleaved flat `[lo0, hi0, lo1, hi1, …]`
/// coordinates — used by access methods whose native layout is
/// row-major (R*-tree leaf pages).
///
/// Columns are gathered **lazily**, one [`BLOCK`]-sized tile per
/// (block, dimension), only while the block still has survivors: a
/// block rejected in its first dimensions never pays the gather for the
/// remaining ones, preserving the early-exit economics the scalar
/// per-entry loop had on row-major data. Accounting is bit-identical to
/// [`scan_columns`] and to per-object [`SpatialQuery::matches_flat`].
pub fn scan_interleaved(
    query: &SpatialQuery,
    flat: &[Scalar],
    scratch: &mut ScanScratch,
) -> ScanOutcome {
    let width = 2 * query.dims();
    debug_assert_eq!(flat.len() % width, 0, "coordinate arity mismatch");
    let rel = load_bounds(query, &mut scratch.qa, &mut scratch.qb);
    let ScanScratch {
        mask,
        matches,
        qa,
        qb,
        t_lo,
        t_hi,
        ..
    } = scratch;
    t_lo.resize(BLOCK, 0.0);
    t_hi.resize(BLOCK, 0.0);
    match rel {
        Relation::Intersection => {
            run_interleaved::<Intersects>(flat, width, qa, qb, mask, matches, t_lo, t_hi)
        }
        Relation::Containment => {
            run_interleaved::<Contained>(flat, width, qa, qb, mask, matches, t_lo, t_hi)
        }
        Relation::Enclosure => {
            run_interleaved::<Encloses>(flat, width, qa, qb, mask, matches, t_lo, t_hi)
        }
    }
}

/// The blocked kernel over row-major input: per block, gather one
/// dimension's bounds into the scratch tiles and AND the pass word into
/// the survivors mask; a block with no survivors skips the gather and
/// the check of its remaining dimensions.
#[allow(clippy::too_many_arguments)]
fn run_interleaved<P: Pred>(
    flat: &[Scalar],
    width: usize,
    qa: &[Scalar],
    qb: &[Scalar],
    mask: &mut Vec<u64>,
    matches: &mut Vec<u32>,
    t_lo: &mut [Scalar],
    t_hi: &mut [Scalar],
) -> ScanOutcome {
    let n = flat.len() / width;
    let dims = qa.len();
    let blocks = n.div_ceil(BLOCK);
    mask.clear();
    mask.resize(blocks, 0);
    matches.clear();
    let mut dims_checked = 0u64;
    for (block, word_out) in mask.iter_mut().enumerate() {
        let start = block * BLOCK;
        let end = (start + BLOCK).min(n);
        let len = end - start;
        let mut word = lane_mask(len);
        for d in 0..dims {
            let alive = word.count_ones() as u64;
            if alive == 0 {
                break;
            }
            dims_checked += alive;
            let rows = &flat[start * width..end * width];
            for (i, row) in rows.chunks_exact(width).enumerate() {
                t_lo[i] = row[2 * d];
                t_hi[i] = row[2 * d + 1];
            }
            word &= P::word(&t_lo[..len], &t_hi[..len], qa[d], qb[d]);
        }
        *word_out = word;
        let mut bits = word;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            matches.push((start + i) as u32);
            bits &= bits - 1;
        }
    }
    ScanOutcome {
        objects: n,
        matched: matches.len(),
        dims_checked,
    }
}

/// Per-dimension-run aggregate bounds over the candidate bound columns
/// — the sparse-query fast path's screen. A query interval that spans
/// the full domain of a specialized dimension cannot discriminate that
/// dimension's candidates: when the run's *worst* candidate passes the
/// relation's `x ≤ t1 ∧ y ≥ t2` condition, every candidate does, and
/// the kernel sets the whole run's match bits without evaluating
/// per-candidate bounds. Candidate bounds are immutable after
/// generation, so these aggregates are computed once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunBounds {
    /// Maximum of `start_lo` over the run (`-∞` for an empty run).
    pub start_lo_max: Scalar,
    /// Minimum of `start_reach` over the run (`+∞` for an empty run).
    pub start_reach_min: Scalar,
    /// Maximum of `end_lo` over the run (`-∞` for an empty run).
    pub end_lo_max: Scalar,
    /// Minimum of `end_reach` over the run (`+∞` for an empty run).
    pub end_reach_min: Scalar,
}

impl RunBounds {
    /// Folds the aggregate bounds of every dimension run. The inputs
    /// are the four bound columns and the run offsets exactly as passed
    /// to [`CandidateColumns::new`]; the result has one entry per
    /// dimension.
    pub fn compute_all(
        start_lo: &[Scalar],
        start_reach: &[Scalar],
        end_lo: &[Scalar],
        end_reach: &[Scalar],
        dim_offsets: &[u32],
    ) -> Vec<RunBounds> {
        assert!(!dim_offsets.is_empty());
        let mut out = Vec::with_capacity(dim_offsets.len() - 1);
        for w in dim_offsets.windows(2) {
            let run = w[0] as usize..w[1] as usize;
            let fold = |col: &[Scalar], max: bool| {
                col[run.clone()].iter().copied().fold(
                    if max { Scalar::NEG_INFINITY } else { Scalar::INFINITY },
                    if max { Scalar::max } else { Scalar::min },
                )
            };
            out.push(RunBounds {
                start_lo_max: fold(start_lo, true),
                start_reach_min: fold(start_reach, false),
                end_lo_max: fold(end_lo, true),
                end_reach_min: fold(end_reach, false),
            });
        }
        out
    }
}

/// Dimension-major candidate-subcluster bound columns — the statistics
/// side of the adaptive index, laid out exactly like object coordinates
/// so the same kernel shape applies.
///
/// Candidates are grouped by their specialized dimension: `dim_offsets`
/// (length `dims + 1`) gives the contiguous candidate range of each
/// dimension. Per candidate, four bounds describe its start/end
/// variation intervals with **closed** upper bounds: half-open interval
/// uppers must be pre-adjusted to the largest representable value below
/// them (`f32::next_down`), which makes every open/closed membership and
/// reachability test a plain `<=`/`>=` comparison.
#[derive(Debug, Clone, Copy)]
pub struct CandidateColumns<'a> {
    /// Inclusive lower bound of each candidate's start variation interval.
    start_lo: &'a [Scalar],
    /// Largest value each candidate's start interval contains.
    start_reach: &'a [Scalar],
    /// Inclusive lower bound of each candidate's end variation interval.
    end_lo: &'a [Scalar],
    /// Largest value each candidate's end interval contains.
    end_reach: &'a [Scalar],
    /// Candidate range of each dimension: dimension `d` owns candidates
    /// `dim_offsets[d] .. dim_offsets[d + 1]`.
    dim_offsets: &'a [u32],
    /// Aggregate bounds per dimension run (length `dims`), driving the
    /// per-run matches-all fast path of [`scan_candidates`].
    run_bounds: &'a [RunBounds],
}

impl<'a> CandidateColumns<'a> {
    /// Builds the view; all four bound columns must have equal length
    /// matching the last offset, offsets must be non-decreasing, and
    /// `run_bounds` must hold one entry per dimension (see
    /// [`RunBounds::compute_all`]).
    pub fn new(
        start_lo: &'a [Scalar],
        start_reach: &'a [Scalar],
        end_lo: &'a [Scalar],
        end_reach: &'a [Scalar],
        dim_offsets: &'a [u32],
        run_bounds: &'a [RunBounds],
    ) -> Self {
        let n = start_lo.len();
        assert!(start_reach.len() == n && end_lo.len() == n && end_reach.len() == n);
        assert!(!dim_offsets.is_empty());
        // The runs must cover every candidate exactly: [`scan_candidates`]
        // reuses its pass-byte buffer across scans and only writes the
        // offsets' runs, so an uncovered prefix would read stale bytes.
        assert_eq!(dim_offsets[0], 0, "first dimension run must start at 0");
        assert_eq!(*dim_offsets.last().expect("non-empty") as usize, n);
        assert_eq!(run_bounds.len(), dim_offsets.len() - 1);
        debug_assert!(dim_offsets.windows(2).all(|w| w[0] <= w[1]));
        Self {
            start_lo,
            start_reach,
            end_lo,
            end_reach,
            dim_offsets,
            run_bounds,
        }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.start_lo.len()
    }

    /// Whether the set holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.start_lo.is_empty()
    }

    /// Number of dimensions the candidates specialize.
    pub fn dims(&self) -> usize {
        self.dim_offsets.len() - 1
    }

    /// The start lower-bound column (for benchmarks and diagnostics).
    pub fn start_lo_col(&self) -> &'a [Scalar] {
        self.start_lo
    }

    /// The end reach column (for benchmarks and diagnostics).
    pub fn end_reach_col(&self) -> &'a [Scalar] {
        self.end_reach
    }
}

/// Evaluates one query against every candidate of a cluster,
/// dimension-major, writing the matching candidates as a bitmask into
/// `scratch` ([`ScanScratch::mask_words`], bit `i` of word `k` =
/// candidate `64·k + i` matches). Returns the number of matches.
///
/// A candidate constrains only its own specialized dimension, so unlike
/// member verification there is no survivors refinement: every relation
/// reduces to one two-sided comparison per candidate,
///
/// > `x[i] ≤ t1 ∧ y[i] ≥ t2`
///
/// with the `(x, y)` columns and `(t1, t2)` thresholds chosen per
/// relation from the query bounds of the candidate's dimension. The bit
/// for candidate `i` equals the scalar oracle's
/// `Candidate::matches_query` outcome exactly (the pre-adjusted closed
/// bounds encode the open/closed upper-bound semantics losslessly for
/// finite `f32`).
pub fn scan_candidates(
    query: &SpatialQuery,
    cols: &CandidateColumns<'_>,
    scratch: &mut ScanScratch,
) -> usize {
    scan_candidates_with_cutoff(query, cols, scratch, CANDIDATE_DIRECT_CUTOFF)
}

/// Candidate count below which [`scan_candidates`] takes the direct
/// per-candidate mask loop instead of the byte-fill + pack kernel: at
/// tiny sets the kernel's fixed costs (byte buffer resize, AVX2
/// dispatch, the separate packing pass) dominate the comparisons
/// themselves. The crossover was once predicted near ~500 (when
/// per-cluster `Vec` columns made the kernel pay pointer chasing per
/// run), but the index-wide statistics arena removed that overhead and
/// the measured break-even on the reference container sits near 64:
/// the direct loop wins clearly at 12 candidates and loses clearly
/// from 80 up, with the 48-candidate point breathing either way under
/// host noise (`BENCH_candidates.json`, `small_set_cutoff` and the
/// per-row `direct_ns_per_query` column, forced via
/// [`scan_candidates_with_cutoff`]).
pub const CANDIDATE_DIRECT_CUTOFF: usize = 64;

/// [`scan_candidates`] with an explicit small-set cutoff: candidate sets
/// smaller than `cutoff` take the direct scalar mask loop, larger ones
/// the vectorized byte-fill kernel. `0` forces the kernel, `usize::MAX`
/// forces the direct loop — both paths perform the identical
/// comparisons in the identical order and produce bit-identical masks
/// (asserted by the kernel proptest across both forcings), so the
/// cutoff is purely a performance choice.
pub fn scan_candidates_with_cutoff(
    query: &SpatialQuery,
    cols: &CandidateColumns<'_>,
    scratch: &mut ScanScratch,
    cutoff: usize,
) -> usize {
    debug_assert_eq!(cols.dims(), query.dims(), "dimensionality mismatch");
    let rel = load_bounds(query, &mut scratch.qa, &mut scratch.qb);
    let n = cols.len();
    scratch.mask.clear();
    scratch.mask.resize(n.div_ceil(BLOCK), 0);
    if n == 0 {
        return 0;
    }
    // The `(x, y)` bound columns of the relation's pass condition
    // `x[i] ≤ t1 ∧ y[i] ≥ t2` (see the scalar oracle).
    let (x_col, y_col) = match rel {
        // start.lo ≤ q.hi ∧ end can reach q.lo
        Relation::Intersection => (cols.start_lo, cols.end_reach),
        // end.lo ≤ q.hi ∧ start can reach q.lo
        Relation::Containment => (cols.end_lo, cols.start_reach),
        // start.lo ≤ q.lo ∧ end can reach q.hi (points: q.lo = q.hi)
        Relation::Enclosure => (cols.start_lo, cols.end_reach),
    };
    if n < cutoff {
        return scan_candidates_direct(rel, cols, &scratch.qa, &scratch.qb, x_col, y_col, &mut scratch.mask);
    }
    // Evaluate each dimension run with its constant thresholds into
    // per-candidate pass bytes (contiguous branch-free compare loops the
    // compiler vectorizes; runs are too short to amortize per-run bit
    // packing), then pack the whole byte buffer into mask words. On
    // x86_64 the fill is dispatched to an AVX2-compiled clone of the
    // same loop when the CPU supports it (detected once) — identical
    // comparisons, twice the lanes.
    let bytes = &mut scratch.bytes;
    bytes.resize(n, 0);
    fill_candidate_bytes(rel, cols, &scratch.qa, &scratch.qb, x_col, y_col, bytes);
    let mut matched = 0usize;
    for (block, word) in scratch.mask.iter_mut().enumerate() {
        let start = block * BLOCK;
        let end = (start + BLOCK).min(n);
        let w = pack_bytes(&bytes[start..end]);
        *word = w;
        matched += w.count_ones() as usize;
    }
    matched
}

/// The small-set fallback of [`scan_candidates`]: the same per-run
/// constant-threshold comparisons (including the sparse-query
/// matches-all fast path), but writing mask bits directly instead of
/// going through the byte buffer and the packing pass. Bit-identical to
/// the kernel by construction — every candidate belongs to exactly one
/// dimension run (asserted by [`CandidateColumns::new`]) and its bit is
/// `(x ≤ t1) ∧ (y ≥ t2)` with the same operands either way.
fn scan_candidates_direct(
    rel: Relation,
    cols: &CandidateColumns<'_>,
    qa: &[Scalar],
    qb: &[Scalar],
    x_col: &[Scalar],
    y_col: &[Scalar],
    mask: &mut [u64],
) -> usize {
    let mut matched = 0usize;
    for d in 0..cols.dims() {
        let run = cols.dim_offsets[d] as usize..cols.dim_offsets[d + 1] as usize;
        if run.is_empty() {
            continue;
        }
        let (t1, t2) = match rel {
            Relation::Intersection | Relation::Containment => (qb[d], qa[d]),
            Relation::Enclosure => (qa[d], qb[d]),
        };
        // Same sparse-query fast path as the byte fill: when the run's
        // worst candidate passes, every bit of the run is set without
        // touching the bound columns.
        let rb = &cols.run_bounds[d];
        let (x_max, y_min) = match rel {
            Relation::Intersection | Relation::Enclosure => (rb.start_lo_max, rb.end_reach_min),
            Relation::Containment => (rb.end_lo_max, rb.start_reach_min),
        };
        if x_max <= t1 && y_min >= t2 {
            for i in run.clone() {
                mask[i / BLOCK] |= 1u64 << (i % BLOCK);
            }
            matched += run.len();
            continue;
        }
        let x = &x_col[run.clone()];
        let y = &y_col[run.clone()];
        for (k, (&xv, &yv)) in x.iter().zip(y).enumerate() {
            let pass = ((xv <= t1) & (yv >= t2)) as u64;
            let i = run.start + k;
            mask[i / BLOCK] |= pass << (i % BLOCK);
            matched += pass as usize;
        }
    }
    matched
}

/// Fills one pass byte per candidate: per dimension run, the constant
/// thresholds of the relation's `x ≤ t1 ∧ y ≥ t2` condition against the
/// two bound columns.
fn fill_candidate_bytes(
    rel: Relation,
    cols: &CandidateColumns<'_>,
    qa: &[Scalar],
    qb: &[Scalar],
    x_col: &[Scalar],
    y_col: &[Scalar],
    bytes: &mut [u8],
) {
    #[cfg(target_arch = "x86_64")]
    if avx2_detected() {
        // SAFETY: AVX2 presence was just verified; the callee is the
        // same safe loop compiled with the feature enabled.
        unsafe {
            return fill_candidate_bytes_avx2(rel, cols, qa, qb, x_col, y_col, bytes);
        }
    }
    fill_candidate_bytes_impl(rel, cols, qa, qb, x_col, y_col, bytes);
}

/// [`fill_candidate_bytes_impl`] compiled for AVX2 so the byte loop
/// auto-vectorizes at eight lanes — comparison outcomes are identical,
/// only the lane width changes.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn fill_candidate_bytes_avx2(
    rel: Relation,
    cols: &CandidateColumns<'_>,
    qa: &[Scalar],
    qb: &[Scalar],
    x_col: &[Scalar],
    y_col: &[Scalar],
    bytes: &mut [u8],
) {
    fill_candidate_bytes_impl(rel, cols, qa, qb, x_col, y_col, bytes);
}

/// Whether the CPU supports AVX2 (detected once, cached) — the runtime
/// dispatch gate shared by every kernel with an AVX2-compiled clone
/// (member pass-words, candidate byte fill, and the reorganization
/// benefit column in `acx_core`).
#[cfg(target_arch = "x86_64")]
#[inline]
pub fn avx2_detected() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

#[inline(always)]
fn fill_candidate_bytes_impl(
    rel: Relation,
    cols: &CandidateColumns<'_>,
    qa: &[Scalar],
    qb: &[Scalar],
    x_col: &[Scalar],
    y_col: &[Scalar],
    bytes: &mut [u8],
) {
    for d in 0..cols.dims() {
        let run = cols.dim_offsets[d] as usize..cols.dim_offsets[d + 1] as usize;
        if run.is_empty() {
            continue;
        }
        let (t1, t2) = match rel {
            Relation::Intersection | Relation::Containment => (qb[d], qa[d]),
            Relation::Enclosure => (qa[d], qb[d]),
        };
        // Sparse-query fast path: when even the run's worst candidate
        // passes (its largest `x` and smallest `y` — typically a query
        // interval spanning the dimension's full domain), the run
        // cannot be discriminated and every bit is set without touching
        // the bound columns. Exact by monotonicity: all values are
        // finite, so `max(x) ≤ t1` implies every `x ≤ t1` and
        // `min(y) ≥ t2` implies every `y ≥ t2`.
        let rb = &cols.run_bounds[d];
        let (x_max, y_min) = match rel {
            Relation::Intersection | Relation::Enclosure => (rb.start_lo_max, rb.end_reach_min),
            Relation::Containment => (rb.end_lo_max, rb.start_reach_min),
        };
        if x_max <= t1 && y_min >= t2 {
            bytes[run].fill(1);
            continue;
        }
        let x = &x_col[run.clone()];
        let y = &y_col[run.clone()];
        for ((byte, &xv), &yv) in bytes[run.clone()].iter_mut().zip(x).zip(y) {
            *byte = ((xv <= t1) as u8) & ((yv >= t2) as u8);
        }
    }
}

/// Packs up to [`BLOCK`] 0/1 bytes into mask bits (byte `i` → bit `i`)
/// from a slice — the ragged-tail form of [`pack_tile`].
#[inline]
fn pack_bytes(bytes: &[u8]) -> u64 {
    debug_assert!(!bytes.is_empty() && bytes.len() <= BLOCK);
    let mut word = 0u64;
    let mut chunks = bytes.chunks_exact(8);
    for (k, chunk) in chunks.by_ref().enumerate() {
        let x = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"))
            & 0x0101_0101_0101_0101;
        word |= (x.wrapping_mul(0x0102_0408_1020_4080) >> 56) << (8 * k);
    }
    let tail_at = bytes.len() - chunks.remainder().len();
    for (i, &b) in chunks.remainder().iter().enumerate() {
        word |= ((b & 1) as u64) << (tail_at + i);
    }
    word
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HyperRect, SpatialRelation};

    /// Builds paired columns from interleaved flat coordinates.
    fn columns(flat: &[Scalar], dims: usize) -> Vec<Vec<Scalar>> {
        let width = 2 * dims;
        let n = flat.len() / width;
        let mut cols = vec![Vec::with_capacity(n); width];
        for row in flat.chunks_exact(width) {
            for (k, &v) in row.iter().enumerate() {
                cols[k].push(v);
            }
        }
        cols
    }

    /// The scalar oracle: per-object `matches_flat` in storage order.
    fn oracle(query: &SpatialQuery, flat: &[Scalar], dims: usize) -> (Vec<u32>, u64) {
        let width = 2 * dims;
        let mut matches = Vec::new();
        let mut dims_checked = 0u64;
        for (i, row) in flat.chunks_exact(width).enumerate() {
            let out = query.matches_flat(row);
            dims_checked += out.dims_checked as u64;
            if out.matched {
                matches.push(i as u32);
            }
        }
        (matches, dims_checked)
    }

    fn assert_agrees(query: &SpatialQuery, flat: &[Scalar], dims: usize) {
        let cols = columns(flat, dims);
        let mut scratch = ScanScratch::new();
        let got = scan_columns(query, &PairedColumns::new(&cols), &mut scratch);
        let (want_matches, want_checked) = oracle(query, flat, dims);
        assert_eq!(scratch.matches(), &want_matches[..], "match set diverged");
        assert_eq!(got.dims_checked, want_checked, "dims_checked diverged");
        assert_eq!(got.matched, want_matches.len());
        assert_eq!(got.objects, flat.len() / (2 * dims));

        let via_rows = scan_interleaved(query, flat, &mut scratch);
        assert_eq!(via_rows, got, "interleaved adapter diverged");
        assert_eq!(scratch.matches(), &want_matches[..]);
    }

    #[test]
    fn empty_segment_scans_to_nothing() {
        let cols: Vec<Vec<Scalar>> = vec![Vec::new(); 4];
        let mut scratch = ScanScratch::new();
        let q = SpatialQuery::point_enclosing(vec![0.5, 0.5]);
        let out = scan_columns(&q, &PairedColumns::new(&cols), &mut scratch);
        assert_eq!(out, ScanOutcome { objects: 0, matched: 0, dims_checked: 0 });
        assert!(scratch.matches().is_empty());
        assert!(scratch.mask_words().is_empty());
    }

    #[test]
    fn all_relations_agree_with_scalar_on_handpicked_objects() {
        let dims = 2;
        // Includes boundary-coincident edges (objects touching the window).
        let flat = [
            0.1, 0.3, 0.1, 0.3, // inside
            0.3, 0.7, 0.3, 0.7, // equals the window
            0.0, 0.3, 0.0, 0.3, // touches the window corner
            0.71, 0.9, 0.0, 1.0, // fails dim 0
            0.3, 0.7, 0.8, 0.9, // fails dim 1
            0.0, 1.0, 0.0, 1.0, // covers everything
        ];
        let w = HyperRect::from_bounds(&[0.3, 0.3], &[0.7, 0.7]).unwrap();
        for rel in SpatialRelation::ALL {
            assert_agrees(&SpatialQuery::with_relation(rel, w.clone()), &flat, dims);
        }
        assert_agrees(&SpatialQuery::point_enclosing(vec![0.3, 0.3]), &flat, dims);
    }

    #[test]
    fn block_boundaries_are_handled() {
        // Sizes around the BLOCK granularity, one dimension.
        for n in [1usize, 63, 64, 65, 128, 130] {
            let flat: Vec<Scalar> = (0..n)
                .flat_map(|i| {
                    let x = i as Scalar / n as Scalar;
                    [x, x + 0.01]
                })
                .collect();
            assert_agrees(&SpatialQuery::point_enclosing(vec![0.5]), &flat, 1);
            let w = HyperRect::from_bounds(&[0.25], &[0.75]).unwrap();
            assert_agrees(&SpatialQuery::intersection(w), &flat, 1);
        }
    }

    #[test]
    fn verified_bytes_accounts_id_and_checked_dims() {
        let out = ScanOutcome { objects: 3, matched: 1, dims_checked: 5 };
        assert_eq!(out.verified_bytes(), 3 * OBJECT_ID_BYTES as u64 + 40);
    }

    #[test]
    fn mask_words_expose_survivors_per_block() {
        // 65 one-dimensional objects; exactly objects 0 and 64 match.
        let flat: Vec<Scalar> = (0..65)
            .flat_map(|i| if i % 64 == 0 { [0.0, 1.0] } else { [0.9, 1.0] })
            .collect();
        let cols = columns(&flat, 1);
        let mut scratch = ScanScratch::new();
        let q = SpatialQuery::point_enclosing(vec![0.1]);
        let out = scan_columns(&q, &PairedColumns::new(&cols), &mut scratch);
        assert_eq!(out.matched, 2);
        assert_eq!(scratch.mask_words(), &[1u64, 1u64]);
        assert_eq!(scratch.matches(), &[0, 64]);
    }

    #[test]
    fn scratch_is_reusable_across_queries_and_sizes() {
        let mut scratch = ScanScratch::new();
        for n in [100usize, 10, 300] {
            let flat: Vec<Scalar> = (0..n).flat_map(|i| {
                let x = (i % 17) as Scalar / 17.0;
                [x, x + 0.1, 0.0, 1.0]
            }).collect();
            assert_agrees(&SpatialQuery::point_enclosing(vec![0.2, 0.5]), &flat, 2);
            let cols = columns(&flat, 2);
            let q = SpatialQuery::point_enclosing(vec![0.2, 0.5]);
            let out = scan_columns(&q, &PairedColumns::new(&cols), &mut scratch);
            assert_eq!(out.objects, n);
        }
    }

    #[test]
    fn paired_columns_subrange_sees_a_window() {
        let flat = [0.1, 0.2, 0.4, 0.5, 0.7, 0.8];
        let cols = columns(&flat, 1);
        let view = PairedColumns::slice(&cols, 1, 2);
        assert_eq!(view.len(), 2);
        assert_eq!(view.lo_col(0), &[0.4, 0.7]);
        assert_eq!(view.hi_col(0), &[0.5, 0.8]);
        let mut scratch = ScanScratch::new();
        let q = SpatialQuery::point_enclosing(vec![0.45]);
        let out = scan_columns(&q, &view, &mut scratch);
        assert_eq!(out.matched, 1);
        assert_eq!(scratch.matches(), &[0]); // index relative to the range
    }

    /// A column set with externally supplied zone entries, used to prove
    /// the zone fast paths leave results and accounting untouched.
    struct ZonedView<'a> {
        inner: PairedColumns<'a>,
        dims: usize,
    }

    impl ColumnAccess for ZonedView<'_> {
        fn len(&self) -> usize {
            self.inner.len()
        }

        fn lo_col(&self, d: usize) -> &[Scalar] {
            self.inner.lo_col(d)
        }

        fn hi_col(&self, d: usize) -> &[Scalar] {
            self.inner.hi_col(d)
        }

        fn zone(&self, d: usize, block: usize) -> Option<ZoneEntry> {
            let _ = self.dims;
            let start = block * BLOCK;
            let end = (start + BLOCK).min(self.len());
            let lo = &self.inner.lo_col(d)[start..end];
            let hi = &self.inner.hi_col(d)[start..end];
            Some(ZoneEntry {
                min_lo: lo.iter().copied().fold(Scalar::INFINITY, Scalar::min),
                max_lo: lo.iter().copied().fold(Scalar::NEG_INFINITY, Scalar::max),
                min_hi: hi.iter().copied().fold(Scalar::INFINITY, Scalar::min),
                max_hi: hi.iter().copied().fold(Scalar::NEG_INFINITY, Scalar::max),
            })
        }
    }

    #[test]
    fn zone_maps_change_nothing_observable() {
        // 3 blocks: one all-fail, one all-pass, one mixed per dimension.
        let n = 160;
        let flat: Vec<Scalar> = (0..n)
            .flat_map(|i| {
                let (lo, hi) = match i / BLOCK {
                    0 => (0.8, 0.9),                       // block fails point 0.5
                    1 => (0.0, 1.0),                       // block passes
                    _ => ((i % 2) as Scalar * 0.5, 1.0),   // mixed
                };
                [lo, hi, 0.0, 1.0]
            })
            .collect();
        let cols = columns(&flat, 2);
        let plain = PairedColumns::new(&cols);
        let zoned = ZonedView { inner: plain, dims: 2 };
        for q in [
            SpatialQuery::point_enclosing(vec![0.5, 0.5]),
            SpatialQuery::intersection(HyperRect::from_bounds(&[0.1, 0.1], &[0.4, 0.4]).unwrap()),
            SpatialQuery::containment(HyperRect::from_bounds(&[0.0, 0.0], &[1.0, 1.0]).unwrap()),
            SpatialQuery::enclosure(HyperRect::from_bounds(&[0.2, 0.2], &[0.3, 0.3]).unwrap()),
        ] {
            let mut s1 = ScanScratch::new();
            let mut s2 = ScanScratch::new();
            let a = scan_columns(&q, &plain, &mut s1);
            let b = scan_columns(&q, &zoned, &mut s2);
            assert_eq!(a, b, "zone maps changed the outcome for {q:?}");
            assert_eq!(s1.matches(), s2.matches());
            assert_eq!(s1.mask_words(), s2.mask_words());
        }
    }

    #[allow(clippy::type_complexity)]
    fn cand_cols(
        start: &[(Scalar, Scalar, bool)],
        end: &[(Scalar, Scalar, bool)],
        offsets: &[u32],
    ) -> (Vec<Scalar>, Vec<Scalar>, Vec<Scalar>, Vec<Scalar>, Vec<u32>) {
        let reach = |&(_, hi, open): &(Scalar, Scalar, bool)| if open { hi.next_down() } else { hi };
        (
            start.iter().map(|s| s.0).collect(),
            start.iter().map(reach).collect(),
            end.iter().map(|e| e.0).collect(),
            end.iter().map(reach).collect(),
            offsets.to_vec(),
        )
    }

    /// Scalar candidate oracle with explicit open/closed semantics.
    fn cand_oracle(
        query: &SpatialQuery,
        start: &[(Scalar, Scalar, bool)],
        end: &[(Scalar, Scalar, bool)],
        offsets: &[u32],
    ) -> Vec<bool> {
        let can_reach = |&(_, hi, open): &(Scalar, Scalar, bool), x: Scalar| {
            if open { hi > x } else { hi >= x }
        };
        let dim_of = |i: usize| (0..offsets.len() - 1)
            .find(|&d| (offsets[d] as usize..offsets[d + 1] as usize).contains(&i))
            .expect("offset covers index");
        (0..start.len())
            .map(|i| {
                let d = dim_of(i);
                match query {
                    SpatialQuery::Intersection(w) => {
                        start[i].0 <= w.interval(d).hi() && can_reach(&end[i], w.interval(d).lo())
                    }
                    SpatialQuery::Containment(w) => {
                        can_reach(&start[i], w.interval(d).lo()) && end[i].0 <= w.interval(d).hi()
                    }
                    SpatialQuery::Enclosure(w) => {
                        start[i].0 <= w.interval(d).lo() && can_reach(&end[i], w.interval(d).hi())
                    }
                    SpatialQuery::PointEnclosing(p) => {
                        start[i].0 <= p[d] && can_reach(&end[i], p[d])
                    }
                }
            })
            .collect()
    }

    #[test]
    fn candidate_kernel_matches_oracle_with_open_bounds() {
        // Two dimensions, three candidates each; open upper bounds make
        // the reach adjustment load-bearing at boundary-coincident edges.
        let start = [
            (0.0, 0.25, true), (0.25, 0.5, true), (0.5, 1.0, false),
            (0.0, 0.5, true), (0.5, 0.75, true), (0.75, 1.0, false),
        ];
        let end = [
            (0.0, 0.25, true), (0.25, 0.75, true), (0.75, 1.0, false),
            (0.0, 0.5, false), (0.5, 1.0, true), (0.0, 1.0, false),
        ];
        let offsets = [0u32, 3, 6];
        let (sl, sr, el, er, off) = cand_cols(&start, &end, &offsets);
        let rb = RunBounds::compute_all(&sl, &sr, &el, &er, &off);
        let cols = CandidateColumns::new(&sl, &sr, &el, &er, &off, &rb);
        let w = HyperRect::from_bounds(&[0.25, 0.5], &[0.5, 0.75]).unwrap();
        for q in [
            SpatialQuery::intersection(w.clone()),
            SpatialQuery::containment(w.clone()),
            SpatialQuery::enclosure(w),
            SpatialQuery::point_enclosing(vec![0.25, 0.5]),
            SpatialQuery::point_enclosing(vec![0.5, 1.0]),
        ] {
            let mut scratch = ScanScratch::new();
            let matched = scan_candidates(&q, &cols, &mut scratch);
            let want = cand_oracle(&q, &start, &end, &offsets);
            for (i, &w) in want.iter().enumerate() {
                let got = scratch.mask_words()[i / BLOCK] >> (i % BLOCK) & 1 == 1;
                assert_eq!(got, w, "candidate {i} diverged on {q:?}");
            }
            assert_eq!(matched, want.iter().filter(|&&m| m).count());
        }
    }

    #[test]
    fn candidate_kernel_handles_word_straddling_runs() {
        // One dimension with 70 candidates: the run crosses a word edge.
        let start: Vec<(Scalar, Scalar, bool)> =
            (0..70).map(|i| (i as Scalar / 70.0, 1.0, false)).collect();
        let end: Vec<(Scalar, Scalar, bool)> = (0..70).map(|_| (0.0, 1.0, false)).collect();
        let offsets = [0u32, 70];
        let (sl, sr, el, er, off) = cand_cols(&start, &end, &offsets);
        let rb = RunBounds::compute_all(&sl, &sr, &el, &er, &off);
        let cols = CandidateColumns::new(&sl, &sr, &el, &er, &off, &rb);
        let mut scratch = ScanScratch::new();
        let q = SpatialQuery::point_enclosing(vec![0.5]);
        let matched = scan_candidates(&q, &cols, &mut scratch);
        let want = cand_oracle(&q, &start, &end, &offsets);
        assert_eq!(matched, want.iter().filter(|&&m| m).count());
        assert!(matched > 0 && matched < 70);
        for (i, &w) in want.iter().enumerate() {
            let got = scratch.mask_words()[i / BLOCK] >> (i % BLOCK) & 1 == 1;
            assert_eq!(got, w, "candidate {i}");
        }
    }

    #[test]
    fn full_domain_runs_take_the_matches_all_path_bit_identically() {
        // Dimension 0's candidates are all reachable by a full-domain
        // interval (the fast path fills the whole run); dimension 1 has
        // one candidate that fails, forcing the per-candidate loop. The
        // mask must equal the scalar oracle bit for bit either way.
        let start = [
            (0.0, 0.25, true), (0.25, 0.5, true), (0.5, 1.0, false),
            (0.0, 0.5, true), (0.5, 0.75, true), (0.75, 1.0, false),
        ];
        let end = [
            (0.0, 0.25, true), (0.25, 0.75, true), (0.75, 1.0, false),
            (0.0, 0.5, false), (0.5, 1.0, true), (0.0, 1.0, false),
        ];
        let offsets = [0u32, 3, 6];
        let (sl, sr, el, er, off) = cand_cols(&start, &end, &offsets);
        let rb = RunBounds::compute_all(&sl, &sr, &el, &er, &off);
        let cols = CandidateColumns::new(&sl, &sr, &el, &er, &off, &rb);
        // Full domain in dim 0, narrow in dim 1: intersection cannot
        // discriminate dim 0's run.
        let w = HyperRect::from_bounds(&[0.0, 0.6], &[1.0, 0.6]).unwrap();
        let full = HyperRect::from_bounds(&[0.0, 0.0], &[1.0, 1.0]).unwrap();
        for q in [
            SpatialQuery::intersection(w),
            SpatialQuery::intersection(full.clone()),
            SpatialQuery::containment(full.clone()),
            SpatialQuery::enclosure(full),
        ] {
            let mut scratch = ScanScratch::new();
            let matched = scan_candidates(&q, &cols, &mut scratch);
            let want = cand_oracle(&q, &start, &end, &offsets);
            for (i, &w) in want.iter().enumerate() {
                let got = scratch.mask_words()[i / BLOCK] >> (i % BLOCK) & 1 == 1;
                assert_eq!(got, w, "candidate {i} diverged on {q:?}");
            }
            assert_eq!(matched, want.iter().filter(|&&m| m).count());
        }
        // Premise: the intersection over the full window really is
        // all-match on dim 0's run (fast path taken, not vacuous).
        let q = SpatialQuery::intersection(
            HyperRect::from_bounds(&[0.0, 0.6], &[1.0, 0.6]).unwrap(),
        );
        let want = cand_oracle(&q, &start, &end, &offsets);
        assert!(want[..3].iter().all(|&m| m), "dim 0 run must be all-match");
    }

    #[test]
    fn direct_small_set_path_is_bit_identical_to_kernel() {
        // Forced-direct (cutoff = MAX) and forced-kernel (cutoff = 0)
        // scans must produce identical masks and counts for every query
        // kind, including one run taken by the matches-all fast path
        // and a word-straddling run.
        let start: Vec<(Scalar, Scalar, bool)> = (0..70)
            .map(|i| (i as Scalar / 70.0, 1.0, i % 3 == 0))
            .chain([(0.0, 0.5, true), (0.5, 0.75, true), (0.75, 1.0, false)])
            .collect();
        let end: Vec<(Scalar, Scalar, bool)> = (0..70)
            .map(|i| (0.0, 1.0, i % 2 == 0))
            .chain([(0.0, 0.5, false), (0.5, 1.0, true), (0.0, 1.0, false)])
            .collect();
        let offsets = [0u32, 70, 73];
        let (sl, sr, el, er, off) = cand_cols(&start, &end, &offsets);
        let rb = RunBounds::compute_all(&sl, &sr, &el, &er, &off);
        let cols = CandidateColumns::new(&sl, &sr, &el, &er, &off, &rb);
        let full = HyperRect::from_bounds(&[0.0, 0.0], &[1.0, 1.0]).unwrap();
        let w = HyperRect::from_bounds(&[0.25, 0.5], &[0.5, 0.75]).unwrap();
        for q in [
            SpatialQuery::intersection(w.clone()),
            SpatialQuery::containment(w.clone()),
            SpatialQuery::enclosure(w),
            SpatialQuery::intersection(full),
            SpatialQuery::point_enclosing(vec![0.5, 0.6]),
        ] {
            let mut kernel = ScanScratch::new();
            let via_kernel = scan_candidates_with_cutoff(&q, &cols, &mut kernel, 0);
            let mut direct = ScanScratch::new();
            let via_direct =
                scan_candidates_with_cutoff(&q, &cols, &mut direct, usize::MAX);
            assert_eq!(via_kernel, via_direct, "count diverged on {q:?}");
            assert_eq!(
                kernel.mask_words(),
                direct.mask_words(),
                "mask diverged on {q:?}"
            );
            let want = cand_oracle(&q, &start, &end, &offsets);
            for (i, &wm) in want.iter().enumerate() {
                let got = direct.mask_words()[i / BLOCK] >> (i % BLOCK) & 1 == 1;
                assert_eq!(got, wm, "candidate {i} diverged from oracle on {q:?}");
            }
        }
        // Premise: the dispatch boundary sits inside the size range the
        // forcings above cover, so the default entry point really does
        // route some sets down each path.
        assert!((1..=start.len()).contains(&CANDIDATE_DIRECT_CUTOFF));
    }

    #[test]
    fn pack_tile_gathers_bytes_to_bits() {
        let mut tile = [0u8; BLOCK];
        tile[0] = 1;
        tile[7] = 1;
        tile[8] = 1;
        tile[63] = 1;
        assert_eq!(pack_tile(&tile, 64), (1 << 0) | (1 << 7) | (1 << 8) | (1 << 63));
        assert_eq!(pack_tile(&tile, 8), (1 << 0) | (1 << 7));
        assert_eq!(pack_tile(&tile, 1), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::{HyperRect, Interval, SpatialRelation};
    use proptest::prelude::*;

    /// A coordinate grid coarse enough that boundary-coincident edges
    /// (object bound == query bound) occur constantly.
    fn coord() -> impl Strategy<Value = Scalar> {
        (0u8..=8).prop_map(|k| k as Scalar / 8.0)
    }

    fn window(dims: usize) -> impl Strategy<Value = HyperRect> {
        prop::collection::vec((coord(), coord()), dims).prop_map(|pairs| {
            let intervals = pairs
                .into_iter()
                .map(|(a, b)| {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    Interval::new_unchecked(lo, hi)
                })
                .collect::<Vec<_>>();
            HyperRect::new(intervals).unwrap()
        })
    }

    proptest! {
        /// The columnar kernel returns the same match set, in the same
        /// order, with the same total `dims_checked` as object-at-a-time
        /// `matches_flat`, for every query kind and 1–8 dimensions.
        #[test]
        fn kernel_agrees_with_scalar_oracle(
            dims in 1usize..=8,
            seed_pairs in prop::collection::vec((coord(), coord()), 0..220),
            win in window(8),
            point in prop::collection::vec(coord(), 8),
            kind in 0usize..4,
        ) {
            // Build n complete rows of `2·dims` scalars.
            let n = seed_pairs.len() / dims;
            let mut flat = Vec::with_capacity(n * 2 * dims);
            for row in seed_pairs.chunks_exact(dims) {
                for &(a, b) in row {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    flat.push(lo);
                    flat.push(hi);
                }
            }
            let win = HyperRect::new(
                (0..dims).map(|d| *win.interval(d)).collect::<Vec<_>>()
            ).unwrap();
            let query = match kind {
                0 => SpatialQuery::with_relation(SpatialRelation::Intersection, win),
                1 => SpatialQuery::with_relation(SpatialRelation::Containment, win),
                2 => SpatialQuery::with_relation(SpatialRelation::Enclosure, win),
                _ => SpatialQuery::point_enclosing(point[..dims].to_vec()),
            };

            let width = 2 * dims;
            let mut cols = vec![Vec::with_capacity(n); width];
            for row in flat.chunks_exact(width) {
                for (k, &v) in row.iter().enumerate() {
                    cols[k].push(v);
                }
            }
            let mut scratch = ScanScratch::new();
            let got = scan_columns(&query, &PairedColumns::new(&cols), &mut scratch);

            let mut want_matches = Vec::new();
            let mut want_checked = 0u64;
            for (i, row) in flat.chunks_exact(width).enumerate() {
                let out = query.matches_flat(row);
                want_checked += out.dims_checked as u64;
                if out.matched {
                    want_matches.push(i as u32);
                }
            }
            prop_assert_eq!(scratch.matches(), &want_matches[..]);
            prop_assert_eq!(got.dims_checked, want_checked);
            prop_assert_eq!(got.matched, want_matches.len());

            let via_rows = scan_interleaved(&query, &flat, &mut scratch);
            prop_assert_eq!(via_rows, got);
            prop_assert_eq!(scratch.matches(), &want_matches[..]);
        }
    }
}
