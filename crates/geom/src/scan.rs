//! Columnar (dimension-major) batch verification kernel.
//!
//! Sequential verification of a whole segment is the hot loop of the
//! system (paper §3.6, Fig. 5): the clustering bet only pays off if
//! scanning a cluster's members is cheap enough to beat fine-grained
//! indexing. [`SpatialQuery::matches_flat`] walks one object at a time
//! over interleaved `[lo0, hi0, lo1, hi1, …]` coordinates; this module
//! provides the batch counterpart over a *dimension-major* (SoA) layout:
//! one contiguous `lo` column and one `hi` column per dimension.
//!
//! The kernel tests a whole block of objects against one query dimension
//! at a time, keeping a survivors bitmask (one byte per object) and
//! updating it in tight branch-free loops the compiler auto-vectorizes.
//! Objects are processed in blocks of [`BLOCK`] so that a block whose
//! survivors are exhausted skips its remaining dimensions — the columnar
//! analogue of the scalar path's per-object early exit.
//!
//! ## Metrics are bit-identical to the scalar path
//!
//! The scalar loop charges each object `dims_checked` = the index of its
//! first failing dimension plus one (or the full dimensionality when it
//! matches). Since an object reaches the check of dimension `d` exactly
//! when it survived dimensions `0..d`, the total over a segment equals
//! the sum over dimensions of the number of objects still alive when
//! that dimension is evaluated — which is precisely what the kernel
//! accumulates from the mask. Dimensions are evaluated in the same order
//! (`0, 1, 2, …`) with the same comparisons, so [`ScanOutcome`] totals —
//! and every byte counter and reorganization decision derived from them —
//! are bit-identical to object-at-a-time verification.

use crate::{Scalar, SpatialQuery, OBJECT_ID_BYTES};

/// Objects per kernel block: small enough that a block of rejected
/// objects stops paying for further dimensions quickly, large enough
/// that the per-dimension loops vectorize and amortize dispatch.
pub const BLOCK: usize = 64;

/// Read access to a dimension-major coordinate layout: one `lo` and one
/// `hi` column per dimension, each holding one scalar per object.
pub trait ColumnAccess {
    /// Number of objects (every column has exactly this length).
    fn len(&self) -> usize;
    /// Whether the column set holds no objects.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Lower-bound column of dimension `d`.
    fn lo_col(&self, d: usize) -> &[Scalar];
    /// Upper-bound column of dimension `d`.
    fn hi_col(&self, d: usize) -> &[Scalar];
}

/// Borrowed view over paired columns stored as `[lo0, hi0, lo1, hi1, …]`
/// — the convention used by `acx_storage::SegmentStore` and the
/// sequential-scan baseline. Supports sub-ranges so parallel scans can
/// hand each worker a disjoint slice of every column.
#[derive(Debug, Clone, Copy)]
pub struct PairedColumns<'a> {
    cols: &'a [Vec<Scalar>],
    start: usize,
    len: usize,
}

impl<'a> PairedColumns<'a> {
    /// View over all objects of the column set. `cols` must hold `2·dims`
    /// equal-length vectors, lower bounds at even indices.
    pub fn new(cols: &'a [Vec<Scalar>]) -> Self {
        let len = cols.first().map_or(0, Vec::len);
        Self {
            cols,
            start: 0,
            len,
        }
    }

    /// View over objects `start..start + len`.
    pub fn slice(cols: &'a [Vec<Scalar>], start: usize, len: usize) -> Self {
        debug_assert!(cols.first().map_or(0, Vec::len) >= start + len);
        Self { cols, start, len }
    }
}

impl ColumnAccess for PairedColumns<'_> {
    fn len(&self) -> usize {
        self.len
    }

    fn lo_col(&self, d: usize) -> &[Scalar] {
        &self.cols[2 * d][self.start..self.start + self.len]
    }

    fn hi_col(&self, d: usize) -> &[Scalar] {
        &self.cols[2 * d + 1][self.start..self.start + self.len]
    }
}

/// Aggregate outcome of scanning one column set against a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Objects scanned (every object is verified, as in the scalar path).
    pub objects: usize,
    /// Objects that satisfied the query; their indices are in
    /// [`ScanScratch::matches`].
    pub matched: usize,
    /// Total dimensions inspected across all objects, accounting for the
    /// early exit on the first failing dimension — bit-identical to
    /// summing [`crate::MatchOutcome::dims_checked`] over the objects.
    pub dims_checked: u64,
}

impl ScanOutcome {
    /// Verified bytes under the paper's accounting (footnote 4): the
    /// object identifier plus both 4-byte bounds of every inspected
    /// dimension.
    pub fn verified_bytes(&self) -> u64 {
        self.objects as u64 * OBJECT_ID_BYTES as u64 + 8 * self.dims_checked
    }
}

/// Reusable scan state: the survivors bitmask, the match index buffer,
/// per-dimension query bounds, and transpose buffers for interleaved
/// inputs. Allocations grow to the largest scanned segment and are then
/// reused, so a warmed-up scratch performs no allocation per scan.
#[derive(Debug, Default)]
pub struct ScanScratch {
    /// Survivors bitmask, one byte per object (1 = still matching).
    mask: Vec<u8>,
    /// Indices (ascending) of the objects that matched the last scan.
    matches: Vec<u32>,
    /// Per-dimension query bounds (`a` side), see [`Relation`] mapping.
    qa: Vec<Scalar>,
    /// Per-dimension query bounds (`b` side).
    qb: Vec<Scalar>,
    /// Per-block lower-bound gather tile ([`BLOCK`] scalars) for
    /// interleaved inputs.
    t_lo: Vec<Scalar>,
    /// Per-block upper-bound gather tile for interleaved inputs.
    t_hi: Vec<Scalar>,
}

impl ScanScratch {
    /// An empty scratch; buffers are sized lazily by the first scans.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indices of the objects that matched the most recent scan, in
    /// ascending (storage) order.
    pub fn matches(&self) -> &[u32] {
        &self.matches
    }
}

/// The three comparison shapes; point-enclosing queries reduce to
/// [`Relation::Enclosure`] with degenerate per-dimension bounds.
#[derive(Debug, Clone, Copy)]
enum Relation {
    /// pass ⇔ `lo ≤ b ∧ hi ≥ a` with `a = q.lo(d)`, `b = q.hi(d)`.
    Intersection,
    /// pass ⇔ `lo ≥ a ∧ hi ≤ b`.
    Containment,
    /// pass ⇔ `lo ≤ a ∧ hi ≥ b` (point queries: `a = b = p[d]`).
    Enclosure,
}

/// Loads the per-dimension bounds of `query` into `qa`/`qb` and returns
/// the comparison shape.
fn load_bounds(query: &SpatialQuery, qa: &mut Vec<Scalar>, qb: &mut Vec<Scalar>) -> Relation {
    qa.clear();
    qb.clear();
    match query {
        SpatialQuery::Intersection(q) | SpatialQuery::Containment(q) | SpatialQuery::Enclosure(q) => {
            for d in 0..q.dims() {
                qa.push(q.interval(d).lo());
                qb.push(q.interval(d).hi());
            }
            match query {
                SpatialQuery::Intersection(_) => Relation::Intersection,
                SpatialQuery::Containment(_) => Relation::Containment,
                _ => Relation::Enclosure,
            }
        }
        SpatialQuery::PointEnclosing(p) => {
            qa.extend_from_slice(p);
            qb.extend_from_slice(p);
            Relation::Enclosure
        }
    }
}

/// Scans a dimension-major column set against the query, leaving the
/// matching indices in `scratch.matches()`.
///
/// Match set, match order, and [`ScanOutcome::dims_checked`] are
/// bit-identical to calling [`SpatialQuery::matches_flat`] on every
/// object in storage order.
///
/// ```
/// use acx_geom::scan::{scan_columns, PairedColumns, ScanScratch};
/// use acx_geom::SpatialQuery;
///
/// // Two 1-d objects: [0.0, 0.4] and [0.6, 0.9].
/// let cols = vec![vec![0.0, 0.6], vec![0.4, 0.9]];
/// let mut scratch = ScanScratch::new();
/// let q = SpatialQuery::point_enclosing(vec![0.25]);
/// let outcome = scan_columns(&q, &PairedColumns::new(&cols), &mut scratch);
/// assert_eq!(outcome.matched, 1);
/// assert_eq!(scratch.matches(), &[0]);
/// ```
pub fn scan_columns<C: ColumnAccess + ?Sized>(
    query: &SpatialQuery,
    cols: &C,
    scratch: &mut ScanScratch,
) -> ScanOutcome {
    let rel = load_bounds(query, &mut scratch.qa, &mut scratch.qb);
    let ScanScratch {
        mask, matches, qa, qb, ..
    } = scratch;
    dispatch(rel, cols, qa, qb, mask, matches)
}

/// Scans objects stored as interleaved flat `[lo0, hi0, lo1, hi1, …]`
/// coordinates — used by access methods whose native layout is
/// row-major (R*-tree leaf pages).
///
/// Columns are gathered **lazily**, one [`BLOCK`]-sized tile per
/// (block, dimension), only while the block still has survivors: a
/// block rejected in its first dimensions never pays the gather for the
/// remaining ones, preserving the early-exit economics the scalar
/// per-entry loop had on row-major data. Accounting is bit-identical to
/// [`scan_columns`] and to per-object [`SpatialQuery::matches_flat`].
pub fn scan_interleaved(
    query: &SpatialQuery,
    flat: &[Scalar],
    scratch: &mut ScanScratch,
) -> ScanOutcome {
    let width = 2 * query.dims();
    debug_assert_eq!(flat.len() % width, 0, "coordinate arity mismatch");
    let rel = load_bounds(query, &mut scratch.qa, &mut scratch.qb);
    let ScanScratch {
        mask,
        matches,
        qa,
        qb,
        t_lo,
        t_hi,
    } = scratch;
    t_lo.resize(BLOCK, 0.0);
    t_hi.resize(BLOCK, 0.0);
    match rel {
        Relation::Intersection => run_interleaved(flat, width, qa, qb, mask, matches, t_lo, t_hi, |l, h, a, b| {
            ((l <= b) as u8) & ((h >= a) as u8)
        }),
        Relation::Containment => run_interleaved(flat, width, qa, qb, mask, matches, t_lo, t_hi, |l, h, a, b| {
            ((l >= a) as u8) & ((h <= b) as u8)
        }),
        Relation::Enclosure => run_interleaved(flat, width, qa, qb, mask, matches, t_lo, t_hi, |l, h, a, b| {
            ((l <= a) as u8) & ((h >= b) as u8)
        }),
    }
}

/// The blocked kernel over row-major input: per block, gather one
/// dimension's bounds into the scratch tiles and AND the pass bits into
/// the survivors mask; a block with no survivors skips the gather and
/// the check of its remaining dimensions.
#[allow(clippy::too_many_arguments)]
fn run_interleaved<P>(
    flat: &[Scalar],
    width: usize,
    qa: &[Scalar],
    qb: &[Scalar],
    mask: &mut Vec<u8>,
    matches: &mut Vec<u32>,
    t_lo: &mut [Scalar],
    t_hi: &mut [Scalar],
    pass: P,
) -> ScanOutcome
where
    P: Fn(Scalar, Scalar, Scalar, Scalar) -> u8,
{
    let n = flat.len() / width;
    let dims = qa.len();
    mask.clear();
    mask.resize(n, 1);
    matches.clear();
    let mut dims_checked = 0u64;
    let mut start = 0;
    while start < n {
        let end = (start + BLOCK).min(n);
        let block = &mut mask[start..end];
        let len = block.len();
        let mut alive = len;
        for d in 0..dims {
            if alive == 0 {
                break;
            }
            dims_checked += alive as u64;
            let rows = &flat[start * width..end * width];
            for (i, row) in rows.chunks_exact(width).enumerate() {
                t_lo[i] = row[2 * d];
                t_hi[i] = row[2 * d + 1];
            }
            let (a, b) = (qa[d], qb[d]);
            let mut survivors = 0usize;
            for ((m, &l), &h) in block.iter_mut().zip(&t_lo[..len]).zip(&t_hi[..len]) {
                *m &= pass(l, h, a, b);
                survivors += *m as usize;
            }
            alive = survivors;
        }
        if alive > 0 {
            for (i, &m) in block.iter().enumerate() {
                if m != 0 {
                    matches.push((start + i) as u32);
                }
            }
        }
        start = end;
    }
    ScanOutcome {
        objects: n,
        matched: matches.len(),
        dims_checked,
    }
}

fn dispatch<C: ColumnAccess + ?Sized>(
    rel: Relation,
    cols: &C,
    qa: &[Scalar],
    qb: &[Scalar],
    mask: &mut Vec<u8>,
    matches: &mut Vec<u32>,
) -> ScanOutcome {
    match rel {
        Relation::Intersection => run(cols, qa, qb, mask, matches, |l, h, a, b| {
            ((l <= b) as u8) & ((h >= a) as u8)
        }),
        Relation::Containment => run(cols, qa, qb, mask, matches, |l, h, a, b| {
            ((l >= a) as u8) & ((h <= b) as u8)
        }),
        Relation::Enclosure => run(cols, qa, qb, mask, matches, |l, h, a, b| {
            ((l <= a) as u8) & ((h >= b) as u8)
        }),
    }
}

/// The blocked kernel: per block of [`BLOCK`] objects, AND each
/// dimension's pass bits into the survivors mask, counting survivors as
/// it goes; a block with no survivors skips its remaining dimensions.
fn run<C, P>(
    cols: &C,
    qa: &[Scalar],
    qb: &[Scalar],
    mask: &mut Vec<u8>,
    matches: &mut Vec<u32>,
    pass: P,
) -> ScanOutcome
where
    C: ColumnAccess + ?Sized,
    P: Fn(Scalar, Scalar, Scalar, Scalar) -> u8,
{
    let n = cols.len();
    let dims = qa.len();
    mask.clear();
    mask.resize(n, 1);
    matches.clear();
    let mut dims_checked = 0u64;
    let mut start = 0;
    while start < n {
        let end = (start + BLOCK).min(n);
        let block = &mut mask[start..end];
        let mut alive = block.len();
        for d in 0..dims {
            if alive == 0 {
                break;
            }
            dims_checked += alive as u64;
            let lo = &cols.lo_col(d)[start..end];
            let hi = &cols.hi_col(d)[start..end];
            let (a, b) = (qa[d], qb[d]);
            let mut survivors = 0usize;
            for ((m, &l), &h) in block.iter_mut().zip(lo).zip(hi) {
                *m &= pass(l, h, a, b);
                survivors += *m as usize;
            }
            alive = survivors;
        }
        if alive > 0 {
            for (i, &m) in block.iter().enumerate() {
                if m != 0 {
                    matches.push((start + i) as u32);
                }
            }
        }
        start = end;
    }
    ScanOutcome {
        objects: n,
        matched: matches.len(),
        dims_checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HyperRect, SpatialRelation};

    /// Builds paired columns from interleaved flat coordinates.
    fn columns(flat: &[Scalar], dims: usize) -> Vec<Vec<Scalar>> {
        let width = 2 * dims;
        let n = flat.len() / width;
        let mut cols = vec![Vec::with_capacity(n); width];
        for row in flat.chunks_exact(width) {
            for (k, &v) in row.iter().enumerate() {
                cols[k].push(v);
            }
        }
        cols
    }

    /// The scalar oracle: per-object `matches_flat` in storage order.
    fn oracle(query: &SpatialQuery, flat: &[Scalar], dims: usize) -> (Vec<u32>, u64) {
        let width = 2 * dims;
        let mut matches = Vec::new();
        let mut dims_checked = 0u64;
        for (i, row) in flat.chunks_exact(width).enumerate() {
            let out = query.matches_flat(row);
            dims_checked += out.dims_checked as u64;
            if out.matched {
                matches.push(i as u32);
            }
        }
        (matches, dims_checked)
    }

    fn assert_agrees(query: &SpatialQuery, flat: &[Scalar], dims: usize) {
        let cols = columns(flat, dims);
        let mut scratch = ScanScratch::new();
        let got = scan_columns(query, &PairedColumns::new(&cols), &mut scratch);
        let (want_matches, want_checked) = oracle(query, flat, dims);
        assert_eq!(scratch.matches(), &want_matches[..], "match set diverged");
        assert_eq!(got.dims_checked, want_checked, "dims_checked diverged");
        assert_eq!(got.matched, want_matches.len());
        assert_eq!(got.objects, flat.len() / (2 * dims));

        let via_rows = scan_interleaved(query, flat, &mut scratch);
        assert_eq!(via_rows, got, "interleaved adapter diverged");
        assert_eq!(scratch.matches(), &want_matches[..]);
    }

    #[test]
    fn empty_segment_scans_to_nothing() {
        let cols: Vec<Vec<Scalar>> = vec![Vec::new(); 4];
        let mut scratch = ScanScratch::new();
        let q = SpatialQuery::point_enclosing(vec![0.5, 0.5]);
        let out = scan_columns(&q, &PairedColumns::new(&cols), &mut scratch);
        assert_eq!(out, ScanOutcome { objects: 0, matched: 0, dims_checked: 0 });
        assert!(scratch.matches().is_empty());
    }

    #[test]
    fn all_relations_agree_with_scalar_on_handpicked_objects() {
        let dims = 2;
        // Includes boundary-coincident edges (objects touching the window).
        let flat = [
            0.1, 0.3, 0.1, 0.3, // inside
            0.3, 0.7, 0.3, 0.7, // equals the window
            0.0, 0.3, 0.0, 0.3, // touches the window corner
            0.71, 0.9, 0.0, 1.0, // fails dim 0
            0.3, 0.7, 0.8, 0.9, // fails dim 1
            0.0, 1.0, 0.0, 1.0, // covers everything
        ];
        let w = HyperRect::from_bounds(&[0.3, 0.3], &[0.7, 0.7]).unwrap();
        for rel in SpatialRelation::ALL {
            assert_agrees(&SpatialQuery::with_relation(rel, w.clone()), &flat, dims);
        }
        assert_agrees(&SpatialQuery::point_enclosing(vec![0.3, 0.3]), &flat, dims);
    }

    #[test]
    fn block_boundaries_are_handled() {
        // Sizes around the BLOCK granularity, one dimension.
        for n in [1usize, 63, 64, 65, 128, 130] {
            let flat: Vec<Scalar> = (0..n)
                .flat_map(|i| {
                    let x = i as Scalar / n as Scalar;
                    [x, x + 0.01]
                })
                .collect();
            assert_agrees(&SpatialQuery::point_enclosing(vec![0.5]), &flat, 1);
            let w = HyperRect::from_bounds(&[0.25], &[0.75]).unwrap();
            assert_agrees(&SpatialQuery::intersection(w), &flat, 1);
        }
    }

    #[test]
    fn verified_bytes_accounts_id_and_checked_dims() {
        let out = ScanOutcome { objects: 3, matched: 1, dims_checked: 5 };
        assert_eq!(out.verified_bytes(), 3 * OBJECT_ID_BYTES as u64 + 40);
    }

    #[test]
    fn scratch_is_reusable_across_queries_and_sizes() {
        let mut scratch = ScanScratch::new();
        for n in [100usize, 10, 300] {
            let flat: Vec<Scalar> = (0..n).flat_map(|i| {
                let x = (i % 17) as Scalar / 17.0;
                [x, x + 0.1, 0.0, 1.0]
            }).collect();
            assert_agrees(&SpatialQuery::point_enclosing(vec![0.2, 0.5]), &flat, 2);
            let cols = columns(&flat, 2);
            let q = SpatialQuery::point_enclosing(vec![0.2, 0.5]);
            let out = scan_columns(&q, &PairedColumns::new(&cols), &mut scratch);
            assert_eq!(out.objects, n);
        }
    }

    #[test]
    fn paired_columns_subrange_sees_a_window() {
        let flat = [0.1, 0.2, 0.4, 0.5, 0.7, 0.8];
        let cols = columns(&flat, 1);
        let view = PairedColumns::slice(&cols, 1, 2);
        assert_eq!(view.len(), 2);
        assert_eq!(view.lo_col(0), &[0.4, 0.7]);
        assert_eq!(view.hi_col(0), &[0.5, 0.8]);
        let mut scratch = ScanScratch::new();
        let q = SpatialQuery::point_enclosing(vec![0.45]);
        let out = scan_columns(&q, &view, &mut scratch);
        assert_eq!(out.matched, 1);
        assert_eq!(scratch.matches(), &[0]); // index relative to the range
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::{HyperRect, Interval, SpatialRelation};
    use proptest::prelude::*;

    /// A coordinate grid coarse enough that boundary-coincident edges
    /// (object bound == query bound) occur constantly.
    fn coord() -> impl Strategy<Value = Scalar> {
        (0u8..=8).prop_map(|k| k as Scalar / 8.0)
    }

    fn window(dims: usize) -> impl Strategy<Value = HyperRect> {
        prop::collection::vec((coord(), coord()), dims).prop_map(|pairs| {
            let intervals = pairs
                .into_iter()
                .map(|(a, b)| {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    Interval::new_unchecked(lo, hi)
                })
                .collect::<Vec<_>>();
            HyperRect::new(intervals).unwrap()
        })
    }

    proptest! {
        /// The columnar kernel returns the same match set, in the same
        /// order, with the same total `dims_checked` as object-at-a-time
        /// `matches_flat`, for every query kind and 1–8 dimensions.
        #[test]
        fn kernel_agrees_with_scalar_oracle(
            dims in 1usize..=8,
            seed_pairs in prop::collection::vec((coord(), coord()), 0..220),
            win in window(8),
            point in prop::collection::vec(coord(), 8),
            kind in 0usize..4,
        ) {
            // Build n complete rows of `2·dims` scalars.
            let n = seed_pairs.len() / dims;
            let mut flat = Vec::with_capacity(n * 2 * dims);
            for row in seed_pairs.chunks_exact(dims) {
                for &(a, b) in row {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    flat.push(lo);
                    flat.push(hi);
                }
            }
            let win = HyperRect::new(
                (0..dims).map(|d| *win.interval(d)).collect::<Vec<_>>()
            ).unwrap();
            let query = match kind {
                0 => SpatialQuery::with_relation(SpatialRelation::Intersection, win),
                1 => SpatialQuery::with_relation(SpatialRelation::Containment, win),
                2 => SpatialQuery::with_relation(SpatialRelation::Enclosure, win),
                _ => SpatialQuery::point_enclosing(point[..dims].to_vec()),
            };

            let width = 2 * dims;
            let mut cols = vec![Vec::with_capacity(n); width];
            for row in flat.chunks_exact(width) {
                for (k, &v) in row.iter().enumerate() {
                    cols[k].push(v);
                }
            }
            let mut scratch = ScanScratch::new();
            let got = scan_columns(&query, &PairedColumns::new(&cols), &mut scratch);

            let mut want_matches = Vec::new();
            let mut want_checked = 0u64;
            for (i, row) in flat.chunks_exact(width).enumerate() {
                let out = query.matches_flat(row);
                want_checked += out.dims_checked as u64;
                if out.matched {
                    want_matches.push(i as u32);
                }
            }
            prop_assert_eq!(scratch.matches(), &want_matches[..]);
            prop_assert_eq!(got.dims_checked, want_checked);
            prop_assert_eq!(got.matched, want_matches.len());

            let via_rows = scan_interleaved(&query, &flat, &mut scratch);
            prop_assert_eq!(via_rows, got);
            prop_assert_eq!(scratch.matches(), &want_matches[..]);
        }
    }
}
