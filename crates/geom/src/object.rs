/// Identifier of a spatial object stored in the database.
///
/// The paper represents the identifier on 4 bytes; the cost model's
/// per-object byte size depends on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The raw 32-bit value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u32> for ObjectId {
    fn from(v: u32) -> Self {
        ObjectId(v)
    }
}

/// Bytes used by an object identifier (paper §7.1, "Data Representation").
pub const OBJECT_ID_BYTES: usize = 4;

/// Size in bytes of one stored spatial object with `dims` dimensions.
///
/// "A spatial object consists of an object identifier and of `Nd` pairs of
/// real values […] each represented on 4 bytes" — i.e. `4 + 8·Nd` bytes.
/// This value feeds the cost model (verification and transfer are priced
/// per byte) and the R*-tree page-capacity computation.
#[inline]
pub const fn object_size_bytes(dims: usize) -> usize {
    OBJECT_ID_BYTES + dims * 2 * core::mem::size_of::<f32>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_size_matches_paper_figures() {
        // 16 dimensions: 4 + 128 = 132 bytes; 2,000,000 objects = 251 MiB.
        assert_eq!(object_size_bytes(16), 132);
        let two_million = 2_000_000usize * object_size_bytes(16);
        let mib = two_million as f64 / (1024.0 * 1024.0);
        assert!((mib - 251.0).abs() < 1.0, "got {mib} MiB");
        // 40 dimensions: 4 + 320 = 324 bytes.
        assert_eq!(object_size_bytes(40), 324);
    }

    #[test]
    fn object_id_roundtrip_and_display() {
        let id = ObjectId::from(42u32);
        assert_eq!(id.raw(), 42);
        assert_eq!(id.to_string(), "#42");
        assert_eq!(ObjectId(7), ObjectId(7));
        assert!(ObjectId(1) < ObjectId(2));
    }
}
