//! Strategy-matrix smoke test: every scenario-zoo stream stays green —
//! and answer-identical — under the full cross product of the CLI
//! kernel toggles, driven through the same [`Flags::from_args`] →
//! [`Flags::apply_scan_flags`] path the experiment binaries use.
//!
//! The toggles select *execution strategies* (`--scan-mode`,
//! `--candidate-scan`, `--zone-maps`, `--stats-layout`) and the
//! maintenance strategy (`--reorg-mode`), none of which may change
//! which objects a query returns or which clusters a reorganization
//! pass builds. A config that crashes, hangs, or answers differently
//! under some toggle combination would invalidate every ablation row
//! built from it.

use acx_bench::adaptivity::{make_objects, make_scenario, SCENARIOS};
use acx_bench::args::Flags;
use acx_bench::build_ac_with;
use acx_core::{IndexConfig, ReorgMode, ScanMode, StatsLayout};
use acx_geom::ObjectId;
use acx_workloads::WorkloadConfig;

const DIMS: usize = 4;
const OBJECTS: usize = 500;
const PERIODS: usize = 4;
const QUERIES_PER_PERIOD: usize = 45;
const SHIFT_AT: usize = 2;

/// Builds the argv a user would type for one toggle combination.
fn combo_argv(scan: &str, cand: &str, zone_maps: &str, reorg: &str, layout: &str) -> Vec<String> {
    [
        "--scan-mode",
        scan,
        "--candidate-scan",
        cand,
        "--zone-maps",
        zone_maps,
        "--reorg-mode",
        reorg,
        "--stats-layout",
        layout,
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// Replays the scenario stream (with its mid-run shift) against an
/// index built from `config`, returning the sorted match set of every
/// query.
fn run_stream(name: &str, config: IndexConfig) -> Vec<Vec<ObjectId>> {
    let cfg = WorkloadConfig::new(DIMS, OBJECTS, 0xA11CE);
    let objects = make_objects(name, &cfg);
    let mut scenario = make_scenario(name, &cfg);
    let mut index = build_ac_with(config, &objects);
    let mut results = Vec::with_capacity(PERIODS * QUERIES_PER_PERIOD);
    for period in 0..PERIODS {
        if period == SHIFT_AT {
            scenario.shift();
        }
        for _ in 0..QUERIES_PER_PERIOD {
            let mut r = index.execute(&scenario.next_query());
            r.matches.sort_unstable();
            results.push(r.matches);
        }
        index.reorganize();
    }
    index.check_invariants().unwrap();
    results
}

/// The full `{scan_mode} × {candidate_scan} × {zone_maps} ×
/// {reorg_mode} × {stats_layout}` matrix over every zoo scenario: all
/// 32 parsed configs run green and return the exact same answers.
#[test]
fn zoo_is_green_and_answer_identical_across_strategy_matrix() {
    for name in SCENARIOS {
        let mut reference: Option<Vec<Vec<ObjectId>>> = None;
        for scan in ["columnar", "oracle"] {
            for cand in ["columnar", "oracle"] {
                for zone_maps in ["on", "off"] {
                    for reorg in ["incremental", "full"] {
                        for layout in ["arena", "per-cluster"] {
                            let flags = Flags::from_args(combo_argv(
                                scan, cand, zone_maps, reorg, layout,
                            ));
                            let config = flags.apply_scan_flags(IndexConfig::memory(DIMS));
                            // Round-trip: the argv must reach the config.
                            assert_eq!(
                                config.scan_mode == ScanMode::Columnar,
                                scan == "columnar"
                            );
                            assert_eq!(
                                config.candidate_scan == ScanMode::Columnar,
                                cand == "columnar"
                            );
                            assert_eq!(config.zone_maps, zone_maps == "on");
                            assert_eq!(
                                config.reorg_mode == ReorgMode::Incremental,
                                reorg == "incremental"
                            );
                            assert_eq!(
                                config.stats_layout == StatsLayout::Arena,
                                layout == "arena"
                            );
                            let results = run_stream(name, config);
                            match &reference {
                                None => reference = Some(results),
                                Some(expected) => assert_eq!(
                                    expected, &results,
                                    "{name}: --scan-mode {scan} --candidate-scan {cand} \
                                     --zone-maps {zone_maps} --reorg-mode {reorg} \
                                     --stats-layout {layout} changed query answers"
                                ),
                            }
                        }
                    }
                }
            }
        }
    }
}

/// `--merge-cooldown` rides the same CLI path (via its own accessor —
/// it changes reorganization *decisions*, so it is deliberately not
/// part of [`Flags::apply_scan_flags`]) and must leave every scenario
/// green and answer-identical: hysteresis defers reclustering, it
/// never changes which objects match.
#[test]
fn merge_cooldown_flag_keeps_zoo_green() {
    let flags = Flags::from_args(
        ["--merge-cooldown", "6", "--reorg-mode", "incremental"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    assert_eq!(flags.merge_cooldown(), 6);
    for name in SCENARIOS {
        let baseline = run_stream(name, flags.apply_scan_flags(IndexConfig::memory(DIMS)));
        let mut config = flags.apply_scan_flags(IndexConfig::memory(DIMS));
        config.merge_cooldown = flags.merge_cooldown();
        let cooled = run_stream(name, config);
        assert_eq!(baseline, cooled, "{name}: cool-down changed query answers");
    }
}
