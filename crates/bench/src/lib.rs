//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§7). See DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results.
//!
//! The harness builds the three competitors — Adaptive Clustering (AC),
//! R*-tree (RS), Sequential Scan (SS) — over identical object sets, runs
//! identical query streams, and reports the paper's three indicators:
//! average query execution time (wall-clock and cost-model priced),
//! number of accessed clusters/nodes, and fraction of verified objects.

pub mod adaptivity;
pub mod args;
pub mod runner;

pub use runner::{
    ac_config, adapted_ac, build_ac, build_ac_with, build_rs, build_ss, recorded_strategies,
    reorg_layout_strategies, reorg_strategies, run_ac, run_ac_batch, run_baseline, run_serve,
    ExperimentScale, MethodReport,
};
