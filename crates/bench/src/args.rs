//! Minimal command-line parsing for the experiment binaries (no external
//! dependency needed for `--key value` flags).

use std::collections::HashMap;
use std::path::PathBuf;

use acx_core::{AdaptiveClusterIndex, IndexConfig, ReorgMode, ScanMode, StatsLayout};
use acx_serve::{ShardBy, DEFAULT_QUEUE_CAP};
use acx_storage::{FileBacking, FlushPolicy, Wal};

/// Parsed `--key value` flags.
pub struct Flags {
    values: HashMap<String, String>,
    present: Vec<String>,
}

impl Flags {
    /// Parses the process arguments. Flags are `--name value` pairs;
    /// bare `--name` toggles are recorded as present.
    pub fn from_env() -> Self {
        Self::from_args(std::env::args().skip(1).collect())
    }

    /// Parses an explicit argument vector (no leading program name) —
    /// the testable entry point the strategy-matrix smoke tests drive
    /// the CLI path through.
    pub fn from_args(argv: Vec<String>) -> Self {
        let mut values = HashMap::new();
        let mut present = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            if let Some(name) = arg.strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    values.insert(name.to_string(), argv[i + 1].clone());
                    i += 2;
                    continue;
                }
                present.push(name.to_string());
            }
            i += 1;
        }
        Self { values, present }
    }

    /// Typed lookup with default.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.values
            .get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether a bare flag was passed.
    pub fn has(&self, name: &str) -> bool {
        self.present.iter().any(|p| p == name) || self.values.contains_key(name)
    }

    /// Boolean flag accepting `on`/`off`, `true`/`false`, `1`/`0`
    /// (case-insensitive).
    ///
    /// # Panics
    ///
    /// Panics on any other value: a kernel-ablation flag that silently
    /// fell back to its default would mislabel the measurement.
    pub fn get_bool(&self, name: &str, default: bool) -> bool {
        match self.values.get(name) {
            None => default,
            Some(v) => match v.to_ascii_lowercase().as_str() {
                "on" | "true" | "1" | "yes" => true,
                "off" | "false" | "0" | "no" => false,
                other => panic!("--{name}: expected on/off, got {other:?}"),
            },
        }
    }

    /// Typed lookup that **panics** on a present-but-unparseable value
    /// (with the parser's own error message) instead of silently using
    /// the default — for flags where a typo must not change which
    /// experiment runs.
    pub fn get_strict<T>(&self, name: &str, default: T) -> T
    where
        T: std::str::FromStr,
        T::Err: std::fmt::Display,
    {
        match self.values.get(name) {
            None => default,
            Some(v) => match v.parse() {
                Ok(parsed) => parsed,
                Err(e) => panic!("--{name}: {e}"),
            },
        }
    }

    /// `--scan-mode columnar|oracle`: member verification strategy.
    pub fn scan_mode(&self) -> ScanMode {
        self.get_strict("scan-mode", ScanMode::Columnar)
    }

    /// `--candidate-scan columnar|oracle`: candidate matching strategy.
    pub fn candidate_scan(&self) -> ScanMode {
        self.get_strict("candidate-scan", ScanMode::Columnar)
    }

    /// `--zone-maps on|off`: block skipping in member verification.
    pub fn zone_maps(&self) -> bool {
        self.get_bool("zone-maps", true)
    }

    /// `--reorg-mode incremental|full`: reorganization pass strategy
    /// (decision-identical either way; only the maintenance cost
    /// differs).
    pub fn reorg_mode(&self) -> ReorgMode {
        self.get_strict("reorg-mode", ReorgMode::Incremental)
    }

    /// `--stats-layout arena|per-cluster`: where candidate statistics
    /// live (one index-wide slab vs. one `Vec` set per cluster).
    /// Decision-identical either way; only locality and allocation
    /// behavior differ.
    pub fn stats_layout(&self) -> StatsLayout {
        self.get_strict("stats-layout", StatsLayout::Arena)
    }

    /// `--merge-cooldown N`: the split→merge thrash hysteresis window
    /// in reorganization passes (`0` = off, the default). Unlike the
    /// [`Flags::apply_scan_flags`] toggles this **changes
    /// reorganization decisions** (identically in both
    /// [`ReorgMode`]s), so it is applied separately by the binaries
    /// that expose it.
    pub fn merge_cooldown(&self) -> u64 {
        self.get_strict("merge-cooldown", 0)
    }

    /// `--flush-policy record|batch[:N]|epoch`: WAL durability policy,
    /// meaningful only together with [`Flags::wal_path`]. Defaults to
    /// `record` (every record flushed before the mutation applies).
    pub fn flush_policy(&self) -> FlushPolicy {
        self.get_strict("flush-policy", FlushPolicy::PerRecord)
    }

    /// `--wal PATH`: log every structural mutation to a write-ahead log
    /// at `PATH`. Off by default — the experiments measure the index
    /// itself unless durability overhead is the point.
    pub fn wal_path(&self) -> Option<PathBuf> {
        self.values.get("wal").map(PathBuf::from)
    }

    /// Attaches a [`FileBacking`] WAL to `index` when `--wal PATH` was
    /// passed (with the [`Flags::flush_policy`] durability policy) and
    /// returns whether one was attached. Deliberately **not** part of
    /// [`Flags::apply_scan_flags`]: logging adds I/O on the mutation
    /// path but never changes a clustering decision, and the bins that
    /// report decision-surface metrics must stay byte-identical with
    /// and without it.
    pub fn attach_wal(&self, index: &mut AdaptiveClusterIndex) -> bool {
        let Some(path) = self.wal_path() else {
            return false;
        };
        let backing =
            FileBacking::create(&path).unwrap_or_else(|e| panic!("--wal {}: {e}", path.display()));
        let wal = Wal::create(Box::new(backing), self.flush_policy(), index.config().dims)
            .unwrap_or_else(|e| panic!("--wal {}: {e}", path.display()));
        index
            .attach_wal(wal)
            .unwrap_or_else(|e| panic!("--wal {}: {e}", path.display()));
        true
    }

    /// `--shards N`: shard count for the serving-tier runs. Defaults
    /// to the machine's parallelism (capped at 4 so quick runs stay
    /// bounded), like `--threads` in the batch path.
    pub fn shards(&self) -> usize {
        let default = std::thread::available_parallelism()
            .map(|n| n.get().min(4))
            .unwrap_or(1);
        self.get_strict("shards", default).max(1)
    }

    /// `--shard-by hash|space`: subscription-to-shard assignment for
    /// the serving tier.
    pub fn shard_by(&self) -> ShardBy {
        self.get_strict("shard-by", ShardBy::Hash)
    }

    /// `--queue-cap N`: per-shard ingestion queue capacity for the
    /// serving tier.
    pub fn queue_cap(&self) -> usize {
        self.get_strict("queue-cap", DEFAULT_QUEUE_CAP).max(1)
    }

    /// Applies the kernel and maintenance toggles (`--scan-mode`,
    /// `--candidate-scan`, `--zone-maps`, `--reorg-mode`,
    /// `--stats-layout`) to an index configuration, so every experiment
    /// binary compares oracle vs. columnar vs. bitmask/zone-map
    /// execution — and full-sweep vs. incremental reorganization, slab
    /// vs. per-cluster statistics — without recompiling.
    pub fn apply_scan_flags(&self, mut config: IndexConfig) -> IndexConfig {
        config.scan_mode = self.scan_mode();
        config.candidate_scan = self.candidate_scan();
        config.zone_maps = self.zone_maps();
        config.reorg_mode = self.reorg_mode();
        config.stats_layout = self.stats_layout();
        config
    }
}
