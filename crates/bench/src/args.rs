//! Minimal command-line parsing for the experiment binaries (no external
//! dependency needed for `--key value` flags).

use std::collections::HashMap;

/// Parsed `--key value` flags.
pub struct Flags {
    values: HashMap<String, String>,
    present: Vec<String>,
}

impl Flags {
    /// Parses the process arguments. Flags are `--name value` pairs;
    /// bare `--name` toggles are recorded as present.
    pub fn from_env() -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut values = HashMap::new();
        let mut present = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            if let Some(name) = arg.strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    values.insert(name.to_string(), argv[i + 1].clone());
                    i += 2;
                    continue;
                }
                present.push(name.to_string());
            }
            i += 1;
        }
        Self { values, present }
    }

    /// Typed lookup with default.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.values
            .get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether a bare flag was passed.
    pub fn has(&self, name: &str) -> bool {
        self.present.iter().any(|p| p == name) || self.values.contains_key(name)
    }
}
