//! Experiment E12 (paper §1/§8): the cost-based clustering adapts to
//! query distributions that **vary in time**. A hotspot query stream
//! relocates periodically; after each shift the merging benefit function
//! reclaims clusters tailored to the old hotspot while splits develop the
//! new one, and the average query cost recovers.
//!
//! Usage:
//! ```text
//! cargo run --release -p acx-bench --bin adaptivity
//!     [--objects 30000] [--dims 8] [--phases 4] [--phase-queries 1000]
//!     [--scan-mode columnar|oracle] [--candidate-scan columnar|oracle]
//!     [--zone-maps on|off] [--reorg-mode incremental|full]
//! ```

use acx_bench::args::Flags;
use acx_bench::{ac_config, build_ac_with};
use acx_geom::SpatialQuery;
use acx_storage::StorageScenario;
use acx_workloads::{ShiftingHotspot, UniformWorkload, WorkloadConfig};

fn main() {
    let flags = Flags::from_env();
    let objects: usize = flags.get("objects", 30_000);
    let dims: usize = flags.get("dims", 8);
    let phases: usize = flags.get("phases", 4);
    let phase_queries: usize = flags.get("phase-queries", 1000);
    let seed: u64 = flags.get("seed", 0x5EED);

    println!("== Adaptivity to shifting query hotspots ==");
    println!("objects={objects} dims={dims} phases={phases} queries/phase={phase_queries}");

    let workload =
        UniformWorkload::with_max_length(WorkloadConfig::new(dims, objects, seed), 0.4);
    let data = workload.generate_objects();
    let mut index =
        build_ac_with(flags.apply_scan_flags(ac_config(dims, StorageScenario::Memory)), &data);

    let mut rng = WorkloadConfig::new(dims, objects, seed ^ 0xF1E1D).rng();
    let mut stream = ShiftingHotspot::new(
        dims,
        phase_queries as u64,
        0.35,
        0.08,
        &mut rng,
    );

    println!(
        "\n{:>6} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "phase", "early ms", "late ms", "clusters", "tot merges", "tot splits"
    );
    for phase in 0..phases {
        let mut early = 0.0;
        let mut late = 0.0;
        let half = phase_queries / 2;
        for k in 0..phase_queries {
            let w = stream.next_window(&mut rng);
            let cost = index
                .execute(&SpatialQuery::intersection(w))
                .metrics
                .priced_ms;
            if k < half {
                early += cost;
            } else {
                late += cost;
            }
        }
        println!(
            "{:>6} {:>10.4} {:>10.4} {:>10} {:>12} {:>12}",
            phase,
            early / half as f64,
            late / (phase_queries - half) as f64,
            index.cluster_count(),
            index.total_merges(),
            index.total_splits()
        );
    }
    println!(
        "\nWithin each phase the cost drops from 'early' to 'late' as the\n\
         clustering re-converges on the new hotspot; merges reclaim clusters\n\
         built for abandoned hotspots (paper §8: \"cope with workloads that\n\
         are skewed and varying in time\")."
    );
}
