//! Experiment E12 (paper §1/§8): the cost-based clustering adapts to
//! query distributions that **vary in time**. The scenario-zoo edition:
//! every [`acx_bench::adaptivity::SCENARIOS`] stream — drifting,
//! periodic, bursty, adversarial, mixed-kind, and clustered-population
//! — is driven through the index under both reorganization modes, and
//! the harness reports *time-to-readapt* after each scenario's abrupt
//! shift, wall-clock p50/p99 during the recovery churn, and the
//! split→merge thrash counters. A before/after hysteresis pair on the
//! oscillating adversary shows what the
//! [`acx_core::IndexConfig::merge_cooldown`] toggle buys.
//!
//! Results are recorded to `BENCH_adaptivity.json` (committed, like the
//! other `BENCH_*.json` snapshots).
//!
//! Usage:
//! ```text
//! cargo run --release -p acx_bench --bin adaptivity
//!     [--quick] [--out BENCH_adaptivity.json] [--scenario NAME]
//!     [--objects 20000] [--dims 8] [--warmup 3000] [--post 3000]
//!     [--band 1.25] [--merge-cooldown 0] [--hysteresis-cooldown 8]
//!     [--scan-mode columnar|oracle] [--candidate-scan columnar|oracle]
//!     [--zone-maps on|off] [--stats-layout arena|per-cluster]
//! ```
//! `--scenario` restricts the zoo sweep to one scenario;
//! `--merge-cooldown` applies to the zoo rows, while the dedicated
//! hysteresis section always compares cool-down off vs
//! `--hysteresis-cooldown` on the oscillating adversary.

use std::fmt::Write as _;

use acx_bench::adaptivity::{
    make_objects, make_scenario, measure_readapt, AdaptivityParams, AdaptivityRow, SCENARIOS,
};
use acx_bench::args::Flags;
use acx_bench::{ac_config, reorg_strategies};
use acx_storage::StorageScenario;
use acx_workloads::WorkloadConfig;

fn print_row(r: &AdaptivityRow) {
    let readapt = match r.readapt_queries {
        Some(q) => format!("{q:>5}q/{:>2}p", r.readapt_periods.unwrap_or(0)),
        None => "   never".to_string(),
    };
    println!(
        "{:>20} [{:>11}] cd={}: steady {:>7.4} -> shifted {:>7.4} ms/q  readapt {readapt}  \
         p50 {:>7.4} p99 {:>7.4} ms  thrash {:>2} blocked {:>2}  {:>3} merges {:>3} splits {:>3} clusters",
        r.scenario,
        r.mode,
        r.merge_cooldown,
        r.steady_ms,
        r.post_shift_ms,
        r.p50_wall_ms,
        r.p99_wall_ms,
        r.thrash_cycles,
        r.cooldown_blocked,
        r.merges,
        r.splits,
        r.clusters,
    );
    if r.arena_capacity_bytes > 0 {
        println!(
            "{:>20}   arena: {} live / {} capacity bytes, {} compactions",
            "", r.arena_live_bytes, r.arena_capacity_bytes, r.compactions,
        );
    }
}

fn json_row(json: &mut String, r: &AdaptivityRow, last: bool) {
    let readapt_q = r
        .readapt_queries
        .map_or("null".to_string(), |q| q.to_string());
    let readapt_p = r
        .readapt_periods
        .map_or("null".to_string(), |p| p.to_string());
    let _ = write!(
        json,
        "    {{\"scenario\": \"{}\", \"mode\": \"{}\", \"merge_cooldown\": {}, \
         \"steady_ms\": {:.5}, \"post_shift_ms\": {:.5}, \"readapt_queries\": {readapt_q}, \
         \"readapt_periods\": {readapt_p}, \"p50_wall_ms\": {:.5}, \"p99_wall_ms\": {:.5}, \
         \"thrash_cycles\": {}, \"cooldown_blocked\": {}, \"merges\": {}, \"splits\": {}, \
         \"clusters\": {}, \"arena_live_bytes\": {}, \"arena_capacity_bytes\": {}, \
         \"compactions\": {}}}",
        r.scenario,
        r.mode,
        r.merge_cooldown,
        r.steady_ms,
        r.post_shift_ms,
        r.p50_wall_ms,
        r.p99_wall_ms,
        r.thrash_cycles,
        r.cooldown_blocked,
        r.merges,
        r.splits,
        r.clusters,
        r.arena_live_bytes,
        r.arena_capacity_bytes,
        r.compactions,
    );
    json.push_str(if last { "\n" } else { ",\n" });
}

fn main() {
    let flags = Flags::from_env();
    let quick = flags.has("quick");
    let out: String = flags.get("out", "BENCH_adaptivity.json".to_string());
    let only: String = flags.get("scenario", String::new());
    let base_params = if quick {
        AdaptivityParams::quick()
    } else {
        AdaptivityParams::standard()
    };
    let params = AdaptivityParams {
        objects: flags.get("objects", base_params.objects),
        dims: flags.get("dims", base_params.dims),
        warmup_queries: flags.get("warmup", base_params.warmup_queries),
        post_queries: flags.get("post", base_params.post_queries),
        band: flags.get("band", base_params.band),
        seed: flags.get("seed", base_params.seed),
    };
    let zoo_cooldown = flags.merge_cooldown();
    let hysteresis_cooldown: u64 = flags.get("hysteresis-cooldown", 8);

    println!("== Adaptivity across the scenario zoo ==");
    println!(
        "objects={} dims={} warmup={} post={} band={} reorg_period=100",
        params.objects, params.dims, params.warmup_queries, params.post_queries, params.band
    );

    // Objects and queries derive from distinct seeds so the two streams
    // are uncorrelated even though both generators hash the same config.
    let obj_cfg = |p: &AdaptivityParams| WorkloadConfig::new(p.dims, p.objects, p.seed);
    let qry_cfg =
        |p: &AdaptivityParams| WorkloadConfig::new(p.dims, p.objects, p.seed ^ 0xF1E1D);

    let mut zoo: Vec<AdaptivityRow> = Vec::new();
    for name in SCENARIOS {
        if !only.is_empty() && only != name {
            continue;
        }
        let data = make_objects(name, &obj_cfg(&params));
        for (mode, mode_config) in reorg_strategies(params.dims) {
            let mut config = flags.apply_scan_flags(ac_config(
                params.dims,
                StorageScenario::Memory,
            ));
            config.reorg_mode = mode_config.reorg_mode;
            config.merge_cooldown = zoo_cooldown;
            let mut scenario = make_scenario(name, &qry_cfg(&params));
            let row = measure_readapt(
                name.to_string(),
                mode,
                scenario.as_mut(),
                config,
                &data,
                &params,
            );
            print_row(&row);
            zoo.push(row);
        }
    }

    // Hysteresis before/after on the adversary: same stream, cool-down
    // off vs on, incremental mode (decision-identity across modes is
    // asserted by the equivalence tests, cool-down included).
    let mut hysteresis: Vec<AdaptivityRow> = Vec::new();
    if only.is_empty() || only == "oscillating_heat" {
        println!("-- hysteresis on the oscillating adversary --");
        let data = make_objects("oscillating_heat", &obj_cfg(&params));
        for cooldown in [0, hysteresis_cooldown] {
            let mut config =
                flags.apply_scan_flags(ac_config(params.dims, StorageScenario::Memory));
            config.merge_cooldown = cooldown;
            let mut scenario = make_scenario("oscillating_heat", &qry_cfg(&params));
            let row = measure_readapt(
                "oscillating_heat".to_string(),
                "incremental",
                scenario.as_mut(),
                config,
                &data,
                &params,
            );
            print_row(&row);
            hysteresis.push(row);
        }
    }

    // Hand-rolled JSON: the workspace is offline, no serde available.
    let mut json = String::from("{\n  \"bench\": \"adaptivity\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"objects\": {}, \"dims\": {}, \"warmup_queries\": {}, \"post_shift_queries\": {},",
        params.objects, params.dims, params.warmup_queries, params.post_queries
    );
    let _ = writeln!(
        json,
        "  \"readapt_band\": {}, \"reorg_period\": 100,",
        params.band
    );
    json.push_str("  \"scenarios\": [\n");
    for (i, r) in zoo.iter().enumerate() {
        json_row(&mut json, r, i + 1 == zoo.len());
    }
    json.push_str("  ],\n  \"hysteresis_oscillating_heat\": [\n");
    for (i, r) in hysteresis.iter().enumerate() {
        json_row(&mut json, r, i + 1 == hysteresis.len());
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, &json).expect("write adaptivity snapshot");
    println!("wrote {out}");

    println!(
        "\nAfter each shift the cost spikes from 'steady' and the clustering\n\
         re-converges within the reported readapt window; merges reclaim\n\
         clusters built for abandoned regions (paper §8: \"cope with\n\
         workloads that are skewed and varying in time\")."
    );
}
