//! Durability overhead and recovery cost of the write-ahead log.
//!
//! Two questions, measured on the same driven workload (bulk load +
//! membership churn + query traffic with periodic reorganizations):
//!
//! 1. What does logging cost per flush policy? The same op stream runs
//!    with no WAL (baseline), then with a [`FileBacking`] WAL under
//!    `record`, `batch:64`, and `epoch` flushing.
//! 2. What does recovery cost as the log grows? The full `record` log
//!    is replayed from byte prefixes of increasing length, plus once
//!    from a mid-stream checkpoint + WAL suffix — the fast path
//!    [`AdaptiveClusterIndex::checkpoint`] exists for.
//!
//! Results are recorded to `BENCH_durability.json` (committed, like the
//! other `BENCH_*.json` snapshots).
//!
//! Usage:
//! ```text
//! cargo run --release -p acx_bench --bin durability
//!     [--objects 8000] [--queries 4000] [--dims 8] [--seed 24029]
//!     [--quick] [--out BENCH_durability.json]
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use acx_bench::args::Flags;
use acx_core::{AdaptiveClusterIndex, IndexConfig};
use acx_geom::{ObjectId, SpatialQuery};
use acx_storage::{FileBacking, FlushPolicy, MemBacking, Wal};
use acx_workloads::{calibrate, UniformWorkload, Workload, WorkloadConfig};

fn temp_file(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "acx-durability-bench-{tag}-{}.wal",
        std::process::id()
    ));
    path
}

struct Driven {
    wall_ms: f64,
    reorgs: u64,
    clusters: usize,
    log_bytes: u64,
    log_records: u64,
}

/// Runs the full op stream — bulk load, 10% churn (remove + update +
/// re-insert), query traffic with automatic reorganizations — against a
/// fresh index, optionally logging to a file-backed WAL.
fn drive(
    config: &IndexConfig,
    objects: &[acx_geom::HyperRect],
    queries: &[SpatialQuery],
    wal: Option<(&PathBuf, FlushPolicy)>,
) -> Driven {
    let mut index = AdaptiveClusterIndex::new(config.clone()).expect("valid config");
    if let Some((path, policy)) = wal {
        let backing = FileBacking::create(path).expect("create wal file");
        let wal = Wal::create(Box::new(backing), policy, config.dims).expect("create wal");
        index.attach_wal(wal).expect("attach wal");
    }
    let start = Instant::now();
    for (i, rect) in objects.iter().enumerate() {
        index
            .insert(ObjectId(i as u32), rect.clone())
            .expect("insert");
    }
    let churn = objects.len() / 10;
    for i in 0..churn {
        let id = ObjectId((i * 7 % objects.len()) as u32);
        let rect = index.get(id).expect("churn target");
        index.remove(id).expect("remove");
        index.insert(id, rect.clone()).expect("re-insert");
        index.update(id, rect).expect("update");
    }
    for q in queries {
        index.execute(q);
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(index.wal_failure().is_none(), "log faulted during the run");
    let (log_bytes, log_records) = match index.detach_wal() {
        Some(wal) => {
            let records = wal.records();
            let mut store = wal.into_store();
            (
                store.read_durable().expect("read log").len() as u64,
                records,
            )
        }
        None => (0, 0),
    };
    Driven {
        wall_ms,
        reorgs: index.reorganizations(),
        clusters: index.cluster_count(),
        log_bytes,
        log_records,
    }
}

fn main() {
    let flags = Flags::from_env();
    let quick = flags.has("quick");
    let objects_n: usize = flags.get("objects", if quick { 1_500 } else { 8_000 });
    let queries_n: usize = flags.get("queries", if quick { 800 } else { 4_000 });
    let dims: usize = flags.get("dims", 8);
    let seed: u64 = flags.get("seed", 24_029);
    let out: String = flags.get("out", "BENCH_durability.json".to_string());

    let workload =
        UniformWorkload::with_max_length(WorkloadConfig::new(dims, objects_n, seed), 0.3);
    let data = workload.generate_objects();
    let extent = calibrate::uniform_query_extent(&workload, 5e-4, seed);
    let mut qrng = WorkloadConfig::new(dims, objects_n, seed ^ 0xF1E1D).rng();
    let queries: Vec<SpatialQuery> = (0..queries_n)
        .map(|_| SpatialQuery::intersection(workload.sample_window(&mut qrng, extent)))
        .collect();
    let mut config = IndexConfig::memory(dims);
    config.reorg_period = 100;

    // -- 1. logging overhead per flush policy ------------------------
    println!("-- wal overhead ({objects_n} objects, {queries_n} queries, dims={dims}) --");
    let baseline = drive(&config, &data, &queries, None);
    println!(
        "  {:<12} {:>9.1} ms  (reorgs={}, clusters={})",
        "no-wal", baseline.wall_ms, baseline.reorgs, baseline.clusters
    );
    let policies = [
        ("record", FlushPolicy::PerRecord),
        ("batch:64", FlushPolicy::PerBatch(64)),
        ("epoch", FlushPolicy::PerEpoch),
    ];
    let mut rows = Vec::new();
    let wal_path = temp_file("policy");
    for (label, policy) in policies {
        let run = drive(&config, &data, &queries, Some((&wal_path, policy)));
        let overhead = (run.wall_ms - baseline.wall_ms) / baseline.wall_ms * 100.0;
        println!(
            "  {:<12} {:>9.1} ms  (+{overhead:.1}%, {} records, {} KiB)",
            label,
            run.wall_ms,
            run.log_records,
            run.log_bytes / 1024
        );
        rows.push((label, run, overhead));
    }

    // -- 2. recovery time vs. log length -----------------------------
    // Replay byte prefixes of the full per-record log from memory, so
    // the numbers isolate replay work from disk streaming.
    println!("-- recovery vs. log length --");
    let run = drive(
        &config,
        &data,
        &queries,
        Some((&wal_path, FlushPolicy::PerRecord)),
    );
    let log = std::fs::read(&wal_path).expect("read full log");
    assert_eq!(log.len() as u64, run.log_bytes);
    let mut recovery_rows = Vec::new();
    for fraction in [0.25, 0.5, 1.0] {
        let cut = (log.len() as f64 * fraction) as usize;
        let start = Instant::now();
        let (index, report) = AdaptiveClusterIndex::recover(
            None,
            Box::new(MemBacking::from_bytes(log[..cut].to_vec())),
            FlushPolicy::PerRecord,
            config.clone(),
        )
        .expect("recover from prefix");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        index.check_invariants().expect("recovered invariants");
        println!(
            "  {:>5.0}% of log: {:>8} records -> {:>7.1} ms ({} objects, {} clusters)",
            fraction * 100.0,
            report.replayed_records,
            ms,
            report.objects,
            report.clusters
        );
        recovery_rows.push((fraction, report.replayed_records, cut as u64, ms));
    }

    // -- 3. checkpoint + suffix --------------------------------------
    // Same stream, but a checkpoint lands after the load + churn; only
    // the query-phase structural records remain in the log.
    let ckpt_path = temp_file("ckpt");
    let mut index = AdaptiveClusterIndex::new(config.clone()).expect("valid config");
    let backing = FileBacking::create(&wal_path).expect("create wal file");
    index
        .attach_wal(Wal::create(Box::new(backing), FlushPolicy::PerRecord, dims).expect("wal"))
        .expect("attach");
    for (i, rect) in data.iter().enumerate() {
        index
            .insert(ObjectId(i as u32), rect.clone())
            .expect("insert");
    }
    index.checkpoint(&ckpt_path).expect("checkpoint");
    for q in &queries {
        index.execute(q);
    }
    drop(index.detach_wal());
    let suffix = std::fs::read(&wal_path).expect("read suffix log");
    let start = Instant::now();
    let (index, report) = AdaptiveClusterIndex::recover(
        Some(&ckpt_path),
        Box::new(MemBacking::from_bytes(suffix.clone())),
        FlushPolicy::PerRecord,
        config.clone(),
    )
    .expect("recover from checkpoint");
    let ckpt_ms = start.elapsed().as_secs_f64() * 1e3;
    index.check_invariants().expect("recovered invariants");
    println!(
        "  checkpoint + {} suffix records -> {:>7.1} ms",
        report.replayed_records, ckpt_ms
    );
    let _ = std::fs::remove_file(&wal_path);
    let _ = std::fs::remove_file(&ckpt_path);

    // Hand-rolled JSON: the workspace is offline, no serde available.
    let mut json = String::from("{\n  \"bench\": \"durability\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"objects\": {objects_n}, \"queries\": {queries_n}, \"dims\": {dims}, \"reorg_period\": {},",
        config.reorg_period
    );
    let _ = writeln!(
        json,
        "  \"baseline_no_wal\": {{\"wall_ms\": {:.3}, \"reorgs\": {}, \"clusters\": {}}},",
        baseline.wall_ms, baseline.reorgs, baseline.clusters
    );
    json.push_str("  \"flush_policies\": [\n");
    for (i, (label, run, overhead)) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"policy\": \"{label}\", \"wall_ms\": {:.3}, \"overhead_pct\": {overhead:.2}, \"log_records\": {}, \"log_bytes\": {}}}{}",
            run.wall_ms,
            run.log_records,
            run.log_bytes,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"recovery\": [\n");
    for (i, (fraction, records, bytes, ms)) in recovery_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"log_fraction\": {fraction}, \"replayed_records\": {records}, \"log_bytes\": {bytes}, \"recover_ms\": {ms:.3}}}{}",
            if i + 1 == recovery_rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"checkpoint_recovery\": {{\"suffix_records\": {}, \"suffix_bytes\": {}, \"recover_ms\": {ckpt_ms:.3}}},",
        report.replayed_records,
        suffix.len()
    );
    json.push_str(
        "  \"note\": \"overhead is the full driven phase (load + churn + queries) vs the no-wal baseline on the same stream; recovery replays byte prefixes of the per-record log from memory\"\n}\n",
    );
    std::fs::write(&out, &json).expect("write durability snapshot");
    println!("wrote {out}");
}
