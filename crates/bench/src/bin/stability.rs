//! Experiment E11 (paper §7.1): under an unchanged query distribution the
//! clustering process reaches a stable state in fewer than 10
//! reorganization steps (one step every 100 queries).
//!
//! Usage:
//! ```text
//! cargo run --release -p acx-bench --bin stability
//!     [--objects 30000] [--dims 16] [--steps 15]
//!     [--scan-mode columnar|oracle] [--candidate-scan columnar|oracle]
//!     [--zone-maps on|off] [--reorg-mode incremental|full]
//!     [--stats-layout arena|per-cluster]
//!     [--wal PATH] [--flush-policy record|batch[:N]|epoch]
//! ```

use acx_bench::args::Flags;
use acx_bench::{ac_config, build_ac_with};
use acx_geom::SpatialQuery;
use acx_storage::StorageScenario;
use acx_workloads::{calibrate, UniformWorkload, Workload, WorkloadConfig};

fn main() {
    let flags = Flags::from_env();
    let objects: usize = flags.get("objects", 30_000);
    let dims: usize = flags.get("dims", 16);
    let steps: usize = flags.get("steps", 15);
    let seed: u64 = flags.get("seed", 0x5EED);

    println!("== Clustering stability under a fixed query distribution ==");
    let workload = UniformWorkload::with_max_length(WorkloadConfig::new(dims, objects, seed), 0.5);
    let data = workload.generate_objects();
    let extent = calibrate::uniform_query_extent(&workload, 5e-4, seed);
    let mut qrng = WorkloadConfig::new(dims, objects, seed ^ 0xF1E1D).rng();

    let mut index = build_ac_with(
        flags.apply_scan_flags(ac_config(dims, StorageScenario::Memory)),
        &data,
    );
    flags.attach_wal(&mut index);
    println!(
        "{:>5} {:>8} {:>8} {:>10} {:>8}",
        "step", "merges", "splits", "clusters", "churn%"
    );
    let mut stable_at = None;
    let (mut prev_merges, mut prev_splits) = (0u64, 0u64);
    for step in 0..steps {
        // The index reorganizes automatically every 100 queries.
        let before = index.reorganizations();
        while index.reorganizations() == before {
            let w = workload.sample_window(&mut qrng, extent);
            index.execute(&SpatialQuery::intersection(w));
        }
        let step_merges = index.total_merges() - prev_merges;
        let step_splits = index.total_splits() - prev_splits;
        prev_merges = index.total_merges();
        prev_splits = index.total_splits();
        let clusters = index.cluster_count();
        let churn = (step_merges + step_splits) as f64 / clusters.max(1) as f64 * 100.0;
        println!(
            "{:>5} {:>8} {:>8} {:>10} {:>8.2}",
            step, step_merges, step_splits, clusters, churn
        );
        if churn < 2.0 && stable_at.is_none() && step > 0 {
            stable_at = Some(step);
        }
    }
    match stable_at {
        Some(s) => println!("\nstable state (churn < 2 %) reached at step {s} (paper: < 10)"),
        None => println!("\nno stable state within {steps} steps"),
    }
}
