//! Experiment E9 (paper §7.2, "Point-Enclosing Queries"): events as
//! points over interval-defining subscriptions. The paper reports AC up
//! to 16× faster than Sequential Scan in memory and up to 4× on disk.
//!
//! Usage:
//! ```text
//! cargo run --release -p acx-bench --bin point_enclosing
//!     [--objects 50000] [--dims 16] [--warmup 600] [--measured 300]
//!     [--scan-mode columnar|oracle] [--candidate-scan columnar|oracle]
//!     [--zone-maps on|off] [--reorg-mode incremental|full]
//!     [--stats-layout arena|per-cluster]
//!     [--wal PATH] [--flush-policy record|batch[:N]|epoch]
//! ```

use acx_bench::args::Flags;
use acx_bench::{ac_config, build_ac_with, build_ss, run_ac, run_baseline};
use acx_geom::SpatialQuery;
use acx_storage::StorageScenario;
use acx_workloads::{SkewedWorkload, UniformWorkload, Workload, WorkloadConfig};

fn main() {
    let flags = Flags::from_env();
    let objects: usize = flags.get("objects", 50_000);
    let dims: usize = flags.get("dims", 16);
    let warmup_n: usize = flags.get("warmup", 600);
    let measured_n: usize = flags.get("measured", 300);
    let seed: u64 = flags.get("seed", 0x5EED);

    println!("== Point-enclosing queries: AC speedup over Sequential Scan ==");
    println!("objects={objects} dims={dims}");

    for (name, data) in [
        (
            "uniform",
            UniformWorkload::with_max_length(WorkloadConfig::new(dims, objects, seed), 0.3)
                .generate_objects(),
        ),
        (
            "skewed",
            SkewedWorkload::new(WorkloadConfig::new(dims, objects, seed), 0.3).generate_objects(),
        ),
    ] {
        let workload = UniformWorkload::new(WorkloadConfig::new(dims, objects, seed ^ 0xF00D));
        let mut qrng = WorkloadConfig::new(dims, objects, seed ^ 0xF1E1D).rng();
        let make = |rng: &mut rand::rngs::StdRng, n: usize| -> Vec<SpatialQuery> {
            (0..n)
                .map(|_| SpatialQuery::point_enclosing(workload.sample_point(rng)))
                .collect()
        };
        let warmup = make(&mut qrng, warmup_n);
        let measured = make(&mut qrng, measured_n);

        let ss = build_ss(dims, &data);
        let ss_report = run_baseline("SS", 1, objects, dims, &measured, |q| ss.execute(q));

        let mut ac_mem = build_ac_with(
            flags.apply_scan_flags(ac_config(dims, StorageScenario::Memory)),
            &data,
        );
        flags.attach_wal(&mut ac_mem);
        let ac_mem_report = run_ac(&mut ac_mem, &warmup, &measured, objects);
        let mut ac_disk = build_ac_with(
            flags.apply_scan_flags(ac_config(dims, StorageScenario::Disk)),
            &data,
        );
        flags.attach_wal(&mut ac_disk);
        let ac_disk_report = run_ac(&mut ac_disk, &warmup, &measured, objects);

        let mem_speedup = ss_report.priced_memory_ms / ac_mem_report.priced_memory_ms;
        let disk_speedup = ss_report.priced_disk_ms / ac_disk_report.priced_disk_ms;
        let wall_speedup = ss_report.wall_ms / ac_mem_report.wall_ms;

        println!("\n-- {name} workload --");
        println!(
            "SS : mem={:.4} ms  disk={:.1} ms  (wall {:.4} ms)",
            ss_report.priced_memory_ms, ss_report.priced_disk_ms, ss_report.wall_ms
        );
        println!(
            "AC : mem={:.4} ms  disk={:.1} ms  (wall {:.4} ms; {} / {} clusters mem/disk)",
            ac_mem_report.priced_memory_ms,
            ac_disk_report.priced_disk_ms,
            ac_mem_report.wall_ms,
            ac_mem_report.total_units,
            ac_disk_report.total_units
        );
        println!(
            "speedup: memory {mem_speedup:.1}x (wall {wall_speedup:.1}x), disk {disk_speedup:.1}x"
        );
        println!(
            "AC verified {:.1}% of objects vs SS 100% (paper: up to 16x mem, 4x disk)",
            ac_mem_report.verified_fraction * 100.0
        );
    }
}
