//! Experiment E5–E8 (paper Fig. 8, charts A/B and data-access tables):
//! skewed workload (a random quarter of dimensions twice as selective per
//! object), dimensionality swept 16→40, average query selectivity 0.05 %,
//! both storage scenarios.
//!
//! Usage:
//! ```text
//! cargo run --release -p acx-bench --bin fig8 [--objects 30000]
//!     [--warmup 600] [--measured 200] [--seed 24029] [--full]
//!     [--scan-mode columnar|oracle] [--candidate-scan columnar|oracle]
//!     [--zone-maps on|off] [--reorg-mode incremental|full]
//!     [--stats-layout arena|per-cluster]
//!     [--wal PATH] [--flush-policy record|batch[:N]|epoch]
//! ```

use acx_bench::args::Flags;
use acx_bench::{ac_config, build_ac_with, build_rs, build_ss, run_ac, run_baseline, MethodReport};
use acx_geom::SpatialQuery;
use acx_storage::StorageScenario;
use acx_workloads::{calibrate, SkewedWorkload, WorkloadConfig};

fn main() {
    let flags = Flags::from_env();
    let objects: usize = if flags.has("full") {
        1_000_000
    } else {
        flags.get("objects", 30_000)
    };
    let warmup_n: usize = flags.get("warmup", 600);
    let measured_n: usize = flags.get("measured", 200);
    let seed: u64 = flags.get("seed", 0x5EED);
    let target_selectivity = 5e-4; // 0.05 % (paper §7.2)
    let dims_list = [16usize, 20, 24, 28, 32, 36, 40];

    println!("== Fig. 8: skewed workload, varying space dimensionality ==");
    println!("objects={objects} selectivity=0.05% warmup={warmup_n} measured={measured_n}");

    let mut rows: Vec<(
        usize,
        MethodReport,
        MethodReport,
        MethodReport,
        MethodReport,
    )> = Vec::new();

    for &dims in &dims_list {
        eprintln!("dims={dims}: calibrating base object length …");
        let base = calibrate::skewed_base_length(dims, target_selectivity, seed ^ dims as u64);
        let workload = SkewedWorkload::new(WorkloadConfig::new(dims, objects, seed), base);
        let data = workload.generate_objects();

        let mut qrng = WorkloadConfig::new(dims, objects, seed ^ 0xF1E1D).rng();
        let make = |rng: &mut rand::rngs::StdRng, n: usize| -> Vec<SpatialQuery> {
            (0..n)
                .map(|_| SpatialQuery::intersection(workload.sample_unconstrained_window(rng)))
                .collect()
        };
        let warmup = make(&mut qrng, warmup_n);
        let measured = make(&mut qrng, measured_n);

        eprintln!("dims={dims}: building R*-tree …");
        let rs = build_rs(dims, &data);
        let ss = build_ss(dims, &data);

        eprintln!("dims={dims}: adaptive clustering (memory) …");
        let mut ac_mem = build_ac_with(
            flags.apply_scan_flags(ac_config(dims, StorageScenario::Memory)),
            &data,
        );
        flags.attach_wal(&mut ac_mem);
        let ac_mem_report = run_ac(&mut ac_mem, &warmup, &measured, objects);

        eprintln!("dims={dims}: adaptive clustering (disk) …");
        let mut ac_disk = build_ac_with(
            flags.apply_scan_flags(ac_config(dims, StorageScenario::Disk)),
            &data,
        );
        flags.attach_wal(&mut ac_disk);
        let ac_disk_report = run_ac(&mut ac_disk, &warmup, &measured, objects);

        let rs_report = run_baseline("RS", rs.node_count(), objects, dims, &measured, |q| {
            rs.execute(q)
        });
        let ss_report = run_baseline("SS", 1, objects, dims, &measured, |q| ss.execute(q));
        eprintln!(
            "dims={dims}: base={base:.3} measured-selectivity={:.2e} AC(mem)={} AC(disk)={} RS={}",
            ac_mem_report.avg_matches / objects as f64,
            ac_mem_report.total_units,
            ac_disk_report.total_units,
            rs_report.total_units
        );
        rows.push((dims, ss_report, rs_report, ac_mem_report, ac_disk_report));
    }

    println!("\n-- Chart A: memory scenario, avg query time [ms] (priced | wall) --");
    println!(
        "{:>6} {:>22} {:>22} {:>22}",
        "dims", "Scan (SS)", "R*-tree (RS)", "Adaptive (AC)"
    );
    for (dims, ss, rs, ac, _) in &rows {
        println!(
            "{:>6} {:>12.4} |{:>8.4} {:>12.4} |{:>8.4} {:>12.4} |{:>8.4}",
            dims,
            ss.priced_memory_ms,
            ss.wall_ms,
            rs.priced_memory_ms,
            rs.wall_ms,
            ac.priced_memory_ms,
            ac.wall_ms
        );
    }

    println!("\n-- Fig. 8 Table 1: memory scenario data access --");
    println!(
        "{:>6} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "dims", "AC clstrs", "RS nodes", "AC expl%", "RS expl%", "AC objs%", "RS objs%"
    );
    for (dims, _, rs, ac, _) in &rows {
        println!(
            "{:>6} {:>10} {:>10} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            dims,
            ac.total_units,
            rs.total_units,
            ac.explored_fraction * 100.0,
            rs.explored_fraction * 100.0,
            ac.verified_fraction * 100.0,
            rs.verified_fraction * 100.0
        );
    }

    println!("\n-- Chart B: disk scenario, avg simulated query time [ms] --");
    println!(
        "{:>6} {:>14} {:>14} {:>14}",
        "dims", "Scan (SS)", "R*-tree (RS)", "Adaptive (AC)"
    );
    for (dims, ss, rs, _, ac) in &rows {
        println!(
            "{:>6} {:>14.1} {:>14.1} {:>14.1}",
            dims, ss.priced_disk_ms, rs.priced_disk_ms, ac.priced_disk_ms
        );
    }

    println!("\n-- Fig. 8 Table 2: disk scenario data access --");
    println!(
        "{:>6} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "dims", "AC clstrs", "RS nodes", "AC expl%", "RS expl%", "AC objs%", "RS objs%"
    );
    for (dims, _, rs, _, ac) in &rows {
        println!(
            "{:>6} {:>10} {:>10} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            dims,
            ac.total_units,
            rs.total_units,
            ac.explored_fraction * 100.0,
            rs.explored_fraction * 100.0,
            ac.verified_fraction * 100.0,
            rs.verified_fraction * 100.0
        );
    }
}
