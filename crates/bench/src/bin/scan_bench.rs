//! Snapshot benchmark of the columnar/bitmask scan kernels vs their
//! scalar oracles, recorded to `BENCH_scan.json` and
//! `BENCH_candidates.json` so the repository's perf trajectory is
//! tracked across PRs.
//!
//! Four layers are measured single-threaded:
//!
//! * **kernel** — `scan_columns` against per-object `matches_flat` over
//!   one flat segment, for every (objects, dims) in the matrix.
//! * **candidate kernel** — `scan_candidates` against the scalar
//!   candidate-at-a-time loop over one cluster's candidate set, for
//!   division factors yielding `f²·Nd` from hundreds to thousands —
//!   columns read both from an owned per-cluster set and from a range
//!   of the index-wide statistics arena (identical kernel, different
//!   backing memory).
//! * **index** — `AdaptiveClusterIndex` point-enclosing queries (§7.2,
//!   the scan-dominated workload) through the read-only `query_with`
//!   path, columnar vs scalar oracle, on identically adapted indexes.
//! * **recorded execute** — the full `execute` path (statistics
//!   recording included) under three strategies: the current default
//!   (bitmask members + bitmask candidates + zone maps), the PR 3
//!   equivalent (columnar members, scalar candidate loop, no zones),
//!   and the full scalar oracle.
//! * **reorganization** — the per-period maintenance pass on an adapted
//!   index: the incremental pass (dirty set + screen + columnar benefit
//!   columns) over the statistics arena, the same pass over per-cluster
//!   `Vec` columns, and the decision-identical full scalar sweep, all
//!   recorded to `BENCH_reorg.json`.
//!
//! Usage:
//! ```text
//! cargo run --release -p acx_bench --bin scan_bench
//!     [--quick] [--out BENCH_scan.json] [--cand-out BENCH_candidates.json]
//!     [--reorg-out BENCH_reorg.json] [--index-objects N] [--repeats N]
//!     [--scan-mode columnar|oracle] [--candidate-scan columnar|oracle]
//!     [--zone-maps on|off] [--stats-layout arena|per-cluster]
//! ```
//! The kernel toggles apply to the *index* section so oracle vs
//! columnar vs bitmask/zone-map runs need no recompilation; the
//! recorded-execute and reorganization sections always measure their
//! fixed strategy matrices.

use std::fmt::Write as _;
use std::time::Instant;

use acx_bench::args::Flags;
use acx_bench::{adapted_ac, build_ac_with, recorded_strategies, reorg_layout_strategies};
use acx_core::candidates::{CandidateSet, StatsArena};
use acx_core::{IndexConfig, QueryScratch, ScanMode, Signature, StatsDelta};
use acx_geom::scan::{
    scan_candidates_with_cutoff, scan_columns, PairedColumns, ScanScratch,
    CANDIDATE_DIRECT_CUTOFF,
};
use acx_geom::{Scalar, SpatialQuery, OBJECT_ID_BYTES};
use acx_workloads::{UniformWorkload, Workload, WorkloadConfig};

/// Median-of-repeats nanoseconds per query for one closure.
fn time_per_query<F: FnMut(usize) -> u64>(queries: usize, repeats: usize, mut run: F) -> f64 {
    let mut samples: Vec<f64> = (0..repeats)
        .map(|_| {
            let started = Instant::now();
            let mut guard = 0u64;
            for k in 0..queries {
                guard = guard.wrapping_add(run(k));
            }
            std::hint::black_box(guard);
            started.elapsed().as_nanos() as f64 / queries as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

struct KernelRow {
    dims: usize,
    objects: usize,
    columnar_ns: f64,
    scalar_ns: f64,
}

fn kernel_matrix(sizes: &[usize], dims_list: &[usize], repeats: usize) -> Vec<KernelRow> {
    let mut rows = Vec::new();
    for &dims in dims_list {
        for &n in sizes {
            let workload =
                UniformWorkload::with_max_length(WorkloadConfig::new(dims, n, 0x5CA7), 0.3);
            let mut rng = WorkloadConfig::new(dims, n, 0x5CA7).rng();
            let width = 2 * dims;
            let mut flat: Vec<Scalar> = Vec::with_capacity(n * width);
            for _ in 0..n {
                workload.sample_object(&mut rng).write_flat(&mut flat);
            }
            let mut cols = vec![Vec::with_capacity(n); width];
            for row in flat.chunks_exact(width) {
                for (k, &v) in row.iter().enumerate() {
                    cols[k].push(v);
                }
            }
            let queries: Vec<SpatialQuery> = (0..64)
                .map(|_| SpatialQuery::point_enclosing(workload.sample_point(&mut rng)))
                .collect();

            let mut scratch = ScanScratch::new();
            let columnar_ns = time_per_query(queries.len(), repeats, |k| {
                let out = scan_columns(&queries[k], &PairedColumns::new(&cols), &mut scratch);
                out.verified_bytes() + out.matched as u64
            });
            let scalar_ns = time_per_query(queries.len(), repeats, |k| {
                let mut acc = 0u64;
                for row in flat.chunks_exact(width) {
                    let out = queries[k].matches_flat(row);
                    acc += OBJECT_ID_BYTES as u64
                        + 8 * out.dims_checked as u64
                        + out.matched as u64;
                }
                acc
            });
            println!(
                "kernel  d={dims} n={n:>6}: columnar {columnar_ns:>12.0} ns/q  scalar {scalar_ns:>12.0} ns/q  speedup {:.2}x",
                scalar_ns / columnar_ns
            );
            rows.push(KernelRow {
                dims,
                objects: n,
                columnar_ns,
                scalar_ns,
            });
        }
    }
    rows
}

struct CandidateRow {
    dims: usize,
    division_factor: u8,
    candidates: usize,
    kernel_ns: f64,
    arena_kernel_ns: f64,
    direct_ns: f64,
    scalar_ns: f64,
}

/// One cluster's candidate loop in isolation: the bitmask kernel vs the
/// candidate-at-a-time scalar oracle, across division factors pushing
/// `f²·Nd` from the paper's 160 (f = 4, 16 d) past 1k. The kernel is
/// timed twice — over an owned per-cluster set's columns and over the
/// same columns as a mid-slab range of a populated statistics arena —
/// so a projection or locality cost of the slab layout would show here.
/// Both dispatch paths of `scan_candidates` are forced per row
/// (vectorized via cutoff 0, direct mask-bit loop via cutoff MAX) so
/// the committed snapshot records the crossover that justifies
/// `CANDIDATE_DIRECT_CUTOFF`.
fn candidate_matrix(configs: &[(usize, u8)], repeats: usize) -> Vec<CandidateRow> {
    let mut rows = Vec::new();
    for &(dims, f) in configs {
        let cands = CandidateSet::generate(&Signature::root(dims), f);
        // The measured range sits between neighbors, as it would in an
        // index whose clusters all share the slab.
        let mut arena = StatsArena::new();
        arena.alloc(&cands);
        let mid = arena.alloc(&cands);
        arena.alloc(&cands);
        let workload = UniformWorkload::with_max_length(
            WorkloadConfig::new(dims, 1024, 0xCA7D),
            0.3,
        );
        let mut rng = WorkloadConfig::new(dims, 1024, 0xCA7D).rng();
        let queries: Vec<SpatialQuery> = (0..64)
            .map(|k| match k % 4 {
                0 => SpatialQuery::intersection(workload.sample_window(&mut rng, 0.3)),
                1 => SpatialQuery::containment(workload.sample_window(&mut rng, 0.5)),
                2 => SpatialQuery::enclosure(workload.sample_window(&mut rng, 0.1)),
                _ => SpatialQuery::point_enclosing(workload.sample_point(&mut rng)),
            })
            .collect();

        let mut scratch = ScanScratch::new();
        let kernel_ns = time_per_query(queries.len(), repeats, |k| {
            scan_candidates_with_cutoff(&queries[k], &cands.columns(), &mut scratch, 0) as u64
        });
        let arena_kernel_ns = time_per_query(queries.len(), repeats, |k| {
            scan_candidates_with_cutoff(&queries[k], &arena.slice(mid).columns(), &mut scratch, 0)
                as u64
        });
        let direct_ns = time_per_query(queries.len(), repeats, |k| {
            scan_candidates_with_cutoff(&queries[k], &cands.columns(), &mut scratch, usize::MAX)
                as u64
        });
        let scalar_ns = time_per_query(queries.len(), repeats, |k| {
            let mut acc = 0u64;
            for ci in 0..cands.len() {
                acc += cands.matches_query(ci, &queries[k]) as u64;
            }
            acc
        });
        println!(
            "cands   d={dims} f={f} ({:>5} candidates): kernel {kernel_ns:>9.0} ns/q  arena {arena_kernel_ns:>9.0} ns/q  direct {direct_ns:>9.0} ns/q  scalar {scalar_ns:>9.0} ns/q  speedup {:.2}x  [default: {}]",
            cands.len(),
            scalar_ns / kernel_ns,
            if cands.len() < CANDIDATE_DIRECT_CUTOFF {
                "direct"
            } else {
                "kernel"
            }
        );
        rows.push(CandidateRow {
            dims,
            division_factor: f,
            candidates: cands.len(),
            kernel_ns,
            arena_kernel_ns,
            direct_ns,
            scalar_ns,
        });
    }
    rows
}

struct IndexRow {
    mode: String,
    ns_per_query: f64,
}

struct RecordedRow {
    mode: &'static str,
    recorded_ns: f64,
    execute_ns: f64,
}

/// The acceptance workload: §7.2 point-enclosing queries on an adapted
/// 16-d index through the read-only path, columnar (with the CLI's zone
/// toggle) vs scalar oracle.
fn index_point_enclosing(objects: usize, repeats: usize, flags: &Flags) -> Vec<IndexRow> {
    let dims = 16;
    let workload =
        UniformWorkload::with_max_length(WorkloadConfig::new(dims, objects, 0x5EED), 0.3);
    let data = workload.generate_objects();
    let mut rng = WorkloadConfig::new(dims, objects, 17).rng();
    let queries: Vec<SpatialQuery> = (0..256)
        .map(|_| SpatialQuery::point_enclosing(workload.sample_point(&mut rng)))
        .collect();

    let mut rows = Vec::new();
    let columnar_cfg = flags.apply_scan_flags(IndexConfig::memory(dims));
    let columnar_label = match (columnar_cfg.scan_mode, columnar_cfg.zone_maps) {
        (ScanMode::Columnar, true) => "columnar".to_string(),
        (ScanMode::Columnar, false) => "columnar_nozones".to_string(),
        (ScanMode::ScalarOracle, _) => "flagged_oracle".to_string(),
    };
    let oracle_cfg = IndexConfig {
        scan_mode: ScanMode::ScalarOracle,
        candidate_scan: ScanMode::ScalarOracle,
        ..IndexConfig::memory(dims)
    };
    for (config, label) in [
        (columnar_cfg, columnar_label),
        (oracle_cfg, "scalar_oracle".to_string()),
    ] {
        let index = adapted_ac(config, &data, &queries);
        let mut scratch = QueryScratch::new();
        let ns = time_per_query(queries.len(), repeats, |k| {
            let metrics = index.query_with(&queries[k], &mut scratch);
            metrics.stats.verified_bytes + scratch.matches().len() as u64
        });
        println!(
            "index   point_enclosing d={dims} n={objects} [{label}]: {ns:>10.0} ns/q  ({} clusters)",
            index.cluster_count()
        );
        rows.push(IndexRow {
            mode: label,
            ns_per_query: ns,
        });
    }
    println!(
        "index   speedup columnar over oracle: {:.2}x",
        rows[1].ns_per_query / rows[0].ns_per_query
    );
    rows
}

/// Recorded execution at 16 dims, two layers per strategy: the
/// statistics-recording read phase (`query_recorded_with` through a
/// reused, cleared delta — what batch workers run) and the full
/// `execute` (recording plus `apply_stats` plus amortized periodic
/// reorganization). The current default is compared against its own
/// scalar-candidate/no-zones mode and the full oracle; the committed
/// JSON additionally carries the numbers measured at the PR 3 commit
/// with the same harness for the cross-PR trajectory.
fn recorded_execute(objects: usize, repeats: usize) -> Vec<RecordedRow> {
    let dims = 16;
    let workload =
        UniformWorkload::with_max_length(WorkloadConfig::new(dims, objects, 0x5EED), 0.3);
    let data = workload.generate_objects();
    let mut rng = WorkloadConfig::new(dims, objects, 17).rng();
    let queries: Vec<SpatialQuery> = (0..256)
        .map(|_| SpatialQuery::point_enclosing(workload.sample_point(&mut rng)))
        .collect();

    let mut rows = Vec::new();
    for (label, config) in recorded_strategies(dims) {
        let mut index = adapted_ac(config, &data, &queries);
        let mut scratch = QueryScratch::new();
        let mut delta = StatsDelta::new();
        let mut explored = 0u64;
        for q in &queries {
            delta.clear();
            explored += index
                .query_recorded_with(q, &mut delta, &mut scratch)
                .stats
                .clusters_explored;
        }
        let recorded_ns = time_per_query(queries.len(), repeats, |k| {
            delta.clear();
            let metrics = index.query_recorded_with(&queries[k], &mut delta, &mut scratch);
            metrics.stats.verified_bytes + scratch.matches().len() as u64
        });
        let execute_ns = time_per_query(queries.len(), repeats, |k| {
            index.execute(&queries[k]).matches.len() as u64
        });
        println!(
            "record  d={dims} n={objects} [{label}]: recorded {recorded_ns:>8.0} ns/q  execute {execute_ns:>8.0} ns/q  ({} clusters, {:.1} explored/q)",
            index.cluster_count(),
            explored as f64 / queries.len() as f64
        );
        rows.push(RecordedRow {
            mode: label,
            recorded_ns,
            execute_ns,
        });
    }
    println!(
        "record  execute speedup over scalar-candidate mode: {:.2}x   over oracle: {:.2}x",
        rows[1].execute_ns / rows[0].execute_ns,
        rows[2].execute_ns / rows[0].execute_ns
    );
    rows
}

struct ReorgRow {
    mode: &'static str,
    pass_ns: f64,
    clusters: usize,
    dirty: u64,
    evaluated: u64,
    scans: u64,
    screened: u64,
    cached: u64,
    arena_live_bytes: u64,
    compactions: u64,
}

/// The per-period reorganization cost on an adapted 16-d index: the
/// incremental pass over the statistics arena, the same pass over
/// per-cluster `Vec` columns, and the decision-identical full scalar
/// sweep, driven through identical streams (auto-reorganization off,
/// one explicit pass every `period` recorded executes — exactly the
/// paper's `reorg_period` cadence) so only the timed `reorganize()`
/// call differs. Decision identity across all three strategies is
/// asserted on the final clustering state.
fn reorg_matrix(objects: usize, repeats: usize) -> Vec<ReorgRow> {
    let dims = 16;
    let period = 100usize;
    // Early passes run on cold caches; the median over more samples
    // reflects the steady-state maintenance cost the mode pays.
    let repeats = repeats.max(9);
    let workload =
        UniformWorkload::with_max_length(WorkloadConfig::new(dims, objects, 0x5EED), 0.3);
    let data = workload.generate_objects();
    let mut rng = WorkloadConfig::new(dims, objects, 17).rng();
    let queries: Vec<SpatialQuery> = (0..500)
        .map(|_| SpatialQuery::point_enclosing(workload.sample_point(&mut rng)))
        .collect();

    // Sampling is alternated between the strategies in fresh-build
    // blocks: each block rebuilds and re-adapts its index from scratch
    // so exactly one index is live while it is measured — the
    // production footprint — while the alternation cancels slow host
    // drift (frequency scaling, noisy neighbors) out of the reported
    // ratio instead of biasing whichever mode was measured later.
    // Blocks open with unmeasured warm-up periods (the pass's working
    // set starts cold after the bulk adaptation); the workload is
    // deterministic, so every block of a mode reproduces the identical
    // index and decisions.
    const MODES: usize = 3;
    let rounds = 2usize;
    let block = repeats.div_ceil(rounds);
    let mut samples: [Vec<f64>; MODES] = std::array::from_fn(|_| Vec::with_capacity(repeats));
    let mut counters = [[0u64; 6]; MODES];
    let mut arena_stats = [[0u64; 2]; MODES];
    let mut final_snapshots: [Vec<acx_core::ClusterSnapshot>; MODES] =
        std::array::from_fn(|_| Vec::new());
    let mut cluster_counts = [0usize; MODES];
    for _ in 0..rounds {
        for (which, (_, config)) in reorg_layout_strategies(dims).into_iter().enumerate() {
            let mut config = config;
            config.reorg_period = 0;
            let mut index = build_ac_with(config, &data);
            for chunk in queries.chunks(period) {
                for q in chunk {
                    index.execute(q);
                }
                index.reorganize();
            }
            let mut k = 0usize;
            for measured in 0..3 + block {
                for _ in 0..period {
                    k = (k + 1) % queries.len();
                    std::hint::black_box(index.execute(&queries[k]).matches.len());
                }
                let started = Instant::now();
                std::hint::black_box(index.reorganize());
                let elapsed = started.elapsed().as_nanos() as f64;
                if measured >= 3 {
                    samples[which].push(elapsed);
                    let profile = index.last_reorg_profile();
                    counters[which][0] += profile.dirty_clusters;
                    counters[which][1] += profile.evaluated;
                    counters[which][2] += profile.candidate_scans;
                    counters[which][3] += profile.screened_out;
                    counters[which][4] += profile.cached_verdicts;
                    counters[which][5] += 1;
                }
            }
            let profile = index.last_reorg_profile();
            arena_stats[which] = [profile.arena_live_bytes, profile.compactions];
            cluster_counts[which] = index.cluster_count();
            final_snapshots[which] = index.snapshots();
        }
    }
    assert_eq!(
        final_snapshots[0], final_snapshots[1],
        "arena and per-cluster statistics must be decision-identical on the measured stream"
    );
    assert_eq!(
        final_snapshots[0], final_snapshots[2],
        "incremental and full-oracle passes must be decision-identical on the measured stream"
    );
    let mut rows = Vec::new();
    for (which, (label, _)) in reorg_layout_strategies(dims).into_iter().enumerate() {
        let samples = &mut samples[which];
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let pass_ns = samples[samples.len() / 2];
        let [dirty, evaluated, scans, screened, cached, passes] = counters[which];
        println!(
            "reorg   d={dims} n={objects} [{label}]: {pass_ns:>10.0} ns/pass  ({} clusters; per pass: {:.0} dirty, {:.0} evaluated, {:.1} scans, {:.0} screened of which {:.0} cached verdicts; arena {} live bytes, {} compactions)",
            cluster_counts[which],
            dirty as f64 / passes as f64,
            evaluated as f64 / passes as f64,
            scans as f64 / passes as f64,
            screened as f64 / passes as f64,
            cached as f64 / passes as f64,
            arena_stats[which][0],
            arena_stats[which][1],
        );
        rows.push(ReorgRow {
            mode: label,
            pass_ns,
            clusters: cluster_counts[which],
            dirty: dirty / passes,
            evaluated: evaluated / passes,
            scans: scans / passes,
            screened: screened / passes,
            cached: cached / passes,
            arena_live_bytes: arena_stats[which][0],
            compactions: arena_stats[which][1],
        });
    }
    println!(
        "reorg   arena speedup over per-cluster: {:.2}x   over full oracle: {:.2}x",
        rows[1].pass_ns / rows[0].pass_ns,
        rows[2].pass_ns / rows[0].pass_ns
    );
    rows
}

fn main() {
    let flags = Flags::from_env();
    let quick = flags.has("quick");
    let out: String = flags.get("out", "BENCH_scan.json".to_string());
    let cand_out: String = flags.get("cand-out", "BENCH_candidates.json".to_string());
    let reorg_out: String = flags.get("reorg-out", "BENCH_reorg.json".to_string());

    let (sizes, repeats, default_index_objects): (Vec<usize>, usize, usize) = if quick {
        (vec![1_000, 4_000], 3, 2_000)
    } else {
        (vec![1_000, 10_000, 100_000], 7, 10_000)
    };
    // Overrides for the index-level sections (adapted-index, recorded
    // execute, reorganization) without changing the kernel matrix.
    let index_objects: usize = flags.get("index-objects", default_index_objects);
    let repeats: usize = flags.get("repeats", repeats);
    let dims_list = [2usize, 4, 8];
    let cand_configs: &[(usize, u8)] = if quick {
        &[(16, 4), (16, 12)]
    } else {
        // (4,2)/(16,2) bracket the small-set dispatch cutoff from below
        // (12 and 48 candidates); the rest sweep f²·Nd past 1k.
        &[(4, 2), (16, 2), (8, 4), (16, 4), (16, 8), (16, 12), (32, 12)]
    };

    println!("== scan kernel snapshot (bitmask vs scalar oracle, single thread) ==");
    let kernel = kernel_matrix(&sizes, &dims_list, repeats);
    let cands = candidate_matrix(cand_configs, repeats);
    let index = index_point_enclosing(index_objects, repeats, &flags);
    let recorded = recorded_execute(index_objects, repeats);
    let reorg = reorg_matrix(index_objects, repeats);

    // Hand-rolled JSON: the workspace is offline, no serde available.
    let mut json = String::from("{\n  \"bench\": \"scan_kernel\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    json.push_str("  \"kernel_point_enclosing\": [\n");
    for (i, r) in kernel.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"dims\": {}, \"objects\": {}, \"columnar_ns_per_query\": {:.0}, \"scalar_ns_per_query\": {:.0}, \"speedup\": {:.3}}}",
            r.dims,
            r.objects,
            r.columnar_ns,
            r.scalar_ns,
            r.scalar_ns / r.columnar_ns
        );
        json.push_str(if i + 1 == kernel.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n  \"index_point_enclosing_16d\": {\n");
    let _ = writeln!(json, "    \"objects\": {index_objects},");
    for r in &index {
        let _ = writeln!(json, "    \"{}_ns_per_query\": {:.0},", r.mode, r.ns_per_query);
    }
    let _ = writeln!(
        json,
        "    \"speedup\": {:.3}",
        index[1].ns_per_query / index[0].ns_per_query
    );
    json.push_str("  },\n  \"recorded_execute_16d\": {\n");
    let _ = writeln!(json, "    \"objects\": {index_objects},");
    for r in &recorded {
        let _ = writeln!(
            json,
            "    \"{}\": {{\"recorded_ns_per_query\": {:.0}, \"execute_ns_per_query\": {:.0}}},",
            r.mode, r.recorded_ns, r.execute_ns
        );
    }
    let _ = writeln!(
        json,
        "    \"execute_speedup_vs_scalar_candidates\": {:.3},",
        recorded[1].execute_ns / recorded[0].execute_ns
    );
    let _ = writeln!(
        json,
        "    \"execute_speedup_vs_oracle\": {:.3},",
        recorded[2].execute_ns / recorded[0].execute_ns
    );
    // Measured at commit 63cb979 (PR 3) on this container with the same
    // harness (256 point-enclosing queries, warmed index, min-of-9):
    // the cross-PR acceptance reference for recorded execution.
    json.push_str(
        "    \"pr3_reference\": {\"commit\": \"63cb979\", \
         \"n2000\": {\"recorded_ns_per_query\": 8199, \"execute_ns_per_query\": 34915}, \
         \"n10000\": {\"recorded_ns_per_query\": 13540, \"execute_ns_per_query\": 130534}}\n",
    );
    json.push_str("  }\n}\n");
    std::fs::write(&out, &json).expect("write benchmark snapshot");
    println!("wrote {out}");

    let mut json = String::from("{\n  \"bench\": \"candidate_kernel\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"small_set_cutoff\": {CANDIDATE_DIRECT_CUTOFF},");
    json.push_str("  \"candidate_matching\": [\n");
    for (i, r) in cands.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"dims\": {}, \"division_factor\": {}, \"candidates\": {}, \"kernel_ns_per_query\": {:.0}, \"arena_kernel_ns_per_query\": {:.0}, \"direct_ns_per_query\": {:.0}, \"scalar_ns_per_query\": {:.0}, \"speedup\": {:.3}, \"arena_vs_per_cluster\": {:.3}, \"direct_vs_kernel\": {:.3}, \"default_path\": \"{}\"}}",
            r.dims,
            r.division_factor,
            r.candidates,
            r.kernel_ns,
            r.arena_kernel_ns,
            r.direct_ns,
            r.scalar_ns,
            r.scalar_ns / r.kernel_ns,
            r.kernel_ns / r.arena_kernel_ns,
            r.kernel_ns / r.direct_ns,
            if r.candidates < CANDIDATE_DIRECT_CUTOFF {
                "direct"
            } else {
                "kernel"
            }
        );
        json.push_str(if i + 1 == cands.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&cand_out, &json).expect("write candidate snapshot");
    println!("wrote {cand_out}");

    let mut json = String::from("{\n  \"bench\": \"reorganize\",\n");
    let _ = writeln!(json, "  \"dims\": 16,");
    let _ = writeln!(json, "  \"objects\": {index_objects},");
    let _ = writeln!(json, "  \"reorg_period\": 100,");
    json.push_str("  \"per_period_pass\": [\n");
    for (i, r) in reorg.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"mode\": \"{}\", \"pass_ns\": {:.0}, \"clusters\": {}, \"dirty\": {}, \"evaluated\": {}, \"candidate_scans\": {}, \"screened_out\": {}, \"cached_verdicts\": {}, \"arena_live_bytes\": {}, \"compactions\": {}}}",
            r.mode,
            r.pass_ns,
            r.clusters,
            r.dirty,
            r.evaluated,
            r.scans,
            r.screened,
            r.cached,
            r.arena_live_bytes,
            r.compactions
        );
        json.push_str(if i + 1 == reorg.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"arena_speedup_vs_per_cluster\": {:.3},",
        reorg[1].pass_ns / reorg[0].pass_ns
    );
    let _ = writeln!(
        json,
        "  \"incremental_speedup_vs_full_oracle\": {:.3},",
        reorg[2].pass_ns / reorg[0].pass_ns
    );
    // Measured with this harness during PR 5 on a quiet host, when the
    // incremental pass still streamed per-cluster Vec columns. That
    // layout was memory-latency-bound, so shared-host contention
    // compressed its ratio toward ~3x while the compute-bound full
    // sweep barely moved; the index-wide statistics arena this PR adds
    // exists to narrow exactly that contended-vs-quiet gap (compare
    // the incremental_arena and incremental_per_cluster rows above).
    json.push_str(concat!(
        "  \"pr5_quiet_host_reference\": {\"incremental_pass_ns\": 155021,",
        " \"full_oracle_pass_ns\": 958828, \"speedup\": 6.185,",
        " \"note\": \"per-cluster layout on a quiet-host window; contention",
        " compressed the memory-bound pass toward ~3x\"}\n",
    ));
    json.push_str("}\n");
    std::fs::write(&reorg_out, &json).expect("write reorganization snapshot");
    println!("wrote {reorg_out}");
}
