//! Snapshot benchmark of the columnar scan kernel vs the scalar oracle,
//! recorded to `BENCH_scan.json` so the repository's perf trajectory is
//! tracked across PRs.
//!
//! Two layers are measured single-threaded:
//!
//! * **kernel** — `scan_columns` against per-object `matches_flat` over
//!   one flat segment, for every (objects, dims) in the matrix.
//! * **index** — `AdaptiveClusterIndex` point-enclosing queries (§7.2,
//!   the scan-dominated workload) with `ScanMode::Columnar` vs
//!   `ScanMode::ScalarOracle` on identically adapted indexes.
//!
//! Usage:
//! ```text
//! cargo run --release -p acx_bench --bin scan_bench
//!     [--quick] [--out BENCH_scan.json]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use acx_bench::args::Flags;
use acx_geom::scan::{scan_columns, PairedColumns, ScanScratch};
use acx_geom::{ObjectId, Scalar, SpatialQuery, OBJECT_ID_BYTES};
use acx_core::{AdaptiveClusterIndex, IndexConfig, QueryScratch, ScanMode};
use acx_workloads::{UniformWorkload, Workload, WorkloadConfig};

/// Median-of-repeats nanoseconds per query for one closure.
fn time_per_query<F: FnMut(usize) -> u64>(queries: usize, repeats: usize, mut run: F) -> f64 {
    let mut samples: Vec<f64> = (0..repeats)
        .map(|_| {
            let started = Instant::now();
            let mut guard = 0u64;
            for k in 0..queries {
                guard = guard.wrapping_add(run(k));
            }
            std::hint::black_box(guard);
            started.elapsed().as_nanos() as f64 / queries as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

struct KernelRow {
    dims: usize,
    objects: usize,
    columnar_ns: f64,
    scalar_ns: f64,
}

fn kernel_matrix(sizes: &[usize], dims_list: &[usize], repeats: usize) -> Vec<KernelRow> {
    let mut rows = Vec::new();
    for &dims in dims_list {
        for &n in sizes {
            let workload =
                UniformWorkload::with_max_length(WorkloadConfig::new(dims, n, 0x5CA7), 0.3);
            let mut rng = WorkloadConfig::new(dims, n, 0x5CA7).rng();
            let width = 2 * dims;
            let mut flat: Vec<Scalar> = Vec::with_capacity(n * width);
            for _ in 0..n {
                workload.sample_object(&mut rng).write_flat(&mut flat);
            }
            let mut cols = vec![Vec::with_capacity(n); width];
            for row in flat.chunks_exact(width) {
                for (k, &v) in row.iter().enumerate() {
                    cols[k].push(v);
                }
            }
            let queries: Vec<SpatialQuery> = (0..64)
                .map(|_| SpatialQuery::point_enclosing(workload.sample_point(&mut rng)))
                .collect();

            let mut scratch = ScanScratch::new();
            let columnar_ns = time_per_query(queries.len(), repeats, |k| {
                let out = scan_columns(&queries[k], &PairedColumns::new(&cols), &mut scratch);
                out.verified_bytes() + out.matched as u64
            });
            let scalar_ns = time_per_query(queries.len(), repeats, |k| {
                let mut acc = 0u64;
                for row in flat.chunks_exact(width) {
                    let out = queries[k].matches_flat(row);
                    acc += OBJECT_ID_BYTES as u64
                        + 8 * out.dims_checked as u64
                        + out.matched as u64;
                }
                acc
            });
            println!(
                "kernel  d={dims} n={n:>6}: columnar {columnar_ns:>12.0} ns/q  scalar {scalar_ns:>12.0} ns/q  speedup {:.2}x",
                scalar_ns / columnar_ns
            );
            rows.push(KernelRow {
                dims,
                objects: n,
                columnar_ns,
                scalar_ns,
            });
        }
    }
    rows
}

struct IndexRow {
    mode: &'static str,
    ns_per_query: f64,
}

/// The acceptance workload: §7.2 point-enclosing queries on an adapted
/// 16-d index, columnar kernel vs scalar oracle.
fn index_point_enclosing(objects: usize, repeats: usize) -> Vec<IndexRow> {
    let dims = 16;
    let workload =
        UniformWorkload::with_max_length(WorkloadConfig::new(dims, objects, 0x5EED), 0.3);
    let data = workload.generate_objects();
    let mut rng = WorkloadConfig::new(dims, objects, 17).rng();
    let queries: Vec<SpatialQuery> = (0..256)
        .map(|_| SpatialQuery::point_enclosing(workload.sample_point(&mut rng)))
        .collect();

    let mut rows = Vec::new();
    for (mode, label) in [
        (ScanMode::Columnar, "columnar"),
        (ScanMode::ScalarOracle, "scalar_oracle"),
    ] {
        let mut config = IndexConfig::memory(dims);
        config.scan_mode = mode;
        let mut index = AdaptiveClusterIndex::new(config).expect("valid config");
        for (i, rect) in data.iter().enumerate() {
            index.insert(ObjectId(i as u32), rect.clone()).unwrap();
        }
        for q in &queries {
            index.execute(q); // adapt to the stable clustering
        }
        let mut scratch = QueryScratch::new();
        let ns = time_per_query(queries.len(), repeats, |k| {
            let metrics = index.query_with(&queries[k], &mut scratch);
            metrics.stats.verified_bytes + scratch.matches().len() as u64
        });
        println!(
            "index   point_enclosing d={dims} n={objects} [{label}]: {ns:>10.0} ns/q  ({} clusters)",
            index.cluster_count()
        );
        rows.push(IndexRow {
            mode: label,
            ns_per_query: ns,
        });
    }
    println!(
        "index   speedup columnar over oracle: {:.2}x",
        rows[1].ns_per_query / rows[0].ns_per_query
    );
    rows
}

fn main() {
    let flags = Flags::from_env();
    let quick = flags.has("quick");
    let out: String = flags.get("out", "BENCH_scan.json".to_string());

    let (sizes, repeats, index_objects): (Vec<usize>, usize, usize) = if quick {
        (vec![1_000, 4_000], 3, 2_000)
    } else {
        (vec![1_000, 10_000, 100_000], 7, 10_000)
    };
    let dims_list = [2usize, 4, 8];

    println!("== scan kernel snapshot (columnar vs scalar oracle, single thread) ==");
    let kernel = kernel_matrix(&sizes, &dims_list, repeats);
    let index = index_point_enclosing(index_objects, repeats);

    // Hand-rolled JSON: the workspace is offline, no serde available.
    let mut json = String::from("{\n  \"bench\": \"scan_kernel\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    json.push_str("  \"kernel_point_enclosing\": [\n");
    for (i, r) in kernel.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"dims\": {}, \"objects\": {}, \"columnar_ns_per_query\": {:.0}, \"scalar_ns_per_query\": {:.0}, \"speedup\": {:.3}}}",
            r.dims,
            r.objects,
            r.columnar_ns,
            r.scalar_ns,
            r.scalar_ns / r.columnar_ns
        );
        json.push_str(if i + 1 == kernel.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n  \"index_point_enclosing_16d\": {\n");
    let _ = writeln!(json, "    \"objects\": {index_objects},");
    for r in &index {
        let _ = writeln!(json, "    \"{}_ns_per_query\": {:.0},", r.mode, r.ns_per_query);
    }
    let _ = writeln!(
        json,
        "    \"speedup\": {:.3}",
        index[1].ns_per_query / index[0].ns_per_query
    );
    json.push_str("  }\n}\n");
    std::fs::write(&out, &json).expect("write benchmark snapshot");
    println!("wrote {out}");
}
