//! Serving throughput of the concurrent read path: queries/sec of
//! `AdaptiveClusterIndex::execute_batch` for 1..=N threads against the
//! baselines' shared `BatchExecute::execute_batch` API (`SeqScan` and
//! the R*-tree), on the paper's pub/sub notification workload (§1) and
//! on the skewed workload (§7.3). All three methods batch at the API
//! level — one call per measured stream — so the comparison is
//! apples-to-apples in both verification kernel and interface.
//!
//! Each AC row also reports the reorganization stall inside the
//! measured stream (`reorg_stall`): the batched path closes its window
//! at every pass boundary and used to hide that serving hiccup, and the
//! sharded serving tier (`serve` bin) reports the same counter per
//! shard — one axis, two architectures. A final `serve` row runs the
//! measured stream through the sharded tier configured by `--shards` /
//! `--shard-by` / `--queue-cap` for a direct comparison.
//!
//! Usage:
//! ```text
//! cargo run --release -p acx_bench --bin throughput
//!     [--objects 50000] [--events 2000] [--warmup 600]
//!     [--max-threads 8] [--flexibility 0.0] [--seed 24141]
//!     [--shards N] [--shard-by hash|space] [--queue-cap N]
//!     [--scan-mode columnar|oracle] [--candidate-scan columnar|oracle]
//!     [--zone-maps on|off] [--reorg-mode incremental|full]
//!     [--stats-layout arena|per-cluster]
//!     [--wal PATH] [--flush-policy record|batch[:N]|epoch]
//! ```

use std::time::Instant;

use acx_baselines::BatchExecute;
use acx_bench::args::Flags;
use acx_bench::{
    ac_config, build_ac_with, build_rs, build_ss, run_ac_batch, run_serve, MethodReport,
};
use acx_serve::ServeConfig;
use acx_core::IndexConfig;
use acx_geom::{HyperRect, SpatialQuery};
use acx_storage::StorageScenario;
use acx_workloads::{EventStream, PubSubGenerator, SkewedWorkload, Workload, WorkloadConfig};

fn thread_counts(max: usize) -> Vec<usize> {
    let mut counts = vec![1usize];
    while let Some(&last) = counts.last() {
        if last * 2 > max {
            break;
        }
        counts.push(last * 2);
    }
    if counts.last() != Some(&max) && max > 1 {
        counts.push(max);
    }
    counts
}

/// Queries/sec of one timed run.
fn qps(queries: usize, elapsed_secs: f64) -> f64 {
    queries as f64 / elapsed_secs.max(1e-9)
}

/// Measures the adaptive index through the shared runner: fresh build +
/// warm-up per thread count so every measurement starts from the same
/// adapted clustering (the batch path reaches the identical state
/// regardless of `threads`).
fn measure_ac(
    flags: &Flags,
    config: IndexConfig,
    objects: &[HyperRect],
    warmup: &[SpatialQuery],
    measured: &[SpatialQuery],
    threads: usize,
) -> MethodReport {
    let mut index = build_ac_with(config, objects);
    flags.attach_wal(&mut index);
    run_ac_batch(&mut index, warmup, measured, threads, objects.len())
}

fn main() {
    let flags = Flags::from_env();
    let objects: usize = flags.get("objects", 50_000);
    let events: usize = flags.get("events", 2_000);
    let warmup_n: usize = flags.get("warmup", 600);
    let max_threads: usize = flags.get("max-threads", 8).max(1);
    let flexibility: f32 = flags.get("flexibility", 0.0);
    let seed: u64 = flags.get("seed", 0x5E41);

    println!("== Serving throughput: concurrent read path vs baselines ==");
    println!("objects={objects} events={events} warmup={warmup_n} max_threads={max_threads}");

    // Workload 1: pub/sub — subscriptions as objects, offers as queries.
    let generator = PubSubGenerator::apartments();
    let dims = generator.dims();
    let mut rng = WorkloadConfig::new(dims, objects, seed).rng();
    let subscriptions: Vec<HyperRect> = (0..objects as u32)
        .map(|i| generator.subscription(i, &mut rng).ranges)
        .collect();
    let mut stream = EventStream::with_flexibility(generator, seed ^ 0xF00D, flexibility);
    let warmup = stream.next_batch(warmup_n);
    let measured = stream.next_batch(events);
    let ac_cfg = flags.apply_scan_flags(ac_config(dims, StorageScenario::Memory));
    run_workload(
        &flags,
        "pub/sub",
        &ac_cfg,
        &subscriptions,
        &warmup,
        &measured,
        max_threads,
    );

    // Workload 2: skewed objects, point-enclosing events.
    let dims = 16;
    let workload = SkewedWorkload::new(WorkloadConfig::new(dims, objects, seed), 0.3);
    let data = workload.generate_objects();
    let mut qrng = WorkloadConfig::new(dims, objects, seed ^ 0xF1E1D).rng();
    let make = |rng: &mut rand::rngs::StdRng, n: usize| -> Vec<SpatialQuery> {
        (0..n)
            .map(|_| SpatialQuery::point_enclosing(workload.sample_point(rng)))
            .collect()
    };
    let warmup = make(&mut qrng, warmup_n);
    let measured = make(&mut qrng, events);
    let ac_cfg = flags.apply_scan_flags(ac_config(dims, StorageScenario::Memory));
    run_workload(
        &flags,
        "skewed",
        &ac_cfg,
        &data,
        &warmup,
        &measured,
        max_threads,
    );
}

fn run_workload(
    flags: &Flags,
    name: &str,
    config: &IndexConfig,
    objects: &[HyperRect],
    warmup: &[SpatialQuery],
    measured: &[SpatialQuery],
    max_threads: usize,
) {
    let dims = config.dims;
    println!("\n-- {name} workload (dims={dims}) --");

    let counts = thread_counts(max_threads);
    let mut ac_base = 0.0f64;
    let mut clusters = 0usize;
    for &t in &counts {
        let report = measure_ac(flags, config.clone(), objects, warmup, measured, t);
        let rate = 1000.0 / report.wall_ms.max(1e-12); // wall_ms is per query
        if t == 1 {
            ac_base = rate;
            clusters = report.total_units;
        }
        println!(
            "AC  t={t}: {rate:>12.0} q/s  (speedup {:.2}x vs t=1)  \
             reorg_stall={:.3}ms/{} passes",
            rate / ac_base.max(1e-9),
            report.reorg_stall_ns as f64 / 1e6,
            report.reorg_passes,
        );
    }
    println!("    adapted to {clusters} clusters");

    // The sharded serving tier over the same subscriptions and events:
    // per-event fan-out through bounded queues instead of one batched
    // call, reorganization stalling one shard at a time.
    let serve_cfg = ServeConfig::new(config.clone())
        .with_shards(flags.shards())
        .with_shard_by(flags.shard_by())
        .with_queue_cap(flags.queue_cap());
    let stats = run_serve(serve_cfg, objects, warmup, measured);
    let stall_ms = stats.reorg_stall_ns as f64 / 1e6;
    println!(
        "serve shards={} ({}): {:>12.0} q/s  lat p50={:.1}us p99={:.1}us  \
         reorg_stall={stall_ms:.3}ms/{} passes",
        flags.shards(),
        flags.shard_by(),
        stats.qps(),
        stats.latency_p50_ns as f64 / 1e3,
        stats.latency_p99_ns as f64 / 1e3,
        stats.reorg_passes,
    );

    // Baselines through the shared batch API: one `execute_batch` call
    // per measured stream, query-level parallelism over shared `&self`.
    let ss = build_ss(dims, objects);
    measure_batch("SS", &ss, measured, &counts);
    let rs = build_rs(dims, objects);
    measure_batch("RS", &rs, measured, &counts);
}

/// Times `BatchExecute::execute_batch` over the stream per thread count.
fn measure_batch<B: BatchExecute>(
    label: &str,
    method: &B,
    measured: &[SpatialQuery],
    counts: &[usize],
) {
    let mut base = 0.0f64;
    for &t in counts {
        let started = Instant::now();
        let results = method.execute_batch(measured, t);
        let rate = qps(results.len(), started.elapsed().as_secs_f64());
        if t == 1 {
            base = rate;
        }
        println!(
            "{label}  t={t}: {rate:>12.0} q/s  (speedup {:.2}x vs t=1)",
            rate / base.max(1e-9)
        );
    }
}
