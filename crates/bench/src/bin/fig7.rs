//! Experiment E1–E4 (paper Fig. 7, charts A/B and data-access tables):
//! uniform workload, 16 dimensions, intersection queries with selectivity
//! swept from 5e-7 to 5e-1, in-memory and disk storage scenarios.
//!
//! Usage:
//! ```text
//! cargo run --release -p acx-bench --bin fig7 [--objects 50000] [--dims 16]
//!     [--warmup 600] [--measured 200] [--seed 24029] [--full]
//!     [--scan-mode columnar|oracle] [--candidate-scan columnar|oracle]
//!     [--zone-maps on|off] [--reorg-mode incremental|full]
//!     [--stats-layout arena|per-cluster]
//!     [--wal PATH] [--flush-policy record|batch[:N]|epoch]
//! ```
//! `--full` runs the paper's 2,000,000-object scale.

use acx_bench::args::Flags;
use acx_bench::{ac_config, build_ac_with, build_rs, build_ss, run_ac, run_baseline, MethodReport};
use acx_geom::SpatialQuery;
use acx_storage::StorageScenario;
use acx_workloads::{calibrate, UniformWorkload, Workload, WorkloadConfig};

fn main() {
    let flags = Flags::from_env();
    let dims: usize = flags.get("dims", 16);
    let objects: usize = if flags.has("full") {
        2_000_000
    } else {
        flags.get("objects", 50_000)
    };
    let warmup_n: usize = flags.get("warmup", 600);
    let measured_n: usize = flags.get("measured", 200);
    let seed: u64 = flags.get("seed", 0x5EED);
    let selectivities = [5e-7, 5e-6, 5e-5, 5e-4, 5e-3, 5e-2, 5e-1];

    println!("== Fig. 7: uniform workload, varying query selectivity ==");
    println!(
        "objects={objects} dims={dims} warmup={warmup_n} measured={measured_n} seed={seed:#x}"
    );

    let workload = UniformWorkload::with_max_length(WorkloadConfig::new(dims, objects, seed), 0.5);
    eprintln!("generating {objects} objects …");
    let data = workload.generate_objects();

    eprintln!("building R*-tree …");
    let rs = build_rs(dims, &data);
    let ss = build_ss(dims, &data);
    eprintln!("R*-tree: {} nodes, height {}", rs.node_count(), rs.height());

    let mut rows_mem: Vec<(f64, MethodReport, MethodReport, MethodReport)> = Vec::new();
    let mut rows_disk: Vec<(f64, MethodReport)> = Vec::new();

    for &sel in &selectivities {
        let extent = calibrate::uniform_query_extent(&workload, sel, seed ^ 0xC0FFEE);
        let mut qrng = WorkloadConfig::new(dims, objects, seed ^ 0xF1E1D).rng();
        let make = |rng: &mut rand::rngs::StdRng, n: usize| -> Vec<SpatialQuery> {
            (0..n)
                .map(|_| SpatialQuery::intersection(workload.sample_window(rng, extent)))
                .collect()
        };
        let warmup = make(&mut qrng, warmup_n);
        let measured = make(&mut qrng, measured_n);

        eprintln!("selectivity {sel:.0e}: extent {extent:.4} — adaptive clustering (memory) …");
        let mut ac_mem = build_ac_with(
            flags.apply_scan_flags(ac_config(dims, StorageScenario::Memory)),
            &data,
        );
        flags.attach_wal(&mut ac_mem);
        let ac_mem_report = run_ac(&mut ac_mem, &warmup, &measured, objects);

        eprintln!("selectivity {sel:.0e}: adaptive clustering (disk) …");
        let mut ac_disk = build_ac_with(
            flags.apply_scan_flags(ac_config(dims, StorageScenario::Disk)),
            &data,
        );
        flags.attach_wal(&mut ac_disk);
        let ac_disk_report = run_ac(&mut ac_disk, &warmup, &measured, objects);

        let rs_report = run_baseline("RS", rs.node_count(), objects, dims, &measured, |q| {
            rs.execute(q)
        });
        let ss_report = run_baseline("SS", 1, objects, dims, &measured, |q| ss.execute(q));

        eprintln!(
            "  AC(mem) clusters={} AC(disk) clusters={} measured-selectivity={:.2e}",
            ac_mem_report.total_units,
            ac_disk_report.total_units,
            ac_mem_report.avg_matches / objects as f64,
        );
        rows_mem.push((sel, ss_report, rs_report, ac_mem_report));
        rows_disk.push((sel, ac_disk_report));
    }

    println!("\n-- Chart A: memory scenario, avg query time [ms] (priced | wall) --");
    println!(
        "{:>12} {:>22} {:>22} {:>22}",
        "selectivity", "Scan (SS)", "R*-tree (RS)", "Adaptive (AC)"
    );
    for (sel, ss, rs, ac) in &rows_mem {
        println!(
            "{:>12.0e} {:>12.4} |{:>8.4} {:>12.4} |{:>8.4} {:>12.4} |{:>8.4}",
            sel,
            ss.priced_memory_ms,
            ss.wall_ms,
            rs.priced_memory_ms,
            rs.wall_ms,
            ac.priced_memory_ms,
            ac.wall_ms
        );
    }

    println!("\n-- Fig. 7 Table 1: memory scenario data access --");
    println!(
        "{:>12} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "selectivity", "AC clstrs", "RS nodes", "AC expl%", "RS expl%", "AC objs%", "RS objs%"
    );
    for (sel, _, rs, ac) in &rows_mem {
        println!(
            "{:>12.0e} {:>10} {:>10} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            sel,
            ac.total_units,
            rs.total_units,
            ac.explored_fraction * 100.0,
            rs.explored_fraction * 100.0,
            ac.verified_fraction * 100.0,
            rs.verified_fraction * 100.0
        );
    }

    println!("\n-- Chart B: disk scenario, avg simulated query time [ms] --");
    println!(
        "{:>12} {:>14} {:>14} {:>14}",
        "selectivity", "Scan (SS)", "R*-tree (RS)", "Adaptive (AC)"
    );
    for ((sel, ss, rs, _), (_, ac_disk)) in rows_mem.iter().zip(&rows_disk) {
        println!(
            "{:>12.0e} {:>14.1} {:>14.1} {:>14.1}",
            sel, ss.priced_disk_ms, rs.priced_disk_ms, ac_disk.priced_disk_ms
        );
    }

    println!("\n-- Fig. 7 Table 2: disk scenario data access --");
    println!(
        "{:>12} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "selectivity", "AC clstrs", "RS nodes", "AC expl%", "RS expl%", "AC objs%", "RS objs%"
    );
    for ((sel, _, rs, _), (_, ac)) in rows_mem.iter().zip(&rows_disk) {
        println!(
            "{:>12.0e} {:>10} {:>10} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            sel,
            ac.total_units,
            rs.total_units,
            ac.explored_fraction * 100.0,
            rs.explored_fraction * 100.0,
            ac.verified_fraction * 100.0,
            rs.verified_fraction * 100.0
        );
    }
}
