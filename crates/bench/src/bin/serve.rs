//! Snapshot benchmark of the sharded serving tier, recorded to
//! `BENCH_serve.json` so the repository's perf trajectory is tracked
//! across PRs.
//!
//! The measured axis is architectural: one adaptive index executing the
//! event stream in submission order (the single-index baseline, through
//! the shared runner's per-event path) versus `ShardedIndex` fanning
//! every event out to 1..N partition shards through bounded queues,
//! with reorganization stalling one shard at a time instead of the
//! whole tier. Both the pub/sub notification stream (§1) and the
//! skewed point-enclosing stream (§7.3) from the workload zoo are
//! driven through every (shard count, partitioning strategy) cell, and
//! each cell's union answers are verified against the single index on a
//! stream prefix before anything is timed.
//!
//! Single-core note: on a one-core host every shard worker time-slices
//! the same CPU, so shard scaling cannot show wall-clock speedup here —
//! the committed snapshot demonstrates structure (per-shard stalls,
//! bounded queues, no aggregate regression); the scaling column is
//! hardware-dependent, like the `execute_batch` thread axis of PR 2.
//!
//! Usage:
//! ```text
//! cargo run --release -p acx_bench --bin serve
//!     [--quick] [--out BENCH_serve.json]
//!     [--objects N] [--events N] [--warmup N]
//!     [--shards N] [--shard-by hash|space] [--queue-cap N]
//!     [--flexibility 0.0] [--seed 24141]
//! ```
//! `--shards` sets the largest shard count (the sweep runs 1, 2, 4, ..
//! up to it); `--shard-by` restricts the sweep to one strategy.

use std::fmt::Write as _;

use acx_bench::args::Flags;
use acx_bench::{ac_config, build_ac_with, run_ac, run_serve};
use acx_geom::{HyperRect, ObjectId, SpatialQuery};
use acx_serve::{ServeConfig, ShardBy, ShardedIndex};
use acx_storage::StorageScenario;
use acx_workloads::{EventStream, PubSubGenerator, SkewedWorkload, Workload, WorkloadConfig};

struct ServeRow {
    workload: &'static str,
    shards: usize,
    shard_by: ShardBy,
    qps: f64,
    latency_p50_ns: u64,
    latency_p99_ns: u64,
    max_queue_depth_p99: usize,
    reorg_passes: u64,
    reorg_stall_ns: u64,
    queue_full_rejections: u64,
    submit_stalls: u64,
}

fn shard_counts(max: usize) -> Vec<usize> {
    let mut counts = vec![1usize];
    while let Some(&last) = counts.last() {
        if last * 2 > max {
            break;
        }
        counts.push(last * 2);
    }
    if counts.last() != Some(&max) && max > 1 {
        counts.push(max);
    }
    counts
}

/// Asserts the sharded tier's union answers are bit-identical to the
/// single index over a prefix of the measured stream (the full-stream
/// proof lives in `crates/serve/tests/equivalence.rs`; this keeps the
/// committed snapshot honest about the configuration it actually ran).
fn verify_union(
    config: &acx_core::IndexConfig,
    serve_cfg: ServeConfig,
    objects: &[HyperRect],
    prefix: &[SpatialQuery],
) {
    let mut solo = build_ac_with(config.clone(), objects);
    let index = ShardedIndex::new(serve_cfg.retaining_results()).expect("valid serve config");
    index
        .insert_all(
            objects
                .iter()
                .enumerate()
                .map(|(i, rect)| (ObjectId(i as u32), rect.clone())),
        )
        .expect("insertion succeeds");
    for q in prefix {
        index.submit(q.clone());
    }
    index.flush();
    let results = index.drain_results();
    assert_eq!(results.len(), prefix.len(), "every event completed");
    for (k, result) in results.iter().enumerate() {
        let mut expected = solo.execute(&prefix[k]).matches;
        expected.sort_unstable();
        assert_eq!(
            result.matches, expected,
            "sharded union must equal the single index on event {k}"
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn run_workload(
    name: &'static str,
    config: &acx_core::IndexConfig,
    objects: &[HyperRect],
    warmup: &[SpatialQuery],
    measured: &[SpatialQuery],
    counts: &[usize],
    strategies: &[ShardBy],
    queue_cap: usize,
    rows: &mut Vec<ServeRow>,
) -> f64 {
    println!("\n-- {name} workload (dims={}) --", config.dims);

    let mut solo = build_ac_with(config.clone(), objects);
    let report = run_ac(&mut solo, warmup, measured, objects.len());
    let single_qps = 1000.0 / report.wall_ms.max(1e-12);
    println!(
        "single index: {single_qps:>12.0} q/s  reorg_stall={:.3}ms/{} passes  ({} clusters)",
        report.reorg_stall_ns as f64 / 1e6,
        report.reorg_passes,
        report.total_units,
    );

    let verify_len = measured.len().min(200);
    for &by in strategies {
        for &shards in counts {
            let serve_cfg = ServeConfig::new(config.clone())
                .with_shards(shards)
                .with_shard_by(by)
                .with_queue_cap(queue_cap);
            verify_union(config, serve_cfg.clone(), objects, &measured[..verify_len]);
            let stats = run_serve(serve_cfg, objects, warmup, measured);
            let max_depth = stats
                .shards
                .iter()
                .map(|s| s.queue_depth_p99)
                .max()
                .unwrap_or(0);
            println!(
                "serve shards={shards} ({by}): {:>12.0} q/s  lat p50={:.1}us p99={:.1}us  \
                 depth_p99={max_depth}  reorg_stall={:.3}ms/{} passes  \
                 (vs single {:.2}x)",
                stats.qps(),
                stats.latency_p50_ns as f64 / 1e3,
                stats.latency_p99_ns as f64 / 1e3,
                stats.reorg_stall_ns as f64 / 1e6,
                stats.reorg_passes,
                stats.qps() / single_qps.max(1e-9),
            );
            rows.push(ServeRow {
                workload: name,
                shards,
                shard_by: by,
                qps: stats.qps(),
                latency_p50_ns: stats.latency_p50_ns,
                latency_p99_ns: stats.latency_p99_ns,
                max_queue_depth_p99: max_depth,
                reorg_passes: stats.reorg_passes,
                reorg_stall_ns: stats.reorg_stall_ns,
                queue_full_rejections: stats.queue_full_rejections,
                submit_stalls: stats.submit_stalls,
            });
        }
    }
    single_qps
}

fn main() {
    let flags = Flags::from_env();
    let quick = flags.has("quick");
    let out: String = flags.get("out", "BENCH_serve.json".to_string());
    let (default_objects, default_events, default_warmup) = if quick {
        (1_000, 300, 100)
    } else {
        (20_000, 2_000, 600)
    };
    let objects: usize = flags.get("objects", default_objects);
    let events: usize = flags.get("events", default_events);
    let warmup_n: usize = flags.get("warmup", default_warmup);
    let flexibility: f32 = flags.get("flexibility", 0.0);
    let seed: u64 = flags.get("seed", 0x5E41);
    let max_shards = flags.shards().max(if quick { 2 } else { 4 });
    let counts = shard_counts(max_shards);
    let strategies: Vec<ShardBy> = if flags.has("shard-by") {
        vec![flags.shard_by()]
    } else {
        vec![ShardBy::Hash, ShardBy::Space]
    };
    let queue_cap = flags.queue_cap();

    println!("== Sharded serving tier vs single index ==");
    println!(
        "objects={objects} events={events} warmup={warmup_n} \
         shards={counts:?} queue_cap={queue_cap}"
    );

    let mut rows = Vec::new();

    // Workload 1: pub/sub — subscriptions as objects, offers as events.
    let generator = PubSubGenerator::apartments();
    let dims = generator.dims();
    let mut rng = WorkloadConfig::new(dims, objects, seed).rng();
    let subscriptions: Vec<HyperRect> = (0..objects as u32)
        .map(|i| generator.subscription(i, &mut rng).ranges)
        .collect();
    let mut stream = EventStream::with_flexibility(generator, seed ^ 0xF00D, flexibility);
    let warmup = stream.next_batch(warmup_n);
    let measured = stream.next_batch(events);
    let pubsub_cfg = flags.apply_scan_flags(ac_config(dims, StorageScenario::Memory));
    let pubsub_single = run_workload(
        "pubsub",
        &pubsub_cfg,
        &subscriptions,
        &warmup,
        &measured,
        &counts,
        &strategies,
        queue_cap,
        &mut rows,
    );

    // Workload 2: skewed objects, point-enclosing events.
    let dims = 16;
    let workload = SkewedWorkload::new(WorkloadConfig::new(dims, objects, seed), 0.3);
    let data = workload.generate_objects();
    let mut qrng = WorkloadConfig::new(dims, objects, seed ^ 0xF1E1D).rng();
    let make = |rng: &mut rand::rngs::StdRng, n: usize| -> Vec<SpatialQuery> {
        (0..n)
            .map(|_| SpatialQuery::point_enclosing(workload.sample_point(rng)))
            .collect()
    };
    let warmup = make(&mut qrng, warmup_n);
    let measured = make(&mut qrng, events);
    let skewed_cfg = flags.apply_scan_flags(ac_config(dims, StorageScenario::Memory));
    let skewed_single = run_workload(
        "skewed",
        &skewed_cfg,
        &data,
        &warmup,
        &measured,
        &counts,
        &strategies,
        queue_cap,
        &mut rows,
    );

    // Hand-rolled JSON: the workspace is offline, no serde available.
    let mut json = String::from("{\n  \"bench\": \"serve\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"objects\": {objects},");
    let _ = writeln!(json, "  \"events\": {events},");
    let _ = writeln!(json, "  \"queue_cap\": {queue_cap},");
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    let _ = writeln!(
        json,
        "  \"single_index_qps\": {{\"pubsub\": {pubsub_single:.0}, \"skewed\": {skewed_single:.0}}},"
    );
    json.push_str("  \"serve\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"shards\": {}, \"shard_by\": \"{}\", \
             \"qps\": {:.0}, \"latency_p50_ns\": {}, \"latency_p99_ns\": {}, \
             \"max_queue_depth_p99\": {}, \"reorg_passes\": {}, \"reorg_stall_ns\": {}, \
             \"queue_full_rejections\": {}, \"submit_stalls\": {}}}",
            r.workload,
            r.shards,
            r.shard_by,
            r.qps,
            r.latency_p50_ns,
            r.latency_p99_ns,
            r.max_queue_depth_p99,
            r.reorg_passes,
            r.reorg_stall_ns,
            r.queue_full_rejections,
            r.submit_stalls,
        );
        json.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n");
    json.push_str(
        "  \"note\": \"every (shards, strategy) cell's union answers are verified \
         bit-identical to the single index on a stream prefix before timing; shard \
         scaling is hardware-dependent — on a one-core host all shard workers \
         time-slice one CPU, so the snapshot demonstrates structure and \
         no-regression, not wall-clock speedup\"\n",
    );
    json.push_str("}\n");
    std::fs::write(&out, &json).expect("write serve snapshot");
    println!("\nwrote {out}");
}
