//! The adaptivity harness: drives the scenario-zoo query streams
//! ([`acx_workloads::scenarios`]) through an [`AdaptiveClusterIndex`]
//! and measures how fast the clustering **re-adapts** after an abrupt
//! distribution change.
//!
//! Protocol per (scenario, configuration) row:
//!
//! 1. **Adapt** — replay `warmup_queries` scenario queries through
//!    `execute` so the clustering reaches its pre-shift steady state;
//!    the steady-state cost is the trailing-window mean of the
//!    cost-model priced per-query time (window = one reorganization
//!    period).
//! 2. **Shift** — force the scenario's abrupt change
//!    ([`AdaptiveScenario::shift`]).
//! 3. **Recover** — replay up to `post_queries` more queries.
//!    *Time-to-readapt* is the number of post-shift queries until the
//!    trailing-window mean priced cost first returns to within
//!    `band × steady` (`None` if it never does within the budget).
//!    Wall-clock p50/p99 over the whole recovery window quantify
//!    per-query latency during reorganization churn, and the index's
//!    thrash accounting ([`acx_core::ReorgProfile::thrash_cycles`])
//!    surfaces split→merge→split cycles.
//!
//! The binary `adaptivity` runs every zoo scenario under both
//! [`acx_core::ReorgMode`]s plus a hysteresis before/after pair on the
//! oscillating adversary, and records `BENCH_adaptivity.json`.

use acx_core::{AdaptiveClusterIndex, IndexConfig};
use acx_geom::HyperRect;
use acx_workloads::{
    AdaptiveScenario, ClusteredObjects, DiurnalCycle, FlashCrowd, MigratingHotspot,
    MixedTraffic, OscillatingHeat, UniformWorkload, WorkloadConfig,
};

use crate::build_ac_with;

/// Scale and protocol parameters of one harness run.
#[derive(Debug, Clone, Copy)]
pub struct AdaptivityParams {
    /// Database size.
    pub objects: usize,
    /// Dimensionality.
    pub dims: usize,
    /// Queries replayed to reach the pre-shift steady state.
    pub warmup_queries: usize,
    /// Post-shift query budget for recovery.
    pub post_queries: usize,
    /// Readaptation band: recovered once the trailing mean priced cost
    /// is at most `band × steady`.
    pub band: f64,
    /// Workload seed (objects and queries derive distinct streams).
    pub seed: u64,
}

impl AdaptivityParams {
    /// Default scale: large enough for several reorganization-driven
    /// splits per region, minutes of total runtime across the zoo.
    pub fn standard() -> Self {
        Self {
            objects: 20_000,
            dims: 8,
            warmup_queries: 3_000,
            post_queries: 3_000,
            band: 1.25,
            seed: 0x5EED,
        }
    }

    /// CI smoke scale: seconds of total runtime across the zoo.
    pub fn quick() -> Self {
        Self {
            objects: 2_000,
            warmup_queries: 1_000,
            post_queries: 800,
            ..Self::standard()
        }
    }
}

/// The scenario zoo, in report order. `clustered_migrating` pairs the
/// migrating-hotspot stream with the clustered/correlated object
/// population instead of the uniform one.
pub const SCENARIOS: [&str; 6] = [
    "migrating_hotspot",
    "diurnal_cycle",
    "flash_crowd",
    "oscillating_heat",
    "mixed_traffic",
    "clustered_migrating",
];

/// Builds the named zoo scenario over `cfg` (seed-deterministic).
///
/// # Panics
///
/// Panics on a name outside [`SCENARIOS`] — a typo must not silently
/// measure a different workload.
pub fn make_scenario(name: &str, cfg: &WorkloadConfig) -> Box<dyn AdaptiveScenario> {
    match name {
        "migrating_hotspot" | "clustered_migrating" => {
            Box::new(MigratingHotspot::new(cfg, 2e-3, 0.35, 0.08))
        }
        "diurnal_cycle" => Box::new(DiurnalCycle::new(cfg, 600, 0.3, 0.08)),
        "flash_crowd" => Box::new(FlashCrowd::new(cfg, 700, 300, 0.25, 0.06)),
        "oscillating_heat" => Box::new(OscillatingHeat::new(cfg, 300, 0.3, 0.08)),
        "mixed_traffic" => Box::new(MixedTraffic::new(cfg, 800, 0.35, 0.08)),
        other => panic!("unknown scenario {other:?}"),
    }
}

/// Generates the named scenario's object population: clustered for
/// `clustered_migrating`, the uniform workload otherwise.
pub fn make_objects(name: &str, cfg: &WorkloadConfig) -> Vec<HyperRect> {
    if name == "clustered_migrating" {
        ClusteredObjects::new(cfg.clone(), 8, 0.08, 0.15).generate_objects()
    } else {
        UniformWorkload::with_max_length(cfg.clone(), 0.4).generate_objects()
    }
}

/// One measured (scenario, configuration) row.
#[derive(Debug, Clone)]
pub struct AdaptivityRow {
    /// Scenario label.
    pub scenario: String,
    /// Reorganization mode label (`incremental` / `full_oracle`).
    pub mode: &'static str,
    /// The [`IndexConfig::merge_cooldown`] the row ran with.
    pub merge_cooldown: u64,
    /// Pre-shift steady-state mean priced cost (ms/query).
    pub steady_ms: f64,
    /// Mean priced cost of the first post-shift window (ms/query) —
    /// the disruption magnitude the recovery starts from.
    pub post_shift_ms: f64,
    /// Post-shift queries until the trailing mean returned to within
    /// the band of `steady_ms`; `None` = not within the budget.
    pub readapt_queries: Option<u64>,
    /// `readapt_queries` in reorganization periods (rounded up).
    pub readapt_periods: Option<u64>,
    /// Median wall-clock per-query latency during recovery (ms).
    pub p50_wall_ms: f64,
    /// 99th-percentile wall-clock per-query latency during recovery
    /// (ms) — the reorganization-churn tail.
    pub p99_wall_ms: f64,
    /// Split→merge→split cycles detected during recovery.
    pub thrash_cycles: u64,
    /// Materializations vetoed by the merge cool-down during recovery.
    pub cooldown_blocked: u64,
    /// Merges performed during recovery.
    pub merges: u64,
    /// Materializations performed during recovery.
    pub splits: u64,
    /// Materialized clusters at the end of the run.
    pub clusters: usize,
    /// Live statistics-arena bytes after the final reorganization pass
    /// (`0` under [`acx_core::StatsLayout::PerClusterOracle`]).
    pub arena_live_bytes: u64,
    /// Arena slab capacity after the final pass; the gap to
    /// `arena_live_bytes` is garbage awaiting compaction.
    pub arena_capacity_bytes: u64,
    /// Lifetime arena compactions at the end of the run — recovery
    /// churn (merges retiring ranges) is what drives these.
    pub compactions: u64,
}

/// Mean of a slice (0 when empty).
fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// The `q`-quantile of an unsorted sample set (nearest-rank).
fn percentile(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = ((samples.len() as f64 * q).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

/// Runs the measurement protocol for one scenario instance against one
/// index configuration (see the module docs), returning the filled row.
///
/// The caller passes a *fresh* scenario per row: two rows built from
/// the same seed then see bit-identical query streams, so e.g. the two
/// [`acx_core::ReorgMode`]s are compared on exactly the same input.
pub fn measure_readapt(
    label: String,
    mode: &'static str,
    scenario: &mut dyn AdaptiveScenario,
    config: IndexConfig,
    data: &[HyperRect],
    params: &AdaptivityParams,
) -> AdaptivityRow {
    let window = (config.reorg_period.max(1) as usize).min(params.warmup_queries.max(1));
    let merge_cooldown = config.merge_cooldown;
    let mut index: AdaptiveClusterIndex = build_ac_with(config, data);

    // Adapt: trailing ring of priced costs over one reorg period.
    let mut ring = vec![0.0f64; window];
    for k in 0..params.warmup_queries {
        let q = scenario.next_query();
        ring[k % window] = index.execute(&q).metrics.priced_ms;
    }
    let steady_ms = mean(&ring);

    let thrash0 = index.total_thrash();
    let merges0 = index.total_merges();
    let splits0 = index.total_splits();
    let mut reorgs_seen = index.reorganizations();
    let mut cooldown_blocked = 0u64;

    scenario.shift();

    let mut wall_ms: Vec<f64> = Vec::with_capacity(params.post_queries);
    let mut post_shift_ms = 0.0;
    let mut readapt_queries: Option<u64> = None;
    let target = params.band * steady_ms;
    for k in 0..params.post_queries {
        let q = scenario.next_query();
        let r = index.execute(&q);
        ring[k % window] = r.metrics.priced_ms;
        wall_ms.push(r.metrics.wall.as_nanos() as f64 / 1e6);
        let reorgs = index.reorganizations();
        if reorgs > reorgs_seen {
            cooldown_blocked += index.last_reorg_profile().cooldown_blocked;
            reorgs_seen = reorgs;
        }
        if k + 1 == window {
            post_shift_ms = mean(&ring);
        }
        if k + 1 >= window && readapt_queries.is_none() && mean(&ring) <= target {
            readapt_queries = Some((k + 1) as u64);
        }
    }

    let p50_wall_ms = percentile(&mut wall_ms, 0.50);
    let p99_wall_ms = percentile(&mut wall_ms, 0.99);
    let profile = index.last_reorg_profile();
    AdaptivityRow {
        scenario: label,
        mode,
        merge_cooldown,
        steady_ms,
        post_shift_ms,
        readapt_queries,
        readapt_periods: readapt_queries.map(|q| q.div_ceil(window as u64)),
        p50_wall_ms,
        p99_wall_ms,
        thrash_cycles: index.total_thrash() - thrash0,
        cooldown_blocked,
        merges: index.total_merges() - merges0,
        splits: index.total_splits() - splits0,
        clusters: index.cluster_count(),
        arena_live_bytes: profile.arena_live_bytes,
        arena_capacity_bytes: profile.arena_capacity_bytes,
        compactions: profile.compactions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acx_storage::StorageScenario;

    #[test]
    fn zoo_factories_cover_every_name() {
        let cfg = WorkloadConfig::new(4, 64, 7);
        for name in SCENARIOS {
            let mut s = make_scenario(name, &cfg);
            assert_eq!(s.dims(), 4);
            let _ = s.next_query();
            assert!(!make_objects(name, &cfg).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "unknown scenario")]
    fn unknown_scenario_panics() {
        make_scenario("definitely_not_a_scenario", &WorkloadConfig::new(2, 8, 1));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let mut xs = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&mut xs, 0.50), 2.0);
        assert_eq!(percentile(&mut xs, 0.99), 4.0);
        let mut empty: Vec<f64> = Vec::new();
        assert_eq!(percentile(&mut empty, 0.5), 0.0);
    }

    #[test]
    fn measure_readapt_fills_a_row() {
        let params = AdaptivityParams {
            objects: 300,
            dims: 3,
            warmup_queries: 250,
            post_queries: 250,
            band: 1.25,
            seed: 11,
        };
        let obj_cfg = WorkloadConfig::new(params.dims, params.objects, params.seed);
        let qry_cfg = WorkloadConfig::new(params.dims, params.objects, params.seed ^ 0xF1E1D);
        let data = make_objects("flash_crowd", &obj_cfg);
        let mut scenario = make_scenario("flash_crowd", &qry_cfg);
        let config = crate::ac_config(params.dims, StorageScenario::Memory);
        let row = measure_readapt(
            "flash_crowd".into(),
            "incremental",
            scenario.as_mut(),
            config,
            &data,
            &params,
        );
        assert!(row.steady_ms > 0.0);
        assert!(row.p99_wall_ms >= row.p50_wall_ms);
        assert_eq!(row.merge_cooldown, 0);
        assert_eq!(row.cooldown_blocked, 0);
        if let (Some(q), Some(p)) = (row.readapt_queries, row.readapt_periods) {
            assert!(q <= params.post_queries as u64);
            assert_eq!(p, q.div_ceil(100));
        }
    }
}
