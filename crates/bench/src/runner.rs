//! Shared experiment machinery: building the three access methods over
//! one object set and measuring them on one query stream.

use acx_baselines::{RStarConfig, RStarTree, SeqScan};
use acx_core::{AdaptiveClusterIndex, IndexConfig};
use acx_geom::{HyperRect, ObjectId, SpatialQuery};
use acx_storage::{AccessStats, CostModel, StorageScenario};

/// Scale parameters of one experiment run.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    /// Database size.
    pub objects: usize,
    /// Queries used to reach the stable clustering state (AC only).
    pub warmup_queries: usize,
    /// Queries measured and averaged.
    pub measured_queries: usize,
    /// Workload / query seed.
    pub seed: u64,
}

impl ExperimentScale {
    /// Default reduced scale: results keep the paper's *shape* while
    /// running on a laptop in minutes (see DESIGN.md §3).
    pub fn default_reduced(objects: usize) -> Self {
        Self {
            objects,
            warmup_queries: 600,
            measured_queries: 200,
            seed: 0x5EED,
        }
    }
}

/// Averaged per-query measurements of one access method.
#[derive(Debug, Clone)]
pub struct MethodReport {
    /// Method label ("AC", "RS", "SS").
    pub method: &'static str,
    /// Average wall-clock time per query (ms).
    pub wall_ms: f64,
    /// Average cost-model time per query in the memory scenario (ms).
    pub priced_memory_ms: f64,
    /// Average cost-model time per query in the disk scenario (ms).
    pub priced_disk_ms: f64,
    /// Total clusters (AC) or nodes (RS); 1 for SS.
    pub total_units: usize,
    /// Average explored clusters/nodes per query.
    pub explored_units: f64,
    /// Average fraction of clusters/nodes explored per query.
    pub explored_fraction: f64,
    /// Average fraction of database objects verified per query.
    pub verified_fraction: f64,
    /// Average result cardinality (for selectivity validation).
    pub avg_matches: f64,
    /// Reorganization passes triggered during the measured stream
    /// (always `0` for the baselines, which never reorganize).
    pub reorg_passes: u64,
    /// Wall-clock nanoseconds the measured stream spent inside those
    /// passes — the serving stall that batching hides at window
    /// boundaries, surfaced so the batched path and the sharded
    /// serving tier are comparable on the same axis.
    pub reorg_stall_ns: u64,
}

/// The paper-default configuration for a storage scenario.
pub fn ac_config(dims: usize, scenario: StorageScenario) -> IndexConfig {
    match scenario {
        StorageScenario::Memory => IndexConfig::memory(dims),
        StorageScenario::Disk => IndexConfig::disk(dims),
    }
}

/// Builds an adaptive clustering index over the objects.
pub fn build_ac(
    dims: usize,
    scenario: StorageScenario,
    objects: &[HyperRect],
) -> AdaptiveClusterIndex {
    build_ac_with(ac_config(dims, scenario), objects)
}

/// Builds an adaptive clustering index from an explicit configuration —
/// the entry point the experiment binaries use to apply CLI kernel
/// toggles ([`crate::args::Flags::apply_scan_flags`]).
pub fn build_ac_with(config: IndexConfig, objects: &[HyperRect]) -> AdaptiveClusterIndex {
    let mut index = AdaptiveClusterIndex::new(config).expect("valid config");
    for (i, rect) in objects.iter().enumerate() {
        index
            .insert(ObjectId(i as u32), rect.clone())
            .expect("insertion succeeds");
    }
    index
}

/// Builds an index and replays `queries` once through `execute` so the
/// clustering reaches its adapted state before measurement.
pub fn adapted_ac(
    config: IndexConfig,
    objects: &[HyperRect],
    queries: &[SpatialQuery],
) -> AdaptiveClusterIndex {
    let mut index = build_ac_with(config, objects);
    for q in queries {
        index.execute(q);
    }
    index
}

/// The three recorded-execution strategies compared by the
/// `recorded_execute` criterion bench and the `scan_bench` snapshot —
/// one definition so the two measurements can never drift apart:
///
/// * `bitmask_zones` — the default: bitmask member kernel + zone maps +
///   bitmask candidate kernel;
/// * `scalar_candidates_nozones` — the PR 3 execution strategy:
///   columnar members, candidate-at-a-time scalar loop, no zone maps;
/// * `scalar_oracle` — the all-scalar reference.
pub fn recorded_strategies(dims: usize) -> [(&'static str, IndexConfig); 3] {
    let base = IndexConfig::memory(dims);
    [
        ("bitmask_zones", base.clone()),
        (
            "scalar_candidates_nozones",
            IndexConfig {
                candidate_scan: acx_core::ScanMode::ScalarOracle,
                zone_maps: false,
                ..base.clone()
            },
        ),
        (
            "scalar_oracle",
            IndexConfig {
                scan_mode: acx_core::ScanMode::ScalarOracle,
                candidate_scan: acx_core::ScanMode::ScalarOracle,
                ..base
            },
        ),
    ]
}

/// The two reorganization strategies compared by the `reorganize`
/// criterion bench and the `scan_bench` reorg section — one definition
/// so the two measurements can never drift apart:
///
/// * `incremental` — the default: dirty-set + O(1) screen + columnar
///   benefit evaluation;
/// * `full_oracle` — the decision-identical full scalar sweep, the
///   reference row of `BENCH_reorg.json`.
pub fn reorg_strategies(dims: usize) -> [(&'static str, IndexConfig); 2] {
    let base = IndexConfig::memory(dims);
    [
        (
            "incremental",
            IndexConfig {
                reorg_mode: acx_core::ReorgMode::Incremental,
                ..base.clone()
            },
        ),
        (
            "full_oracle",
            IndexConfig {
                reorg_mode: acx_core::ReorgMode::FullOracle,
                ..base
            },
        ),
    ]
}

/// The reorganization strategies crossed with the statistics layout,
/// compared by the `scan_bench` reorg section — the arena row against
/// its per-cluster decision oracle, plus the full scalar sweep:
///
/// * `incremental_arena` — the default: dirty-set + O(1) screen +
///   columnar benefit evaluation over the index-wide statistics slab;
/// * `incremental_per_cluster` — the same pass over per-cluster `Vec`
///   columns, isolating what the slab layout buys;
/// * `full_oracle` — the decision-identical full scalar sweep, the
///   reference row of `BENCH_reorg.json`.
pub fn reorg_layout_strategies(dims: usize) -> [(&'static str, IndexConfig); 3] {
    let base = IndexConfig::memory(dims);
    [
        (
            "incremental_arena",
            IndexConfig {
                reorg_mode: acx_core::ReorgMode::Incremental,
                stats_layout: acx_core::StatsLayout::Arena,
                ..base.clone()
            },
        ),
        (
            "incremental_per_cluster",
            IndexConfig {
                reorg_mode: acx_core::ReorgMode::Incremental,
                stats_layout: acx_core::StatsLayout::PerClusterOracle,
                ..base.clone()
            },
        ),
        (
            "full_oracle",
            IndexConfig {
                reorg_mode: acx_core::ReorgMode::FullOracle,
                ..base
            },
        ),
    ]
}

/// Builds an R*-tree over the objects (structure is scenario-independent).
pub fn build_rs(dims: usize, objects: &[HyperRect]) -> RStarTree {
    let mut tree = RStarTree::new(RStarConfig::memory(dims));
    for (i, rect) in objects.iter().enumerate() {
        tree.insert(ObjectId(i as u32), rect);
    }
    tree
}

/// Builds the sequential-scan baseline.
pub fn build_ss(dims: usize, objects: &[HyperRect]) -> SeqScan {
    let mut scan = SeqScan::new(dims, StorageScenario::Memory);
    for (i, rect) in objects.iter().enumerate() {
        scan.insert(ObjectId(i as u32), rect);
    }
    scan
}

#[allow(clippy::too_many_arguments)]
fn summarize(
    method: &'static str,
    total_units: usize,
    n_objects: usize,
    queries: usize,
    agg: AccessStats,
    wall_ns: u128,
    matches: u64,
    mem_model: &CostModel,
    disk_model: &CostModel,
) -> MethodReport {
    let q = queries as f64;
    let avg = agg.averaged(queries as u64);
    MethodReport {
        method,
        wall_ms: wall_ns as f64 / 1e6 / q,
        priced_memory_ms: mem_model.price(&agg) / q,
        priced_disk_ms: disk_model.price(&agg) / q,
        total_units,
        explored_units: avg.clusters_explored,
        explored_fraction: avg.clusters_explored / total_units.max(1) as f64,
        verified_fraction: avg.objects_verified / n_objects.max(1) as f64,
        avg_matches: matches as f64 / q,
        reorg_passes: 0,
        reorg_stall_ns: 0,
    }
}

/// Warm up an AC index to its stable clustering state, then measure it on
/// the query stream.
///
/// Warm-up replays the stream cyclically (the paper launches "a number of
/// queries … to trigger the object organization in clusters", reorganizing
/// every 100 queries and stabilizing within 10 steps).
pub fn run_ac(
    index: &mut AdaptiveClusterIndex,
    warmup: &[SpatialQuery],
    measured: &[SpatialQuery],
    n_objects: usize,
) -> MethodReport {
    for q in warmup {
        index.execute(q);
    }
    let mem_model = IndexConfig::memory(index.dims()).cost_model();
    let disk_model = IndexConfig::disk(index.dims()).cost_model();
    let reorg_base = (index.reorganizations(), index.reorg_wall_ns());
    let mut agg = AccessStats::new();
    let mut wall_ns = 0u128;
    let mut matches = 0u64;
    for q in measured {
        let r = index.execute(q);
        agg.merge(&r.metrics.stats);
        wall_ns += r.metrics.wall.as_nanos();
        matches += r.matches.len() as u64;
    }
    let mut report = summarize(
        "AC",
        index.cluster_count(),
        n_objects,
        measured.len(),
        agg,
        wall_ns,
        matches,
        &mem_model,
        &disk_model,
    );
    report.reorg_passes = index.reorganizations() - reorg_base.0;
    report.reorg_stall_ns = index.reorg_wall_ns() - reorg_base.1;
    report
}

/// Warm up an AC index to its stable clustering state, then measure the
/// **batched parallel** read path on the stream.
///
/// The adaptive state after a batch is identical to sequential execution
/// (deltas are merged at reorganization boundaries), so reports are
/// comparable with [`run_ac`] — only wall-clock changes with `threads`.
pub fn run_ac_batch(
    index: &mut AdaptiveClusterIndex,
    warmup: &[SpatialQuery],
    measured: &[SpatialQuery],
    threads: usize,
    n_objects: usize,
) -> MethodReport {
    index.execute_batch(warmup, threads);
    let mem_model = IndexConfig::memory(index.dims()).cost_model();
    let disk_model = IndexConfig::disk(index.dims()).cost_model();
    let reorg_base = (index.reorganizations(), index.reorg_wall_ns());
    let started = std::time::Instant::now();
    let results = index.execute_batch(measured, threads);
    let wall_ns = started.elapsed().as_nanos();
    let mut agg = AccessStats::new();
    let mut matches = 0u64;
    for r in &results {
        agg.merge(&r.metrics.stats);
        matches += r.matches.len() as u64;
    }
    let mut report = summarize(
        "AC",
        index.cluster_count(),
        n_objects,
        measured.len(),
        agg,
        wall_ns,
        matches,
        &mem_model,
        &disk_model,
    );
    report.reorg_passes = index.reorganizations() - reorg_base.0;
    report.reorg_stall_ns = index.reorg_wall_ns() - reorg_base.1;
    report
}

/// Builds an [`acx_serve::ShardedIndex`] over the objects, adapts it on the warm-up
/// stream, then measures the serving tier on the measured stream: every
/// event is fanned out through the bounded queues and the window
/// statistics (aggregate qps, latency percentiles, queue depth, reorg
/// stall) are captured after a full drain.
pub fn run_serve(
    config: acx_serve::ServeConfig,
    objects: &[HyperRect],
    warmup: &[SpatialQuery],
    measured: &[SpatialQuery],
) -> acx_serve::ServeStats {
    let index = acx_serve::ShardedIndex::new(config).expect("valid serve config");
    index
        .insert_all(
            objects
                .iter()
                .enumerate()
                .map(|(i, rect)| (ObjectId(i as u32), rect.clone())),
        )
        .expect("insertion succeeds");
    for q in warmup {
        index.submit(q.clone());
    }
    index.flush();
    index.reset_stats_window();
    for q in measured {
        index.submit(q.clone());
    }
    index.flush();
    index.stats()
}

/// Measures a baseline (RS or SS) on the query stream.
pub fn run_baseline<F>(
    method: &'static str,
    total_units: usize,
    n_objects: usize,
    dims: usize,
    measured: &[SpatialQuery],
    mut execute: F,
) -> MethodReport
where
    F: FnMut(&SpatialQuery) -> acx_storage::QueryResult,
{
    let mem_model = IndexConfig::memory(dims).cost_model();
    let disk_model = IndexConfig::disk(dims).cost_model();
    let mut agg = AccessStats::new();
    let mut wall_ns = 0u128;
    let mut matches = 0u64;
    for q in measured {
        let r = execute(q);
        agg.merge(&r.metrics.stats);
        wall_ns += r.metrics.wall.as_nanos();
        matches += r.matches.len() as u64;
    }
    summarize(
        method,
        total_units,
        n_objects,
        measured.len(),
        agg,
        wall_ns,
        matches,
        &mem_model,
        &disk_model,
    )
}

/// Renders one paper-style table row.
pub fn row(label: &str, reports: &[&MethodReport]) -> String {
    use std::fmt::Write as _;
    let mut s = format!("{label:>10} |");
    for r in reports {
        let _ = write!(
            s,
            " {:>3} mem={:>9.4}ms disk={:>10.2}ms units={:>6} expl={:>5.1}% objs={:>5.1}% |",
            r.method,
            r.priced_memory_ms,
            r.priced_disk_ms,
            r.total_units,
            r.explored_fraction * 100.0,
            r.verified_fraction * 100.0,
        );
    }
    s
}
