//! Micro-benchmark of the columnar verification kernel against the
//! scalar oracle (object-at-a-time `matches_flat`), across database
//! sizes and dimensionalities. Point-enclosing queries are the
//! scan-dominated case the adaptive index optimizes for (§7.2);
//! intersection windows add a lower-selectivity shape.

use acx_geom::scan::{scan_columns, PairedColumns, ScanScratch};
use acx_geom::{Scalar, SpatialQuery, OBJECT_ID_BYTES};
use acx_workloads::{UniformWorkload, Workload, WorkloadConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const SIZES: [usize; 3] = [1_000, 10_000, 100_000];
const DIMS: [usize; 3] = [2, 4, 8];

/// Interleaved flats plus the equivalent dimension-major columns.
fn build(dims: usize, n: usize) -> (Vec<Scalar>, Vec<Vec<Scalar>>, Vec<SpatialQuery>) {
    let workload = UniformWorkload::with_max_length(WorkloadConfig::new(dims, n, 0x5CA7), 0.3);
    let mut rng = WorkloadConfig::new(dims, n, 0x5CA7).rng();
    let width = 2 * dims;
    let mut flat = Vec::with_capacity(n * width);
    for _ in 0..n {
        workload.sample_object(&mut rng).write_flat(&mut flat);
    }
    let mut cols = vec![Vec::with_capacity(n); width];
    for row in flat.chunks_exact(width) {
        for (k, &v) in row.iter().enumerate() {
            cols[k].push(v);
        }
    }
    let queries = (0..64)
        .map(|_| SpatialQuery::point_enclosing(workload.sample_point(&mut rng)))
        .collect();
    (flat, cols, queries)
}

/// The scalar oracle: per-object verification with early exit, summing
/// the same byte accounting the access methods report.
fn scalar_scan(query: &SpatialQuery, flat: &[Scalar], width: usize) -> (usize, u64) {
    let mut matched = 0usize;
    let mut verified_bytes = 0u64;
    for row in flat.chunks_exact(width) {
        let out = query.matches_flat(row);
        verified_bytes += OBJECT_ID_BYTES as u64 + 8 * out.dims_checked as u64;
        matched += out.matched as usize;
    }
    (matched, verified_bytes)
}

fn bench_scan_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_kernel");
    group.sample_size(15);
    for &dims in &DIMS {
        for &n in &SIZES {
            let (flat, cols, queries) = build(dims, n);
            let width = 2 * dims;
            let mut scratch = ScanScratch::new();
            let mut k = 0usize;
            group.bench_function(format!("columnar/d{dims}/n{n}"), |b| {
                b.iter(|| {
                    k = (k + 1) % queries.len();
                    let out = scan_columns(
                        black_box(&queries[k]),
                        &PairedColumns::new(&cols),
                        &mut scratch,
                    );
                    black_box((out.matched, out.verified_bytes()))
                })
            });
            group.bench_function(format!("scalar/d{dims}/n{n}"), |b| {
                b.iter(|| {
                    k = (k + 1) % queries.len();
                    black_box(scalar_scan(black_box(&queries[k]), &flat, width))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scan_kernel);
criterion_main!(benches);
