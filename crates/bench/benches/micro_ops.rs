//! Micro-benchmarks of the hot primitive operations: signature checks
//! (the cost model's `A`), object verification (`C`), candidate
//! generation, insertions, and the benefit functions.

use acx_core::cost::{materialization_benefit, merging_benefit};
use acx_core::{candidates::generate_candidates, AdaptiveClusterIndex, IndexConfig, Signature};
use acx_geom::{object_size_bytes, HyperRect, ObjectId, SpatialQuery};
use acx_storage::CostModel;
use acx_workloads::{UniformWorkload, Workload, WorkloadConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_micro(c: &mut Criterion) {
    let dims = 16;
    let workload = UniformWorkload::new(WorkloadConfig::new(dims, 1024, 3));
    let mut rng = WorkloadConfig::new(dims, 1024, 3).rng();
    let objects: Vec<HyperRect> = (0..1024).map(|_| workload.sample_object(&mut rng)).collect();
    let flats: Vec<Vec<f32>> = objects.iter().map(|o| o.to_flat()).collect();
    let signature = Signature::root(dims).specialize(3, 4, 1, 2);
    let query = SpatialQuery::intersection(workload.sample_window(&mut rng, 0.3));

    let mut k = 0usize;
    c.bench_function("signature_accepts_flat", |b| {
        b.iter(|| {
            k = (k + 1) % flats.len();
            signature.accepts_flat(&flats[k])
        })
    });
    c.bench_function("signature_matches_query", |b| {
        b.iter(|| signature.matches_query(&query))
    });
    c.bench_function("object_verification_flat", |b| {
        b.iter(|| {
            k = (k + 1) % flats.len();
            query.matches_flat(&flats[k]).matched
        })
    });
    c.bench_function("generate_candidates_16d", |b| {
        b.iter(|| generate_candidates(&signature, 4).len())
    });

    let model = CostModel::memory(object_size_bytes(dims));
    let (a, bb, cc) = (model.a(), model.b(), model.c());
    c.bench_function("benefit_functions", |b| {
        b.iter(|| {
            materialization_benefit(a, bb, cc, 0.8, 0.2, 500)
                + merging_benefit(a, bb, cc, 0.3, 0.9, 200)
        })
    });

    c.bench_function("ac_insert", |b| {
        let mut index = AdaptiveClusterIndex::new(IndexConfig::memory(dims)).unwrap();
        let mut next = 0u32;
        b.iter(|| {
            let rect = objects[next as usize % objects.len()].clone();
            index.insert(ObjectId(next), rect).unwrap();
            next += 1;
        })
    });
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
