//! Criterion benches for the Fig. 8 experiment family (E5–E8): query
//! execution over the skewed workload at increasing dimensionality
//! (quarter of dimensions twice as selective, average selectivity 0.05 %).
//!
//! The full table regeneration is `cargo run --release -p acx-bench --bin fig8`.

use acx_bench::{build_ac, build_rs, build_ss};
use acx_geom::SpatialQuery;
use acx_storage::StorageScenario;
use acx_workloads::{calibrate, SkewedWorkload, WorkloadConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const OBJECTS: usize = 8_000;

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8");
    group.sample_size(20);
    for dims in [16usize, 28, 40] {
        let base = calibrate::skewed_base_length(dims, 5e-4, dims as u64);
        let workload = SkewedWorkload::new(WorkloadConfig::new(dims, OBJECTS, 0x5EED), base);
        let data = workload.generate_objects();
        let rs = build_rs(dims, &data);
        let ss = build_ss(dims, &data);
        let mut rng = WorkloadConfig::new(dims, OBJECTS, 17).rng();
        let queries: Vec<SpatialQuery> = (0..512)
            .map(|_| SpatialQuery::intersection(workload.sample_unconstrained_window(&mut rng)))
            .collect();
        let mut ac = build_ac(dims, StorageScenario::Memory, &data);
        for q in &queries {
            ac.execute(q);
        }

        let mut k = 0usize;
        group.bench_function(BenchmarkId::new("AC", dims), |b| {
            b.iter(|| {
                k = (k + 1) % queries.len();
                ac.execute(&queries[k]).matches.len()
            })
        });
        group.bench_function(BenchmarkId::new("RS", dims), |b| {
            b.iter(|| {
                k = (k + 1) % queries.len();
                rs.execute(&queries[k]).matches.len()
            })
        });
        group.bench_function(BenchmarkId::new("SS", dims), |b| {
            b.iter(|| {
                k = (k + 1) % queries.len();
                ss.execute(&queries[k]).matches.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
