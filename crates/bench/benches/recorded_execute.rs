//! Criterion bench for the **recorded** execution path — the hot loop
//! of adaptive serving: matching plus statistics recording (per-cluster
//! and per-candidate counters), the part of `execute` that the columnar
//! candidate kernel and the bitmask/zone-map member kernel accelerate.
//!
//! The three strategies come from [`acx_bench::recorded_strategies`]
//! (the same matrix the `scan_bench` snapshot measures, so the criterion
//! bench and the committed `BENCH_scan.json` can never drift apart):
//! the current default, the PR 3 execution strategy (columnar members,
//! scalar candidate loop, no zone maps), and the all-scalar oracle.
//!
//! All three record bit-identical statistics, so their gap is pure
//! kernel speedup.

use acx_bench::{adapted_ac, recorded_strategies};
use acx_core::{QueryScratch, StatsDelta};
use acx_geom::SpatialQuery;
use acx_workloads::{UniformWorkload, Workload, WorkloadConfig};
use criterion::{criterion_group, criterion_main, Criterion};

const DIMS: usize = 16;
const OBJECTS: usize = 10_000;

fn bench_recorded_execute(c: &mut Criterion) {
    let workload =
        UniformWorkload::with_max_length(WorkloadConfig::new(DIMS, OBJECTS, 0x5EED), 0.3);
    let data = workload.generate_objects();
    let mut rng = WorkloadConfig::new(DIMS, OBJECTS, 17).rng();
    let queries: Vec<SpatialQuery> = (0..512)
        .map(|_| SpatialQuery::point_enclosing(workload.sample_point(&mut rng)))
        .collect();

    let mut group = c.benchmark_group("recorded_execute");
    group.sample_size(30);
    for (label, config) in recorded_strategies(DIMS) {
        let index = adapted_ac(config, &data, &queries);
        let mut scratch = QueryScratch::new();
        let mut delta = StatsDelta::new();
        let mut k = 0usize;
        group.bench_function(label, |b| {
            b.iter(|| {
                k = (k + 1) % queries.len();
                delta.clear();
                let metrics = index.query_recorded_with(&queries[k], &mut delta, &mut scratch);
                metrics.stats.verified_bytes + scratch.matches().len() as u64
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_recorded_execute);
criterion_main!(benches);
