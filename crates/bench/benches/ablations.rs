//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * division factor `f` (the paper fixes `f = 4`, §4.2/§6),
//! * reorganization period (the paper uses 100 queries, §7.1),
//! * statistics smoothing and confidence hysteresis (this repo's
//!   additions — `stats_decay = 0 / confidence_z = 0` reproduces the
//!   paper's bare benefit functions).
//!
//! Each variant warms an index to its stable state, then measures query
//! execution, so both the equilibrium clustering quality and the steady
//! -state cost are visible.

use acx_core::{AdaptiveClusterIndex, IndexConfig};
use acx_geom::{ObjectId, SpatialQuery};
use acx_workloads::{calibrate, UniformWorkload, Workload, WorkloadConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const DIMS: usize = 16;
const OBJECTS: usize = 8_000;

fn warmed_index(config: IndexConfig, queries: &[SpatialQuery]) -> AdaptiveClusterIndex {
    let workload =
        UniformWorkload::with_max_length(WorkloadConfig::new(DIMS, OBJECTS, 0x5EED), 0.5);
    let mut index = AdaptiveClusterIndex::new(config).unwrap();
    for (i, rect) in workload.generate_objects().into_iter().enumerate() {
        index.insert(ObjectId(i as u32), rect).unwrap();
    }
    for q in queries {
        index.execute(q);
    }
    index
}

fn make_queries() -> Vec<SpatialQuery> {
    let workload =
        UniformWorkload::with_max_length(WorkloadConfig::new(DIMS, OBJECTS, 0x5EED), 0.5);
    let extent = calibrate::uniform_query_extent(&workload, 5e-4, 11);
    let mut rng = WorkloadConfig::new(DIMS, OBJECTS, 17).rng();
    (0..600)
        .map(|_| SpatialQuery::intersection(workload.sample_window(&mut rng, extent)))
        .collect()
}

fn bench_division_factor(c: &mut Criterion) {
    let queries = make_queries();
    let mut group = c.benchmark_group("ablation_division_factor");
    group.sample_size(20);
    for f in [2u8, 4, 8] {
        let mut config = IndexConfig::memory(DIMS);
        config.division_factor = f;
        let mut index = warmed_index(config, &queries);
        let mut k = 0usize;
        group.bench_function(BenchmarkId::from_parameter(f), |b| {
            b.iter(|| {
                k = (k + 1) % queries.len();
                index.execute(&queries[k]).matches.len()
            })
        });
    }
    group.finish();
}

fn bench_reorg_period(c: &mut Criterion) {
    let queries = make_queries();
    let mut group = c.benchmark_group("ablation_reorg_period");
    group.sample_size(20);
    for period in [25u64, 100, 400] {
        let mut config = IndexConfig::memory(DIMS);
        config.reorg_period = period;
        let mut index = warmed_index(config, &queries);
        let mut k = 0usize;
        group.bench_function(BenchmarkId::from_parameter(period), |b| {
            b.iter(|| {
                k = (k + 1) % queries.len();
                index.execute(&queries[k]).matches.len()
            })
        });
    }
    group.finish();
}

fn bench_statistics_policy(c: &mut Criterion) {
    let queries = make_queries();
    let mut group = c.benchmark_group("ablation_statistics_policy");
    group.sample_size(20);
    // (decay, confidence): paper-bare vs smoothed+hysteresis (default).
    for (label, decay, z) in [("paper_bare", 0.0, 0.0), ("smoothed", 0.5, 2.0)] {
        let mut config = IndexConfig::memory(DIMS);
        config.stats_decay = decay;
        config.confidence_z = z;
        let mut index = warmed_index(config, &queries);
        let mut k = 0usize;
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                k = (k + 1) % queries.len();
                index.execute(&queries[k]).matches.len()
            })
        });
    }
    group.finish();
}

fn bench_grouping_vs_mbb(c: &mut Criterion) {
    // The paper's claim that signature grouping beats "minimum bounding
    // in all dimensions" is exercised by AC vs the R*-tree (the canonical
    // MBB structure) — see the fig7/fig8 benches. Here we isolate the
    // *pruning test* itself: signature match vs MBB intersection at
    // equal dimensionality.
    use acx_core::Signature;
    use acx_geom::HyperRect;
    let workload =
        UniformWorkload::with_max_length(WorkloadConfig::new(DIMS, OBJECTS, 0x5EED), 0.5);
    let mut rng = WorkloadConfig::new(DIMS, OBJECTS, 23).rng();
    let sig = Signature::root(DIMS).specialize(2, 4, 0, 1).specialize(9, 4, 2, 3);
    let mbb: HyperRect = workload.sample_object(&mut rng);
    let windows: Vec<HyperRect> = (0..256)
        .map(|_| workload.sample_window(&mut rng, 0.2))
        .collect();
    let queries: Vec<SpatialQuery> = windows
        .iter()
        .map(|w| SpatialQuery::intersection(w.clone()))
        .collect();

    let mut group = c.benchmark_group("ablation_grouping_prune_test");
    let mut k = 0usize;
    group.bench_function("signature_match", |b| {
        b.iter(|| {
            k = (k + 1) % queries.len();
            sig.matches_query(&queries[k])
        })
    });
    group.bench_function("mbb_intersection", |b| {
        b.iter(|| {
            k = (k + 1) % windows.len();
            mbb.intersects(&windows[k])
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_division_factor,
    bench_reorg_period,
    bench_statistics_policy,
    bench_grouping_vs_mbb
);
criterion_main!(benches);
