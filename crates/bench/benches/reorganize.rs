//! Criterion bench for the periodic **reorganization pass** — the
//! maintenance half of adaptive serving, and (since the bitmask read
//! kernels landed) the dominant non-matching cost of `execute` at scale.
//!
//! The two strategies come from [`acx_bench::reorg_strategies`] (the
//! same matrix the `scan_bench` snapshot measures, so the criterion
//! bench and the committed `BENCH_reorg.json` can never drift apart):
//! the default incremental pass (dirty set + O(1) no-split screen +
//! columnar benefit columns) and the decision-identical full scalar
//! sweep.
//!
//! Each iteration replays one full reorganization period — the paper's
//! `reorg_period = 100` queries feeding statistics into an adapted
//! 16-d index — but **only the `reorganize()` call is timed**
//! (`iter_custom`), so the numbers are the per-period maintenance cost
//! alone. Both strategies make identical decisions on this stream, so
//! their gap is pure pass speedup.

use std::time::{Duration, Instant};

use acx_bench::{build_ac_with, reorg_strategies};
use acx_geom::SpatialQuery;
use acx_workloads::{UniformWorkload, Workload, WorkloadConfig};
use criterion::{criterion_group, criterion_main, Criterion};

const DIMS: usize = 16;
const OBJECTS: usize = 10_000;
const PERIOD: usize = 100;

fn bench_reorganize(c: &mut Criterion) {
    let workload =
        UniformWorkload::with_max_length(WorkloadConfig::new(DIMS, OBJECTS, 0x5EED), 0.3);
    let data = workload.generate_objects();
    let mut rng = WorkloadConfig::new(DIMS, OBJECTS, 17).rng();
    let queries: Vec<SpatialQuery> = (0..500)
        .map(|_| SpatialQuery::point_enclosing(workload.sample_point(&mut rng)))
        .collect();

    let mut group = c.benchmark_group("reorganize");
    group.sample_size(12);
    for (label, mut config) in reorg_strategies(DIMS) {
        // Drive the paper's period explicitly (auto-reorganization off)
        // so the timed call is the pass alone: adaptation replays the
        // stream in period-sized windows exactly as `reorg_period = 100`
        // would, and each bench iteration replays one more period.
        config.reorg_period = 0;
        let mut index = build_ac_with(config, &data);
        for chunk in queries.chunks(PERIOD) {
            for q in chunk {
                index.execute(q);
            }
            index.reorganize();
        }
        let mut k = 0usize;
        group.bench_function(label, |b| {
            b.iter_custom(|iters| {
                let mut in_pass = Duration::ZERO;
                for _ in 0..iters {
                    for _ in 0..PERIOD {
                        k = (k + 1) % queries.len();
                        criterion::black_box(index.execute(&queries[k]).matches.len());
                    }
                    let started = Instant::now();
                    criterion::black_box(index.reorganize());
                    in_pass += started.elapsed();
                }
                in_pass
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reorganize);
criterion_main!(benches);
