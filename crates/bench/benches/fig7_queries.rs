//! Criterion benches for the Fig. 7 experiment family (E1–E4): query
//! execution over the uniform 16-dimensional workload at two
//! representative selectivities, for all three access methods and both
//! AC storage scenarios.
//!
//! The full table regeneration (all seven selectivities, paper-format
//! output) is `cargo run --release -p acx-bench --bin fig7`.

use acx_bench::{build_ac, build_rs, build_ss};
use acx_geom::SpatialQuery;
use acx_storage::StorageScenario;
use acx_workloads::{calibrate, UniformWorkload, Workload, WorkloadConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const DIMS: usize = 16;
const OBJECTS: usize = 10_000;

fn bench_fig7(c: &mut Criterion) {
    let workload =
        UniformWorkload::with_max_length(WorkloadConfig::new(DIMS, OBJECTS, 0x5EED), 0.5);
    let data = workload.generate_objects();
    let rs = build_rs(DIMS, &data);
    let ss = build_ss(DIMS, &data);

    let mut group = c.benchmark_group("fig7");
    group.sample_size(20);
    for selectivity in [5e-5f64, 5e-2] {
        let extent = calibrate::uniform_query_extent(&workload, selectivity, 11);
        let mut rng = WorkloadConfig::new(DIMS, OBJECTS, 17).rng();
        let queries: Vec<SpatialQuery> = (0..512)
            .map(|_| SpatialQuery::intersection(workload.sample_window(&mut rng, extent)))
            .collect();

        // Warm an AC index per scenario (reaches the stable clustering).
        let mut ac_mem = build_ac(DIMS, StorageScenario::Memory, &data);
        let mut ac_disk = build_ac(DIMS, StorageScenario::Disk, &data);
        for q in &queries {
            ac_mem.execute(q);
            ac_disk.execute(q);
        }

        let mut k = 0usize;
        group.bench_function(BenchmarkId::new("AC-memory", selectivity), |b| {
            b.iter(|| {
                k = (k + 1) % queries.len();
                ac_mem.execute(&queries[k]).matches.len()
            })
        });
        group.bench_function(BenchmarkId::new("AC-disk-layout", selectivity), |b| {
            b.iter(|| {
                k = (k + 1) % queries.len();
                ac_disk.execute(&queries[k]).matches.len()
            })
        });
        group.bench_function(BenchmarkId::new("RS", selectivity), |b| {
            b.iter(|| {
                k = (k + 1) % queries.len();
                rs.execute(&queries[k]).matches.len()
            })
        });
        group.bench_function(BenchmarkId::new("SS", selectivity), |b| {
            b.iter(|| {
                k = (k + 1) % queries.len();
                ss.execute(&queries[k]).matches.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
