//! Criterion bench for E9 (§7.2 point-enclosing queries): the index's
//! best case thanks to the queries' high selectivity. `AC` runs the
//! columnar scan kernel, `AC-oracle` the bit-identical scalar
//! verification path — their gap is the kernel's speedup on the
//! scan-dominated workload.

use acx_bench::{build_ac, build_ss};
use acx_core::{AdaptiveClusterIndex, IndexConfig, ScanMode};
use acx_geom::{ObjectId, SpatialQuery};
use acx_storage::StorageScenario;
use acx_workloads::{UniformWorkload, Workload, WorkloadConfig};
use criterion::{criterion_group, criterion_main, Criterion};

const DIMS: usize = 16;
const OBJECTS: usize = 10_000;

fn bench_point_enclosing(c: &mut Criterion) {
    let workload =
        UniformWorkload::with_max_length(WorkloadConfig::new(DIMS, OBJECTS, 0x5EED), 0.3);
    let data = workload.generate_objects();
    let ss = build_ss(DIMS, &data);
    let mut rng = WorkloadConfig::new(DIMS, OBJECTS, 17).rng();
    let queries: Vec<SpatialQuery> = (0..512)
        .map(|_| SpatialQuery::point_enclosing(workload.sample_point(&mut rng)))
        .collect();
    let mut ac = build_ac(DIMS, StorageScenario::Memory, &data);
    let mut oracle = AdaptiveClusterIndex::new(IndexConfig {
        scan_mode: ScanMode::ScalarOracle,
        ..IndexConfig::memory(DIMS)
    })
    .unwrap();
    for (i, rect) in data.iter().enumerate() {
        oracle.insert(ObjectId(i as u32), rect.clone()).unwrap();
    }
    for q in &queries {
        ac.execute(q);
        oracle.execute(q);
    }

    let mut group = c.benchmark_group("point_enclosing");
    group.sample_size(30);
    let mut k = 0usize;
    group.bench_function("AC", |b| {
        b.iter(|| {
            k = (k + 1) % queries.len();
            ac.execute(&queries[k]).matches.len()
        })
    });
    group.bench_function("AC-oracle", |b| {
        b.iter(|| {
            k = (k + 1) % queries.len();
            oracle.execute(&queries[k]).matches.len()
        })
    });
    group.bench_function("SS", |b| {
        b.iter(|| {
            k = (k + 1) % queries.len();
            ss.execute(&queries[k]).matches.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_point_enclosing);
criterion_main!(benches);
