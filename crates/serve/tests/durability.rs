//! Per-shard durability: WAL attachment, checkpointing and recovery
//! compose with sharding exactly as they do on a single index —
//! disjoint partitions mean each shard's log/checkpoint pair recovers
//! in isolation and the reassembled service is state-identical.

use acx_core::{AdaptiveClusterIndex, ClusterSnapshot, IndexConfig};
use acx_geom::{ObjectId, SpatialQuery};
use acx_serve::{ServeConfig, ShardBy, ShardedIndex};
use acx_storage::FlushPolicy;
use acx_workloads::{EventStream, PubSubGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "acx-serve-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&path);
    path
}

fn config() -> ServeConfig {
    let mut index = IndexConfig::memory(PubSubGenerator::apartments().dims());
    index.reorg_period = 32;
    ServeConfig::new(index)
        .with_shards(3)
        .with_shard_by(ShardBy::Hash)
        .retaining_results()
}

fn shard_states(index: &ShardedIndex) -> Vec<(Vec<ClusterSnapshot>, usize)> {
    (0..index.shards())
        .map(|s| {
            index.with_shard(s, |i: &mut AdaptiveClusterIndex| {
                (i.snapshots(), i.len())
            })
        })
        .collect()
}

#[test]
fn wal_checkpoint_recover_roundtrip() {
    let dir = temp_dir("roundtrip");
    let generator = PubSubGenerator::apartments();
    let mut rng = StdRng::seed_from_u64(31);
    let index = ShardedIndex::new(config()).unwrap();
    index.attach_wal_dir(&dir, FlushPolicy::PerRecord).unwrap();

    // Phase 1: inserts + events, then a checkpoint.
    index
        .insert_all((0..120).map(|i| (ObjectId(i), generator.subscription(i, &mut rng).ranges)))
        .unwrap();
    let mut stream = EventStream::with_flexibility(PubSubGenerator::apartments(), 8, 0.02);
    for q in stream.next_batch(60) {
        index.submit(q);
    }
    index.flush();
    index.checkpoint_all(&dir).unwrap();

    // Phase 2: more mutations after the checkpoint — these live only
    // in the per-shard logs.
    for i in 120..150 {
        index
            .insert(ObjectId(i), generator.subscription(i, &mut rng).ranges)
            .unwrap();
    }
    for i in (0..30).step_by(3) {
        index.remove(ObjectId(i)).unwrap();
    }
    let before = shard_states(&index);
    let survivors = index.object_ids();
    drop(index); // "crash": queues close, workers drain, logs stay

    let (recovered, reports) =
        ShardedIndex::recover(&dir, FlushPolicy::PerRecord, config()).unwrap();
    assert_eq!(reports.len(), 3);
    assert!(
        reports.iter().any(|r| r.replayed_records > 0),
        "phase-2 mutations were beyond the checkpoint"
    );
    assert_eq!(recovered.object_ids(), survivors);
    assert_eq!(
        shard_states(&recovered),
        before,
        "recovered shards must be state-identical"
    );

    // The recovered service still serves and still routes mutations.
    let probe = recovered.submit(SpatialQuery::point_enclosing(
        generator.event(&mut rng),
    ));
    recovered.flush();
    assert_eq!(recovered.drain_results().last().unwrap().seq, probe);
    recovered
        .insert(ObjectId(9000), generator.subscription(9000, &mut rng).ranges)
        .unwrap();
    assert!(recovered.contains(ObjectId(9000)));

    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_without_checkpoint_replays_the_whole_log() {
    let dir = temp_dir("no-ckpt");
    let generator = PubSubGenerator::apartments();
    let mut rng = StdRng::seed_from_u64(77);
    let index = ShardedIndex::new(config()).unwrap();
    index.attach_wal_dir(&dir, FlushPolicy::PerRecord).unwrap();
    index
        .insert_all((0..40).map(|i| (ObjectId(i), generator.subscription(i, &mut rng).ranges)))
        .unwrap();
    let before = shard_states(&index);
    drop(index);

    let (recovered, reports) =
        ShardedIndex::recover(&dir, FlushPolicy::PerRecord, config()).unwrap();
    assert_eq!(
        reports.iter().map(|r| r.replayed_records).sum::<u64>(),
        40,
        "every insert came back from a log"
    );
    assert_eq!(shard_states(&recovered), before);
    assert_eq!(recovered.len(), 40);

    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}
