//! Backpressure: a full queue rejects cleanly — the rolled-back event
//! reaches no shard, nothing is dropped, nothing is double-counted —
//! and the blocking path waits instead, accounting its stall.

use acx_core::{AdaptiveClusterIndex, IndexConfig};
use acx_geom::{HyperRect, ObjectId, SpatialQuery};
use acx_serve::{ServeConfig, ShardedIndex, SubmitError};
use std::sync::mpsc;
use std::time::Duration;

const CAP: usize = 4;

fn query() -> SpatialQuery {
    SpatialQuery::point_enclosing(vec![0.3, 0.3, 0.3])
}

fn build() -> ShardedIndex {
    let index = ShardedIndex::new(
        ServeConfig::new(IndexConfig::memory(3))
            .with_shards(2)
            .with_queue_cap(CAP)
            .retaining_results(),
    )
    .unwrap();
    index
        .insert(
            ObjectId(1),
            HyperRect::from_bounds(&[0.2, 0.2, 0.2], &[0.4, 0.4, 0.4]).unwrap(),
        )
        .unwrap();
    index
}

/// Parks shard 0's worker inside a closure until the returned sender is
/// signalled, leaving its queue to fill up behind it. Returns only once
/// the worker is inside the closure (i.e. the closure no longer
/// occupies a queue slot).
fn park_shard_zero(index: &ShardedIndex) -> (mpsc::Sender<()>, mpsc::Receiver<()>) {
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let (entered_tx, entered_rx) = mpsc::channel::<()>();
    let parked = index.with_shard_deferred(0, move |_: &mut AdaptiveClusterIndex| {
        let _ = entered_tx.send(());
        let _ = gate_rx.recv();
    });
    entered_rx.recv().expect("worker reaches the parked closure");
    (gate_tx, parked)
}

#[test]
fn full_queue_rejects_and_loses_nothing() {
    let index = build();
    let (gate, parked) = park_shard_zero(&index);

    // The worker is parked *outside* the queue (the closure has been
    // dequeued), so exactly `CAP` events fit.
    for k in 0..CAP {
        index.try_submit(query()).unwrap_or_else(|e| {
            panic!("event {k} must be admitted below the cap: {e}");
        });
    }
    assert_eq!(
        index.try_submit(query()),
        Err(SubmitError::QueueFull),
        "event CAP must be rejected while the worker is parked"
    );
    // The rejection rolled back shard 1's reservation too: shard 1
    // still accepts a full fan-out after shard 0 resumes.
    gate.send(()).unwrap();
    parked.recv().expect("worker resumes");
    index.try_submit(query()).unwrap();
    index.flush();

    let results = index.drain_results();
    assert_eq!(results.len(), CAP + 1, "accepted events all completed");
    let mut seqs: Vec<u64> = results.iter().map(|r| r.seq).collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(
        seqs,
        (0..=CAP as u64).collect::<Vec<_>>(),
        "no event dropped, none double-counted"
    );
    for result in &results {
        assert_eq!(result.matches, vec![ObjectId(1)]);
    }

    let stats = index.stats();
    assert_eq!(stats.events_submitted, CAP as u64 + 1);
    assert_eq!(stats.events_completed, CAP as u64 + 1);
    assert_eq!(stats.queue_full_rejections, 1);
    assert_eq!(stats.submit_stalls, 0, "try_submit never blocks");
    for shard in &stats.shards {
        assert_eq!(
            shard.events,
            CAP as u64 + 1,
            "every accepted event reached shard {} exactly once",
            shard.shard
        );
    }
    // The rejected fan-out observed depth CAP on shard 0.
    assert_eq!(stats.shards[0].queue_depth_p99, CAP);
}

#[test]
fn blocking_submit_waits_and_accounts_the_stall() {
    let index = build();
    let (gate, parked) = park_shard_zero(&index);
    for _ in 0..CAP {
        index.try_submit(query()).unwrap();
    }

    std::thread::scope(|scope| {
        let blocked = scope.spawn(|| index.submit(query()));
        // Only the parked worker can free a slot, so the submit is
        // stalled until the gate opens no matter how long we wait.
        std::thread::sleep(Duration::from_millis(25));
        gate.send(()).unwrap();
        let seq = blocked.join().expect("blocked submitter");
        assert_eq!(seq, CAP as u64);
    });
    parked.recv().expect("worker resumes");
    index.flush();

    let stats = index.stats();
    assert_eq!(stats.events_completed, CAP as u64 + 1);
    assert_eq!(stats.queue_full_rejections, 0);
    assert_eq!(stats.submit_stalls, 1, "the blocking submit stalled once");
    assert!(
        stats.submit_stall_ns >= Duration::from_millis(20).as_nanos() as u64,
        "stall covers the parked interval, got {}ns",
        stats.submit_stall_ns
    );
    assert_eq!(index.drain_results().len(), CAP + 1);
}
