//! Sharded serving must be answer-identical to single-index execution.
//!
//! Three contracts, all under both partitioning strategies:
//!
//! * **Union**: for every event, the sorted union of per-shard matches
//!   equals the match set of one index holding *all* subscriptions —
//!   for 1, 2 and 4 shards, so the answer is independent of the shard
//!   count and the partitioning strategy.
//! * **Per-shard identity**: each shard's index ends in exactly the
//!   state (every [`ClusterSnapshot`], every counter) of an index built
//!   independently over that shard's subscription partition and driven
//!   with the same event sequence — the shard *is* a single index, the
//!   serving tier adds nothing to its decision surface.
//! * **Mutations mid-stream** keep the union contract: routed inserts
//!   and removes interleaved with events answer like a single index
//!   applying the same interleaving.

use acx_core::{AdaptiveClusterIndex, ClusterSnapshot, IndexConfig};
use acx_geom::{HyperRect, ObjectId, SpatialQuery};
use acx_serve::{ServeConfig, ShardBy, ShardedIndex};
use acx_workloads::{EventStream, PubSubGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

fn subscriptions(n: u32) -> Vec<(ObjectId, HyperRect)> {
    let generator = PubSubGenerator::apartments();
    let mut rng = StdRng::seed_from_u64(0xACE5);
    (0..n)
        .map(|i| (ObjectId(i), generator.subscription(i, &mut rng).ranges))
        .collect()
}

/// Frequent reorganizations so passes fire mid-stream on every shard.
fn config() -> IndexConfig {
    let mut config = IndexConfig::memory(PubSubGenerator::apartments().dims());
    config.reorg_period = 64;
    config
}

fn events(n: usize, seed: u64) -> Vec<SpatialQuery> {
    EventStream::with_flexibility(PubSubGenerator::apartments(), seed, 0.02).next_batch(n)
}

fn sorted(mut matches: Vec<ObjectId>) -> Vec<ObjectId> {
    matches.sort_unstable();
    matches
}

#[test]
fn union_is_identical_across_shard_counts_and_strategies() {
    let subs = subscriptions(600);
    let stream = events(400, 42);

    let mut reference = AdaptiveClusterIndex::new(config()).unwrap();
    for (id, rect) in &subs {
        reference.insert(*id, rect.clone()).unwrap();
    }
    let expected: Vec<Vec<ObjectId>> = stream
        .iter()
        .map(|q| sorted(reference.execute(q).matches))
        .collect();
    assert!(
        expected.iter().any(|m| !m.is_empty()),
        "premise: some events must match"
    );
    assert!(reference.reorganizations() > 0, "premise: reorgs fired");

    for shard_by in [ShardBy::Hash, ShardBy::Space] {
        for shards in [1usize, 2, 4] {
            let index = ShardedIndex::new(
                ServeConfig::new(config())
                    .with_shards(shards)
                    .with_shard_by(shard_by)
                    .retaining_results(),
            )
            .unwrap();
            index.insert_all(subs.iter().cloned()).unwrap();
            for q in &stream {
                index.submit(q.clone());
            }
            index.flush();
            let results = index.drain_results();
            assert_eq!(results.len(), stream.len(), "{shard_by}/{shards} shards");
            for (k, result) in results.iter().enumerate() {
                assert_eq!(result.seq, k as u64);
                assert_eq!(
                    result.matches, expected[k],
                    "event {k} diverged under {shard_by}/{shards} shards"
                );
            }
            let stats = index.stats();
            assert_eq!(stats.events_completed, stream.len() as u64);
        }
    }
}

#[test]
fn each_shard_is_bit_identical_to_an_index_over_its_partition() {
    let subs = subscriptions(400);
    let stream = events(300, 7);

    for shard_by in [ShardBy::Hash, ShardBy::Space] {
        let index = ShardedIndex::new(
            ServeConfig::new(config())
                .with_shards(4)
                .with_shard_by(shard_by),
        )
        .unwrap();
        index.insert_all(subs.iter().cloned()).unwrap();
        for q in &stream {
            index.submit(q.clone());
        }
        index.flush();

        let mut resident = 0usize;
        for shard in 0..4 {
            let owned: HashSet<u32> = index
                .with_shard(shard, |i: &mut AdaptiveClusterIndex| {
                    i.object_ids().map(|id| id.0).collect()
                });
            resident += owned.len();
            // An independent index over the same partition, same
            // insertion order, same event sequence.
            let mut solo = AdaptiveClusterIndex::new(config()).unwrap();
            for (id, rect) in &subs {
                if owned.contains(&id.0) {
                    solo.insert(*id, rect.clone()).unwrap();
                }
            }
            for q in &stream {
                solo.execute(q);
            }
            let shard_state = index.with_shard(
                shard,
                |i: &mut AdaptiveClusterIndex| -> (Vec<ClusterSnapshot>, u64, u64, usize) {
                    (
                        i.snapshots(),
                        i.total_queries(),
                        i.reorganizations(),
                        i.cluster_count(),
                    )
                },
            );
            assert_eq!(
                shard_state,
                (
                    solo.snapshots(),
                    solo.total_queries(),
                    solo.reorganizations(),
                    solo.cluster_count()
                ),
                "shard {shard} under {shard_by} diverged from its solo twin"
            );
            index
                .with_shard(shard, |i: &mut AdaptiveClusterIndex| {
                    i.check_invariants()
                })
                .unwrap();
        }
        assert_eq!(resident, subs.len(), "partition covers every subscription");
    }
}

#[test]
fn mutations_mid_stream_keep_the_union_contract() {
    let subs = subscriptions(300);
    let stream = events(200, 99);
    let extra = subscriptions(360); // ids 300.. are fresh inserts
    let fresh = &extra[300..];

    for shard_by in [ShardBy::Hash, ShardBy::Space] {
        let mut reference = AdaptiveClusterIndex::new(config()).unwrap();
        let index = ShardedIndex::new(
            ServeConfig::new(config())
                .with_shards(4)
                .with_shard_by(shard_by)
                .retaining_results(),
        )
        .unwrap();
        for (id, rect) in &subs {
            reference.insert(*id, rect.clone()).unwrap();
        }
        index.insert_all(subs.iter().cloned()).unwrap();

        let mut expected = Vec::new();
        let mut next_fresh = fresh.iter();
        for (k, q) in stream.iter().enumerate() {
            // Every 20 events: remove one subscription, insert a fresh
            // one, through both paths in the same order.
            if k % 20 == 10 {
                let victim = ObjectId((k as u32 / 20) * 13 % 300);
                if index.contains(victim) {
                    let a = reference.remove(victim).unwrap();
                    let b = index.remove(victim).unwrap();
                    assert_eq!(a, b);
                }
                if let Some((id, rect)) = next_fresh.next() {
                    reference.insert(*id, rect.clone()).unwrap();
                    index.insert(*id, rect.clone()).unwrap();
                }
            }
            expected.push(sorted(reference.execute(q).matches));
            index.submit(q.clone());
        }
        index.flush();
        let results = index.drain_results();
        assert_eq!(results.len(), stream.len());
        for (k, result) in results.iter().enumerate() {
            assert_eq!(
                result.matches, expected[k],
                "event {k} diverged under {shard_by} with mutations in flight"
            );
        }
        assert_eq!(index.len(), reference.len());
    }
}

#[test]
fn repeated_runs_are_deterministic() {
    let subs = subscriptions(200);
    let stream = events(150, 5);
    let run = || {
        let index = ShardedIndex::new(
            ServeConfig::new(config()).with_shards(2).retaining_results(),
        )
        .unwrap();
        index.insert_all(subs.iter().cloned()).unwrap();
        for q in &stream {
            index.submit(q.clone());
        }
        index.flush();
        index.drain_results()
    };
    assert_eq!(run(), run());
}
