//! Serving statistics: per-shard and aggregate snapshots over the
//! current measurement window.
//!
//! Percentiles use the nearest-rank definition (the smallest sample
//! with cumulative frequency ≥ p), matching the bench harness: exact
//! over the collected sample, no interpolation.

/// One shard's view of the current window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardStats {
    /// Shard number (`0..shards`).
    pub shard: usize,
    /// Events this shard executed during the window.
    pub events: u64,
    /// Subscriptions resident on the shard.
    pub objects: usize,
    /// Materialized clusters in the shard's index.
    pub clusters: usize,
    /// Reorganization passes the shard ran during the window.
    pub reorg_passes: u64,
    /// Wall-clock nanoseconds the shard's worker spent inside those
    /// passes — serving stalled on *this shard only* while the others
    /// kept draining their queues.
    pub reorg_stall_ns: u64,
    /// Median queue depth observed at event publish.
    pub queue_depth_p50: usize,
    /// 99th-percentile queue depth observed at event publish.
    pub queue_depth_p99: usize,
}

/// Aggregate snapshot of a [`crate::ShardedIndex`] measurement window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Per-shard breakdown, indexed by shard number.
    pub shards: Vec<ShardStats>,
    /// Events accepted (fanned out to every shard) during the window.
    pub events_submitted: u64,
    /// Events whose full fan-out completed during the window.
    pub events_completed: u64,
    /// `try_submit` rejections: at least one shard's queue was full and
    /// the whole fan-out was rolled back.
    pub queue_full_rejections: u64,
    /// Blocking `submit` calls that hit a full queue and waited.
    pub submit_stalls: u64,
    /// Total nanoseconds blocking submits spent waiting.
    pub submit_stall_ns: u64,
    /// Median event-to-match latency (submit to last shard completing).
    pub latency_p50_ns: u64,
    /// 99th-percentile event-to-match latency.
    pub latency_p99_ns: u64,
    /// Reorganization passes across all shards during the window.
    pub reorg_passes: u64,
    /// Total wall-clock nanoseconds spent in those passes, summed over
    /// shards. With one worker per core this over-counts wall time the
    /// way cpu-seconds do: two shards reorganizing concurrently charge
    /// twice the nanoseconds for once the stall.
    pub reorg_stall_ns: u64,
    /// Wall-clock length of the window.
    pub window_wall_ns: u64,
}

impl ServeStats {
    /// Aggregate completed events per second over the window.
    pub fn qps(&self) -> f64 {
        if self.window_wall_ns == 0 {
            return 0.0;
        }
        self.events_completed as f64 / (self.window_wall_ns as f64 / 1e9)
    }
}

/// Nearest-rank percentile over a **sorted** sample; `0` when empty.
pub(crate) fn nearest_rank(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Nearest-rank percentile over a histogram of counts (`hist[v]` =
/// observations of value `v`); `0` when the histogram is empty.
pub(crate) fn nearest_rank_hist(hist: &[u64], p: f64) -> usize {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (value, &count) in hist.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return value;
        }
    }
    hist.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_matches_definition() {
        let s = [10, 20, 30, 40, 50];
        assert_eq!(nearest_rank(&s, 50.0), 30);
        assert_eq!(nearest_rank(&s, 99.0), 50);
        assert_eq!(nearest_rank(&s, 1.0), 10);
        assert_eq!(nearest_rank(&[], 50.0), 0);
        assert_eq!(nearest_rank(&[7], 50.0), 7);
    }

    #[test]
    fn histogram_percentile_agrees_with_expanded_sample() {
        // hist: value 0 ×3, value 2 ×1, value 5 ×6
        let hist = [3u64, 0, 1, 0, 0, 6];
        let expanded: Vec<u64> = [0, 0, 0, 2, 5, 5, 5, 5, 5, 5].to_vec();
        for p in [1.0, 25.0, 50.0, 75.0, 99.0] {
            assert_eq!(
                nearest_rank_hist(&hist, p) as u64,
                nearest_rank(&expanded, p),
                "p{p}"
            );
        }
        assert_eq!(nearest_rank_hist(&[0, 0, 0], 50.0), 0);
    }

    #[test]
    fn qps_is_completed_over_window() {
        let stats = ServeStats {
            events_completed: 500,
            window_wall_ns: 2_000_000_000,
            ..Default::default()
        };
        assert!((stats.qps() - 250.0).abs() < 1e-9);
        assert_eq!(ServeStats::default().qps(), 0.0);
    }
}
