//! Bounded MPSC command queue with two-phase admission.
//!
//! Event submission fans one query out to every shard, and that fan-out
//! must be all-or-nothing: an event queued on some shards but rejected
//! by others would complete with a partial match set. Admission is
//! therefore split into a *reservation* — claims a slot under the cap
//! without publishing anything, and can be rolled back — and a
//! *publish* ([`BoundedQueue::push_reserved`]) that cannot fail. The
//! submitter reserves on all shards in shard order (a total order, so
//! concurrent blocking submitters cannot deadlock), rolling everything
//! back on the first rejection, and only then publishes everywhere.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

struct Inner<T> {
    items: VecDeque<T>,
    /// Slots claimed by reservations not yet published.
    reserved: usize,
    closed: bool,
}

/// A capacity-bounded FIFO between the submitting threads and one shard
/// worker.
pub(crate) struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    cap: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(cap),
                reserved: 0,
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            cap,
        }
    }

    /// Claims one slot if the queue has spare capacity, without
    /// publishing anything.
    pub fn try_reserve(&self) -> bool {
        let mut g = self.inner.lock().expect("queue lock");
        if g.items.len() + g.reserved < self.cap {
            g.reserved += 1;
            true
        } else {
            false
        }
    }

    /// Claims one slot, blocking while the queue is at capacity.
    /// Returns the nanoseconds spent waiting (`0` when admission was
    /// immediate) so the caller can account backpressure stalls.
    pub fn reserve(&self) -> u64 {
        let mut g = self.inner.lock().expect("queue lock");
        if g.items.len() + g.reserved < self.cap {
            g.reserved += 1;
            return 0;
        }
        let started = Instant::now();
        while g.items.len() + g.reserved >= self.cap {
            g = self.not_full.wait(g).expect("queue lock");
        }
        g.reserved += 1;
        started.elapsed().as_nanos() as u64
    }

    /// Rolls back one slot claimed by [`BoundedQueue::try_reserve`] /
    /// [`BoundedQueue::reserve`].
    pub fn cancel_reservation(&self) {
        let mut g = self.inner.lock().expect("queue lock");
        debug_assert!(g.reserved > 0, "cancel without a reservation");
        g.reserved = g.reserved.saturating_sub(1);
        drop(g);
        self.not_full.notify_one();
    }

    /// Publishes an item into a previously claimed slot — infallible by
    /// construction. Returns the queue depth right after the push (the
    /// sample the depth histogram records).
    pub fn push_reserved(&self, item: T) -> usize {
        let mut g = self.inner.lock().expect("queue lock");
        debug_assert!(g.reserved > 0, "publish without a reservation");
        g.reserved = g.reserved.saturating_sub(1);
        g.items.push_back(item);
        let depth = g.items.len();
        drop(g);
        self.not_empty.notify_one();
        depth
    }

    /// Dequeues the next item, blocking while the queue is empty.
    /// `None` once the queue is closed **and** drained — the worker's
    /// exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = g.items.pop_front() {
                drop(g);
                self.not_full.notify_one();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.not_empty.wait(g).expect("queue lock");
        }
    }

    /// Published items currently waiting (reservations excluded).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// Closes the queue: the worker drains what remains, then sees
    /// `None`. Called with no submitter alive (drop order), so no
    /// reservation can be outstanding.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn reservations_count_against_capacity() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert!(q.try_reserve());
        assert!(q.try_reserve());
        assert!(!q.try_reserve(), "cap reached via reservations alone");
        q.cancel_reservation();
        assert!(q.try_reserve());
        q.push_reserved(1);
        q.push_reserved(2);
        assert_eq!(q.len(), 2);
        assert!(!q.try_reserve(), "cap reached via published items");
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_reserve());
        q.cancel_reservation();
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        assert!(q.try_reserve());
        q.push_reserved(7);
        q.close();
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_reserve_reports_the_stall() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        assert!(q.try_reserve());
        q.push_reserved(1);
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let waited = q.reserve();
                q.push_reserved(2);
                waited
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        let waited = producer.join().expect("producer");
        assert!(waited > 0, "reserve should have blocked");
        assert_eq!(q.pop(), Some(2));
    }
}
