//! # acx_serve — shard-per-core serving tier
//!
//! Turns the single-threaded [`AdaptiveClusterIndex`] into a service:
//! subscriptions are partitioned across N shards, each shard owns one
//! index behind a dedicated worker thread, and every arriving event is
//! fanned out to all shards through bounded ingestion queues. Because
//! the partition is disjoint and query answering is exact, the union of
//! the per-shard match sets **is** the answer — no cross-shard merge,
//! reconciliation, or statistics exchange ever happens (each shard's
//! adaptive statistics describe exactly the subscriptions it owns).
//!
//! ## Threading model
//!
//! One worker per shard owns that shard's index outright; nothing else
//! ever touches it. Submitting threads communicate with workers only
//! through each shard's bounded FIFO, so the index needs no locks and
//! the per-query hot path is identical to single-index execution —
//! including adaptive reorganization, which the worker triggers exactly
//! where a single index would (inside `execute`, when the statistics
//! epoch comes due). A reorganizing shard stalls only itself: its queue
//! absorbs arrivals up to the cap while the other shards keep serving,
//! which is what bounds event-to-match latency during a pass.
//!
//! ## Backpressure contract
//!
//! Fan-out is all-or-nothing: [`ShardedIndex::try_submit`] reserves a
//! slot on *every* shard before publishing to any of them, and rolls
//! the reservations back if one queue is full ([`SubmitError::QueueFull`]
//! — the event is on no shard, nothing is dropped or double-counted).
//! The blocking [`ShardedIndex::submit`] waits for capacity instead and
//! reports the stall in [`ServeStats`].
//!
//! ## Durability
//!
//! Each shard persists independently: [`ShardedIndex::attach_wal_dir`]
//! gives every shard its own log (`shard-<i>.wal`),
//! [`ShardedIndex::checkpoint_all`] writes `shard-<i>.ckpt`, and
//! [`ShardedIndex::recover`] replays each shard pair in isolation —
//! the disjoint partition means per-shard logs never need a global
//! order.

mod partition;
mod queue;
mod stats;

pub use partition::ShardBy;
pub use stats::{ServeStats, ShardStats};

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use acx_core::{AdaptiveClusterIndex, IndexConfig, IndexError, RecoveryReport};
use acx_geom::{HyperRect, ObjectId, SpatialQuery};
use acx_storage::{FileBacking, FlushPolicy, Wal};
use partition::shard_of;
use queue::BoundedQueue;

/// Default per-shard ingestion queue capacity.
pub const DEFAULT_QUEUE_CAP: usize = 1024;

/// Configuration of a [`ShardedIndex`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Configuration every shard's inner index is built with.
    pub index: IndexConfig,
    /// Number of shards (one worker thread each).
    pub shards: usize,
    /// Subscription-to-shard assignment strategy.
    pub shard_by: ShardBy,
    /// Per-shard ingestion queue capacity.
    pub queue_cap: usize,
    /// Whether completed [`EventResult`]s are retained for
    /// [`ShardedIndex::drain_results`] (off for fire-and-forget
    /// serving, on for tests and any caller that consumes matches).
    pub retain_results: bool,
}

impl ServeConfig {
    /// One shard, hash partitioning, default queue capacity, results
    /// not retained.
    pub fn new(index: IndexConfig) -> Self {
        Self {
            index,
            shards: 1,
            shard_by: ShardBy::Hash,
            queue_cap: DEFAULT_QUEUE_CAP,
            retain_results: false,
        }
    }

    /// Sets the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the partitioning strategy.
    pub fn with_shard_by(mut self, shard_by: ShardBy) -> Self {
        self.shard_by = shard_by;
        self
    }

    /// Sets the per-shard queue capacity.
    pub fn with_queue_cap(mut self, queue_cap: usize) -> Self {
        self.queue_cap = queue_cap;
        self
    }

    /// Retains completed results for [`ShardedIndex::drain_results`].
    pub fn retaining_results(mut self) -> Self {
        self.retain_results = true;
        self
    }
}

/// Why a non-blocking submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// At least one shard's ingestion queue was at capacity; the
    /// fan-out was rolled back in full, so the event reached no shard.
    QueueFull,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "ingestion queue full"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// One completed event: the union of every shard's matches, sorted by
/// object id (partitions are disjoint, so the order — and the set — is
/// independent of the shard count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventResult {
    /// Submission sequence number, as returned by `submit`/`try_submit`.
    pub seq: u64,
    /// Matching subscriptions across all shards, ascending by id.
    pub matches: Vec<ObjectId>,
}

enum Command {
    Event { seq: u64, query: Arc<SpatialQuery> },
    Apply(Box<dyn FnOnce(&mut AdaptiveClusterIndex) + Send>),
}

struct Pending {
    remaining: usize,
    matches: Vec<ObjectId>,
    submitted: Instant,
}

/// Joins the per-shard halves of each in-flight event.
struct Collector {
    pending: Mutex<HashMap<u64, Pending>>,
    completed: Mutex<Vec<EventResult>>,
    latencies: Mutex<Vec<u64>>,
    events_completed: AtomicU64,
    retain_results: bool,
}

impl Collector {
    fn register(&self, seq: u64, shards: usize) {
        let prev = self.pending.lock().expect("collector lock").insert(
            seq,
            Pending {
                remaining: shards,
                matches: Vec::new(),
                submitted: Instant::now(),
            },
        );
        debug_assert!(prev.is_none(), "sequence number reused");
    }

    fn complete(&self, seq: u64, matches: Vec<ObjectId>) {
        let mut pending = self.pending.lock().expect("collector lock");
        let entry = pending.get_mut(&seq).expect("completion without registration");
        if entry.matches.is_empty() {
            entry.matches = matches;
        } else {
            entry.matches.extend(matches);
        }
        entry.remaining -= 1;
        if entry.remaining > 0 {
            return;
        }
        let mut done = pending.remove(&seq).expect("entry present");
        drop(pending);
        // Disjoint partitions make the union a plain concatenation;
        // sorting gives a deterministic, shard-count-independent order.
        done.matches.sort_unstable();
        let latency = done.submitted.elapsed().as_nanos() as u64;
        self.latencies.lock().expect("collector lock").push(latency);
        self.events_completed.fetch_add(1, Ordering::Relaxed);
        if self.retain_results {
            self.completed
                .lock()
                .expect("collector lock")
                .push(EventResult {
                    seq,
                    matches: done.matches,
                });
        }
    }
}

/// State shared between submitters and one shard worker.
struct ShardShared {
    queue: BoundedQueue<Command>,
    /// Events this shard executed in the current window.
    events: AtomicU64,
    /// `hist[d]` = publishes that observed queue depth `d` (`0..=cap`).
    depth_hist: Vec<AtomicU64>,
}

/// Per-shard counter baselines at the start of the current window
/// (the inner index accumulates over its lifetime; windows subtract).
struct WindowBaseline {
    started: Instant,
    /// `(reorganizations, reorg_wall_ns)` per shard.
    reorg: Vec<(u64, u64)>,
}

/// A serving front end over `shards` independent adaptive cluster
/// indexes. See the crate docs for the threading, backpressure and
/// durability contracts.
pub struct ShardedIndex {
    config: ServeConfig,
    shards: Vec<Arc<ShardShared>>,
    workers: Vec<Option<JoinHandle<()>>>,
    collector: Arc<Collector>,
    /// Owning shard of every resident subscription. Routing for
    /// removals (the placing rectangle is gone by then) and the
    /// cross-shard duplicate-id guard.
    routes: Mutex<HashMap<u32, usize>>,
    next_seq: AtomicU64,
    events_submitted: AtomicU64,
    queue_full_rejections: AtomicU64,
    submit_stalls: AtomicU64,
    submit_stall_ns: AtomicU64,
    window: Mutex<WindowBaseline>,
}

impl ShardedIndex {
    /// Builds an empty sharded index and starts its workers.
    pub fn new(config: ServeConfig) -> Result<Self, IndexError> {
        Self::validate(&config)?;
        let indexes = (0..config.shards)
            .map(|_| AdaptiveClusterIndex::new(config.index.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        Self::assemble(config, indexes)
    }

    fn validate(config: &ServeConfig) -> Result<(), IndexError> {
        if config.shards == 0 {
            return Err(IndexError::InvalidConfig(
                "shard count must be positive".into(),
            ));
        }
        if config.queue_cap == 0 {
            return Err(IndexError::InvalidConfig(
                "queue capacity must be positive".into(),
            ));
        }
        Ok(())
    }

    /// Wraps pre-built per-shard indexes (empty on the `new` path,
    /// recovered ones on the `recover` path), rebuilding the route map
    /// and rejecting partitions that overlap.
    fn assemble(
        config: ServeConfig,
        indexes: Vec<AdaptiveClusterIndex>,
    ) -> Result<Self, IndexError> {
        debug_assert_eq!(indexes.len(), config.shards);
        let mut routes = HashMap::new();
        for (shard, index) in indexes.iter().enumerate() {
            for id in index.object_ids() {
                if let Some(owner) = routes.insert(id.0, shard) {
                    return Err(IndexError::InvalidConfig(format!(
                        "object #{} recovered on shards {owner} and {shard}: \
                         the partition must be disjoint",
                        id.0
                    )));
                }
            }
        }
        let collector = Arc::new(Collector {
            pending: Mutex::new(HashMap::new()),
            completed: Mutex::new(Vec::new()),
            latencies: Mutex::new(Vec::new()),
            events_completed: AtomicU64::new(0),
            retain_results: config.retain_results,
        });
        let mut shards = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for (i, mut index) in indexes.into_iter().enumerate() {
            let shared = Arc::new(ShardShared {
                queue: BoundedQueue::new(config.queue_cap),
                events: AtomicU64::new(0),
                depth_hist: (0..=config.queue_cap).map(|_| AtomicU64::new(0)).collect(),
            });
            let worker = {
                let shared = Arc::clone(&shared);
                let collector = Arc::clone(&collector);
                std::thread::Builder::new()
                    .name(format!("acx-shard-{i}"))
                    .spawn(move || {
                        while let Some(cmd) = shared.queue.pop() {
                            match cmd {
                                Command::Event { seq, query } => {
                                    let result = index.execute(&query);
                                    shared.events.fetch_add(1, Ordering::Relaxed);
                                    collector.complete(seq, result.matches);
                                }
                                Command::Apply(f) => f(&mut index),
                            }
                        }
                    })
                    .expect("spawn shard worker")
            };
            shards.push(shared);
            workers.push(Some(worker));
        }
        let reorg = vec![(0, 0); config.shards];
        Ok(Self {
            config,
            shards,
            workers,
            collector,
            routes: Mutex::new(routes),
            next_seq: AtomicU64::new(0),
            events_submitted: AtomicU64::new(0),
            queue_full_rejections: AtomicU64::new(0),
            submit_stalls: AtomicU64::new(0),
            submit_stall_ns: AtomicU64::new(0),
            window: Mutex::new(WindowBaseline {
                started: Instant::now(),
                reorg,
            }),
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The configuration this index was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Resident subscriptions across all shards.
    pub fn len(&self) -> usize {
        self.routes.lock().expect("routes lock").len()
    }

    /// Whether no subscriptions are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `id` is resident on some shard.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.routes
            .lock()
            .expect("routes lock")
            .contains_key(&id.0)
    }

    /// All resident subscription ids, ascending.
    pub fn object_ids(&self) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self
            .routes
            .lock()
            .expect("routes lock")
            .keys()
            .map(|&id| ObjectId(id))
            .collect();
        ids.sort_unstable();
        ids
    }

    // ------------------------------------------------------------------
    // Event ingestion
    // ------------------------------------------------------------------

    /// Fans `query` out to every shard without blocking. Returns the
    /// event's sequence number, or [`SubmitError::QueueFull`] when some
    /// shard's queue is at capacity — in which case the reservation on
    /// every other shard is rolled back and the event reaches *no*
    /// shard.
    pub fn try_submit(&self, query: SpatialQuery) -> Result<u64, SubmitError> {
        for (i, shard) in self.shards.iter().enumerate() {
            if !shard.queue.try_reserve() {
                for reserved in &self.shards[..i] {
                    reserved.queue.cancel_reservation();
                }
                self.queue_full_rejections.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::QueueFull);
            }
        }
        Ok(self.publish(query))
    }

    /// Fans `query` out to every shard, waiting for queue capacity
    /// where needed. The wait is recorded as a backpressure stall in
    /// [`ServeStats`]. Returns the event's sequence number.
    pub fn submit(&self, query: SpatialQuery) -> u64 {
        let mut waited_ns = 0u64;
        for shard in &self.shards {
            waited_ns += shard.queue.reserve();
        }
        if waited_ns > 0 {
            self.submit_stalls.fetch_add(1, Ordering::Relaxed);
            self.submit_stall_ns.fetch_add(waited_ns, Ordering::Relaxed);
        }
        self.publish(query)
    }

    /// Publishes into slots already reserved on every shard.
    fn publish(&self, query: SpatialQuery) -> u64 {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        // Register before the first push: a fast worker may complete
        // its half before the fan-out finishes.
        self.collector.register(seq, self.shards.len());
        self.events_submitted.fetch_add(1, Ordering::Relaxed);
        let query = Arc::new(query);
        for shard in &self.shards {
            let depth = shard.queue.push_reserved(Command::Event {
                seq,
                query: Arc::clone(&query),
            });
            shard.depth_hist[depth.min(self.config.queue_cap)]
                .fetch_add(1, Ordering::Relaxed);
        }
        seq
    }

    /// Blocks until every event and mutation submitted so far has been
    /// executed on every shard. Queues are FIFO, so one round-trip
    /// no-op per shard is a full barrier.
    pub fn flush(&self) {
        let receivers: Vec<_> = (0..self.shards.len())
            .map(|i| {
                let (tx, rx) = mpsc::channel();
                self.send_apply(
                    i,
                    Box::new(move |_| {
                        let _ = tx.send(());
                    }),
                );
                rx
            })
            .collect();
        for rx in receivers {
            rx.recv().expect("shard worker exited");
        }
    }

    /// Completed results accumulated since the last drain, ascending by
    /// sequence number. Empty unless the config retains results.
    pub fn drain_results(&self) -> Vec<EventResult> {
        let mut results =
            std::mem::take(&mut *self.collector.completed.lock().expect("collector lock"));
        results.sort_unstable_by_key(|r| r.seq);
        results
    }

    // ------------------------------------------------------------------
    // Mutations (routed to the owning shard, synchronous)
    // ------------------------------------------------------------------

    /// Enqueues a closure on `shard`'s worker, behind everything
    /// already queued. Blocks only for queue capacity, not execution.
    fn send_apply(&self, shard: usize, f: Box<dyn FnOnce(&mut AdaptiveClusterIndex) + Send>) {
        let q = &self.shards[shard].queue;
        q.reserve();
        q.push_reserved(Command::Apply(f));
    }

    /// Runs `f` against `shard`'s index from its worker thread, after
    /// everything already queued there, and returns its result. The
    /// inspection hook for tests and stats — also how every mutation
    /// below reaches its owning shard.
    pub fn with_shard<R, F>(&self, shard: usize, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut AdaptiveClusterIndex) -> R + Send + 'static,
    {
        self.with_shard_deferred(shard, f)
            .recv()
            .expect("shard worker exited")
    }

    /// Like [`ShardedIndex::with_shard`], but returns the receiving end
    /// of the result channel immediately instead of waiting — parks
    /// work on one shard while the caller keeps going (the other shards
    /// are unaffected either way).
    pub fn with_shard_deferred<R, F>(&self, shard: usize, f: F) -> mpsc::Receiver<R>
    where
        R: Send + 'static,
        F: FnOnce(&mut AdaptiveClusterIndex) -> R + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        self.send_apply(
            shard,
            Box::new(move |index| {
                let _ = tx.send(f(index));
            }),
        );
        rx
    }

    /// Inserts a subscription on its owning shard. Waits for the shard
    /// to apply it (mutations are synchronous; events are not).
    pub fn insert(&self, id: ObjectId, rect: HyperRect) -> Result<(), IndexError> {
        let shard = shard_of(self.config.shard_by, id, &rect, self.shards.len());
        {
            // Claim the route first so a racing insert of the same id
            // fails fast; rolled back if the shard rejects the insert.
            let mut routes = self.routes.lock().expect("routes lock");
            if routes.contains_key(&id.0) {
                return Err(IndexError::DuplicateObject(id.0));
            }
            routes.insert(id.0, shard);
        }
        let result = self.with_shard(shard, move |index| index.insert(id, rect));
        if result.is_err() {
            self.routes.lock().expect("routes lock").remove(&id.0);
        }
        result
    }

    /// Bulk insert, grouped into one application per shard.
    pub fn insert_all<I>(&self, objects: I) -> Result<(), IndexError>
    where
        I: IntoIterator<Item = (ObjectId, HyperRect)>,
    {
        let mut groups: Vec<Vec<(ObjectId, HyperRect)>> = vec![Vec::new(); self.shards.len()];
        {
            let mut routes = self.routes.lock().expect("routes lock");
            for (id, rect) in objects {
                if routes.contains_key(&id.0) {
                    // Nothing has been sent to any shard yet: roll back
                    // the routes this call claimed and reject.
                    for group in &groups {
                        for (claimed, _) in group {
                            routes.remove(&claimed.0);
                        }
                    }
                    return Err(IndexError::DuplicateObject(id.0));
                }
                let shard = shard_of(self.config.shard_by, id, &rect, self.shards.len());
                routes.insert(id.0, shard);
                groups[shard].push((id, rect));
            }
        }
        let receivers: Vec<_> = groups
            .into_iter()
            .enumerate()
            .filter(|(_, group)| !group.is_empty())
            .map(|(shard, group)| {
                let ids: Vec<ObjectId> = group.iter().map(|(id, _)| *id).collect();
                let (tx, rx) = mpsc::channel();
                self.send_apply(
                    shard,
                    Box::new(move |index| {
                        let mut outcome: Result<(), (usize, IndexError)> = Ok(());
                        for (k, (id, rect)) in group.into_iter().enumerate() {
                            if let Err(e) = index.insert(id, rect) {
                                outcome = Err((k, e));
                                break;
                            }
                        }
                        let _ = tx.send(outcome);
                    }),
                );
                (ids, rx)
            })
            .collect();
        let mut first_error = None;
        for (ids, rx) in receivers {
            if let Err((applied, e)) = rx.recv().expect("shard worker exited") {
                let mut routes = self.routes.lock().expect("routes lock");
                for id in &ids[applied..] {
                    routes.remove(&id.0);
                }
                first_error.get_or_insert(e);
            }
        }
        match first_error {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Removes a subscription from its owning shard.
    pub fn remove(&self, id: ObjectId) -> Result<HyperRect, IndexError> {
        let shard = self
            .routes
            .lock()
            .expect("routes lock")
            .get(&id.0)
            .copied()
            .ok_or(IndexError::UnknownObject(id.0))?;
        let result = self.with_shard(shard, move |index| index.remove(id));
        if result.is_ok() {
            self.routes.lock().expect("routes lock").remove(&id.0);
        }
        result
    }

    /// Replaces a subscription's rectangle, returning the old one.
    /// Under [`ShardBy::Space`] the new rectangle may belong to a
    /// different shard; the subscription then migrates (remove at the
    /// old owner, insert at the new).
    pub fn update(&self, id: ObjectId, rect: HyperRect) -> Result<HyperRect, IndexError> {
        let old_shard = self
            .routes
            .lock()
            .expect("routes lock")
            .get(&id.0)
            .copied()
            .ok_or(IndexError::UnknownObject(id.0))?;
        let new_shard = shard_of(self.config.shard_by, id, &rect, self.shards.len());
        if new_shard == old_shard {
            return self.with_shard(old_shard, move |index| index.update(id, rect));
        }
        let old = self.with_shard(old_shard, move |index| index.remove(id))?;
        let attempt = {
            let rect = rect.clone();
            self.with_shard(new_shard, move |index| index.insert(id, rect))
        };
        match attempt {
            Ok(()) => {
                self.routes
                    .lock()
                    .expect("routes lock")
                    .insert(id.0, new_shard);
                Ok(old)
            }
            Err(e) => {
                // Re-home the original so a failed migration is a no-op.
                let restore = old.clone();
                self.with_shard(old_shard, move |index| index.insert(id, restore))
                    .expect("restore after failed migration");
                Err(e)
            }
        }
    }

    /// The rectangle of a resident subscription.
    pub fn get(&self, id: ObjectId) -> Option<HyperRect> {
        let shard = self
            .routes
            .lock()
            .expect("routes lock")
            .get(&id.0)
            .copied()?;
        self.with_shard(shard, move |index| index.get(id))
    }

    // ------------------------------------------------------------------
    // Durability (composes with the core WAL/checkpoint layer)
    // ------------------------------------------------------------------

    /// Attaches a write-ahead log to every shard: `dir/shard-<i>.wal`,
    /// created (or truncated) fresh.
    pub fn attach_wal_dir(&self, dir: &Path, policy: FlushPolicy) -> Result<(), IndexError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| IndexError::Wal(acx_storage::WalError::from(e)))?;
        let dims = self.config.index.dims;
        for shard in 0..self.shards.len() {
            let store = FileBacking::create(&dir.join(format!("shard-{shard}.wal")))
                .map_err(|e| IndexError::Wal(acx_storage::WalError::from(e)))?;
            let wal = Wal::create(Box::new(store), policy, dims).map_err(IndexError::Wal)?;
            self.with_shard(shard, move |index| index.attach_wal(wal))?;
        }
        Ok(())
    }

    /// Checkpoints every shard to `dir/shard-<i>.ckpt`, truncating each
    /// shard's log (the core checkpoint/WAL generation coupling applies
    /// per shard).
    pub fn checkpoint_all(&self, dir: &Path) -> Result<(), IndexError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| IndexError::Wal(acx_storage::WalError::from(e)))?;
        for shard in 0..self.shards.len() {
            let path = dir.join(format!("shard-{shard}.ckpt"));
            self.with_shard(shard, move |index| index.checkpoint(&path))?;
        }
        Ok(())
    }

    /// Rebuilds a sharded index from `dir`: each shard recovers from
    /// its own `shard-<i>.ckpt` (when present) plus `shard-<i>.wal`,
    /// independently — disjoint partitions need no cross-log order.
    /// `config` must describe the same shard count and partitioning
    /// the files were written under; overlapping recovered partitions
    /// are rejected.
    pub fn recover(
        dir: &Path,
        policy: FlushPolicy,
        config: ServeConfig,
    ) -> Result<(Self, Vec<RecoveryReport>), IndexError> {
        Self::validate(&config)?;
        let mut indexes = Vec::with_capacity(config.shards);
        let mut reports = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let ckpt = dir.join(format!("shard-{shard}.ckpt"));
            let ckpt = ckpt.exists().then_some(ckpt);
            let store = FileBacking::open(&dir.join(format!("shard-{shard}.wal")))
                .map_err(|e| IndexError::Wal(acx_storage::WalError::from(e)))?;
            let (index, report) = AdaptiveClusterIndex::recover(
                ckpt.as_deref(),
                Box::new(store),
                policy,
                config.index.clone(),
            )?;
            indexes.push(index);
            reports.push(report);
        }
        let recovered = Self::assemble(config, indexes)?;
        Ok((recovered, reports))
    }

    // ------------------------------------------------------------------
    // Statistics
    // ------------------------------------------------------------------

    /// Snapshot of the current measurement window. Performs one
    /// synchronous round-trip through each shard's queue (it observes
    /// each shard at a consistent point), so it waits behind whatever
    /// is queued — call after [`ShardedIndex::flush`] for end-of-run
    /// numbers.
    pub fn stats(&self) -> ServeStats {
        let window = self.window.lock().expect("window lock");
        let window_wall_ns = window.started.elapsed().as_nanos() as u64;
        let baselines = window.reorg.clone();
        drop(window);
        let mut per_shard = Vec::with_capacity(self.shards.len());
        let mut reorg_passes = 0u64;
        let mut reorg_stall_ns = 0u64;
        for (i, shared) in self.shards.iter().enumerate() {
            let (objects, clusters, passes, stall_ns) =
                self.with_shard(i, |index: &mut AdaptiveClusterIndex| {
                    (
                        index.len(),
                        index.cluster_count(),
                        index.reorganizations(),
                        index.reorg_wall_ns(),
                    )
                });
            let (base_passes, base_stall) = baselines[i];
            let hist: Vec<u64> = shared
                .depth_hist
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect();
            let shard = ShardStats {
                shard: i,
                events: shared.events.load(Ordering::Relaxed),
                objects,
                clusters,
                reorg_passes: passes - base_passes,
                reorg_stall_ns: stall_ns - base_stall,
                queue_depth_p50: stats::nearest_rank_hist(&hist, 50.0),
                queue_depth_p99: stats::nearest_rank_hist(&hist, 99.0),
            };
            reorg_passes += shard.reorg_passes;
            reorg_stall_ns += shard.reorg_stall_ns;
            per_shard.push(shard);
        }
        let mut latencies = self
            .collector
            .latencies
            .lock()
            .expect("collector lock")
            .clone();
        latencies.sort_unstable();
        ServeStats {
            shards: per_shard,
            events_submitted: self.events_submitted.load(Ordering::Relaxed),
            events_completed: self.collector.events_completed.load(Ordering::Relaxed),
            queue_full_rejections: self.queue_full_rejections.load(Ordering::Relaxed),
            submit_stalls: self.submit_stalls.load(Ordering::Relaxed),
            submit_stall_ns: self.submit_stall_ns.load(Ordering::Relaxed),
            latency_p50_ns: stats::nearest_rank(&latencies, 50.0),
            latency_p99_ns: stats::nearest_rank(&latencies, 99.0),
            reorg_passes,
            reorg_stall_ns,
            window_wall_ns,
        }
    }

    /// Starts a fresh measurement window: zeroes every windowed counter
    /// and sample, and re-baselines the per-shard reorganization
    /// counters. The benches call this between warm-up and measurement.
    pub fn reset_stats_window(&self) {
        let mut reorg = Vec::with_capacity(self.shards.len());
        for (i, shared) in self.shards.iter().enumerate() {
            let baseline = self.with_shard(i, |index: &mut AdaptiveClusterIndex| {
                (index.reorganizations(), index.reorg_wall_ns())
            });
            reorg.push(baseline);
            shared.events.store(0, Ordering::Relaxed);
            for counter in &shared.depth_hist {
                counter.store(0, Ordering::Relaxed);
            }
        }
        self.events_submitted.store(0, Ordering::Relaxed);
        self.collector.events_completed.store(0, Ordering::Relaxed);
        self.queue_full_rejections.store(0, Ordering::Relaxed);
        self.submit_stalls.store(0, Ordering::Relaxed);
        self.submit_stall_ns.store(0, Ordering::Relaxed);
        self.collector
            .latencies
            .lock()
            .expect("collector lock")
            .clear();
        let mut window = self.window.lock().expect("window lock");
        window.started = Instant::now();
        window.reorg = reorg;
    }
}

impl Drop for ShardedIndex {
    fn drop(&mut self) {
        for shard in &self.shards {
            shard.queue.close();
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acx_geom::Scalar;

    fn rect(lo: Scalar, hi: Scalar) -> HyperRect {
        HyperRect::from_bounds(&[lo, lo, lo], &[hi, hi, hi]).unwrap()
    }

    fn small_index(shards: usize) -> ShardedIndex {
        ShardedIndex::new(
            ServeConfig::new(IndexConfig::memory(3))
                .with_shards(shards)
                .retaining_results(),
        )
        .unwrap()
    }

    #[test]
    fn rejects_degenerate_configs() {
        let c = ServeConfig::new(IndexConfig::memory(3)).with_shards(0);
        assert!(matches!(
            ShardedIndex::new(c),
            Err(IndexError::InvalidConfig(_))
        ));
        let c = ServeConfig::new(IndexConfig::memory(3)).with_queue_cap(0);
        assert!(matches!(
            ShardedIndex::new(c),
            Err(IndexError::InvalidConfig(_))
        ));
    }

    #[test]
    fn routes_mutations_and_answers_queries() {
        let index = small_index(3);
        index.insert(ObjectId(1), rect(0.1, 0.3)).unwrap();
        index.insert(ObjectId(2), rect(0.2, 0.5)).unwrap();
        index.insert(ObjectId(3), rect(0.7, 0.9)).unwrap();
        assert_eq!(index.len(), 3);
        assert!(index.contains(ObjectId(2)));
        assert_eq!(
            index.object_ids(),
            vec![ObjectId(1), ObjectId(2), ObjectId(3)]
        );
        assert_eq!(index.get(ObjectId(3)), Some(rect(0.7, 0.9)));
        assert_eq!(index.get(ObjectId(9)), None);

        index
            .submit(SpatialQuery::point_enclosing(vec![0.25, 0.25, 0.25]))
            .to_string();
        index.flush();
        let results = index.drain_results();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].matches, vec![ObjectId(1), ObjectId(2)]);

        assert_eq!(index.remove(ObjectId(1)).unwrap(), rect(0.1, 0.3));
        assert!(matches!(
            index.remove(ObjectId(1)),
            Err(IndexError::UnknownObject(1))
        ));
        assert!(matches!(
            index.insert(ObjectId(2), rect(0.0, 1.0)),
            Err(IndexError::DuplicateObject(2))
        ));
        assert_eq!(index.update(ObjectId(2), rect(0.6, 0.8)).unwrap(), rect(0.2, 0.5));
        index
            .submit(SpatialQuery::point_enclosing(vec![0.7, 0.7, 0.7]))
            .to_string();
        index.flush();
        let results = index.drain_results();
        assert_eq!(results[0].matches, vec![ObjectId(2), ObjectId(3)]);
    }

    #[test]
    fn space_partitioning_migrates_on_update() {
        let index = ShardedIndex::new(
            ServeConfig::new(IndexConfig::memory(3))
                .with_shards(4)
                .with_shard_by(ShardBy::Space),
        )
        .unwrap();
        index.insert(ObjectId(7), rect(0.0, 0.1)).unwrap();
        // Moves from the first slab to the last.
        index.update(ObjectId(7), rect(0.9, 1.0)).unwrap();
        assert_eq!(index.len(), 1);
        assert_eq!(index.get(ObjectId(7)), Some(rect(0.9, 1.0)));
        let on_last = index.with_shard(3, |i: &mut AdaptiveClusterIndex| i.len());
        assert_eq!(on_last, 1);
        let on_first = index.with_shard(0, |i: &mut AdaptiveClusterIndex| i.len());
        assert_eq!(on_first, 0);
    }

    #[test]
    fn insert_all_groups_by_shard() {
        let index = small_index(4);
        index
            .insert_all((0..40).map(|i| (ObjectId(i), rect(0.1, 0.6))))
            .unwrap();
        assert_eq!(index.len(), 40);
        let total: usize = (0..4)
            .map(|s| index.with_shard(s, |i: &mut AdaptiveClusterIndex| i.len()))
            .sum();
        assert_eq!(total, 40);
        assert!(matches!(
            index.insert_all([(ObjectId(5), rect(0.0, 1.0))]),
            Err(IndexError::DuplicateObject(5))
        ));
        assert_eq!(index.len(), 40, "failed bulk insert must not leak routes");
    }

    #[test]
    fn stats_window_resets() {
        let index = small_index(2);
        index.insert(ObjectId(1), rect(0.2, 0.4)).unwrap();
        for _ in 0..10 {
            index.submit(SpatialQuery::point_enclosing(vec![0.3, 0.3, 0.3]));
        }
        index.flush();
        let stats = index.stats();
        assert_eq!(stats.events_submitted, 10);
        assert_eq!(stats.events_completed, 10);
        assert_eq!(stats.shards.len(), 2);
        for shard in &stats.shards {
            assert_eq!(shard.events, 10, "every event reaches every shard");
        }
        assert!(stats.qps() > 0.0);
        index.reset_stats_window();
        let stats = index.stats();
        assert_eq!(stats.events_submitted, 0);
        assert_eq!(stats.events_completed, 0);
        assert_eq!(stats.latency_p50_ns, 0);
        assert_eq!(stats.shards[0].events, 0);
    }
}
