//! Subscription-to-shard assignment.
//!
//! The partitioner is pure and deterministic: the same `(id, rect)`
//! always lands on the same shard, so routing never needs coordination
//! beyond the owner map kept for removals (under [`ShardBy::Space`] the
//! rectangle that placed an object is no longer at hand when it is
//! removed).

use acx_geom::{HyperRect, ObjectId, Scalar};

/// How subscriptions are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardBy {
    /// Multiplicative hash of the subscription id — balanced regardless
    /// of the data distribution (the default).
    #[default]
    Hash,
    /// Equal-width slabs of dimension 0's center — keeps spatial
    /// neighbours co-resident, at the price of load skew when the data
    /// is clustered along that dimension.
    Space,
}

impl std::str::FromStr for ShardBy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "hash" => Ok(ShardBy::Hash),
            "space" => Ok(ShardBy::Space),
            other => Err(format!("unknown shard-by '{other}' (hash|space)")),
        }
    }
}

impl std::fmt::Display for ShardBy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardBy::Hash => write!(f, "hash"),
            ShardBy::Space => write!(f, "space"),
        }
    }
}

/// The owning shard of a subscription under the given strategy.
pub(crate) fn shard_of(by: ShardBy, id: ObjectId, rect: &HyperRect, shards: usize) -> usize {
    debug_assert!(shards > 0);
    match by {
        ShardBy::Hash => {
            // Fibonacci multiplicative mix (2^64 / φ): consecutive ids —
            // the common allocation pattern — spread evenly.
            let h = (id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((h >> 32) as usize) % shards
        }
        ShardBy::Space => {
            // Coordinates are normalized to [0, 1] throughout the
            // workloads; the cast clamps strays below 0 and the `min`
            // clamps center == 1.0.
            let iv = rect.interval(0);
            let center = 0.5 * (iv.lo() + iv.hi());
            ((center * shards as Scalar) as usize).min(shards - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(lo: Scalar, hi: Scalar) -> HyperRect {
        HyperRect::from_bounds(&[lo, lo], &[hi, hi]).unwrap()
    }

    #[test]
    fn hash_spreads_consecutive_ids() {
        let r = rect(0.0, 1.0);
        let mut counts = [0usize; 4];
        for i in 0..1000 {
            counts[shard_of(ShardBy::Hash, ObjectId(i), &r, 4)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!((150..=350).contains(&c), "shard {s} got {c} of 1000");
        }
    }

    #[test]
    fn space_slabs_dimension_zero() {
        assert_eq!(shard_of(ShardBy::Space, ObjectId(1), &rect(0.0, 0.1), 4), 0);
        assert_eq!(shard_of(ShardBy::Space, ObjectId(1), &rect(0.3, 0.4), 4), 1);
        assert_eq!(shard_of(ShardBy::Space, ObjectId(1), &rect(0.9, 1.0), 4), 3);
        // Center exactly 1.0 clamps to the last shard.
        assert_eq!(shard_of(ShardBy::Space, ObjectId(1), &rect(1.0, 1.0), 4), 3);
    }

    #[test]
    fn single_shard_owns_everything() {
        for by in [ShardBy::Hash, ShardBy::Space] {
            for i in 0..50 {
                assert_eq!(shard_of(by, ObjectId(i), &rect(0.2, 0.8), 1), 0);
            }
        }
    }

    #[test]
    fn parses_and_displays() {
        assert_eq!("hash".parse::<ShardBy>().unwrap(), ShardBy::Hash);
        assert_eq!("space".parse::<ShardBy>().unwrap(), ShardBy::Space);
        assert!("h3".parse::<ShardBy>().is_err());
        assert_eq!(ShardBy::Hash.to_string(), "hash");
        assert_eq!(ShardBy::Space.to_string(), "space");
    }
}
