//! Every workload generator — the original §7 populations and streams
//! *and* the scenario zoo — must be a pure function of its seed: the
//! same [`WorkloadConfig`] reproduces bit-identical objects and query
//! streams (including across the zoo's abrupt [`AdaptiveScenario::shift`]),
//! and a different seed produces a different stream. Benchmarks commit
//! their seeds, so reproducibility here is what makes every committed
//! `BENCH_*.json` row re-derivable.

use acx_geom::SpatialQuery;
use acx_workloads::{
    AdaptiveScenario, ClusteredObjects, DiurnalCycle, EventStream, FlashCrowd,
    MigratingHotspot, MixedTraffic, OscillatingHeat, PubSubGenerator, ShiftingHotspot,
    SkewedWorkload, UniformWorkload, WorkloadConfig,
};
use proptest::prelude::*;

/// The zoo behind one factory so the proptest sweeps every scenario.
const ZOO: [&str; 5] = [
    "migrating_hotspot",
    "diurnal_cycle",
    "flash_crowd",
    "oscillating_heat",
    "mixed_traffic",
];

fn make_zoo_scenario(name: &str, cfg: &WorkloadConfig) -> Box<dyn AdaptiveScenario> {
    match name {
        "migrating_hotspot" => Box::new(MigratingHotspot::new(cfg, 5e-3, 0.35, 0.08)),
        "diurnal_cycle" => Box::new(DiurnalCycle::new(cfg, 20, 0.3, 0.08)),
        "flash_crowd" => Box::new(FlashCrowd::new(cfg, 25, 10, 0.25, 0.06)),
        "oscillating_heat" => Box::new(OscillatingHeat::new(cfg, 15, 0.3, 0.08)),
        "mixed_traffic" => Box::new(MixedTraffic::new(cfg, 30, 0.35, 0.08)),
        other => panic!("unknown scenario {other:?}"),
    }
}

/// Drains a scenario: `k` queries, the abrupt shift, `k` more.
fn drain(mut s: Box<dyn AdaptiveScenario>, k: usize) -> Vec<SpatialQuery> {
    let mut out = Vec::with_capacity(2 * k);
    for _ in 0..k {
        out.push(s.next_query());
    }
    s.shift();
    for _ in 0..k {
        out.push(s.next_query());
    }
    out
}

proptest! {
    /// Same seed ⇒ bit-identical query stream (shift included);
    /// different seed ⇒ a different stream, for every zoo scenario.
    #[test]
    fn zoo_streams_are_seed_reproducible(
        dims in 1usize..=8,
        seed in 0u64..1_000_000,
        bump in 1u64..1_000,
    ) {
        for name in ZOO {
            let cfg = WorkloadConfig::new(dims, 64, seed);
            let a = drain(make_zoo_scenario(name, &cfg), 40);
            let b = drain(make_zoo_scenario(name, &cfg), 40);
            prop_assert_eq!(&a, &b, "{}: same seed must replay identically", name);
            let other = WorkloadConfig::new(dims, 64, seed + bump);
            let c = drain(make_zoo_scenario(name, &other), 40);
            prop_assert_ne!(&a, &c, "{}: different seed must differ", name);
        }
    }

    /// Object populations — uniform, skewed, clustered — reproduce
    /// bit-identically from their seed and differ across seeds.
    #[test]
    fn object_populations_are_seed_reproducible(
        dims in 1usize..=8,
        n in 8usize..200,
        seed in 0u64..1_000_000,
        bump in 1u64..1_000,
    ) {
        let cfg = WorkloadConfig::new(dims, n, seed);
        let other = WorkloadConfig::new(dims, n, seed + bump);

        let u1 = UniformWorkload::with_max_length(cfg.clone(), 0.4).generate_objects();
        let u2 = UniformWorkload::with_max_length(cfg.clone(), 0.4).generate_objects();
        prop_assert_eq!(&u1, &u2);
        prop_assert_ne!(
            &u1,
            &UniformWorkload::with_max_length(other.clone(), 0.4).generate_objects()
        );

        let s1 = SkewedWorkload::new(cfg.clone(), 0.3).generate_objects();
        let s2 = SkewedWorkload::new(cfg.clone(), 0.3).generate_objects();
        prop_assert_eq!(&s1, &s2);
        prop_assert_ne!(&s1, &SkewedWorkload::new(other.clone(), 0.3).generate_objects());

        let c1 = ClusteredObjects::new(cfg.clone(), 4, 0.08, 0.15).generate_objects();
        let c2 = ClusteredObjects::new(cfg.clone(), 4, 0.08, 0.15).generate_objects();
        prop_assert_eq!(&c1, &c2);
        prop_assert_ne!(
            &c1,
            &ClusteredObjects::new(other, 4, 0.08, 0.15).generate_objects()
        );
    }

    /// The pre-zoo streams — the shifting hotspot and the pub/sub event
    /// stream — are equally pure functions of their seed.
    #[test]
    fn legacy_streams_are_seed_reproducible(
        dims in 1usize..=8,
        seed in 0u64..1_000_000,
        bump in 1u64..1_000,
    ) {
        let windows = |s: u64| {
            let mut rng = WorkloadConfig::new(dims, 1, s).rng();
            let mut hs = ShiftingHotspot::new(dims, 10, 0.3, 0.1, &mut rng);
            (0..50).map(|_| hs.next_window(&mut rng)).collect::<Vec<_>>()
        };
        prop_assert_eq!(windows(seed), windows(seed));
        prop_assert_ne!(windows(seed), windows(seed + bump));

        let events = |s: u64| {
            EventStream::new(PubSubGenerator::apartments(), s).next_batch(40)
        };
        prop_assert_eq!(events(seed), events(seed));
        prop_assert_ne!(events(seed), events(seed + bump));
    }
}
