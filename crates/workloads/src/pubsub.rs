//! Publish/subscribe workload from the paper's motivation (§1): a
//! notification system for small ads where subscriptions define **range
//! intervals** over tens of attributes and incoming offers (events) are
//! matched with point-enclosing or intersection queries.

use acx_geom::{HyperRect, Scalar};
use rand::rngs::StdRng;
use rand::Rng;

/// One subscription attribute with a real-world domain, mapped linearly
/// onto `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// Attribute name (e.g. `"rent_usd"`).
    pub name: String,
    /// Domain minimum in real-world units.
    pub min: f64,
    /// Domain maximum in real-world units.
    pub max: f64,
    /// Typical half-width of a subscription range, as a fraction of the
    /// domain (e.g. 0.15 → subscribers ask for ±15 % around their wish).
    pub typical_spread: f64,
}

impl Attribute {
    /// Creates an attribute definition.
    pub fn new(name: &str, min: f64, max: f64, typical_spread: f64) -> Self {
        assert!(max > min, "degenerate domain for {name}");
        assert!((0.0..=0.5).contains(&typical_spread));
        Self {
            name: name.to_string(),
            min,
            max,
            typical_spread,
        }
    }

    /// Maps a real-world value into the normalized `[0, 1]` domain.
    pub fn normalize(&self, value: f64) -> Scalar {
        (((value - self.min) / (self.max - self.min)).clamp(0.0, 1.0)) as Scalar
    }

    /// Maps a normalized coordinate back to real-world units.
    pub fn denormalize(&self, v: Scalar) -> f64 {
        self.min + (v as f64) * (self.max - self.min)
    }
}

/// A subscription: a named hyper-rectangle of acceptable attribute ranges.
#[derive(Debug, Clone)]
pub struct Subscription {
    /// Subscriber identifier.
    pub subscriber: u32,
    /// Acceptable ranges, one interval per attribute.
    pub ranges: HyperRect,
}

/// Generates subscriptions and events for an apartment-ads notification
/// service — the paper's running example ("3 to 5 rooms, 1 or 2 baths,
/// 600$–900$ …").
///
/// ```
/// use acx_workloads::PubSubGenerator;
/// use rand::SeedableRng;
///
/// let gen = PubSubGenerator::apartments();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let sub = gen.subscription(7, &mut rng);
/// assert_eq!(sub.ranges.dims(), gen.dims());
/// let event = gen.event(&mut rng);
/// assert_eq!(event.len(), gen.dims());
/// ```
#[derive(Debug, Clone)]
pub struct PubSubGenerator {
    attributes: Vec<Attribute>,
}

impl PubSubGenerator {
    /// A generator over a custom attribute schema.
    pub fn new(attributes: Vec<Attribute>) -> Self {
        assert!(!attributes.is_empty(), "schema needs at least one attribute");
        Self { attributes }
    }

    /// The apartment small-ads schema from the paper's introduction.
    pub fn apartments() -> Self {
        Self::new(vec![
            Attribute::new("rent_usd", 0.0, 5000.0, 0.15),
            Attribute::new("rooms", 1.0, 10.0, 0.2),
            Attribute::new("baths", 1.0, 5.0, 0.25),
            Attribute::new("surface_m2", 10.0, 400.0, 0.2),
            Attribute::new("distance_miles", 0.0, 60.0, 0.25),
            Attribute::new("floor", 0.0, 40.0, 0.3),
            Attribute::new("year_built", 1900.0, 2010.0, 0.3),
            Attribute::new("lease_months", 1.0, 60.0, 0.3),
        ])
    }

    /// The attribute schema.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Dimensionality of the normalized data space.
    pub fn dims(&self) -> usize {
        self.attributes.len()
    }

    /// Draws a subscription: for each attribute, a wish value with a
    /// spread around it (ranges, not single values — range subscriptions
    /// let subscribers see close alternatives).
    pub fn subscription(&self, subscriber: u32, rng: &mut StdRng) -> Subscription {
        let mut lo = Vec::with_capacity(self.dims());
        let mut hi = Vec::with_capacity(self.dims());
        for attr in &self.attributes {
            let wish: f64 = rng.gen_range(0.0..=1.0);
            let spread: f64 = rng.gen_range(0.2..=1.8) * attr.typical_spread;
            lo.push(((wish - spread).max(0.0)) as Scalar);
            hi.push(((wish + spread).min(1.0)) as Scalar);
        }
        Subscription {
            subscriber,
            ranges: HyperRect::from_bounds(&lo, &hi).expect("ranges are valid"),
        }
    }

    /// Draws an event (a concrete offer): one normalized point.
    pub fn event(&self, rng: &mut StdRng) -> Vec<Scalar> {
        (0..self.dims()).map(|_| rng.gen_range(0.0..=1.0)).collect()
    }

    /// Draws a range event (an offer with flexible terms, e.g.
    /// "600$–900$"): a narrow rectangle around a point.
    pub fn range_event(&self, rng: &mut StdRng, flexibility: Scalar) -> HyperRect {
        assert!((0.0..=0.5).contains(&flexibility));
        let mut lo = Vec::with_capacity(self.dims());
        let mut hi = Vec::with_capacity(self.dims());
        for _ in 0..self.dims() {
            let v: Scalar = rng.gen_range(0.0..=1.0);
            lo.push((v - flexibility).max(0.0));
            hi.push((v + flexibility).min(1.0));
        }
        HyperRect::from_bounds(&lo, &hi).expect("event bounds are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn attribute_normalization_roundtrip() {
        let a = Attribute::new("rent_usd", 0.0, 5000.0, 0.15);
        assert_eq!(a.normalize(2500.0), 0.5);
        assert!((a.denormalize(0.5) - 2500.0).abs() < 1e-9);
        // Clamped outside the domain.
        assert_eq!(a.normalize(-10.0), 0.0);
        assert_eq!(a.normalize(99999.0), 1.0);
    }

    #[test]
    fn subscriptions_are_ranges_not_points() {
        let gen = PubSubGenerator::apartments();
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..50 {
            let sub = gen.subscription(i, &mut rng);
            assert_eq!(sub.ranges.dims(), 8);
            // At least one attribute must have a real extension.
            assert!(sub.ranges.intervals().iter().any(|iv| iv.length() > 0.0));
            for iv in sub.ranges.intervals() {
                assert!(iv.lo() >= 0.0 && iv.hi() <= 1.0);
            }
        }
    }

    #[test]
    fn events_match_some_subscriptions() {
        let gen = PubSubGenerator::apartments();
        let mut rng = StdRng::seed_from_u64(11);
        let subs: Vec<_> = (0..500).map(|i| gen.subscription(i, &mut rng)).collect();
        let mut total = 0usize;
        for _ in 0..50 {
            let e = gen.event(&mut rng);
            total += subs.iter().filter(|s| s.ranges.contains_point(&e)).count();
        }
        assert!(total > 0, "events should reach at least some subscribers");
    }

    #[test]
    fn range_events_are_wider_than_points() {
        let gen = PubSubGenerator::apartments();
        let mut rng = StdRng::seed_from_u64(2);
        let e = gen.range_event(&mut rng, 0.05);
        assert!(e.intervals().iter().any(|iv| iv.length() > 0.0));
    }

    #[test]
    #[should_panic(expected = "degenerate domain")]
    fn rejects_bad_attribute() {
        Attribute::new("broken", 10.0, 10.0, 0.1);
    }
}
