//! Workload generators reproducing the paper's evaluation setups (§7) plus
//! the publish/subscribe application from its motivation (§1).
//!
//! * [`UniformWorkload`] — objects with uniformly distributed interval
//!   positions and sizes in every dimension (Fig. 7 experiments).
//! * [`SkewedWorkload`] — for each object a random quarter of the
//!   dimensions is twice as selective as the rest (Fig. 8 experiments).
//! * [`calibrate`] — bisection solvers that choose query-window extents
//!   (or object sizes) to hit a target average selectivity, exploiting
//!   per-dimension independence.
//! * [`PubSubGenerator`] — a small-ads subscription domain (apartments:
//!   price, rooms, baths, …) mapped onto the normalized data space.
//! * [`ShiftingHotspot`] — a query stream whose focus region jumps
//!   periodically, exercising the index's merge-based adaptation.
//! * [`EventStream`] — batched event-stream driver rendering pub/sub
//!   offers as ready-to-execute queries, feeding the index's concurrent
//!   batch read path.
//! * [`scenarios`] — the **scenario zoo**: drifting, periodic,
//!   adversarial and mixed-kind query streams ([`MigratingHotspot`],
//!   [`DiurnalCycle`], [`FlashCrowd`], [`OscillatingHeat`],
//!   [`MixedTraffic`]) plus the clustered object population
//!   ([`ClusteredObjects`]), all behind the [`AdaptiveScenario`] trait
//!   the adaptivity benchmark drives.
//!
//! All generators are deterministic given a seed.

pub mod calibrate;
mod events;
mod pubsub;
pub mod scenarios;
mod skewed;
mod streams;
mod uniform;

pub use events::EventStream;
pub use pubsub::{Attribute, PubSubGenerator, Subscription};
pub use scenarios::{
    AdaptiveScenario, ClusteredObjects, DiurnalCycle, FlashCrowd, MigratingHotspot,
    MixedTraffic, OscillatingHeat,
};
pub use skewed::SkewedWorkload;
pub use streams::ShiftingHotspot;
pub use uniform::UniformWorkload;

use acx_geom::{HyperRect, Scalar};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Shared workload parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Dimensionality of the data space.
    pub dims: usize,
    /// Number of database objects to generate.
    pub n_objects: usize,
    /// RNG seed — all generators are deterministic given the seed.
    pub seed: u64,
}

impl WorkloadConfig {
    /// Convenience constructor.
    pub fn new(dims: usize, n_objects: usize, seed: u64) -> Self {
        Self {
            dims,
            n_objects,
            seed,
        }
    }

    /// A seeded RNG for this configuration.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }
}

/// A source of database objects and query windows.
pub trait Workload {
    /// Dimensionality of generated objects.
    fn dims(&self) -> usize;

    /// Draws one database object.
    fn sample_object(&self, rng: &mut StdRng) -> HyperRect;

    /// Draws one intersection-query window of the given per-dimension
    /// extent.
    fn sample_window(&self, rng: &mut StdRng, extent: Scalar) -> HyperRect {
        let dims = self.dims();
        let mut lo = Vec::with_capacity(dims);
        let mut hi = Vec::with_capacity(dims);
        for _ in 0..dims {
            let extent = extent.clamp(0.0, 1.0);
            let start = rand::Rng::gen_range(rng, 0.0..=1.0 - extent);
            lo.push(start);
            hi.push(start + extent);
        }
        HyperRect::from_bounds(&lo, &hi).expect("window bounds are valid")
    }

    /// Draws one query point (for point-enclosing queries).
    fn sample_point(&self, rng: &mut StdRng) -> Vec<Scalar> {
        (0..self.dims())
            .map(|_| rand::Rng::gen_range(rng, 0.0..=1.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_rng_is_deterministic() {
        let c = WorkloadConfig::new(4, 100, 42);
        let mut a = c.rng();
        let mut b = c.rng();
        let x: f64 = rand::Rng::gen(&mut a);
        let y: f64 = rand::Rng::gen(&mut b);
        assert_eq!(x, y);
    }

    #[test]
    fn sample_window_respects_extent() {
        let w = UniformWorkload::new(WorkloadConfig::new(3, 10, 1));
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let win = w.sample_window(&mut rng, 0.25);
            for iv in win.intervals() {
                assert!((iv.length() - 0.25).abs() < 1e-6);
                assert!(iv.lo() >= 0.0 && iv.hi() <= 1.0);
            }
        }
    }

    #[test]
    fn sample_point_is_in_domain() {
        let w = UniformWorkload::new(WorkloadConfig::new(5, 10, 1));
        let mut rng = StdRng::seed_from_u64(3);
        let p = w.sample_point(&mut rng);
        assert_eq!(p.len(), 5);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
