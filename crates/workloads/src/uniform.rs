use acx_geom::{HyperRect, Scalar};
use rand::rngs::StdRng;
use rand::Rng;

use crate::{Workload, WorkloadConfig};

/// The uniform workload of the paper's first experiment (§7.2): each
/// object defines, in every dimension, an interval whose **size and
/// position are uniformly distributed**.
///
/// Interval length is drawn from `U(0, max_length)` and the start from
/// `U(0, 1 − length)`, so objects of all sizes appear everywhere in the
/// domain.
#[derive(Debug, Clone)]
pub struct UniformWorkload {
    config: WorkloadConfig,
    max_length: Scalar,
}

impl UniformWorkload {
    /// Uniform workload with unconstrained interval sizes (`max_length = 1`).
    pub fn new(config: WorkloadConfig) -> Self {
        Self::with_max_length(config, 1.0)
    }

    /// Uniform workload whose interval lengths are bounded by
    /// `max_length` (used to control object extension).
    pub fn with_max_length(config: WorkloadConfig, max_length: Scalar) -> Self {
        assert!(
            (0.0..=1.0).contains(&max_length),
            "max_length must be in [0, 1]"
        );
        assert!(config.dims > 0, "dims must be positive");
        Self { config, max_length }
    }

    /// The workload configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Generates the full database deterministically from the seed.
    pub fn generate_objects(&self) -> Vec<HyperRect> {
        let mut rng = self.config.rng();
        (0..self.config.n_objects)
            .map(|_| self.sample_object(&mut rng))
            .collect()
    }
}

impl Workload for UniformWorkload {
    fn dims(&self) -> usize {
        self.config.dims
    }

    fn sample_object(&self, rng: &mut StdRng) -> HyperRect {
        let dims = self.config.dims;
        let mut lo = Vec::with_capacity(dims);
        let mut hi = Vec::with_capacity(dims);
        for _ in 0..dims {
            let len: Scalar = rng.gen_range(0.0..=self.max_length);
            let start: Scalar = rng.gen_range(0.0..=1.0 - len);
            lo.push(start);
            hi.push(start + len);
        }
        HyperRect::from_bounds(&lo, &hi).expect("object bounds are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_are_valid_and_in_domain() {
        let w = UniformWorkload::new(WorkloadConfig::new(6, 500, 7));
        for obj in w.generate_objects() {
            assert_eq!(obj.dims(), 6);
            for iv in obj.intervals() {
                assert!(iv.lo() >= 0.0 && iv.hi() <= 1.0);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let w1 = UniformWorkload::new(WorkloadConfig::new(4, 50, 99));
        let w2 = UniformWorkload::new(WorkloadConfig::new(4, 50, 99));
        assert_eq!(w1.generate_objects(), w2.generate_objects());
        let w3 = UniformWorkload::new(WorkloadConfig::new(4, 50, 100));
        assert_ne!(w1.generate_objects(), w3.generate_objects());
    }

    #[test]
    fn max_length_bounds_interval_sizes() {
        let w = UniformWorkload::with_max_length(WorkloadConfig::new(3, 300, 5), 0.1);
        for obj in w.generate_objects() {
            for iv in obj.intervals() {
                assert!(iv.length() <= 0.1 + 1e-6);
            }
        }
    }

    #[test]
    fn mean_length_is_half_max() {
        let w = UniformWorkload::with_max_length(WorkloadConfig::new(1, 20_000, 11), 0.5);
        let mean: f64 = w
            .generate_objects()
            .iter()
            .map(|o| o.interval(0).length() as f64)
            .sum::<f64>()
            / 20_000.0;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "max_length")]
    fn rejects_invalid_max_length() {
        UniformWorkload::with_max_length(WorkloadConfig::new(2, 10, 1), 1.5);
    }
}
