use acx_geom::{HyperRect, Scalar};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::{Workload, WorkloadConfig};

/// The skewed workload of the paper's second experiment (§7.2): for each
/// database object **a random quarter of the dimensions is two times more
/// selective** than the rest — their intervals are half as long.
///
/// Interval lengths are `U(0, base_length)` for ordinary dimensions and
/// `U(0, base_length / 2)` for the selected quarter; positions are
/// uniform. Query objects are generated without interval constraints
/// (ordered pairs of uniforms), so the global selectivity is controlled
/// through `base_length` — see
/// [`calibrate::skewed_base_length`](crate::calibrate::skewed_base_length).
#[derive(Debug, Clone)]
pub struct SkewedWorkload {
    config: WorkloadConfig,
    base_length: Scalar,
}

impl SkewedWorkload {
    /// Skewed workload with the given base interval length.
    pub fn new(config: WorkloadConfig, base_length: Scalar) -> Self {
        assert!(
            (0.0..=1.0).contains(&base_length),
            "base_length must be in [0, 1]"
        );
        assert!(config.dims > 0, "dims must be positive");
        Self {
            config,
            base_length,
        }
    }

    /// The workload configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// The calibrated base interval length.
    pub fn base_length(&self) -> Scalar {
        self.base_length
    }

    /// Number of extra-selective dimensions per object (a quarter,
    /// at least one).
    pub fn selective_dims(&self) -> usize {
        (self.config.dims / 4).max(1)
    }

    /// Generates the full database deterministically from the seed.
    pub fn generate_objects(&self) -> Vec<HyperRect> {
        let mut rng = self.config.rng();
        (0..self.config.n_objects)
            .map(|_| self.sample_object(&mut rng))
            .collect()
    }

    /// Draws a query object "with no interval constraints" (paper §7.2):
    /// an ordered pair of uniforms per dimension.
    pub fn sample_unconstrained_window(&self, rng: &mut StdRng) -> HyperRect {
        let dims = self.config.dims;
        let mut lo = Vec::with_capacity(dims);
        let mut hi = Vec::with_capacity(dims);
        for _ in 0..dims {
            let a: Scalar = rng.gen_range(0.0..=1.0);
            let b: Scalar = rng.gen_range(0.0..=1.0);
            lo.push(a.min(b));
            hi.push(a.max(b));
        }
        HyperRect::from_bounds(&lo, &hi).expect("window bounds are valid")
    }
}

impl Workload for SkewedWorkload {
    fn dims(&self) -> usize {
        self.config.dims
    }

    fn sample_object(&self, rng: &mut StdRng) -> HyperRect {
        let dims = self.config.dims;
        let quarter = self.selective_dims();
        let mut selective = vec![false; dims];
        let mut order: Vec<usize> = (0..dims).collect();
        order.shuffle(rng);
        for &d in order.iter().take(quarter) {
            selective[d] = true;
        }
        let mut lo = Vec::with_capacity(dims);
        let mut hi = Vec::with_capacity(dims);
        #[allow(clippy::needless_range_loop)]
        for d in 0..dims {
            let max_len = if selective[d] {
                self.base_length * 0.5
            } else {
                self.base_length
            };
            let len: Scalar = rng.gen_range(0.0..=max_len);
            let start: Scalar = rng.gen_range(0.0..=1.0 - len);
            lo.push(start);
            hi.push(start + len);
        }
        HyperRect::from_bounds(&lo, &hi).expect("object bounds are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarter_of_dimensions_is_selective() {
        let w = SkewedWorkload::new(WorkloadConfig::new(16, 10, 3), 0.4);
        assert_eq!(w.selective_dims(), 4);
        let w = SkewedWorkload::new(WorkloadConfig::new(40, 10, 3), 0.4);
        assert_eq!(w.selective_dims(), 10);
        // Degenerate but valid: at least one selective dimension.
        let w = SkewedWorkload::new(WorkloadConfig::new(2, 10, 3), 0.4);
        assert_eq!(w.selective_dims(), 1);
    }

    #[test]
    fn objects_respect_length_bounds() {
        let w = SkewedWorkload::new(WorkloadConfig::new(8, 500, 21), 0.3);
        for obj in w.generate_objects() {
            let mut short = 0;
            for iv in obj.intervals() {
                assert!(iv.length() <= 0.3 + 1e-6);
                assert!(iv.lo() >= 0.0 && iv.hi() <= 1.0);
                if iv.length() <= 0.15 + 1e-6 {
                    short += 1;
                }
            }
            // The two selective dims are necessarily short; others may be
            // short by chance, so this is a lower bound.
            assert!(short >= 2, "expected ≥ 2 short intervals, got {short}");
        }
    }

    #[test]
    fn selective_dimensions_vary_per_object() {
        // Different objects should pick different selective quarters.
        let w = SkewedWorkload::new(WorkloadConfig::new(16, 400, 5), 0.5);
        let objects = w.generate_objects();
        // Count how often each dimension is among the 4 shortest.
        let mut counts = vec![0usize; 16];
        for obj in &objects {
            let mut lens: Vec<(usize, f32)> = obj
                .intervals()
                .iter()
                .enumerate()
                .map(|(d, iv)| (d, iv.length()))
                .collect();
            lens.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            for (d, _) in lens.iter().take(4) {
                counts[*d] += 1;
            }
        }
        // Every dimension should be selected sometimes (uniform choice).
        assert!(counts.iter().all(|&c| c > 0), "counts {counts:?}");
    }

    #[test]
    fn unconstrained_window_covers_large_fraction() {
        let w = SkewedWorkload::new(WorkloadConfig::new(4, 10, 8), 0.3);
        let mut rng = w.config().rng();
        let mean_len: f64 = (0..2000)
            .map(|_| {
                let win = w.sample_unconstrained_window(&mut rng);
                win.intervals().iter().map(|i| i.length() as f64).sum::<f64>() / 4.0
            })
            .sum::<f64>()
            / 2000.0;
        // Ordered pair of uniforms → expected length 1/3.
        assert!((mean_len - 1.0 / 3.0).abs() < 0.02, "mean {mean_len}");
    }

    #[test]
    fn deterministic_generation() {
        let a = SkewedWorkload::new(WorkloadConfig::new(6, 100, 77), 0.25).generate_objects();
        let b = SkewedWorkload::new(WorkloadConfig::new(6, 100, 77), 0.25).generate_objects();
        assert_eq!(a, b);
    }
}
