//! Batched event-stream driver for the serving scenario (paper §1): an
//! arriving offer is one spatial query, and a high-fanout notification
//! front-end drains events in batches so the index's concurrent read path
//! can fan the matching phase across cores.

use acx_geom::{Scalar, SpatialQuery};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::PubSubGenerator;

/// Deterministic stream of pub/sub offer events rendered as spatial
/// queries, drawn one batch at a time.
///
/// Point offers become point-enclosing queries; with a nonzero
/// `flexibility`, offers are narrow rectangles ("600$–900$") matched with
/// intersection queries.
///
/// ```
/// use acx_workloads::{EventStream, PubSubGenerator};
///
/// let mut stream = EventStream::new(PubSubGenerator::apartments(), 7);
/// let batch = stream.next_batch(32);
/// assert_eq!(batch.len(), 32);
/// assert_eq!(stream.issued(), 32);
/// assert_eq!(batch[0].dims(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct EventStream {
    generator: PubSubGenerator,
    rng: StdRng,
    flexibility: Scalar,
    issued: u64,
}

impl EventStream {
    /// A stream of point offers (point-enclosing queries).
    pub fn new(generator: PubSubGenerator, seed: u64) -> Self {
        Self::with_flexibility(generator, seed, 0.0)
    }

    /// A stream of flexible offers: rectangles of per-dimension half-width
    /// `flexibility` in `[0, 0.5]`, matched with intersection queries.
    /// `0.0` degenerates to point offers.
    pub fn with_flexibility(generator: PubSubGenerator, seed: u64, flexibility: Scalar) -> Self {
        assert!(
            (0.0..=0.5).contains(&flexibility),
            "flexibility must be in [0, 0.5]"
        );
        Self {
            generator,
            rng: StdRng::seed_from_u64(seed),
            flexibility,
            issued: 0,
        }
    }

    /// The underlying attribute-schema generator.
    pub fn generator(&self) -> &PubSubGenerator {
        &self.generator
    }

    /// Dimensionality of generated queries.
    pub fn dims(&self) -> usize {
        self.generator.dims()
    }

    /// Events issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Draws the next event as a ready-to-execute spatial query.
    pub fn next_query(&mut self) -> SpatialQuery {
        self.issued += 1;
        if self.flexibility > 0.0 {
            SpatialQuery::intersection(self.generator.range_event(&mut self.rng, self.flexibility))
        } else {
            SpatialQuery::point_enclosing(self.generator.event(&mut self.rng))
        }
    }

    /// Draws the next batch of `n` events, ready for
    /// `AdaptiveClusterIndex::execute_batch`.
    pub fn next_batch(&mut self, n: usize) -> Vec<SpatialQuery> {
        (0..n).map(|_| self.next_query()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_given_seed() {
        let mut a = EventStream::new(PubSubGenerator::apartments(), 11);
        let mut b = EventStream::new(PubSubGenerator::apartments(), 11);
        for (qa, qb) in a.next_batch(50).iter().zip(b.next_batch(50).iter()) {
            assert_eq!(format!("{qa:?}"), format!("{qb:?}"));
        }
    }

    #[test]
    fn batches_continue_the_stream() {
        let mut whole = EventStream::new(PubSubGenerator::apartments(), 3);
        let mut split = EventStream::new(PubSubGenerator::apartments(), 3);
        let all = whole.next_batch(40);
        let mut parts = split.next_batch(25);
        parts.extend(split.next_batch(15));
        assert_eq!(format!("{all:?}"), format!("{parts:?}"));
        assert_eq!(split.issued(), 40);
    }

    #[test]
    fn point_events_are_point_enclosing_queries() {
        let mut s = EventStream::new(PubSubGenerator::apartments(), 1);
        for q in s.next_batch(10) {
            assert!(matches!(q, SpatialQuery::PointEnclosing(_)));
        }
    }

    #[test]
    fn flexible_events_are_intersection_queries() {
        let mut s = EventStream::with_flexibility(PubSubGenerator::apartments(), 1, 0.05);
        for q in s.next_batch(10) {
            match q {
                SpatialQuery::Intersection(w) => {
                    assert!(w.intervals().iter().any(|iv| iv.length() > 0.0));
                }
                other => panic!("expected intersection query, got {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "flexibility")]
    fn rejects_out_of_range_flexibility() {
        EventStream::with_flexibility(PubSubGenerator::apartments(), 1, 0.7);
    }
}
