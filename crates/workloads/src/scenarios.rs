//! The **scenario zoo**: non-stationary, adversarial, and real-shaped
//! query streams stressing the index's central claim — that the
//! cost-based clustering *re-adapts* when the query distribution moves
//! (paper §8: "workloads that are skewed and varying in time").
//!
//! Every scenario is a deterministic, seed-reproducible generator over
//! the existing [`SpatialQuery`]/[`WorkloadConfig`] types: it owns its
//! RNG (seeded from the [`WorkloadConfig`]), implements
//! [`Iterator<Item = SpatialQuery>`](Iterator) for idiomatic
//! consumption, and exposes the [`AdaptiveScenario`] trait so one
//! harness can drive them all — including [`AdaptiveScenario::shift`],
//! a forced abrupt distribution change the adaptivity benchmark uses to
//! anchor its *time-to-readapt* measurement.
//!
//! The zoo (ROADMAP direction 5):
//!
//! * [`MigratingHotspot`] — the hotspot *glides* with a configurable
//!   velocity instead of jumping (concept drift).
//! * [`DiurnalCycle`] — heat oscillates periodically between two fixed
//!   regions (day/night traffic).
//! * [`FlashCrowd`] — uniform background traffic with sudden transient
//!   spikes at fresh locations.
//! * [`OscillatingHeat`] — the adversary: heat alternates between two
//!   fixed regions at a period matched to the reorganization cadence,
//!   trying to force split→merge→split thrash of the *same* cluster
//!   signatures.
//! * [`MixedTraffic`] — all four query kinds over a drifting hotspot.
//! * [`ClusteredObjects`] — a correlated/clustered object *population*
//!   (Brisaboa et al.'s clustered points), the data-side counterpart.

use acx_geom::{HyperRect, Scalar, SpatialQuery};
use rand::rngs::StdRng;
use rand::Rng;

use crate::{Workload, WorkloadConfig};

/// A non-stationary query stream the adaptivity harness can drive.
///
/// Implementors are deterministic given their construction seed: two
/// instances built from identical parameters yield bit-identical query
/// sequences (including across [`AdaptiveScenario::shift`] calls at the
/// same positions).
pub trait AdaptiveScenario {
    /// Dimensionality of emitted queries.
    fn dims(&self) -> usize;

    /// Draws the next query of the stream.
    fn next_query(&mut self) -> SpatialQuery;

    /// Forces an abrupt distribution change *now* — the event the
    /// harness measures recovery from. Scenarios whose drift is
    /// continuous implement this as a jump (teleport, phase flip,
    /// spike onset) so "time since shift" is well defined.
    fn shift(&mut self);

    /// Stable scenario label used in benchmark output.
    fn label(&self) -> &'static str;
}

/// Draws a window of per-dimension extent `extent` centered near
/// `center` (jittered within `spread`), clamped to the unit domain.
fn window_near(
    rng: &mut StdRng,
    center: &[Scalar],
    spread: Scalar,
    extent: Scalar,
) -> HyperRect {
    let dims = center.len();
    let mut lo = Vec::with_capacity(dims);
    let mut hi = Vec::with_capacity(dims);
    for &c in center {
        let jitter: Scalar = if spread > 0.0 {
            rng.gen_range(-spread * 0.5..=spread * 0.5)
        } else {
            0.0
        };
        let start = (c + jitter - extent * 0.5).clamp(0.0, 1.0 - extent);
        lo.push(start);
        hi.push(start + extent);
    }
    HyperRect::from_bounds(&lo, &hi).expect("window bounds are valid")
}

/// A query hotspot that **glides** through the domain: each query moves
/// the center by `velocity` along a fixed random direction, reflecting
/// off the domain walls. Unlike [`crate::ShiftingHotspot`]'s periodic
/// jumps, the distribution never repeats a steady state — the index
/// must chase it continuously.
#[derive(Debug, Clone)]
pub struct MigratingHotspot {
    dims: usize,
    velocity: Scalar,
    hotspot_extent: Scalar,
    window_extent: Scalar,
    center: Vec<Scalar>,
    direction: Vec<Scalar>,
    rng: StdRng,
}

impl MigratingHotspot {
    /// Creates a hotspot of extent `hotspot_extent` emitting windows of
    /// extent `window_extent`, moving `velocity` per query (fractions
    /// of the unit domain; `velocity = 0.0005` crosses the domain in
    /// ~2000 queries).
    pub fn new(
        config: &WorkloadConfig,
        velocity: Scalar,
        hotspot_extent: Scalar,
        window_extent: Scalar,
    ) -> Self {
        assert!(config.dims > 0);
        assert!(velocity >= 0.0);
        assert!(window_extent <= hotspot_extent && hotspot_extent <= 1.0);
        let mut rng = config.rng();
        let half = hotspot_extent * 0.5;
        let center: Vec<Scalar> =
            (0..config.dims).map(|_| rng.gen_range(half..=1.0 - half)).collect();
        // A random diagonal direction of unit speed per component sign;
        // normalized so `velocity` is the per-query displacement.
        let mut direction: Vec<Scalar> = (0..config.dims)
            .map(|_| rng.gen_range(-1.0f32..=1.0))
            .collect();
        let norm = direction.iter().map(|d| d * d).sum::<Scalar>().sqrt().max(1e-6);
        for d in &mut direction {
            *d /= norm;
        }
        Self {
            dims: config.dims,
            velocity,
            hotspot_extent,
            window_extent,
            center,
            direction,
            rng,
        }
    }

    /// Current hotspot center.
    pub fn center(&self) -> &[Scalar] {
        &self.center
    }

    fn advance(&mut self) {
        let half = self.hotspot_extent * 0.5;
        for d in 0..self.dims {
            let mut c = self.center[d] + self.direction[d] * self.velocity;
            // Reflect off the walls so the hotspot stays inside.
            if c < half {
                c = half + (half - c);
                self.direction[d] = -self.direction[d];
            } else if c > 1.0 - half {
                c = (1.0 - half) - (c - (1.0 - half));
                self.direction[d] = -self.direction[d];
            }
            self.center[d] = c.clamp(half, 1.0 - half);
        }
    }
}

impl AdaptiveScenario for MigratingHotspot {
    fn dims(&self) -> usize {
        self.dims
    }

    fn next_query(&mut self) -> SpatialQuery {
        self.advance();
        let spread = self.hotspot_extent - self.window_extent;
        let w = window_near(&mut self.rng, &self.center.clone(), spread, self.window_extent);
        SpatialQuery::intersection(w)
    }

    /// Teleports the hotspot to the reflected-opposite corner of the
    /// domain — the largest jump the geometry allows.
    fn shift(&mut self) {
        let half = self.hotspot_extent * 0.5;
        for c in &mut self.center {
            *c = (1.0 - *c).clamp(half, 1.0 - half);
        }
    }

    fn label(&self) -> &'static str {
        "migrating_hotspot"
    }
}

impl Iterator for MigratingHotspot {
    type Item = SpatialQuery;

    fn next(&mut self) -> Option<SpatialQuery> {
        Some(self.next_query())
    }
}

/// Periodic heat oscillation between two fixed regions: query mass
/// moves sinusoidally from region A to region B and back with the given
/// period — day/night load patterns. Because both regions recur, the
/// index ideally *keeps* both clusterings warm; an index that merges
/// the cold region every half-cycle pays the re-split on every dawn.
#[derive(Debug, Clone)]
pub struct DiurnalCycle {
    dims: usize,
    period: u64,
    region_extent: Scalar,
    window_extent: Scalar,
    center_a: Vec<Scalar>,
    center_b: Vec<Scalar>,
    issued: u64,
    /// Phase offset in queries (advanced by `shift` half a period).
    phase: u64,
    rng: StdRng,
}

impl DiurnalCycle {
    /// Creates a cycle of `period` queries between two random disjoint
    /// regions of extent `region_extent`.
    pub fn new(
        config: &WorkloadConfig,
        period: u64,
        region_extent: Scalar,
        window_extent: Scalar,
    ) -> Self {
        assert!(config.dims > 0 && period > 0);
        assert!(window_extent <= region_extent && region_extent <= 0.5);
        let mut rng = config.rng();
        let half = region_extent * 0.5;
        // Opposite halves of the domain per dimension: guaranteed
        // disjoint, so their cluster signatures never overlap.
        let center_a: Vec<Scalar> =
            (0..config.dims).map(|_| rng.gen_range(half..=0.5 - half)).collect();
        let center_b: Vec<Scalar> =
            (0..config.dims).map(|_| rng.gen_range(0.5 + half..=1.0 - half)).collect();
        Self {
            dims: config.dims,
            period,
            region_extent,
            window_extent,
            center_a,
            center_b,
            issued: 0,
            phase: 0,
            rng,
        }
    }

    /// Probability that the next query targets region B (the "night"
    /// region) at stream position `t`.
    fn heat_b(&self, t: u64) -> f64 {
        let angle =
            2.0 * std::f64::consts::PI * ((t + self.phase) % self.period) as f64
                / self.period as f64;
        0.5 * (1.0 - angle.cos())
    }
}

impl AdaptiveScenario for DiurnalCycle {
    fn dims(&self) -> usize {
        self.dims
    }

    fn next_query(&mut self) -> SpatialQuery {
        let p_b = self.heat_b(self.issued);
        self.issued += 1;
        let use_b = self.rng.gen_bool(p_b);
        let center = if use_b { self.center_b.clone() } else { self.center_a.clone() };
        let spread = self.region_extent - self.window_extent;
        let w = window_near(&mut self.rng, &center, spread, self.window_extent);
        SpatialQuery::intersection(w)
    }

    /// Jumps the cycle phase by half a period: day becomes night
    /// instantly.
    fn shift(&mut self) {
        self.phase = (self.phase + self.period / 2) % self.period;
    }

    fn label(&self) -> &'static str {
        "diurnal_cycle"
    }
}

impl Iterator for DiurnalCycle {
    type Item = SpatialQuery;

    fn next(&mut self) -> Option<SpatialQuery> {
        Some(self.next_query())
    }
}

/// Uniform background traffic with **flash crowds**: every
/// `calm_queries` queries a transient spike erupts at a fresh random
/// location — for `spike_queries` queries, most traffic (90 %) hammers
/// a tight region, then the crowd dissolves. Tests whether the index
/// profits from transient skew without destabilizing its steady-state
/// clustering.
#[derive(Debug, Clone)]
pub struct FlashCrowd {
    dims: usize,
    calm_queries: u64,
    spike_queries: u64,
    spike_extent: Scalar,
    window_extent: Scalar,
    issued_in_state: u64,
    in_spike: bool,
    spike_center: Vec<Scalar>,
    rng: StdRng,
}

impl FlashCrowd {
    /// Creates a stream alternating `calm_queries` of uniform traffic
    /// with `spike_queries` of crowd traffic inside a region of extent
    /// `spike_extent`.
    pub fn new(
        config: &WorkloadConfig,
        calm_queries: u64,
        spike_queries: u64,
        spike_extent: Scalar,
        window_extent: Scalar,
    ) -> Self {
        assert!(config.dims > 0 && calm_queries > 0 && spike_queries > 0);
        assert!(window_extent <= spike_extent && spike_extent <= 1.0);
        let mut rng = config.rng();
        let spike_center = Self::fresh_center(config.dims, spike_extent, &mut rng);
        Self {
            dims: config.dims,
            calm_queries,
            spike_queries,
            spike_extent,
            window_extent,
            issued_in_state: 0,
            in_spike: false,
            spike_center,
            rng,
        }
    }

    fn fresh_center(dims: usize, extent: Scalar, rng: &mut StdRng) -> Vec<Scalar> {
        let half = extent * 0.5;
        (0..dims).map(|_| rng.gen_range(half..=1.0 - half)).collect()
    }

    /// Whether the stream is currently inside a spike.
    pub fn in_spike(&self) -> bool {
        self.in_spike
    }
}

impl AdaptiveScenario for FlashCrowd {
    fn dims(&self) -> usize {
        self.dims
    }

    fn next_query(&mut self) -> SpatialQuery {
        let limit = if self.in_spike { self.spike_queries } else { self.calm_queries };
        if self.issued_in_state >= limit {
            self.issued_in_state = 0;
            self.in_spike = !self.in_spike;
            if self.in_spike {
                self.spike_center =
                    Self::fresh_center(self.dims, self.spike_extent, &mut self.rng);
            }
        }
        self.issued_in_state += 1;
        let crowd = self.in_spike && self.rng.gen_bool(0.9);
        let w = if crowd {
            let spread = self.spike_extent - self.window_extent;
            window_near(&mut self.rng, &self.spike_center.clone(), spread, self.window_extent)
        } else {
            // Background: uniform window position over the whole domain.
            let extent = self.window_extent;
            let mut lo = Vec::with_capacity(self.dims);
            let mut hi = Vec::with_capacity(self.dims);
            for _ in 0..self.dims {
                let start: Scalar = self.rng.gen_range(0.0..=1.0 - extent);
                lo.push(start);
                hi.push(start + extent);
            }
            HyperRect::from_bounds(&lo, &hi).expect("window bounds are valid")
        };
        SpatialQuery::intersection(w)
    }

    /// Erupts a spike at a fresh location immediately.
    fn shift(&mut self) {
        self.issued_in_state = 0;
        self.in_spike = true;
        self.spike_center = Self::fresh_center(self.dims, self.spike_extent, &mut self.rng);
    }

    fn label(&self) -> &'static str {
        "flash_crowd"
    }
}

impl Iterator for FlashCrowd {
    type Item = SpatialQuery;

    fn next(&mut self) -> Option<SpatialQuery> {
        Some(self.next_query())
    }
}

/// The adversary: **all** heat sits on region A for `half_period`
/// queries, then all of it on region B, alternating forever between
/// the *same two* fixed regions. With `half_period` a small multiple of
/// the reorganization period this is the worst case for the benefit
/// functions: the cold region's clusters look unprofitable every
/// half-cycle (merge), then the heat returns and the identical
/// signatures split again — split→merge→split thrash unless hysteresis
/// (statistics decay, cost horizon, or the merge cool-down) damps it.
#[derive(Debug, Clone)]
pub struct OscillatingHeat {
    dims: usize,
    half_period: u64,
    region_extent: Scalar,
    window_extent: Scalar,
    center_a: Vec<Scalar>,
    center_b: Vec<Scalar>,
    issued: u64,
    /// Flipped by `shift` so the active region swaps instantly.
    flipped: bool,
    rng: StdRng,
}

impl OscillatingHeat {
    /// Creates the oscillator: heat alternates between two disjoint
    /// regions of extent `region_extent` every `half_period` queries.
    pub fn new(
        config: &WorkloadConfig,
        half_period: u64,
        region_extent: Scalar,
        window_extent: Scalar,
    ) -> Self {
        assert!(config.dims > 0 && half_period > 0);
        assert!(window_extent <= region_extent && region_extent <= 0.5);
        let mut rng = config.rng();
        let half = region_extent * 0.5;
        let center_a: Vec<Scalar> =
            (0..config.dims).map(|_| rng.gen_range(half..=0.5 - half)).collect();
        let center_b: Vec<Scalar> =
            (0..config.dims).map(|_| rng.gen_range(0.5 + half..=1.0 - half)).collect();
        Self {
            dims: config.dims,
            half_period,
            region_extent,
            window_extent,
            center_a,
            center_b,
            issued: 0,
            flipped: false,
            rng,
        }
    }

    /// Whether region B is currently hot.
    pub fn hot_is_b(&self) -> bool {
        (self.issued / self.half_period).is_multiple_of(2) == self.flipped
    }
}

impl AdaptiveScenario for OscillatingHeat {
    fn dims(&self) -> usize {
        self.dims
    }

    fn next_query(&mut self) -> SpatialQuery {
        let center = if self.hot_is_b() {
            self.center_b.clone()
        } else {
            self.center_a.clone()
        };
        self.issued += 1;
        let spread = self.region_extent - self.window_extent;
        let w = window_near(&mut self.rng, &center, spread, self.window_extent);
        SpatialQuery::intersection(w)
    }

    /// Swaps the hot region immediately (half-cycle phase jump).
    fn shift(&mut self) {
        self.flipped = !self.flipped;
    }

    fn label(&self) -> &'static str {
        "oscillating_heat"
    }
}

impl Iterator for OscillatingHeat {
    type Item = SpatialQuery;

    fn next(&mut self) -> Option<SpatialQuery> {
        Some(self.next_query())
    }
}

/// Mixed query-**kind** traffic over a drifting hotspot: intersection,
/// containment, enclosure and point-enclosing queries drawn 40/20/20/20
/// from a hotspot that relocates every `period` queries. Each kind
/// matches different candidate statistics, so the reorganizer adapts to
/// the blend, not to any single kind.
#[derive(Debug, Clone)]
pub struct MixedTraffic {
    dims: usize,
    period: u64,
    hotspot_extent: Scalar,
    window_extent: Scalar,
    center: Vec<Scalar>,
    issued: u64,
    rng: StdRng,
}

impl MixedTraffic {
    /// Creates the mixed-kind stream: hotspot of extent
    /// `hotspot_extent` relocating every `period` queries.
    pub fn new(
        config: &WorkloadConfig,
        period: u64,
        hotspot_extent: Scalar,
        window_extent: Scalar,
    ) -> Self {
        assert!(config.dims > 0 && period > 0);
        assert!(window_extent <= hotspot_extent && hotspot_extent <= 1.0);
        let mut rng = config.rng();
        let half = hotspot_extent * 0.5;
        let center: Vec<Scalar> =
            (0..config.dims).map(|_| rng.gen_range(half..=1.0 - half)).collect();
        Self {
            dims: config.dims,
            period,
            hotspot_extent,
            window_extent,
            center,
            issued: 0,
            rng,
        }
    }

    fn relocate(&mut self) {
        let half = self.hotspot_extent * 0.5;
        self.center = (0..self.dims)
            .map(|_| self.rng.gen_range(half..=1.0 - half))
            .collect();
    }
}

impl AdaptiveScenario for MixedTraffic {
    fn dims(&self) -> usize {
        self.dims
    }

    fn next_query(&mut self) -> SpatialQuery {
        if self.issued > 0 && self.issued.is_multiple_of(self.period) {
            self.relocate();
        }
        self.issued += 1;
        let spread = self.hotspot_extent - self.window_extent;
        let kind: u32 = self.rng.gen_range(0..10);
        let center = self.center.clone();
        match kind {
            0..=3 => SpatialQuery::intersection(window_near(
                &mut self.rng,
                &center,
                spread,
                self.window_extent,
            )),
            4 | 5 => SpatialQuery::containment(window_near(
                &mut self.rng,
                &center,
                spread,
                // Containment needs a window larger than the objects.
                (self.window_extent * 3.0).min(self.hotspot_extent),
            )),
            6 | 7 => SpatialQuery::enclosure(window_near(
                &mut self.rng,
                &center,
                spread,
                self.window_extent * 0.25,
            )),
            _ => {
                let point: Vec<Scalar> = center
                    .iter()
                    .map(|&c| {
                        let jitter: Scalar = self.rng.gen_range(-spread * 0.5..=spread * 0.5);
                        (c + jitter).clamp(0.0, 1.0)
                    })
                    .collect();
                SpatialQuery::point_enclosing(point)
            }
        }
    }

    /// Relocates the hotspot immediately.
    fn shift(&mut self) {
        self.relocate();
    }

    fn label(&self) -> &'static str {
        "mixed_traffic"
    }
}

impl Iterator for MixedTraffic {
    type Item = SpatialQuery;

    fn next(&mut self) -> Option<SpatialQuery> {
        Some(self.next_query())
    }
}

/// A correlated/clustered object **population**: objects congregate
/// around `n_clusters` random cluster centers (Brisaboa et al.,
/// *Aggregated 2D Range Queries on Clustered Points*), unlike the
/// paper's uniform §7.2 population. Clustered data gives the index
/// dense candidate cells to materialize — the favorable case — while
/// stressing the statistics with heavily imbalanced member counts.
#[derive(Debug, Clone)]
pub struct ClusteredObjects {
    config: WorkloadConfig,
    centers: Vec<Vec<Scalar>>,
    spread: Scalar,
    max_length: Scalar,
}

impl ClusteredObjects {
    /// Creates a population of `config.n_objects` objects around
    /// `n_clusters` centers: object centers deviate at most `spread`
    /// per dimension from their cluster center, interval lengths are
    /// `U(0, max_length)`.
    pub fn new(config: WorkloadConfig, n_clusters: usize, spread: Scalar, max_length: Scalar) -> Self {
        assert!(config.dims > 0 && n_clusters > 0);
        assert!((0.0..=1.0).contains(&spread) && (0.0..=1.0).contains(&max_length));
        // Centers come from a dedicated RNG so `sample_object` streams
        // (seeded by callers) cannot disturb them.
        let mut rng = config.rng();
        let centers = (0..n_clusters)
            .map(|_| (0..config.dims).map(|_| rng.gen_range(0.0f32..=1.0)).collect())
            .collect();
        Self {
            config,
            centers,
            spread,
            max_length,
        }
    }

    /// The workload configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Cluster centers of the population.
    pub fn centers(&self) -> &[Vec<Scalar>] {
        &self.centers
    }

    /// Generates the full database deterministically from the seed.
    pub fn generate_objects(&self) -> Vec<HyperRect> {
        let mut rng = self.config.rng();
        (0..self.config.n_objects)
            .map(|_| self.sample_object(&mut rng))
            .collect()
    }
}

impl Workload for ClusteredObjects {
    fn dims(&self) -> usize {
        self.config.dims
    }

    fn sample_object(&self, rng: &mut StdRng) -> HyperRect {
        let k: usize = rng.gen_range(0..self.centers.len());
        let center = &self.centers[k];
        let mut lo = Vec::with_capacity(self.config.dims);
        let mut hi = Vec::with_capacity(self.config.dims);
        for &c in center {
            let len: Scalar = rng.gen_range(0.0..=self.max_length);
            let offset: Scalar = rng.gen_range(-self.spread..=self.spread);
            let start = (c + offset - len * 0.5).clamp(0.0, 1.0 - len);
            lo.push(start);
            hi.push(start + len);
        }
        HyperRect::from_bounds(&lo, &hi).expect("object bounds are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(dims: usize, seed: u64) -> WorkloadConfig {
        WorkloadConfig::new(dims, 100, seed)
    }

    fn drain(s: &mut dyn AdaptiveScenario, n: usize) -> Vec<SpatialQuery> {
        (0..n).map(|_| s.next_query()).collect()
    }

    #[test]
    fn migrating_hotspot_moves_and_stays_in_domain() {
        let mut s = MigratingHotspot::new(&cfg(3, 1), 0.01, 0.3, 0.05);
        let start = s.center().to_vec();
        for q in drain(&mut s, 200) {
            let SpatialQuery::Intersection(w) = q else { panic!("kind") };
            for iv in w.intervals() {
                assert!(iv.lo() >= 0.0 && iv.hi() <= 1.0 + 1e-6);
            }
        }
        assert_ne!(start, s.center().to_vec(), "hotspot must migrate");
    }

    #[test]
    fn migrating_shift_teleports() {
        let mut s = MigratingHotspot::new(&cfg(2, 2), 0.0, 0.2, 0.05);
        let before = s.center().to_vec();
        s.shift();
        let after = s.center().to_vec();
        for (b, a) in before.iter().zip(&after) {
            assert!((b + a - 1.0).abs() < 0.21, "reflected: {b} vs {a}");
        }
    }

    #[test]
    fn diurnal_heat_oscillates() {
        let s = DiurnalCycle::new(&cfg(2, 3), 100, 0.3, 0.05);
        assert!(s.heat_b(0) < 0.01);
        assert!(s.heat_b(50) > 0.99);
        let mut s = s;
        s.shift(); // phase + half period: heat flips
        assert!(s.heat_b(0) > 0.99);
    }

    #[test]
    fn flash_crowd_alternates_states() {
        let mut s = FlashCrowd::new(&cfg(2, 4), 50, 20, 0.2, 0.05);
        assert!(!s.in_spike());
        drain(&mut s, 55);
        assert!(s.in_spike());
        drain(&mut s, 25);
        assert!(!s.in_spike());
        s.shift();
        assert!(s.in_spike());
    }

    #[test]
    fn oscillator_swaps_regions_on_schedule_and_shift() {
        let mut s = OscillatingHeat::new(&cfg(2, 5), 10, 0.2, 0.05);
        let hot0 = s.hot_is_b();
        drain(&mut s, 10);
        assert_ne!(hot0, s.hot_is_b(), "half period elapsed");
        s.shift();
        assert_eq!(hot0, s.hot_is_b(), "shift flips back");
    }

    #[test]
    fn oscillator_regions_are_disjoint() {
        let s = OscillatingHeat::new(&cfg(4, 6), 10, 0.3, 0.05);
        for (a, b) in s.center_a.iter().zip(&s.center_b) {
            assert!(a + 0.15 <= *b, "regions overlap: {a} vs {b}");
        }
    }

    #[test]
    fn mixed_traffic_emits_all_kinds() {
        let mut s = MixedTraffic::new(&cfg(3, 7), 1000, 0.4, 0.1);
        let mut kinds = [false; 4];
        for q in drain(&mut s, 200) {
            match q {
                SpatialQuery::Intersection(_) => kinds[0] = true,
                SpatialQuery::Containment(_) => kinds[1] = true,
                SpatialQuery::Enclosure(_) => kinds[2] = true,
                SpatialQuery::PointEnclosing(_) => kinds[3] = true,
            }
        }
        assert!(kinds.iter().all(|&k| k), "kinds seen: {kinds:?}");
    }

    #[test]
    fn clustered_objects_congregate() {
        let w = ClusteredObjects::new(WorkloadConfig::new(2, 2000, 8), 4, 0.05, 0.02);
        let objects = w.generate_objects();
        assert_eq!(objects.len(), 2000);
        // Every object center sits within spread + max length of some
        // cluster center.
        for o in &objects {
            let near = w.centers().iter().any(|c| {
                o.intervals()
                    .iter()
                    .zip(c)
                    .all(|(iv, &cc)| (iv.center() - cc).abs() <= 0.05 + 0.02 + 1e-5)
            });
            assert!(near, "object far from all centers");
        }
    }

    #[test]
    fn scenarios_are_deterministic() {
        let qs1 = drain(&mut MigratingHotspot::new(&cfg(3, 42), 0.01, 0.3, 0.05), 64);
        let qs2 = drain(&mut MigratingHotspot::new(&cfg(3, 42), 0.01, 0.3, 0.05), 64);
        assert_eq!(qs1, qs2);
        let qs3 = drain(&mut MigratingHotspot::new(&cfg(3, 43), 0.01, 0.3, 0.05), 64);
        assert_ne!(qs1, qs3);
    }

    #[test]
    fn iterator_adapters_stream() {
        let qs: Vec<SpatialQuery> =
            DiurnalCycle::new(&cfg(2, 9), 50, 0.3, 0.05).take(10).collect();
        assert_eq!(qs.len(), 10);
    }
}
