//! Selectivity calibration (paper §7.2: "minimal/maximal interval sizes
//! are enforced in order to control the query selectivity").
//!
//! Because every generator treats dimensions independently, the average
//! selectivity of an intersection query factorizes into a product of
//! per-dimension match probabilities. The solvers below estimate those
//! probabilities by Monte-Carlo sampling and bisect the free parameter
//! (query extent, or object base length) until the product hits the
//! target.

use acx_geom::Scalar;
use rand::rngs::StdRng;
use rand::Rng;

use crate::{UniformWorkload, Workload};

/// Samples used per probability estimate.
const SAMPLES: usize = 20_000;
/// Bisection iterations (≈ 1e-7 resolution on [0, 1]).
const ITERATIONS: usize = 40;

/// Estimates the probability that a uniform-workload object interval
/// intersects a query interval of length `extent` with uniform position.
fn uniform_dim_match_probability(
    rng: &mut StdRng,
    max_object_length: Scalar,
    extent: Scalar,
) -> f64 {
    let mut hits = 0usize;
    for _ in 0..SAMPLES {
        let len: Scalar = rng.gen_range(0.0..=max_object_length);
        let a: Scalar = rng.gen_range(0.0..=1.0 - len);
        let b = a + len;
        let q_lo: Scalar = rng.gen_range(0.0..=1.0 - extent);
        let q_hi = q_lo + extent;
        if a <= q_hi && b >= q_lo {
            hits += 1;
        }
    }
    hits as f64 / SAMPLES as f64
}

/// Chooses the per-dimension extent of intersection-query windows over a
/// [`UniformWorkload`] so the average query selectivity is `target`.
///
/// Returns the extent in `[0, 1]`. Targets outside the achievable range
/// are clamped to the closest endpoint (extent 0 or 1).
pub fn uniform_query_extent(workload: &UniformWorkload, target: f64, seed: u64) -> Scalar {
    assert!(target > 0.0 && target < 1.0, "target must be in (0, 1)");
    let dims = workload.dims() as f64;
    // Per-dimension probability needed for the product to reach `target`.
    let per_dim = target.powf(1.0 / dims);
    let max_len = {
        // Recover max object length from a sample (cheap, avoids a getter
        // leaking generator internals): lengths are U(0, max), so the
        // maximum of a large sample is a tight estimate.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
        let mut max = 0.0f32;
        for _ in 0..4096 {
            let len = workload
                .sample_object(&mut rng)
                .interval(0)
                .length();
            max = max.max(len);
        }
        max
    };
    let mut lo = 0.0f32;
    let mut hi = 1.0f32;
    for i in 0..ITERATIONS {
        let mid = 0.5 * (lo + hi);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64));
        let p = uniform_dim_match_probability(&mut rng, max_len, mid);
        if p < per_dim {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

use rand::SeedableRng;

/// Estimates the probability that an object interval of length
/// `U(0, object_length)` intersects an unconstrained query interval
/// (ordered pair of uniforms).
fn skewed_dim_match_probability(rng: &mut StdRng, object_length: Scalar) -> f64 {
    let mut hits = 0usize;
    for _ in 0..SAMPLES {
        let len: Scalar = rng.gen_range(0.0..=object_length);
        let a: Scalar = rng.gen_range(0.0..=1.0 - len);
        let b = a + len;
        let x: Scalar = rng.gen_range(0.0..=1.0);
        let y: Scalar = rng.gen_range(0.0..=1.0);
        let (q_lo, q_hi) = if x <= y { (x, y) } else { (y, x) };
        if a <= q_hi && b >= q_lo {
            hits += 1;
        }
    }
    hits as f64 / SAMPLES as f64
}

/// Chooses the base object-interval length of a
/// [`SkewedWorkload`](crate::SkewedWorkload) so
/// that unconstrained query objects have average selectivity `target`
/// (the paper controls the Fig. 8 experiment at 0.05 %).
///
/// The skew makes a quarter of the dimensions use `base / 2`; the joint
/// selectivity is `p(base/2)^(Nd/4) · p(base)^(3·Nd/4)`.
pub fn skewed_base_length(dims: usize, target: f64, seed: u64) -> Scalar {
    assert!(target > 0.0 && target < 1.0, "target must be in (0, 1)");
    assert!(dims > 0);
    let quarter = (dims / 4).max(1);
    let rest = dims - quarter;
    let mut lo = 0.0f32;
    let mut hi = 1.0f32;
    for i in 0..ITERATIONS {
        let mid = 0.5 * (lo + hi);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64));
        let p_half = skewed_dim_match_probability(&mut rng, mid * 0.5);
        let p_full = skewed_dim_match_probability(&mut rng, mid);
        let joint = p_half.powi(quarter as i32) * p_full.powi(rest as i32);
        if joint < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Measures the empirical selectivity of intersection windows of the
/// given extent against a sample of workload objects — used by tests and
/// the experiment harness to validate a calibration.
pub fn measure_selectivity<W: Workload>(
    workload: &W,
    extent: Scalar,
    objects: usize,
    queries: usize,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let sample: Vec<_> = (0..objects)
        .map(|_| workload.sample_object(&mut rng))
        .collect();
    let mut matched = 0u64;
    for _ in 0..queries {
        let window = workload.sample_window(&mut rng, extent);
        matched += sample.iter().filter(|o| o.intersects(&window)).count() as u64;
    }
    matched as f64 / (objects as u64 * queries as u64) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SkewedWorkload, WorkloadConfig};

    #[test]
    fn uniform_calibration_hits_moderate_target() {
        let config = WorkloadConfig::new(8, 1000, 42);
        let w = UniformWorkload::with_max_length(config, 0.3);
        let target = 0.01;
        let extent = uniform_query_extent(&w, target, 7);
        let measured = measure_selectivity(&w, extent, 2000, 50, 3);
        assert!(
            measured > target * 0.5 && measured < target * 2.0,
            "target {target}, measured {measured}, extent {extent}"
        );
    }

    #[test]
    fn uniform_calibration_monotone_in_target() {
        let config = WorkloadConfig::new(6, 1000, 11);
        let w = UniformWorkload::with_max_length(config, 0.4);
        let e_small = uniform_query_extent(&w, 1e-4, 5);
        let e_large = uniform_query_extent(&w, 0.05, 5);
        assert!(
            e_small < e_large,
            "more selective target needs smaller windows: {e_small} vs {e_large}"
        );
    }

    #[test]
    fn skewed_calibration_hits_paper_target() {
        // The Fig. 8 experiment: selectivity 0.05 % at 16 dimensions.
        let dims = 16;
        let target = 5e-4;
        let base = skewed_base_length(dims, target, 9);
        assert!(base > 0.0 && base < 1.0);
        // Validate against an actual skewed workload with unconstrained
        // queries.
        let w = SkewedWorkload::new(WorkloadConfig::new(dims, 1, 1), base);
        let mut rng = StdRng::seed_from_u64(33);
        let objects: Vec<_> = (0..4000).map(|_| w.sample_object(&mut rng)).collect();
        let mut matched = 0u64;
        let queries = 300;
        for _ in 0..queries {
            let win = w.sample_unconstrained_window(&mut rng);
            matched += objects.iter().filter(|o| o.intersects(&win)).count() as u64;
        }
        let measured = matched as f64 / (4000.0 * queries as f64);
        assert!(
            measured > target * 0.3 && measured < target * 3.0,
            "target {target}, measured {measured}, base {base}"
        );
    }

    #[test]
    fn skewed_base_length_grows_with_dimensionality() {
        // More dimensions → each must be less restrictive for the same
        // joint selectivity → larger base length.
        let b16 = skewed_base_length(16, 5e-4, 1);
        let b40 = skewed_base_length(40, 5e-4, 1);
        assert!(b40 > b16, "{b16} vs {b40}");
    }

    #[test]
    #[should_panic(expected = "target must be in (0, 1)")]
    fn rejects_degenerate_target() {
        let w = UniformWorkload::new(WorkloadConfig::new(2, 10, 1));
        uniform_query_extent(&w, 0.0, 1);
    }
}
