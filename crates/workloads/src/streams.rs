use acx_geom::{HyperRect, Scalar};
use rand::rngs::StdRng;
use rand::Rng;

/// A query stream whose focus region ("hotspot") jumps to a new random
/// location every `period` queries.
///
/// The paper motivates adaptivity with "workloads that are skewed and
/// varying in time" (§8); this stream exercises exactly that: after a
/// shift, clusters tailored to the old hotspot lose their access-
/// probability advantage and the merging benefit function reclaims them.
#[derive(Debug, Clone)]
pub struct ShiftingHotspot {
    dims: usize,
    period: u64,
    hotspot_extent: Scalar,
    window_extent: Scalar,
    issued: u64,
    center: Vec<Scalar>,
    shifts: u64,
}

impl ShiftingHotspot {
    /// Creates a stream over `dims` dimensions: queries are windows of
    /// per-dimension extent `window_extent`, drawn inside a hotspot of
    /// extent `hotspot_extent` that relocates every `period` queries.
    pub fn new(
        dims: usize,
        period: u64,
        hotspot_extent: Scalar,
        window_extent: Scalar,
        rng: &mut StdRng,
    ) -> Self {
        assert!(dims > 0 && period > 0);
        assert!(window_extent <= hotspot_extent && hotspot_extent <= 1.0);
        let center = Self::random_center(dims, hotspot_extent, rng);
        Self {
            dims,
            period,
            hotspot_extent,
            window_extent,
            issued: 0,
            center,
            shifts: 0,
        }
    }

    fn random_center(dims: usize, extent: Scalar, rng: &mut StdRng) -> Vec<Scalar> {
        (0..dims)
            .map(|_| rng.gen_range(extent * 0.5..=1.0 - extent * 0.5))
            .collect()
    }

    /// Number of hotspot relocations so far.
    pub fn shifts(&self) -> u64 {
        self.shifts
    }

    /// Current hotspot center.
    pub fn center(&self) -> &[Scalar] {
        &self.center
    }

    /// Draws the next query window, relocating the hotspot when the
    /// period elapses.
    pub fn next_window(&mut self, rng: &mut StdRng) -> HyperRect {
        if self.issued > 0 && self.issued.is_multiple_of(self.period) {
            self.center = Self::random_center(self.dims, self.hotspot_extent, rng);
            self.shifts += 1;
        }
        self.issued += 1;
        let mut lo = Vec::with_capacity(self.dims);
        let mut hi = Vec::with_capacity(self.dims);
        for d in 0..self.dims {
            let span = self.hotspot_extent - self.window_extent;
            let offset: Scalar = rng.gen_range(-span * 0.5..=span * 0.5);
            let start = (self.center[d] + offset - self.window_extent * 0.5)
                .clamp(0.0, 1.0 - self.window_extent);
            lo.push(start);
            hi.push(start + self.window_extent);
        }
        HyperRect::from_bounds(&lo, &hi).expect("window bounds are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn hotspot_shifts_on_schedule() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = ShiftingHotspot::new(3, 10, 0.3, 0.05, &mut rng);
        for _ in 0..35 {
            s.next_window(&mut rng);
        }
        assert_eq!(s.shifts(), 3);
    }

    #[test]
    fn windows_stay_near_center_between_shifts() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = ShiftingHotspot::new(2, 1000, 0.2, 0.02, &mut rng);
        let center = s.center().to_vec();
        for _ in 0..200 {
            let w = s.next_window(&mut rng);
            for (d, iv) in w.intervals().iter().enumerate() {
                assert!(
                    (iv.center() - center[d]).abs() <= 0.2,
                    "window strayed from hotspot"
                );
            }
        }
    }

    #[test]
    fn windows_have_requested_extent_and_stay_in_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = ShiftingHotspot::new(4, 5, 0.5, 0.1, &mut rng);
        for _ in 0..50 {
            let w = s.next_window(&mut rng);
            for iv in w.intervals() {
                assert!((iv.length() - 0.1).abs() < 1e-5);
                assert!(iv.lo() >= 0.0 && iv.hi() <= 1.0 + 1e-6);
            }
        }
    }

    #[test]
    fn centers_differ_after_shift() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut s = ShiftingHotspot::new(3, 5, 0.3, 0.05, &mut rng);
        let before = s.center().to_vec();
        for _ in 0..6 {
            s.next_window(&mut rng);
        }
        assert_ne!(before, s.center().to_vec());
    }
}
