/// Where the cluster members live (paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StorageScenario {
    /// The database fits in main memory; clusters are contiguous in RAM.
    #[default]
    Memory,
    /// Cluster members are on external storage; signatures and statistics
    /// stay in memory, exploring a cluster pays a random access.
    Disk,
}

impl std::fmt::Display for StorageScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageScenario::Memory => f.write_str("memory"),
            StorageScenario::Disk => f.write_str("disk"),
        }
    }
}

/// I/O and CPU cost constants of the execution platform.
///
/// Defaults reproduce the paper's Table 2 (a 2004 SCSI disk and a
/// Pentium III 650 MHz):
///
/// | quantity | value |
/// |---|---|
/// | disk access time | 15 ms |
/// | disk transfer rate | 20 MiB/s → 4.77·10⁻⁵ ms/byte |
/// | object verification rate | 300 MiB/s → 3.18·10⁻⁶ ms/byte |
/// | cluster signature check | 5·10⁻⁷ ms |
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Time to position the disk head at the start of a cluster (ms).
    pub seek_ms: f64,
    /// Time to transfer one byte from disk to memory (ms).
    pub transfer_ms_per_byte: f64,
    /// Time to verify one byte of object data against a selection (ms).
    pub verify_ms_per_byte: f64,
    /// Time to check one cluster signature (ms) — the model's `A`.
    pub signature_check_ms: f64,
    /// CPU time to prepare a cluster exploration: function call, scan
    /// initialization, and statistics update (ms). Part of the model's `B`;
    /// the paper does not tabulate it, we default to 1 µs.
    pub exploration_setup_ms: f64,
}

const MIB: f64 = 1024.0 * 1024.0;

impl DeviceProfile {
    /// The paper's reference platform (Table 2).
    pub fn edbt2004() -> Self {
        DeviceProfile {
            seek_ms: 15.0,
            transfer_ms_per_byte: 1000.0 / (20.0 * MIB),
            verify_ms_per_byte: 1000.0 / (300.0 * MIB),
            signature_check_ms: 5e-7,
            exploration_setup_ms: 1e-3,
        }
    }

    /// A profile resembling commodity NVMe hardware (for ablations):
    /// 100 µs access, 2 GiB/s transfer, 4 GiB/s verification.
    pub fn modern_nvme() -> Self {
        DeviceProfile {
            seek_ms: 0.1,
            transfer_ms_per_byte: 1000.0 / (2048.0 * MIB),
            verify_ms_per_byte: 1000.0 / (4096.0 * MIB),
            signature_check_ms: 5e-8,
            exploration_setup_ms: 1e-4,
        }
    }

    /// Disk transfer rate in MiB/s implied by this profile.
    pub fn transfer_rate_mib_s(&self) -> f64 {
        1000.0 / (self.transfer_ms_per_byte * MIB)
    }

    /// Verification rate in MiB/s implied by this profile.
    pub fn verify_rate_mib_s(&self) -> f64 {
        1000.0 / (self.verify_ms_per_byte * MIB)
    }
}

impl Default for DeviceProfile {
    fn default() -> Self {
        Self::edbt2004()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edbt2004_matches_table_2() {
        let p = DeviceProfile::edbt2004();
        assert_eq!(p.seek_ms, 15.0);
        // Table 2: transfer time per byte = 4.77e-5 ms.
        assert!((p.transfer_ms_per_byte - 4.77e-5).abs() < 1e-7);
        // Table 2: verification time per byte = 3.18e-6 ms.
        assert!((p.verify_ms_per_byte - 3.18e-6).abs() < 1e-8);
        assert_eq!(p.signature_check_ms, 5e-7);
    }

    #[test]
    fn rates_roundtrip() {
        let p = DeviceProfile::edbt2004();
        assert!((p.transfer_rate_mib_s() - 20.0).abs() < 0.01);
        assert!((p.verify_rate_mib_s() - 300.0).abs() < 0.1);
    }

    #[test]
    fn modern_profile_is_faster_everywhere() {
        let old = DeviceProfile::edbt2004();
        let new = DeviceProfile::modern_nvme();
        assert!(new.seek_ms < old.seek_ms);
        assert!(new.transfer_ms_per_byte < old.transfer_ms_per_byte);
        assert!(new.verify_ms_per_byte < old.verify_ms_per_byte);
    }

    #[test]
    fn scenario_display_and_default() {
        assert_eq!(StorageScenario::Memory.to_string(), "memory");
        assert_eq!(StorageScenario::Disk.to_string(), "disk");
        assert_eq!(StorageScenario::default(), StorageScenario::Memory);
    }
}
