//! Write-ahead log of structural index mutations (ROADMAP direction 2:
//! the step from "fast in-memory library" to "database").
//!
//! The log is append-only and self-describing: a 20-byte header
//! (`magic "ACXW"`, `version u32`, `dims u32`, `checkpoint_id u64`)
//! followed by frames
//!
//! ```text
//! [payload_len u32][crc32 u32][payload payload_len bytes]
//! ```
//!
//! where the CRC-32 (IEEE) covers the payload. Every structural
//! mutation of the index is one frame: `Insert`/`Remove`/`Update`
//! carry object id and flat coordinates, `Merge`/`Materialize` name
//! the affected cluster by its serialized **signature** (slot numbers
//! are not stable across a replay, signatures are), and `EpochClose`
//! marks the end of a reorganization pass so replay closes the
//! statistics epoch exactly where the live index did.
//!
//! Replay ([`Wal::replay`]) walks frames until the first one that is
//! incomplete, oversized, or fails its checksum — everything from that
//! offset on is a **torn tail** ([`TornTail`]) and is truncated by
//! recovery. A record that survives its CRC is trusted; a record that
//! does not marks the end of history.
//!
//! Durability is mediated by the [`BackingStore`] trait: [`FileBacking`]
//! writes a real file (`flush` = `fsync`), [`MemBacking`] keeps bytes in
//! memory for tests and benches, and [`FaultInjector`] wraps the same
//! contract around a deterministic fault schedule ([`FaultPlan`]) —
//! torn writes, short reads, `ENOSPC`, flush failures, and
//! crash-after-N-ops — so every failure mode is a reproducible test
//! case. The [`FlushPolicy`] decides how often appended frames are made
//! durable: per record, per batch of N records, or only at epoch-close
//! markers.
//!
//! The header's **checkpoint id** couples the log to the checkpoint
//! that last truncated it: [`Wal::reset_to`] stamps the id of the
//! checkpoint whose save superseded the log's records. Recovery
//! compares the stamp against the loaded checkpoint's id and discards
//! a log whose records the checkpoint already absorbed — the crash
//! window between "checkpoint written" and "log truncated" replays
//! nothing instead of double-applying history.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use acx_geom::Scalar;

use crate::crc::crc32;

const WAL_MAGIC: &[u8; 4] = b"ACXW";
/// Version 2 added the checkpoint id to the header.
const WAL_VERSION: u32 = 2;
/// Header bytes: magic + version + dims + checkpoint id.
pub const WAL_HEADER_LEN: u64 = 20;
/// Frames longer than this are treated as torn garbage, not allocated.
const MAX_FRAME: u32 = 1 << 24;

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// One logged structural mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Object inserted; coordinates are `2·dims` scalars (lo then hi
    /// per dimension, interleaved as the index stores them).
    Insert { id: u32, coords: Vec<Scalar> },
    /// Object removed.
    Remove { id: u32 },
    /// Object re-described in place (logically remove + insert).
    Update { id: u32, coords: Vec<Scalar> },
    /// Cluster with this serialized signature merged into its parent.
    Merge { signature: Vec<u8> },
    /// Candidate `candidate` of the cluster with this serialized
    /// signature materialized as a child. The candidate index is stable
    /// because candidate generation is a pure function of the
    /// signature.
    Materialize { signature: Vec<u8>, candidate: u32 },
    /// A reorganization pass finished: replay closes the statistics
    /// epoch here exactly as the live index did.
    EpochClose,
}

const TAG_INSERT: u8 = 1;
const TAG_REMOVE: u8 = 2;
const TAG_UPDATE: u8 = 3;
const TAG_MERGE: u8 = 4;
const TAG_MATERIALIZE: u8 = 5;
const TAG_EPOCH_CLOSE: u8 = 6;

impl WalRecord {
    /// Serializes the record payload (without framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Insert { id, coords } => {
                out.push(TAG_INSERT);
                encode_id_coords(&mut out, *id, coords);
            }
            WalRecord::Remove { id } => {
                out.push(TAG_REMOVE);
                out.extend_from_slice(&id.to_le_bytes());
            }
            WalRecord::Update { id, coords } => {
                out.push(TAG_UPDATE);
                encode_id_coords(&mut out, *id, coords);
            }
            WalRecord::Merge { signature } => {
                out.push(TAG_MERGE);
                encode_bytes(&mut out, signature);
            }
            WalRecord::Materialize {
                signature,
                candidate,
            } => {
                out.push(TAG_MATERIALIZE);
                encode_bytes(&mut out, signature);
                out.extend_from_slice(&candidate.to_le_bytes());
            }
            WalRecord::EpochClose => out.push(TAG_EPOCH_CLOSE),
        }
        out
    }

    /// Parses a record payload. `None` means the payload is malformed
    /// (unknown tag, short buffer, trailing bytes) — replay treats that
    /// exactly like a failed checksum.
    pub fn decode(payload: &[u8]) -> Option<WalRecord> {
        let (&tag, mut rest) = payload.split_first()?;
        let rec = match tag {
            TAG_INSERT => {
                let (id, coords) = decode_id_coords(&mut rest)?;
                WalRecord::Insert { id, coords }
            }
            TAG_REMOVE => WalRecord::Remove {
                id: take_u32(&mut rest)?,
            },
            TAG_UPDATE => {
                let (id, coords) = decode_id_coords(&mut rest)?;
                WalRecord::Update { id, coords }
            }
            TAG_MERGE => WalRecord::Merge {
                signature: take_bytes(&mut rest)?,
            },
            TAG_MATERIALIZE => {
                let signature = take_bytes(&mut rest)?;
                let candidate = take_u32(&mut rest)?;
                WalRecord::Materialize {
                    signature,
                    candidate,
                }
            }
            TAG_EPOCH_CLOSE => WalRecord::EpochClose,
            _ => return None,
        };
        rest.is_empty().then_some(rec)
    }
}

fn encode_id_coords(out: &mut Vec<u8>, id: u32, coords: &[Scalar]) {
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&(coords.len() as u32).to_le_bytes());
    for v in coords {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn encode_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn take_u32(rest: &mut &[u8]) -> Option<u32> {
    let (head, tail) = rest.split_first_chunk::<4>()?;
    *rest = tail;
    Some(u32::from_le_bytes(*head))
}

fn take_bytes(rest: &mut &[u8]) -> Option<Vec<u8>> {
    let len = take_u32(rest)? as usize;
    if rest.len() < len {
        return None;
    }
    let (head, tail) = rest.split_at(len);
    let out = head.to_vec();
    *rest = tail;
    Some(out)
}

fn decode_id_coords(rest: &mut &[u8]) -> Option<(u32, Vec<Scalar>)> {
    let id = take_u32(rest)?;
    let n = take_u32(rest)? as usize;
    if rest.len() < n * 4 {
        return None;
    }
    let mut coords = Vec::with_capacity(n);
    for _ in 0..n {
        let (head, tail) = rest.split_first_chunk::<4>()?;
        *rest = tail;
        coords.push(Scalar::from_le_bytes(*head));
    }
    Some((id, coords))
}

// ---------------------------------------------------------------------------
// Flush policy
// ---------------------------------------------------------------------------

/// How often appended records are made durable (`fsync` frequency).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Flush after every record — maximum durability, one sync per
    /// mutation.
    #[default]
    PerRecord,
    /// Flush after every N records (and at every epoch-close marker).
    PerBatch(u32),
    /// Flush only at epoch-close markers: a crash may lose the open
    /// epoch's mutations, never a closed one.
    PerEpoch,
}

impl std::fmt::Display for FlushPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlushPolicy::PerRecord => write!(f, "record"),
            FlushPolicy::PerBatch(n) => write!(f, "batch:{n}"),
            FlushPolicy::PerEpoch => write!(f, "epoch"),
        }
    }
}

impl std::str::FromStr for FlushPolicy {
    type Err = String;

    /// Accepts `record`, `epoch`, `batch` (N = 64), or `batch:N`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "record" | "per-record" => Ok(FlushPolicy::PerRecord),
            "epoch" | "per-epoch" => Ok(FlushPolicy::PerEpoch),
            "batch" => Ok(FlushPolicy::PerBatch(64)),
            other => match other.strip_prefix("batch:") {
                Some(n) => match n.parse::<u32>() {
                    Ok(n) if n > 0 => Ok(FlushPolicy::PerBatch(n)),
                    _ => Err(format!("invalid batch size {n:?} (want batch:N, N ≥ 1)")),
                },
                None => Err(format!(
                    "unknown flush policy {other:?} (expected record, batch[:N], or epoch)"
                )),
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Backing stores
// ---------------------------------------------------------------------------

/// The durable medium under a [`Wal`]: an append-only byte device with
/// an explicit durability barrier.
///
/// Contract: `append` stages bytes at the tail (they are readable
/// immediately but survive a crash only once `flush` returns `Ok`);
/// `read_durable` returns the full current image for replay;
/// `truncate` discards everything past `len` bytes (recovery uses it to
/// repair a torn tail).
pub trait BackingStore: std::fmt::Debug + Send + Sync {
    /// Appends bytes at the end of the log.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Durability barrier: everything appended so far survives a crash.
    fn flush(&mut self) -> io::Result<()>;
    /// Reads the entire current log image (for replay).
    fn read_durable(&mut self) -> io::Result<Vec<u8>>;
    /// Discards everything past `len` bytes.
    fn truncate(&mut self, len: u64) -> io::Result<()>;
    /// Concrete-type access, so tests and diagnostics can reach
    /// implementation-specific counters behind a `Box<dyn BackingStore>`.
    fn as_any(&self) -> &dyn std::any::Any;
}

/// File-backed log; `flush` is `File::sync_data`.
#[derive(Debug)]
pub struct FileBacking {
    file: File,
}

impl FileBacking {
    /// Creates (or truncates) the log file at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileBacking { file })
    }

    /// Opens an existing log file (creating an empty one if missing),
    /// preserving its contents — the recovery entry point.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(FileBacking { file })
    }
}

impl BackingStore for FileBacking {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(bytes)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn read_durable(&mut self) -> io::Result<Vec<u8>> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut out = Vec::new();
        self.file.read_to_end(&mut out)?;
        Ok(out)
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// In-memory log for tests and benches; never fails, counts flushes.
#[derive(Debug, Default)]
pub struct MemBacking {
    bytes: Vec<u8>,
    flushes: u64,
}

impl MemBacking {
    /// An empty in-memory log.
    pub fn new() -> Self {
        Self::default()
    }

    /// A log pre-seeded with `bytes` — e.g. the surviving image of a
    /// crashed [`FaultInjector`], carried over to a "rebooted" medium.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        MemBacking { bytes, flushes: 0 }
    }

    /// The current log image.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// How many durability barriers were requested.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }
}

impl BackingStore for MemBacking {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.bytes.extend_from_slice(bytes);
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.flushes += 1;
        Ok(())
    }

    fn read_durable(&mut self) -> io::Result<Vec<u8>> {
        Ok(self.bytes.clone())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.bytes.truncate(len as usize);
        Ok(())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// One scheduled failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// The append persists only `keep` bytes of the record (everything
    /// staged before it is persisted whole), then the medium crashes —
    /// the classic torn tail.
    TornWrite { keep: usize },
    /// The append fails with [`io::ErrorKind::StorageFull`]; nothing is
    /// written and the medium stays alive.
    Enospc,
    /// The flush fails and the staged (unflushed) bytes are lost.
    FlushFail,
    /// The medium crashes: the operation fails and every staged byte is
    /// discarded.
    Crash,
}

/// A deterministic fault schedule: faults fire at fixed 1-based append
/// or flush ordinals, so a failing case replays exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    on_append: Vec<(u64, Fault)>,
    on_flush: Vec<(u64, Fault)>,
    short_read: u64,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Crash on append `n + 1` — the first `n` appends succeed.
    pub fn crash_after_appends(n: u64) -> Self {
        FaultPlan::none().and_append_fault(n + 1, Fault::Crash)
    }

    /// Tear append `n`: persist `keep` bytes of it, then crash.
    pub fn torn_write_at(n: u64, keep: usize) -> Self {
        FaultPlan::none().and_append_fault(n, Fault::TornWrite { keep })
    }

    /// Fail append `n` with `ENOSPC` (medium stays alive).
    pub fn enospc_at(n: u64) -> Self {
        FaultPlan::none().and_append_fault(n, Fault::Enospc)
    }

    /// Fail flush `n`, losing the staged bytes.
    pub fn flush_fail_at(n: u64) -> Self {
        FaultPlan::none().and_flush_fault(n, Fault::FlushFail)
    }

    /// Adds an append-ordinal fault to the schedule.
    pub fn and_append_fault(mut self, ordinal: u64, fault: Fault) -> Self {
        self.on_append.push((ordinal, fault));
        self
    }

    /// Adds a flush-ordinal fault to the schedule.
    pub fn and_flush_fault(mut self, ordinal: u64, fault: Fault) -> Self {
        self.on_flush.push((ordinal, fault));
        self
    }

    /// Drop this many tail bytes from every `read_durable` — a short
    /// read of the recovery image.
    pub fn with_short_read(mut self, bytes: u64) -> Self {
        self.short_read = bytes;
        self
    }

    /// Derives a schedule from a seed (splitmix64): one primary fault
    /// at a pseudo-random ordinal, sometimes compounded with a short
    /// read. Same seed, same schedule — every randomized failure is a
    /// reproducible test case.
    pub fn seeded(seed: u64) -> Self {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let ordinal = 1 + next() % 24;
        let plan = match next() % 4 {
            0 => FaultPlan::torn_write_at(ordinal, (next() % 48) as usize),
            1 => FaultPlan::crash_after_appends(ordinal),
            2 => FaultPlan::enospc_at(ordinal),
            _ => FaultPlan::flush_fail_at(1 + next() % 4),
        };
        if next() % 3 == 0 {
            plan.with_short_read(next() % 9)
        } else {
            plan
        }
    }

    fn fault_at(schedule: &[(u64, Fault)], ordinal: u64) -> Option<Fault> {
        schedule
            .iter()
            .find(|(at, _)| *at == ordinal)
            .map(|(_, f)| f.clone())
    }
}

/// A [`BackingStore`] that models a volatile write buffer over an
/// ordered durable medium and fails on a [`FaultPlan`] schedule.
///
/// `append` stages bytes; `flush` persists everything staged; a crash
/// (scheduled, or the tail of a torn write) discards staged bytes so
/// the surviving image is exactly what a real machine would find after
/// reboot. `truncate` models the post-reboot repair and revives a
/// crashed medium.
#[derive(Debug)]
pub struct FaultInjector {
    appended: Vec<u8>,
    persisted: usize,
    plan: FaultPlan,
    appends: u64,
    flushes: u64,
    crashed: bool,
}

impl FaultInjector {
    /// A fresh medium driven by `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            appended: Vec::new(),
            persisted: 0,
            plan,
            appends: 0,
            flushes: 0,
            crashed: false,
        }
    }

    /// The bytes that survive a crash right now: everything persisted,
    /// plus — while the medium is alive — everything staged.
    pub fn surviving(&self) -> &[u8] {
        if self.crashed {
            &self.appended[..self.persisted]
        } else {
            &self.appended
        }
    }

    /// Whether the medium has crashed.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Appends attempted so far.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Flushes attempted so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    fn crash(&mut self) {
        self.crashed = true;
        self.appended.truncate(self.persisted);
    }
}

impl BackingStore for FaultInjector {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        if self.crashed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "medium crashed"));
        }
        self.appends += 1;
        match FaultPlan::fault_at(&self.plan.on_append, self.appends) {
            None => {
                self.appended.extend_from_slice(bytes);
                Ok(())
            }
            Some(Fault::TornWrite { keep }) => {
                // Everything staged before the torn record reaches the
                // medium whole; the record itself tears mid-frame.
                self.appended
                    .extend_from_slice(&bytes[..keep.min(bytes.len())]);
                self.persisted = self.appended.len();
                self.crashed = true;
                Err(io::Error::new(io::ErrorKind::WriteZero, "torn write"))
            }
            Some(Fault::Enospc) => Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "no space left on device",
            )),
            Some(Fault::FlushFail) | Some(Fault::Crash) => {
                self.crash();
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "simulated crash"))
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.crashed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "medium crashed"));
        }
        self.flushes += 1;
        match FaultPlan::fault_at(&self.plan.on_flush, self.flushes) {
            None => {
                self.persisted = self.appended.len();
                Ok(())
            }
            Some(Fault::FlushFail) => {
                self.appended.truncate(self.persisted);
                Err(io::Error::other("flush failed; staged bytes lost"))
            }
            Some(_) => {
                self.crash();
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "simulated crash"))
            }
        }
    }

    fn read_durable(&mut self) -> io::Result<Vec<u8>> {
        let image = self.surviving();
        let keep = image.len().saturating_sub(self.plan.short_read as usize);
        Ok(image[..keep].to_vec())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.appended.truncate(len as usize);
        self.persisted = self.persisted.min(self.appended.len());
        // Post-reboot repair: the medium is usable again.
        self.crashed = false;
        Ok(())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// WAL failures, with enough fault context (operation, byte offset,
/// record ordinal) to locate the damage.
#[derive(Debug)]
pub enum WalError {
    /// The medium failed during `op` at byte `offset`.
    Io {
        op: &'static str,
        offset: u64,
        source: io::Error,
    },
    /// The log is structurally damaged before any torn tail could be
    /// identified (e.g. bad magic).
    Corrupt {
        offset: u64,
        record: u64,
        reason: String,
    },
    /// The log was written by an unknown format version.
    UnsupportedVersion(u32),
    /// The log's dimensionality does not match the index it is replayed
    /// into.
    DimensionMismatch { expected: usize, actual: usize },
    /// A previous append or flush failed; the log refuses further
    /// appends until it is reset (durability cannot be silently
    /// re-promised over a hole).
    Poisoned,
}

impl WalError {
    /// The underlying [`io::ErrorKind`], when the failure came from the
    /// medium.
    pub fn io_kind(&self) -> Option<io::ErrorKind> {
        match self {
            WalError::Io { source, .. } => Some(source.kind()),
            _ => None,
        }
    }
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io { op, offset, source } => {
                write!(f, "wal {op} failed at byte {offset}: {source}")
            }
            WalError::Corrupt {
                offset,
                record,
                reason,
            } => {
                write!(
                    f,
                    "corrupt wal at record {record} (byte {offset}): {reason}"
                )
            }
            WalError::UnsupportedVersion(v) => write!(f, "unsupported wal version {v}"),
            WalError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "wal dimensionality {actual} != index dimensionality {expected}"
                )
            }
            WalError::Poisoned => {
                write!(
                    f,
                    "wal poisoned by an earlier failure; reset before appending"
                )
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for WalError {
    fn from(source: io::Error) -> Self {
        WalError::Io {
            op: "i/o",
            offset: 0,
            source,
        }
    }
}

// ---------------------------------------------------------------------------
// The log
// ---------------------------------------------------------------------------

/// The surviving prefix of a replayed log.
#[derive(Debug)]
pub struct WalReplay {
    /// Dimensionality from the header; `None` when the log was empty
    /// (or its header itself was torn).
    pub dims: Option<usize>,
    /// Id of the checkpoint that last truncated the log, from the
    /// header; `None` exactly when `dims` is.
    pub checkpoint_id: Option<u64>,
    /// Every record whose checksum verified, in append order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (header + whole frames).
    pub valid_len: u64,
    /// The torn tail, when the log did not end at a frame boundary.
    pub torn: Option<TornTail>,
}

/// Where a log stopped being trustworthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset of the first bad frame.
    pub offset: u64,
    /// Ordinal (0-based) of the first bad record.
    pub record: u64,
    /// Bytes past the valid prefix that recovery truncates.
    pub dropped_bytes: u64,
}

/// Append-side handle over a [`BackingStore`]: frames records,
/// checksums them, and flushes per [`FlushPolicy`]. A failed append or
/// flush **poisons** the log — later appends return
/// [`WalError::Poisoned`] instead of pretending the hole is durable.
#[derive(Debug)]
pub struct Wal {
    store: Box<dyn BackingStore>,
    policy: FlushPolicy,
    dims: usize,
    /// Id of the checkpoint that last truncated this log (0 = never
    /// checkpointed); written into the header so recovery can tell a
    /// live suffix from a log a checkpoint already superseded.
    checkpoint_id: u64,
    offset: u64,
    records: u64,
    unflushed: u32,
    poisoned: bool,
}

impl Wal {
    /// Starts a fresh log on `store` (truncating any previous content)
    /// and makes the header durable.
    pub fn create(
        store: Box<dyn BackingStore>,
        policy: FlushPolicy,
        dims: usize,
    ) -> Result<Self, WalError> {
        let mut wal = Wal {
            store,
            policy,
            dims,
            checkpoint_id: 0,
            offset: 0,
            records: 0,
            unflushed: 0,
            poisoned: false,
        };
        wal.write_header()?;
        Ok(wal)
    }

    /// Reopens a log for appending after [`Wal::replay`]-based
    /// recovery: verifies the header dimensionality, truncates any torn
    /// tail, rewrites a fresh header if even the header was torn, and
    /// positions the append offset at the end of the valid prefix.
    /// Returns the replay so the caller can apply the surviving
    /// records.
    pub fn reopen(
        mut store: Box<dyn BackingStore>,
        policy: FlushPolicy,
        dims: usize,
    ) -> Result<(Self, WalReplay), WalError> {
        let replay = Self::replay(store.as_mut())?;
        if let Some(actual) = replay.dims {
            if actual != dims {
                return Err(WalError::DimensionMismatch {
                    expected: dims,
                    actual,
                });
            }
        }
        if replay.torn.is_some() {
            store
                .truncate(replay.valid_len)
                .map_err(|source| WalError::Io {
                    op: "truncate",
                    offset: replay.valid_len,
                    source,
                })?;
        }
        let mut wal = Wal {
            store,
            policy,
            dims,
            checkpoint_id: replay.checkpoint_id.unwrap_or(0),
            offset: replay.valid_len,
            records: replay.records.len() as u64,
            unflushed: 0,
            poisoned: false,
        };
        if replay.valid_len < WAL_HEADER_LEN {
            wal.write_header()?;
        }
        Ok((wal, replay))
    }

    fn write_header(&mut self) -> Result<(), WalError> {
        self.store.truncate(0).map_err(|source| WalError::Io {
            op: "truncate",
            offset: 0,
            source,
        })?;
        let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
        header.extend_from_slice(WAL_MAGIC);
        header.extend_from_slice(&WAL_VERSION.to_le_bytes());
        header.extend_from_slice(&(self.dims as u32).to_le_bytes());
        header.extend_from_slice(&self.checkpoint_id.to_le_bytes());
        self.store.append(&header).map_err(|source| WalError::Io {
            op: "append",
            offset: 0,
            source,
        })?;
        self.store.flush().map_err(|source| WalError::Io {
            op: "flush",
            offset: 0,
            source,
        })?;
        self.offset = WAL_HEADER_LEN;
        self.records = 0;
        self.unflushed = 0;
        self.poisoned = false;
        Ok(())
    }

    /// Appends one record and flushes according to the policy
    /// (epoch-close markers force a barrier under both `PerEpoch` and
    /// `PerBatch`, so a closed epoch is never lost to a partial batch).
    pub fn append(&mut self, record: &WalRecord) -> Result<(), WalError> {
        if self.poisoned {
            return Err(WalError::Poisoned);
        }
        let payload = record.encode();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        if let Err(source) = self.store.append(&frame) {
            self.poisoned = true;
            return Err(WalError::Io {
                op: "append",
                offset: self.offset,
                source,
            });
        }
        self.offset += frame.len() as u64;
        self.records += 1;
        self.unflushed += 1;
        let flush_now = match self.policy {
            FlushPolicy::PerRecord => true,
            FlushPolicy::PerBatch(n) => {
                self.unflushed >= n || matches!(record, WalRecord::EpochClose)
            }
            FlushPolicy::PerEpoch => matches!(record, WalRecord::EpochClose),
        };
        if flush_now {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces a durability barrier regardless of policy.
    pub fn sync(&mut self) -> Result<(), WalError> {
        if self.poisoned {
            return Err(WalError::Poisoned);
        }
        if let Err(source) = self.store.flush() {
            self.poisoned = true;
            return Err(WalError::Io {
                op: "flush",
                offset: self.offset,
                source,
            });
        }
        self.unflushed = 0;
        Ok(())
    }

    /// Truncates the log back to a fresh header, keeping the current
    /// checkpoint id. Clears poisoning on success (the medium
    /// demonstrably works again).
    pub fn reset(&mut self) -> Result<(), WalError> {
        self.write_header()
    }

    /// Truncates the log back to a fresh header stamped with
    /// `checkpoint_id` — the id of the checkpoint whose save just
    /// superseded every record. Recovery compares this stamp against
    /// the checkpoint it loads: a log stamped *older* than the
    /// checkpoint is a crash caught between the checkpoint save and
    /// this reset, and its records must not be replayed. Clears
    /// poisoning on success.
    pub fn reset_to(&mut self, checkpoint_id: u64) -> Result<(), WalError> {
        self.checkpoint_id = checkpoint_id;
        self.write_header()
    }

    /// Id of the checkpoint that last truncated this log (0 = none).
    pub fn checkpoint_id(&self) -> u64 {
        self.checkpoint_id
    }

    /// Records appended (or replayed) so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Current append offset in bytes.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// The configured flush policy.
    pub fn policy(&self) -> FlushPolicy {
        self.policy
    }

    /// The log dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Whether an earlier failure poisoned the log.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Surrenders the backing store (e.g. to read its surviving image).
    pub fn into_store(self) -> Box<dyn BackingStore> {
        self.store
    }

    /// Parses the durable image of `store`: every frame up to the first
    /// missing, oversized, or checksum-failing one. Does **not** modify
    /// the store; [`Wal::reopen`] truncates the torn tail.
    pub fn replay(store: &mut dyn BackingStore) -> Result<WalReplay, WalError> {
        let bytes = store.read_durable().map_err(|source| WalError::Io {
            op: "read",
            offset: 0,
            source,
        })?;
        if bytes.is_empty() {
            return Ok(WalReplay {
                dims: None,
                checkpoint_id: None,
                records: Vec::new(),
                valid_len: 0,
                torn: None,
            });
        }
        if bytes.len() < WAL_HEADER_LEN as usize {
            // Even the header tore: nothing survives.
            return Ok(WalReplay {
                dims: None,
                checkpoint_id: None,
                records: Vec::new(),
                valid_len: 0,
                torn: Some(TornTail {
                    offset: 0,
                    record: 0,
                    dropped_bytes: bytes.len() as u64,
                }),
            });
        }
        if &bytes[..4] != WAL_MAGIC {
            return Err(WalError::Corrupt {
                offset: 0,
                record: 0,
                reason: "bad magic".into(),
            });
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != WAL_VERSION {
            return Err(WalError::UnsupportedVersion(version));
        }
        let dims = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        if dims == 0 {
            return Err(WalError::Corrupt {
                offset: 8,
                record: 0,
                reason: "zero dimensions".into(),
            });
        }
        let checkpoint_id = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
        let mut records = Vec::new();
        let mut pos = WAL_HEADER_LEN as usize;
        let torn = loop {
            if pos == bytes.len() {
                break None;
            }
            let frame_start = pos;
            let Some(header) = bytes.get(pos..pos + 8) else {
                break Some(frame_start);
            };
            let len = u32::from_le_bytes(header[..4].try_into().unwrap());
            let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
            if len > MAX_FRAME {
                break Some(frame_start);
            }
            let Some(payload) = bytes.get(pos + 8..pos + 8 + len as usize) else {
                break Some(frame_start);
            };
            if crc32(payload) != crc {
                break Some(frame_start);
            }
            let Some(record) = WalRecord::decode(payload) else {
                break Some(frame_start);
            };
            records.push(record);
            pos = frame_start + 8 + len as usize;
        };
        let valid_len = torn.unwrap_or(pos) as u64;
        Ok(WalReplay {
            dims: Some(dims),
            checkpoint_id: Some(checkpoint_id),
            valid_len,
            torn: torn.map(|offset| TornTail {
                offset: offset as u64,
                record: records.len() as u64,
                dropped_bytes: (bytes.len() - offset) as u64,
            }),
            records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert {
                id: 7,
                coords: vec![0.0, 1.0, 0.25, 0.75],
            },
            WalRecord::Remove { id: 7 },
            WalRecord::Update {
                id: 9,
                coords: vec![0.5, 0.5, 0.5, 0.5],
            },
            WalRecord::Merge {
                signature: vec![1, 2, 3, 4],
            },
            WalRecord::Materialize {
                signature: vec![],
                candidate: 11,
            },
            WalRecord::EpochClose,
        ]
    }

    #[test]
    fn record_encode_decode_roundtrip() {
        for rec in sample_records() {
            let payload = rec.encode();
            assert_eq!(WalRecord::decode(&payload), Some(rec.clone()), "{rec:?}");
            // Any strict prefix must fail to decode (or decode to a
            // different record is impossible because trailing bytes are
            // rejected).
            for cut in 0..payload.len() {
                assert_ne!(WalRecord::decode(&payload[..cut]), Some(rec.clone()));
            }
        }
        assert_eq!(WalRecord::decode(&[99]), None, "unknown tag");
        assert_eq!(WalRecord::decode(&[]), None, "empty payload");
    }

    #[test]
    fn append_replay_roundtrip() {
        let mut wal = Wal::create(Box::new(MemBacking::new()), FlushPolicy::PerRecord, 2).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        assert_eq!(wal.records(), 6);
        let mut store = wal.into_store();
        let replay = Wal::replay(store.as_mut()).unwrap();
        assert_eq!(replay.dims, Some(2));
        assert_eq!(replay.records, sample_records());
        assert!(replay.torn.is_none());
    }

    #[test]
    fn flush_policies_control_barrier_frequency() {
        let count = |policy: FlushPolicy| {
            let mut wal = Wal::create(Box::new(MemBacking::new()), policy, 2).unwrap();
            for _ in 0..2 {
                for rec in sample_records() {
                    wal.append(&rec).unwrap();
                }
            }
            let store = wal.into_store();
            store
                .as_any()
                .downcast_ref::<MemBacking>()
                .unwrap()
                .flushes()
        };
        // Header flush (1) plus: 12 per-record flushes / a barrier per
        // full 5-record batch AND per epoch-close marker (records 5, 6,
        // 11, 12 — the documented PerBatch contract includes the
        // epoch-close barrier) / one per epoch-close marker (2).
        assert_eq!(count(FlushPolicy::PerRecord), 1 + 12);
        assert_eq!(count(FlushPolicy::PerBatch(5)), 1 + 4);
        assert_eq!(count(FlushPolicy::PerEpoch), 1 + 2);
    }

    #[test]
    fn torn_tail_is_detected_and_reported() {
        let mut wal = Wal::create(Box::new(MemBacking::new()), FlushPolicy::PerRecord, 3).unwrap();
        let recs = sample_records();
        for rec in &recs {
            wal.append(rec).unwrap();
        }
        let mut store = wal.into_store();
        let full = store.read_durable().unwrap();

        // Cut the image at every byte position: replay must never fail,
        // and must return a record-prefix of the full stream.
        for cut in 0..full.len() {
            let mut medium = MemBacking::from_bytes(full[..cut].to_vec());
            let replay = Wal::replay(&mut medium).unwrap();
            assert!(replay.records.len() <= recs.len());
            assert_eq!(replay.records[..], recs[..replay.records.len()]);
            assert!(replay.valid_len <= cut as u64);
            if replay.valid_len < cut as u64 {
                let torn = replay.torn.expect("tail past valid_len must be reported");
                assert_eq!(torn.offset, replay.valid_len);
                assert_eq!(torn.dropped_bytes, cut as u64 - replay.valid_len);
                assert_eq!(torn.record, replay.records.len() as u64);
            }
        }
    }

    #[test]
    fn mid_log_corruption_truncates_at_first_bad_checksum() {
        let mut wal = Wal::create(Box::new(MemBacking::new()), FlushPolicy::PerRecord, 3).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        let mut store = wal.into_store();
        let mut bytes = store.read_durable().unwrap();
        // Flip one payload byte of the second frame.
        let header = WAL_HEADER_LEN as usize;
        let first_len = u32::from_le_bytes(bytes[header..header + 4].try_into().unwrap()) as usize;
        let second_payload = header + 8 + first_len + 8;
        bytes[second_payload] ^= 0x40;
        let mut medium = MemBacking::from_bytes(bytes);
        let replay = Wal::replay(&mut medium).unwrap();
        assert_eq!(replay.records, sample_records()[..1].to_vec());
        let torn = replay.torn.unwrap();
        assert_eq!(torn.record, 1);
        assert_eq!(torn.offset, (header + 8 + first_len) as u64);
    }

    #[test]
    fn reopen_truncates_tail_and_continues() {
        let mut wal = Wal::create(Box::new(MemBacking::new()), FlushPolicy::PerRecord, 2).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        let mut store = wal.into_store();
        let mut bytes = store.read_durable().unwrap();
        bytes.truncate(bytes.len() - 3); // tear the last frame

        let (mut wal, replay) = Wal::reopen(
            Box::new(MemBacking::from_bytes(bytes)),
            FlushPolicy::PerRecord,
            2,
        )
        .unwrap();
        assert_eq!(replay.records.len(), sample_records().len() - 1);
        assert!(replay.torn.is_some());
        // The tail is repaired: appending and replaying again is clean.
        wal.append(&WalRecord::Remove { id: 1 }).unwrap();
        let mut store = wal.into_store();
        let replay = Wal::replay(store.as_mut()).unwrap();
        assert!(replay.torn.is_none());
        assert_eq!(replay.records.last(), Some(&WalRecord::Remove { id: 1 }));
    }

    #[test]
    fn reopen_rejects_dimension_mismatch_and_bad_magic() {
        let wal = Wal::create(Box::new(MemBacking::new()), FlushPolicy::PerRecord, 2).unwrap();
        let mut store = wal.into_store();
        let bytes = store.read_durable().unwrap();
        assert!(matches!(
            Wal::reopen(
                Box::new(MemBacking::from_bytes(bytes)),
                FlushPolicy::PerRecord,
                5
            ),
            Err(WalError::DimensionMismatch {
                expected: 5,
                actual: 2
            })
        ));
        assert!(matches!(
            Wal::replay(&mut MemBacking::from_bytes(b"NOTAWAL.............".to_vec())),
            Err(WalError::Corrupt { .. })
        ));
        let mut versioned = Vec::new();
        versioned.extend_from_slice(WAL_MAGIC);
        versioned.extend_from_slice(&9u32.to_le_bytes());
        versioned.extend_from_slice(&2u32.to_le_bytes());
        versioned.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            Wal::replay(&mut MemBacking::from_bytes(versioned)),
            Err(WalError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn reset_to_stamps_the_checkpoint_id_into_the_header() {
        let mut wal = Wal::create(Box::new(MemBacking::new()), FlushPolicy::PerRecord, 2).unwrap();
        assert_eq!(wal.checkpoint_id(), 0);
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        wal.reset_to(7).unwrap();
        assert_eq!(wal.checkpoint_id(), 7);
        wal.append(&WalRecord::Remove { id: 3 }).unwrap();
        // A plain reset keeps the stamp.
        wal.reset().unwrap();
        assert_eq!(wal.checkpoint_id(), 7);
        let mut store = wal.into_store();
        let replay = Wal::replay(store.as_mut()).unwrap();
        assert_eq!(replay.checkpoint_id, Some(7));
        assert!(replay.records.is_empty());
        // Reopen carries the stamp forward.
        let bytes = store.read_durable().unwrap();
        let (wal, _) = Wal::reopen(
            Box::new(MemBacking::from_bytes(bytes)),
            FlushPolicy::PerRecord,
            2,
        )
        .unwrap();
        assert_eq!(wal.checkpoint_id(), 7);
    }

    #[test]
    fn fault_injector_is_deterministic() {
        for seed in 0..32u64 {
            let plan = FaultPlan::seeded(seed);
            assert_eq!(plan, FaultPlan::seeded(seed), "seed {seed}");
            let drive = |plan: FaultPlan| {
                let mut wal = match Wal::create(
                    Box::new(FaultInjector::new(plan)),
                    FlushPolicy::PerBatch(3),
                    2,
                ) {
                    Ok(w) => w,
                    Err(_) => return Vec::new(),
                };
                for rec in sample_records().iter().cycle().take(40) {
                    if wal.append(rec).is_err() {
                        break;
                    }
                }
                let mut store = wal.into_store();
                store.read_durable().unwrap_or_default()
            };
            assert_eq!(
                drive(FaultPlan::seeded(seed)),
                drive(FaultPlan::seeded(seed))
            );
        }
    }

    #[test]
    fn crash_loses_exactly_the_unflushed_suffix() {
        let plan = FaultPlan::crash_after_appends(5);
        let mut wal = Wal::create(
            Box::new(FaultInjector::new(plan)),
            FlushPolicy::PerBatch(2),
            2,
        )
        .unwrap();
        // Header append is ordinal 1; four record appends succeed and
        // the fifth (ordinal 6) crashes the medium.
        let mut appended = 0;
        let err = loop {
            match wal.append(&WalRecord::Remove { id: appended }) {
                Ok(()) => appended += 1,
                Err(e) => break e,
            }
        };
        assert!(matches!(err, WalError::Io { op: "append", .. }));
        assert_eq!(appended, 4);
        assert!(wal.poisoned());
        assert!(matches!(
            wal.append(&WalRecord::EpochClose),
            Err(WalError::Poisoned)
        ));

        let mut store = wal.into_store();
        let replay = Wal::replay(store.as_mut()).unwrap();
        // PerBatch(2): records 1–2 and 3–4 flushed; the crash drops
        // nothing because all four appended records hit a barrier.
        assert_eq!(replay.records.len(), 4);
        assert!(replay.torn.is_none());
    }

    #[test]
    fn flush_failure_loses_staged_bytes() {
        let plan = FaultPlan::flush_fail_at(2); // header flush is #1
        let mut wal = Wal::create(
            Box::new(FaultInjector::new(plan)),
            FlushPolicy::PerBatch(3),
            2,
        )
        .unwrap();
        wal.append(&WalRecord::Remove { id: 1 }).unwrap();
        wal.append(&WalRecord::Remove { id: 2 }).unwrap();
        let err = wal.append(&WalRecord::Remove { id: 3 }).unwrap_err();
        assert!(matches!(err, WalError::Io { op: "flush", .. }));
        assert_eq!(err.io_kind(), Some(io::ErrorKind::Other));
        let mut store = wal.into_store();
        let replay = Wal::replay(store.as_mut()).unwrap();
        assert!(
            replay.records.is_empty(),
            "staged records were lost with the flush"
        );
    }

    #[test]
    fn enospc_fails_append_without_crashing_the_medium() {
        let plan = FaultPlan::enospc_at(2);
        let mut wal = Wal::create(
            Box::new(FaultInjector::new(plan)),
            FlushPolicy::PerRecord,
            2,
        )
        .unwrap();
        let err = wal.append(&WalRecord::Remove { id: 1 }).unwrap_err();
        assert_eq!(err.io_kind(), Some(io::ErrorKind::StorageFull));
        // Poisoned from the caller's perspective, but the durable image
        // is intact: replay sees a clean, empty log.
        let mut store = wal.into_store();
        let replay = Wal::replay(store.as_mut()).unwrap();
        assert!(replay.records.is_empty());
        assert!(replay.torn.is_none());
    }

    #[test]
    fn torn_write_leaves_partial_frame_for_replay_to_truncate() {
        // Header is append #1; the first record append (#2) tears after
        // 5 bytes of its frame.
        let plan = FaultPlan::torn_write_at(2, 5);
        let mut wal = Wal::create(
            Box::new(FaultInjector::new(plan)),
            FlushPolicy::PerRecord,
            2,
        )
        .unwrap();
        let err = wal.append(&WalRecord::EpochClose).unwrap_err();
        assert!(matches!(err, WalError::Io { op: "append", .. }));
        let mut store = wal.into_store();
        let replay = Wal::replay(store.as_mut()).unwrap();
        assert!(replay.records.is_empty());
        let torn = replay.torn.unwrap();
        assert_eq!(torn.offset, WAL_HEADER_LEN);
        assert_eq!(torn.dropped_bytes, 5);
    }

    #[test]
    fn short_read_shrinks_the_recovered_prefix() {
        let mut wal = Wal::create(
            Box::new(FaultInjector::new(FaultPlan::none().with_short_read(3))),
            FlushPolicy::PerRecord,
            2,
        )
        .unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        let mut store = wal.into_store();
        let replay = Wal::replay(store.as_mut()).unwrap();
        assert_eq!(replay.records.len(), sample_records().len() - 1);
        assert!(replay.torn.is_some());
    }

    #[test]
    fn flush_policy_parses_strictly() {
        assert_eq!(
            "record".parse::<FlushPolicy>().unwrap(),
            FlushPolicy::PerRecord
        );
        assert_eq!(
            "epoch".parse::<FlushPolicy>().unwrap(),
            FlushPolicy::PerEpoch
        );
        assert_eq!(
            "batch".parse::<FlushPolicy>().unwrap(),
            FlushPolicy::PerBatch(64)
        );
        assert_eq!(
            "batch:7".parse::<FlushPolicy>().unwrap(),
            FlushPolicy::PerBatch(7)
        );
        assert!("batch:0".parse::<FlushPolicy>().is_err());
        assert!("batch:x".parse::<FlushPolicy>().is_err());
        assert!("sometimes".parse::<FlushPolicy>().is_err());
        for policy in [
            FlushPolicy::PerRecord,
            FlushPolicy::PerBatch(7),
            FlushPolicy::PerEpoch,
        ] {
            assert_eq!(policy.to_string().parse::<FlushPolicy>().unwrap(), policy);
        }
    }

    #[test]
    fn wal_error_paths_carry_fault_context() {
        let io_err = WalError::Io {
            op: "append",
            offset: 42,
            source: io::Error::new(io::ErrorKind::StorageFull, "full"),
        };
        assert!(io_err.to_string().contains("append"));
        assert!(io_err.to_string().contains("42"));
        assert_eq!(io_err.io_kind(), Some(io::ErrorKind::StorageFull));
        assert!(std::error::Error::source(&io_err).is_some());

        let corrupt = WalError::Corrupt {
            offset: 12,
            record: 3,
            reason: "bad".into(),
        };
        assert!(corrupt.to_string().contains("record 3"));
        assert!(corrupt.io_kind().is_none());

        let from: WalError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert_eq!(from.io_kind(), Some(io::ErrorKind::NotFound));

        for e in [
            WalError::UnsupportedVersion(9),
            WalError::DimensionMismatch {
                expected: 2,
                actual: 3,
            },
            WalError::Poisoned,
        ] {
            assert!(!e.to_string().is_empty());
            assert!(std::error::Error::source(&e).is_none());
        }
    }

    #[test]
    fn file_backing_roundtrip_and_reopen() {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "acx-wal-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let mut wal = Wal::create(
            Box::new(FileBacking::create(&path).unwrap()),
            FlushPolicy::PerRecord,
            2,
        )
        .unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        drop(wal); // "crash": reopen from the file alone
        let (_, replay) = Wal::reopen(
            Box::new(FileBacking::open(&path).unwrap()),
            FlushPolicy::PerRecord,
            2,
        )
        .unwrap();
        assert_eq!(replay.records, sample_records());
        assert!(replay.torn.is_none());
        std::fs::remove_file(&path).unwrap();
    }
}
