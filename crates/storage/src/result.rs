use std::time::Duration;

use acx_geom::ObjectId;

use crate::AccessStats;

/// Everything one spatial query did, for cost accounting and the paper's
/// reported indicators (query time, accessed clusters/nodes, verified
/// data). Shared by every access method in the repository so the
/// evaluation compares like with like.
#[derive(Debug, Clone, Default)]
pub struct QueryMetrics {
    /// Exact access counters of the execution.
    pub stats: AccessStats,
    /// Simulated execution time (ms) under the access method's storage
    /// scenario, priced from `stats` by the cost model.
    pub priced_ms: f64,
    /// Real wall-clock time spent executing the query.
    pub wall: Duration,
}

/// Result of executing one spatial query.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Identifiers of the matching objects (unsorted).
    pub matches: Vec<ObjectId>,
    /// Execution metrics.
    pub metrics: QueryMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_empty() {
        let q = QueryResult::default();
        assert!(q.matches.is_empty());
        assert_eq!(q.metrics.stats, AccessStats::default());
        assert_eq!(q.metrics.priced_ms, 0.0);
        assert_eq!(q.metrics.wall, Duration::ZERO);
    }
}
