use std::collections::HashMap;

use acx_geom::scan::{ColumnAccess, ZoneEntry, BLOCK};
use acx_geom::{object_size_bytes, Scalar};

/// Handle to one cluster's sequential object segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegmentId(pub u32);

/// Scalars per zone-map entry: `min_lo, max_lo, min_hi, max_hi`.
const ZONE_STRIDE: usize = 4;

/// One cluster's members, stored sequentially: a parallel id array plus
/// dimension-major coordinate columns with per-block zone maps, and the
/// segment's position in the (virtual) disk layout.
#[derive(Debug)]
struct Segment {
    ids: Vec<u32>,
    /// Dimension-major (SoA) columns: `cols[2d]` holds every member's
    /// lower bound in dimension `d`, `cols[2d + 1]` the upper bound. All
    /// `2·dims` columns are exactly `ids.len()` long.
    cols: Box<[Vec<Scalar>]>,
    /// Zone maps: per 64-lane block `k` and dimension `d`, the four
    /// scalars `min_lo, max_lo, min_hi, max_hi` of that block's column
    /// values, at `((k·dims + d)·4)..`. Block-major so growth into a new
    /// block appends instead of re-laying out; always covers exactly
    /// `ceil(len / 64)` blocks.
    zones: Vec<Scalar>,
    /// Reserved capacity in objects (allocation size on the layout).
    capacity: usize,
    /// Byte offset of the segment in the virtual sequential layout.
    offset: u64,
}

impl Segment {
    fn new(dims: usize, capacity: usize) -> Self {
        Self {
            ids: Vec::with_capacity(capacity),
            cols: (0..2 * dims)
                .map(|_| Vec::with_capacity(capacity))
                .collect(),
            zones: Vec::new(),
            capacity,
            offset: 0,
        }
    }

    /// Interleaved flat coordinates of member `index`, appended to `out`.
    fn read_into(&self, index: usize, out: &mut Vec<Scalar>) {
        for col in self.cols.iter() {
            out.push(col[index]);
        }
    }

    fn dims(&self) -> usize {
        self.cols.len() / 2
    }

    /// Folds the just-pushed member (at `ids.len() - 1`) into the zone
    /// maps, opening a new block entry at block boundaries.
    fn zone_push(&mut self) {
        let index = self.ids.len() - 1;
        let dims = self.dims();
        let block = index / BLOCK;
        if index.is_multiple_of(BLOCK) {
            debug_assert_eq!(self.zones.len(), block * dims * ZONE_STRIDE);
            for d in 0..dims {
                let lo = self.cols[2 * d][index];
                let hi = self.cols[2 * d + 1][index];
                self.zones.extend_from_slice(&[lo, lo, hi, hi]);
            }
        } else {
            for d in 0..dims {
                let lo = self.cols[2 * d][index];
                let hi = self.cols[2 * d + 1][index];
                let at = (block * dims + d) * ZONE_STRIDE;
                let z = &mut self.zones[at..at + ZONE_STRIDE];
                z[0] = z[0].min(lo);
                z[1] = z[1].max(lo);
                z[2] = z[2].min(hi);
                z[3] = z[3].max(hi);
            }
        }
    }

    /// Recomputes one block's zone entries from the column data.
    fn zone_recompute(&mut self, block: usize) {
        let dims = self.dims();
        let start = block * BLOCK;
        let end = (start + BLOCK).min(self.ids.len());
        debug_assert!(start < end, "block must be non-empty");
        for d in 0..dims {
            let lo = &self.cols[2 * d][start..end];
            let hi = &self.cols[2 * d + 1][start..end];
            let at = (block * dims + d) * ZONE_STRIDE;
            let z = &mut self.zones[at..at + ZONE_STRIDE];
            z[0] = lo.iter().copied().fold(Scalar::INFINITY, Scalar::min);
            z[1] = lo.iter().copied().fold(Scalar::NEG_INFINITY, Scalar::max);
            z[2] = hi.iter().copied().fold(Scalar::INFINITY, Scalar::min);
            z[3] = hi.iter().copied().fold(Scalar::NEG_INFINITY, Scalar::max);
        }
    }

    /// Re-establishes the zone maps of the blocks disturbed by a
    /// `swap_remove` of `index` (the receiving block, and the shrunken
    /// or vanished last block).
    fn zone_after_swap_remove(&mut self, index: usize) {
        let dims = self.dims();
        let n = self.ids.len();
        let blocks = n.div_ceil(BLOCK);
        self.zones.truncate(blocks * dims * ZONE_STRIDE);
        if n == 0 {
            return;
        }
        let touched = index / BLOCK;
        if touched < blocks {
            self.zone_recompute(touched);
        }
        let last = blocks - 1;
        if last != touched {
            self.zone_recompute(last);
        }
    }
}

/// Dimension-major column view of one segment, ready for the batch
/// verification kernel ([`acx_geom::scan::scan_columns`]): implements
/// [`ColumnAccess`] and serves the segment's per-block zone maps so the
/// kernel can skip whole blocks; [`SegmentColumns::without_zones`]
/// drops the zone maps (for A/B comparison — results and accounting are
/// identical either way, by the kernel's construction).
#[derive(Debug, Clone, Copy)]
pub struct SegmentColumns<'a> {
    cols: &'a [Vec<Scalar>],
    zones: Option<&'a [Scalar]>,
    dims: usize,
    len: usize,
}

impl SegmentColumns<'_> {
    /// The same view with zone-map skipping disabled.
    pub fn without_zones(mut self) -> Self {
        self.zones = None;
        self
    }
}

impl ColumnAccess for SegmentColumns<'_> {
    fn len(&self) -> usize {
        self.len
    }

    fn lo_col(&self, d: usize) -> &[Scalar] {
        &self.cols[2 * d]
    }

    fn hi_col(&self, d: usize) -> &[Scalar] {
        &self.cols[2 * d + 1]
    }

    fn zone(&self, d: usize, block: usize) -> Option<ZoneEntry> {
        let zones = self.zones?;
        let at = (block * self.dims + d) * ZONE_STRIDE;
        let z = &zones[at..at + ZONE_STRIDE];
        Some(ZoneEntry {
            min_lo: z[0],
            max_lo: z[1],
            min_hi: z[2],
            max_hi: z[3],
        })
    }
}

/// Sequential cluster storage with reserved slack (paper §6, "Storage
/// Utilization").
///
/// Each cluster's objects are stored contiguously — in memory for cache
/// locality, on disk to favour sequential transfer. Coordinates are kept
/// in *dimension-major* columns (one contiguous `lo` and `hi` column per
/// dimension) so the batch verification kernel
/// ([`acx_geom::scan::scan_columns`]) streams one column at a time at
/// memory bandwidth; see [`SegmentStore::columns`]. Because a relocation
/// is expensive, every created or relocated segment reserves
/// `reserve_fraction` extra places (the paper uses 20–30 %, guaranteeing
/// ≥ 70 % utilization right after a relocation).
///
/// The store also maintains a *virtual byte layout* (bump allocation +
/// relocation) so the disk scenario can reason about segment offsets, and
/// counts relocations so tests can assert they stay rare.
///
/// Object ids must be unique across the whole store: the store keeps an
/// id → (segment, position) map so [`SegmentStore::position_of`] answers
/// in O(1) instead of scanning a segment, and the map is maintained
/// through [`SegmentStore::push`], [`SegmentStore::swap_remove`],
/// [`SegmentStore::remove`], [`SegmentStore::merge_into`] and segment
/// relocations (a relocation changes a segment's layout offset, never the
/// positions of its members).
#[derive(Debug)]
pub struct SegmentStore {
    dims: usize,
    object_bytes: usize,
    reserve_fraction: f64,
    segments: Vec<Option<Segment>>,
    free_slots: Vec<u32>,
    next_offset: u64,
    relocations: u64,
    live_objects: usize,
    /// object id → (segment slot, index within the segment).
    positions: HashMap<u32, (u32, u32)>,
}

impl SegmentStore {
    /// Creates a store for `dims`-dimensional objects with the paper's
    /// default 25 % reserve.
    pub fn new(dims: usize) -> Self {
        Self::with_reserve(dims, 0.25)
    }

    /// Creates a store with an explicit reserve fraction in `[0, 1]`.
    pub fn with_reserve(dims: usize, reserve_fraction: f64) -> Self {
        assert!(dims > 0, "dims must be positive");
        assert!(
            (0.0..=1.0).contains(&reserve_fraction),
            "reserve fraction must be in [0,1]"
        );
        Self {
            dims,
            object_bytes: object_size_bytes(dims),
            reserve_fraction,
            segments: Vec::new(),
            free_slots: Vec::new(),
            next_offset: 0,
            relocations: 0,
            live_objects: 0,
            positions: HashMap::new(),
        }
    }

    /// Dimensionality of stored objects.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Bytes per stored object (id + `2·dims` scalars).
    pub fn object_bytes(&self) -> usize {
        self.object_bytes
    }

    /// Number of live segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len() - self.free_slots.len()
    }

    /// Total number of stored objects across all segments.
    pub fn len(&self) -> usize {
        self.live_objects
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.live_objects == 0
    }

    /// How many times a segment had to be moved because it outgrew its
    /// reservation.
    pub fn relocations(&self) -> u64 {
        self.relocations
    }

    /// Storage utilization: live object slots over reserved slots.
    pub fn utilization(&self) -> f64 {
        let mut used = 0usize;
        let mut cap = 0usize;
        for seg in self.segments.iter().flatten() {
            used += seg.ids.len();
            cap += seg.capacity;
        }
        if cap == 0 {
            1.0
        } else {
            used as f64 / cap as f64
        }
    }

    fn reserved_capacity(&self, n: usize) -> usize {
        // n live objects plus the reserve, at least one slot.
        ((n as f64 * (1.0 + self.reserve_fraction)).ceil() as usize).max(1)
    }

    fn alloc_bytes(&mut self, capacity: usize) -> u64 {
        let offset = self.next_offset;
        self.next_offset += (capacity * self.object_bytes) as u64;
        offset
    }

    /// Creates an empty segment sized for `expected` objects.
    pub fn create(&mut self, expected: usize) -> SegmentId {
        let capacity = self.reserved_capacity(expected.max(1));
        let offset = self.alloc_bytes(capacity);
        let mut seg = Segment::new(self.dims, capacity);
        seg.offset = offset;
        if let Some(slot) = self.free_slots.pop() {
            self.segments[slot as usize] = Some(seg);
            SegmentId(slot)
        } else {
            self.segments.push(Some(seg));
            SegmentId((self.segments.len() - 1) as u32)
        }
    }

    fn segment(&self, id: SegmentId) -> &Segment {
        self.segments[id.0 as usize]
            .as_ref()
            .expect("segment was removed")
    }

    fn segment_mut(&mut self, id: SegmentId) -> &mut Segment {
        self.segments[id.0 as usize]
            .as_mut()
            .expect("segment was removed")
    }

    /// Appends one object; relocates the segment (with fresh reserve) when
    /// the reservation is exhausted.
    ///
    /// `flat` is interleaved `[lo0, hi0, lo1, hi1, …]`; the store
    /// distributes it into the dimension-major columns.
    ///
    /// `object_id` must not already be stored anywhere in the store
    /// (checked by a debug assertion): the position map keeps exactly one
    /// location per id.
    pub fn push(&mut self, id: SegmentId, object_id: u32, flat: &[Scalar]) {
        assert_eq!(flat.len(), 2 * self.dims, "coordinate arity mismatch");
        let object_bytes = self.object_bytes;
        let needs_relocation = {
            let seg = self.segment(id);
            seg.ids.len() == seg.capacity
        };
        if needs_relocation {
            let new_capacity = self.reserved_capacity(self.segment(id).ids.len() + 1);
            let new_offset = {
                let offset = self.next_offset;
                self.next_offset += (new_capacity * object_bytes) as u64;
                offset
            };
            let seg = self.segment_mut(id);
            seg.capacity = new_capacity;
            seg.offset = new_offset;
            let grow = new_capacity - seg.ids.len();
            seg.ids.reserve(grow);
            for col in seg.cols.iter_mut() {
                col.reserve(grow);
            }
            self.relocations += 1;
        }
        let seg = self.segment_mut(id);
        seg.ids.push(object_id);
        for (col, &v) in seg.cols.iter_mut().zip(flat) {
            col.push(v);
        }
        seg.zone_push();
        let index = (seg.ids.len() - 1) as u32;
        let previous = self.positions.insert(object_id, (id.0, index));
        debug_assert!(
            previous.is_none(),
            "object id #{object_id} pushed twice into the store"
        );
        self.live_objects += 1;
    }

    /// Removes the object at `index` by swapping in the last member.
    /// Returns the removed object id.
    pub fn swap_remove(&mut self, id: SegmentId, index: usize) -> u32 {
        let (removed, moved) = {
            let seg = self.segment_mut(id);
            let removed = seg.ids.swap_remove(index);
            for col in seg.cols.iter_mut() {
                col.swap_remove(index);
            }
            seg.zone_after_swap_remove(index);
            let moved = seg.ids.get(index).copied();
            (removed, moved)
        };
        if let Some(moved) = moved {
            self.positions.insert(moved, (id.0, index as u32));
        }
        self.positions.remove(&removed);
        self.live_objects -= 1;
        removed
    }

    /// Object ids of a segment, in storage order.
    pub fn ids(&self, id: SegmentId) -> &[u32] {
        &self.segment(id).ids
    }

    /// Dimension-major column view of a segment — zone maps included —
    /// ready for the batch verification kernel
    /// ([`acx_geom::scan::scan_columns`]).
    pub fn columns(&self, id: SegmentId) -> SegmentColumns<'_> {
        let seg = self.segment(id);
        SegmentColumns {
            cols: &seg.cols,
            zones: Some(&seg.zones),
            dims: self.dims,
            len: seg.ids.len(),
        }
    }

    /// Lower-bound column of dimension `d`, one scalar per member.
    pub fn lo_col(&self, id: SegmentId, d: usize) -> &[Scalar] {
        &self.segment(id).cols[2 * d]
    }

    /// Upper-bound column of dimension `d`, one scalar per member.
    pub fn hi_col(&self, id: SegmentId, d: usize) -> &[Scalar] {
        &self.segment(id).cols[2 * d + 1]
    }

    /// Interleaved flat coordinates (`[lo0, hi0, …]`) of the member at
    /// `index`, gathered from the columns into a fresh vector.
    pub fn object_flat(&self, id: SegmentId, index: usize) -> Vec<Scalar> {
        let mut out = Vec::with_capacity(2 * self.dims);
        self.segment(id).read_into(index, &mut out);
        out
    }

    /// Gathers the member at `index` into `out` (cleared first) as
    /// interleaved flat coordinates — the allocation-free variant of
    /// [`SegmentStore::object_flat`] for loops with a reusable buffer.
    pub fn read_object_into(&self, id: SegmentId, index: usize, out: &mut Vec<Scalar>) {
        out.clear();
        self.segment(id).read_into(index, out);
    }

    /// All coordinates of a segment as one interleaved flat vector
    /// (`2·dims` scalars per object, storage order) — the row-major
    /// serialization used by persistence and bulk moves.
    pub fn interleaved_coords(&self, id: SegmentId) -> Vec<Scalar> {
        let seg = self.segment(id);
        let n = seg.ids.len();
        let mut out = Vec::with_capacity(n * 2 * self.dims);
        for index in 0..n {
            seg.read_into(index, &mut out);
        }
        out
    }

    /// Number of objects in a segment.
    pub fn segment_len(&self, id: SegmentId) -> usize {
        self.segment(id).ids.len()
    }

    /// Segment and in-segment position currently holding `object_id`, in
    /// O(1) via the position map (no segment scan).
    pub fn position_of(&self, object_id: u32) -> Option<(SegmentId, usize)> {
        self.positions
            .get(&object_id)
            .map(|&(slot, index)| (SegmentId(slot), index as usize))
    }

    /// Whether the store holds an object with this id.
    pub fn contains_object(&self, object_id: u32) -> bool {
        self.positions.contains_key(&object_id)
    }

    /// Byte offset of the segment in the virtual layout.
    pub fn offset(&self, id: SegmentId) -> u64 {
        self.segment(id).offset
    }

    /// Bytes occupied by live objects of the segment.
    pub fn used_bytes(&self, id: SegmentId) -> u64 {
        (self.segment(id).ids.len() * self.object_bytes) as u64
    }

    /// Removes a segment entirely, returning its members as ids plus
    /// interleaved flat coordinates (storage order).
    pub fn remove(&mut self, id: SegmentId) -> (Vec<u32>, Vec<Scalar>) {
        let coords = self.interleaved_coords(id);
        let seg = self.segments[id.0 as usize]
            .take()
            .expect("segment was removed");
        self.free_slots.push(id.0);
        self.live_objects -= seg.ids.len();
        for object_id in &seg.ids {
            self.positions.remove(object_id);
        }
        (seg.ids, coords)
    }

    /// Moves every member of `src` into `dst` (used by cluster merging),
    /// removing `src`. Returns how many objects moved.
    pub fn merge_into(&mut self, src: SegmentId, dst: SegmentId) -> usize {
        let (ids, coords) = self.remove(src);
        let moved = ids.len();
        let width = 2 * self.dims;
        for (i, object_id) in ids.into_iter().enumerate() {
            self.push(dst, object_id, &coords[i * width..(i + 1) * width]);
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(lo: Scalar, hi: Scalar) -> Vec<Scalar> {
        vec![lo, hi, lo, hi]
    }

    #[test]
    fn create_push_read_roundtrip() {
        let mut s = SegmentStore::new(2);
        let seg = s.create(4);
        s.push(seg, 7, &flat(0.1, 0.2));
        s.push(seg, 9, &flat(0.3, 0.4));
        assert_eq!(s.ids(seg), &[7, 9]);
        assert_eq!(s.segment_len(seg), 2);
        assert_eq!(s.interleaved_coords(seg).len(), 2 * 4);
        assert_eq!(s.object_flat(seg, 0), flat(0.1, 0.2));
        assert_eq!(s.object_flat(seg, 1), flat(0.3, 0.4));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn columns_are_dimension_major() {
        let mut s = SegmentStore::new(2);
        let seg = s.create(4);
        s.push(seg, 1, &[0.1, 0.2, 0.3, 0.4]);
        s.push(seg, 2, &[0.5, 0.6, 0.7, 0.8]);
        assert_eq!(s.lo_col(seg, 0), &[0.1, 0.5]);
        assert_eq!(s.hi_col(seg, 0), &[0.2, 0.6]);
        assert_eq!(s.lo_col(seg, 1), &[0.3, 0.7]);
        assert_eq!(s.hi_col(seg, 1), &[0.4, 0.8]);
        use acx_geom::scan::ColumnAccess;
        let cols = s.columns(seg);
        assert_eq!(cols.len(), 2);
        assert_eq!(cols.lo_col(1), &[0.3, 0.7]);
    }

    #[test]
    fn read_object_into_reuses_the_buffer() {
        let mut s = SegmentStore::new(2);
        let seg = s.create(2);
        s.push(seg, 1, &flat(0.1, 0.15));
        s.push(seg, 2, &flat(0.2, 0.25));
        let mut buf = Vec::new();
        s.read_object_into(seg, 1, &mut buf);
        assert_eq!(buf, flat(0.2, 0.25));
        s.read_object_into(seg, 0, &mut buf);
        assert_eq!(buf, flat(0.1, 0.15));
    }

    #[test]
    fn push_beyond_reserve_relocates() {
        let mut s = SegmentStore::with_reserve(2, 0.25);
        let seg = s.create(4); // capacity = ceil(4·1.25) = 5
        let first_offset = s.offset(seg);
        for i in 0..5 {
            s.push(seg, i, &flat(0.0, 1.0));
        }
        assert_eq!(s.relocations(), 0);
        s.push(seg, 5, &flat(0.0, 1.0)); // sixth object exceeds capacity
        assert_eq!(s.relocations(), 1);
        assert_ne!(s.offset(seg), first_offset);
        assert_eq!(s.segment_len(seg), 6);
    }

    #[test]
    fn utilization_at_least_70_percent_after_relocation() {
        let mut s = SegmentStore::with_reserve(2, 0.30);
        let seg = s.create(1);
        for i in 0..1000 {
            s.push(seg, i, &flat(0.0, 1.0));
        }
        // Right after any relocation: used/capacity = 1/1.3 ≈ 0.77 ≥ 0.7.
        assert!(s.utilization() >= 0.70, "utilization {}", s.utilization());
    }

    #[test]
    fn swap_remove_keeps_arrays_parallel() {
        let mut s = SegmentStore::new(2);
        let seg = s.create(4);
        s.push(seg, 1, &flat(0.1, 0.15));
        s.push(seg, 2, &flat(0.2, 0.25));
        s.push(seg, 3, &flat(0.3, 0.35));
        let removed = s.swap_remove(seg, 0);
        assert_eq!(removed, 1);
        assert_eq!(s.ids(seg), &[3, 2]);
        assert_eq!(s.object_flat(seg, 0), flat(0.3, 0.35)); // object 3 moved to slot 0
        assert_eq!(s.object_flat(seg, 1), flat(0.2, 0.25)); // object 2 untouched
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn swap_remove_last_element() {
        let mut s = SegmentStore::new(1);
        let seg = s.create(2);
        s.push(seg, 1, &[0.1, 0.2]);
        s.push(seg, 2, &[0.3, 0.4]);
        assert_eq!(s.swap_remove(seg, 1), 2);
        assert_eq!(s.ids(seg), &[1]);
        assert_eq!(s.interleaved_coords(seg), vec![0.1, 0.2]);
    }

    #[test]
    fn remove_segment_recycles_slot() {
        let mut s = SegmentStore::new(1);
        let a = s.create(2);
        s.push(a, 1, &[0.0, 1.0]);
        let (ids, coords) = s.remove(a);
        assert_eq!(ids, vec![1]);
        assert_eq!(coords, vec![0.0, 1.0]);
        assert_eq!(s.len(), 0);
        assert_eq!(s.segment_count(), 0);
        let b = s.create(2);
        assert_eq!(b.0, a.0, "slot should be recycled");
    }

    #[test]
    fn merge_into_moves_all_members() {
        let mut s = SegmentStore::new(1);
        let a = s.create(2);
        let b = s.create(2);
        s.push(a, 1, &[0.0, 0.1]);
        s.push(a, 2, &[0.2, 0.3]);
        s.push(b, 3, &[0.4, 0.5]);
        let moved = s.merge_into(a, b);
        assert_eq!(moved, 2);
        assert_eq!(s.segment_count(), 1);
        assert_eq!(s.segment_len(b), 3);
        let mut ids = s.ids(b).to_vec();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn offsets_are_disjoint_in_layout() {
        let mut s = SegmentStore::new(2);
        let a = s.create(10);
        let b = s.create(10);
        let bytes_a = 13 * s.object_bytes() as u64; // ceil(10·1.25)=13 slots
        assert!(s.offset(b) >= s.offset(a) + bytes_a);
    }

    #[test]
    #[should_panic(expected = "coordinate arity mismatch")]
    fn push_rejects_wrong_arity() {
        let mut s = SegmentStore::new(2);
        let seg = s.create(1);
        s.push(seg, 1, &[0.0, 1.0]); // needs 4 scalars for 2 dims
    }

    #[test]
    fn object_bytes_matches_geom_layout() {
        let s = SegmentStore::new(16);
        assert_eq!(s.object_bytes(), 132);
    }

    /// Zone entries recomputed from scratch for every (dim, block).
    fn expected_zones(s: &SegmentStore, id: SegmentId) -> Vec<Option<ZoneEntry>> {
        let n = s.segment_len(id);
        let dims = s.dims();
        let mut out = Vec::new();
        for block in 0..n.div_ceil(BLOCK) {
            let start = block * BLOCK;
            let end = (start + BLOCK).min(n);
            for d in 0..dims {
                let lo = &s.lo_col(id, d)[start..end];
                let hi = &s.hi_col(id, d)[start..end];
                out.push(Some(ZoneEntry {
                    min_lo: lo.iter().copied().fold(Scalar::INFINITY, Scalar::min),
                    max_lo: lo.iter().copied().fold(Scalar::NEG_INFINITY, Scalar::max),
                    min_hi: hi.iter().copied().fold(Scalar::INFINITY, Scalar::min),
                    max_hi: hi.iter().copied().fold(Scalar::NEG_INFINITY, Scalar::max),
                }));
            }
        }
        out
    }

    /// Zone entries as served to the kernel through [`SegmentColumns`].
    fn served_zones(s: &SegmentStore, id: SegmentId) -> Vec<Option<ZoneEntry>> {
        let cols = s.columns(id);
        let n = s.segment_len(id);
        let mut out = Vec::new();
        for block in 0..n.div_ceil(BLOCK) {
            for d in 0..s.dims() {
                out.push(cols.zone(d, block));
            }
        }
        out
    }

    #[test]
    fn zone_maps_track_pushes_across_blocks() {
        let mut s = SegmentStore::new(2);
        let seg = s.create(4);
        for i in 0..150u32 {
            let x = (i % 10) as Scalar / 10.0;
            s.push(seg, i, &[x, x + 0.05, 0.2, 0.8]);
        }
        assert_eq!(served_zones(&s, seg), expected_zones(&s, seg));
        let z = s.columns(seg).zone(1, 0).unwrap();
        assert_eq!((z.min_lo, z.max_lo, z.min_hi, z.max_hi), (0.2, 0.2, 0.8, 0.8));
    }

    #[test]
    fn zone_maps_survive_swap_remove_and_merge() {
        let mut s = SegmentStore::new(1);
        let a = s.create(4);
        let b = s.create(4);
        for i in 0..130u32 {
            s.push(a, i, &[i as Scalar / 130.0, 1.0]);
        }
        for i in 130..140u32 {
            s.push(b, i, &[0.5, 0.6]);
        }
        // Remove the current maximum of block 0 so the entry must shrink.
        s.swap_remove(a, 63);
        assert_eq!(served_zones(&s, a), expected_zones(&s, a));
        // Remove the very last element (last block shrinks, may vanish).
        s.swap_remove(a, s.segment_len(a) - 1);
        assert_eq!(served_zones(&s, a), expected_zones(&s, a));
        s.merge_into(b, a);
        assert_eq!(served_zones(&s, a), expected_zones(&s, a));
    }

    #[test]
    fn without_zones_serves_no_entries() {
        let mut s = SegmentStore::new(1);
        let seg = s.create(2);
        s.push(seg, 1, &[0.1, 0.9]);
        assert!(s.columns(seg).zone(0, 0).is_some());
        assert!(s.columns(seg).without_zones().zone(0, 0).is_none());
    }

    #[test]
    fn position_of_tracks_push_and_swap_remove() {
        let mut s = SegmentStore::new(2);
        let a = s.create(4);
        let b = s.create(4);
        s.push(a, 1, &flat(0.1, 0.15));
        s.push(a, 2, &flat(0.2, 0.25));
        s.push(a, 3, &flat(0.3, 0.35));
        s.push(b, 4, &flat(0.4, 0.45));
        assert_eq!(s.position_of(1), Some((a, 0)));
        assert_eq!(s.position_of(3), Some((a, 2)));
        assert_eq!(s.position_of(4), Some((b, 0)));
        assert_eq!(s.position_of(9), None);
        assert!(s.contains_object(2));
        // Removing the first member swaps the last one into its place.
        s.swap_remove(a, 0);
        assert_eq!(s.position_of(1), None);
        assert_eq!(s.position_of(3), Some((a, 0)));
        assert_eq!(s.position_of(2), Some((a, 1)));
    }

    #[test]
    fn position_of_survives_relocation_and_merge() {
        let mut s = SegmentStore::with_reserve(2, 0.25);
        let a = s.create(2); // capacity 3: fourth push relocates
        for i in 0..6 {
            s.push(a, i, &flat(0.0, 1.0));
        }
        assert!(s.relocations() > 0);
        for i in 0..6 {
            assert_eq!(s.position_of(i), Some((a, i as usize)));
        }
        let b = s.create(2);
        s.push(b, 10, &flat(0.5, 0.6));
        s.merge_into(a, b);
        for i in 0..6 {
            let (seg, idx) = s.position_of(i).expect("merged member is mapped");
            assert_eq!(seg, b);
            assert_eq!(s.ids(b)[idx], i);
        }
        assert_eq!(s.position_of(10), Some((b, 0)));
    }

    #[test]
    fn removing_a_segment_unmaps_its_members() {
        let mut s = SegmentStore::new(1);
        let a = s.create(2);
        s.push(a, 1, &[0.0, 1.0]);
        s.push(a, 2, &[0.2, 0.4]);
        s.remove(a);
        assert_eq!(s.position_of(1), None);
        assert_eq!(s.position_of(2), None);
        assert!(!s.contains_object(1));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Create(u8),
        Push(u8),
        SwapRemove(u8, u8),
        Merge(u8, u8),
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            1 => (1u8..8).prop_map(Op::Create),
            5 => (0u8..6).prop_map(Op::Push),
            2 => (0u8..6, 0u8..16).prop_map(|(s, k)| Op::SwapRemove(s, k)),
            1 => (0u8..6, 0u8..6).prop_map(|(a, b)| Op::Merge(a, b)),
        ]
    }

    proptest! {
        /// The segment store behaves like a vector of (id, coords) lists
        /// under arbitrary create/push/remove/merge sequences, and its
        /// id array and coordinate columns never fall out of sync. Object
        /// ids are drawn from a counter: the store requires them unique.
        #[test]
        fn store_matches_model(ops in prop::collection::vec(op(), 1..80)) {
            let dims = 2;
            let mut store = SegmentStore::new(dims);
            let mut live: Vec<SegmentId> = Vec::new();
            let mut model: Vec<Vec<(u32, Vec<Scalar>)>> = Vec::new();
            let mut next_id = 0u32;
            for op in ops {
                match op {
                    Op::Create(expected) => {
                        live.push(store.create(expected as usize));
                        model.push(Vec::new());
                    }
                    Op::Push(s) => {
                        if live.is_empty() { continue; }
                        let k = s as usize % live.len();
                        let id = next_id;
                        next_id += 1;
                        let flat = vec![id as f32 / 1000.0, 1.0, 0.25, 0.75];
                        store.push(live[k], id, &flat);
                        model[k].push((id, flat));
                    }
                    Op::SwapRemove(s, idx) => {
                        if live.is_empty() { continue; }
                        let k = s as usize % live.len();
                        if model[k].is_empty() { continue; }
                        let i = idx as usize % model[k].len();
                        let removed = store.swap_remove(live[k], i);
                        let (expected, _) = model[k].swap_remove(i);
                        prop_assert_eq!(removed, expected);
                    }
                    Op::Merge(a, b) => {
                        if live.len() < 2 { continue; }
                        let ka = a as usize % live.len();
                        let mut kb = b as usize % live.len();
                        if ka == kb { kb = (kb + 1) % live.len(); }
                        let moved = store.merge_into(live[ka], live[kb]);
                        prop_assert_eq!(moved, model[ka].len());
                        let mut taken = std::mem::take(&mut model[ka]);
                        model[kb].append(&mut taken);
                        live.remove(ka);
                        model.remove(ka);
                    }
                }
                // Global consistency: the store mirrors the model, and
                // the per-object flat gather agrees with the columns.
                let total: usize = model.iter().map(|m| m.len()).sum();
                prop_assert_eq!(store.len(), total);
                prop_assert_eq!(store.segment_count(), live.len());
                for (k, seg) in live.iter().enumerate() {
                    prop_assert_eq!(store.segment_len(*seg), model[k].len());
                    let mut got: Vec<u32> = store.ids(*seg).to_vec();
                    let mut want: Vec<u32> = model[k].iter().map(|(id, _)| *id).collect();
                    got.sort_unstable();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                    prop_assert_eq!(
                        store.interleaved_coords(*seg).len(),
                        model[k].len() * 2 * store.dims()
                    );
                    for (idx, id) in store.ids(*seg).iter().enumerate() {
                        let flat = store.object_flat(*seg, idx);
                        let (_, expected) = model[k]
                            .iter()
                            .find(|(mid, _)| mid == id)
                            .expect("model holds every stored id");
                        prop_assert_eq!(&flat, expected, "columns diverged for #{}", id);
                        for d in 0..store.dims() {
                            prop_assert_eq!(store.lo_col(*seg, d)[idx], flat[2 * d]);
                            prop_assert_eq!(store.hi_col(*seg, d)[idx], flat[2 * d + 1]);
                        }
                    }
                }
            }
        }

        /// The O(1) position map agrees with a linear scan of every
        /// segment after arbitrary push/swap_remove/relocation/merge
        /// sequences (tiny initial reservations force relocations).
        #[test]
        fn position_map_agrees_with_linear_scan(ops in prop::collection::vec(op(), 1..120)) {
            let mut store = SegmentStore::with_reserve(1, 0.25);
            let mut live: Vec<SegmentId> = Vec::new();
            let mut lens: Vec<usize> = Vec::new();
            let mut next_id = 0u32;
            for op in ops {
                match op {
                    Op::Create(_) => {
                        // Reserve a single slot so growth relocates early.
                        live.push(store.create(1));
                        lens.push(0);
                    }
                    Op::Push(s) => {
                        if live.is_empty() { continue; }
                        let k = s as usize % live.len();
                        store.push(live[k], next_id, &[0.25, 0.75]);
                        next_id += 1;
                        lens[k] += 1;
                    }
                    Op::SwapRemove(s, idx) => {
                        if live.is_empty() { continue; }
                        let k = s as usize % live.len();
                        if lens[k] == 0 { continue; }
                        store.swap_remove(live[k], idx as usize % lens[k]);
                        lens[k] -= 1;
                    }
                    Op::Merge(a, b) => {
                        if live.len() < 2 { continue; }
                        let ka = a as usize % live.len();
                        let mut kb = b as usize % live.len();
                        if ka == kb { kb = (kb + 1) % live.len(); }
                        store.merge_into(live[ka], live[kb]);
                        lens[kb] += lens[ka];
                        live.remove(ka);
                        lens.remove(ka);
                    }
                }
                // The map and a linear scan must name the same position
                // for every stored object, and map nothing else.
                let mut mapped = 0usize;
                for seg in &live {
                    for (idx, id) in store.ids(*seg).iter().enumerate() {
                        prop_assert_eq!(
                            store.position_of(*id),
                            Some((*seg, idx)),
                            "map disagrees with scan for object #{}",
                            id
                        );
                        mapped += 1;
                    }
                }
                prop_assert_eq!(mapped, store.len());
                prop_assert_eq!(store.position_of(next_id), None);
            }
        }

        /// Zone-map invariant: after arbitrary push/swap_remove/
        /// relocation/merge sequences, every served zone entry equals
        /// the min/max recomputed from the column data — exactly one
        /// entry per (64-lane block, dimension), none beyond the last
        /// block. Tiny initial reservations force relocations too.
        #[test]
        fn zone_maps_agree_with_recomputation(ops in prop::collection::vec(op(), 1..120)) {
            let mut store = SegmentStore::with_reserve(1, 0.25);
            let mut live: Vec<SegmentId> = Vec::new();
            let mut lens: Vec<usize> = Vec::new();
            let mut next_id = 0u32;
            for op in ops {
                match op {
                    Op::Create(_) => {
                        live.push(store.create(1));
                        lens.push(0);
                    }
                    Op::Push(s) => {
                        if live.is_empty() { continue; }
                        let k = s as usize % live.len();
                        // Vary both bounds so min/max entries move.
                        let lo = (next_id % 97) as Scalar / 97.0;
                        store.push(live[k], next_id, &[lo, (lo + 0.3).min(1.0)]);
                        next_id += 1;
                        lens[k] += 1;
                    }
                    Op::SwapRemove(s, idx) => {
                        if live.is_empty() { continue; }
                        let k = s as usize % live.len();
                        if lens[k] == 0 { continue; }
                        store.swap_remove(live[k], idx as usize % lens[k]);
                        lens[k] -= 1;
                    }
                    Op::Merge(a, b) => {
                        if live.len() < 2 { continue; }
                        let ka = a as usize % live.len();
                        let mut kb = b as usize % live.len();
                        if ka == kb { kb = (kb + 1) % live.len(); }
                        store.merge_into(live[ka], live[kb]);
                        lens[kb] += lens[ka];
                        live.remove(ka);
                        lens.remove(ka);
                    }
                }
                for seg in &live {
                    let cols = store.columns(*seg);
                    let n = store.segment_len(*seg);
                    for block in 0..n.div_ceil(acx_geom::scan::BLOCK) {
                        let start = block * acx_geom::scan::BLOCK;
                        let end = (start + acx_geom::scan::BLOCK).min(n);
                        let lo = &store.lo_col(*seg, 0)[start..end];
                        let hi = &store.hi_col(*seg, 0)[start..end];
                        let z = cols.zone(0, block).expect("entry exists for live block");
                        prop_assert_eq!(
                            z,
                            ZoneEntry {
                                min_lo: lo.iter().copied().fold(Scalar::INFINITY, Scalar::min),
                                max_lo: lo.iter().copied().fold(Scalar::NEG_INFINITY, Scalar::max),
                                min_hi: hi.iter().copied().fold(Scalar::INFINITY, Scalar::min),
                                max_hi: hi.iter().copied().fold(Scalar::NEG_INFINITY, Scalar::max),
                            },
                            "zone entry diverged for block {}",
                            block
                        );
                    }
                }
            }
        }

        /// The paper's §6 guarantee: a segment that has grown past its
        /// initial reservation keeps utilization ≥ 1/(1 + reserve) — the
        /// worst case is the instant right after a relocation.
        #[test]
        fn grown_segment_keeps_utilization_floor(pushes in 20usize..400) {
            let mut store = SegmentStore::with_reserve(1, 0.30);
            let seg = store.create(1);
            for i in 0..pushes {
                store.push(seg, i as u32, &[0.0, 1.0]);
            }
            prop_assert!(store.relocations() > 0, "test premise: segment must grow");
            prop_assert!(
                store.utilization() >= 0.70,
                "utilization {} after {} pushes",
                store.utilization(),
                pushes
            );
        }
    }
}
