/// Exact access counters collected while executing one or more queries.
///
/// Every access method in the repository (adaptive clustering, sequential
/// scan, R*-tree) fills the same structure, so the paper's three reported
/// performance indicators — query execution time, number of accessed
/// clusters/nodes, and size of verified data — all derive from one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Cluster signatures (or tree-node MBBs) tested against the query.
    pub signature_checks: u64,
    /// Clusters (or nodes) actually explored, i.e. whose members were read.
    pub clusters_explored: u64,
    /// Objects individually verified against the selection criterion.
    pub objects_verified: u64,
    /// Bytes of object data actually inspected, accounting for early exit
    /// on the first failing dimension (paper footnote 4).
    pub verified_bytes: u64,
    /// Random accesses needed in the disk scenario (one per explored
    /// cluster or node).
    pub seeks: u64,
    /// Bytes that must be transferred from disk in the disk scenario.
    pub transfer_bytes: u64,
}

impl AccessStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates `other` into `self` (used to aggregate over a query
    /// batch before averaging).
    pub fn merge(&mut self, other: &AccessStats) {
        self.signature_checks += other.signature_checks;
        self.clusters_explored += other.clusters_explored;
        self.objects_verified += other.objects_verified;
        self.verified_bytes += other.verified_bytes;
        self.seeks += other.seeks;
        self.transfer_bytes += other.transfer_bytes;
    }

    /// Divides every counter by `n`, returning per-query averages as
    /// floating-point values.
    pub fn averaged(&self, n: u64) -> AveragedStats {
        let n = n.max(1) as f64;
        AveragedStats {
            signature_checks: self.signature_checks as f64 / n,
            clusters_explored: self.clusters_explored as f64 / n,
            objects_verified: self.objects_verified as f64 / n,
            verified_bytes: self.verified_bytes as f64 / n,
            seeks: self.seeks as f64 / n,
            transfer_bytes: self.transfer_bytes as f64 / n,
        }
    }
}

/// Per-query averages of [`AccessStats`] over a batch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AveragedStats {
    /// Average signature/MBB checks per query.
    pub signature_checks: f64,
    /// Average clusters/nodes explored per query.
    pub clusters_explored: f64,
    /// Average objects verified per query.
    pub objects_verified: f64,
    /// Average verified bytes per query.
    pub verified_bytes: f64,
    /// Average random accesses per query.
    pub seeks: f64,
    /// Average transferred bytes per query.
    pub transfer_bytes: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_all_fields() {
        let mut a = AccessStats {
            signature_checks: 1,
            clusters_explored: 2,
            objects_verified: 3,
            verified_bytes: 4,
            seeks: 5,
            transfer_bytes: 6,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.signature_checks, 2);
        assert_eq!(a.clusters_explored, 4);
        assert_eq!(a.objects_verified, 6);
        assert_eq!(a.verified_bytes, 8);
        assert_eq!(a.seeks, 10);
        assert_eq!(a.transfer_bytes, 12);
    }

    #[test]
    fn averaged_divides_and_guards_zero() {
        let s = AccessStats {
            signature_checks: 10,
            clusters_explored: 20,
            objects_verified: 30,
            verified_bytes: 40,
            seeks: 50,
            transfer_bytes: 60,
        };
        let avg = s.averaged(10);
        assert_eq!(avg.signature_checks, 1.0);
        assert_eq!(avg.transfer_bytes, 6.0);
        // n = 0 must not divide by zero.
        let avg0 = s.averaged(0);
        assert_eq!(avg0.signature_checks, 10.0);
    }
}
