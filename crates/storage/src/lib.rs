//! Storage substrate: device cost profiles, simulated disk, sequential
//! segment store, and a file-backed persistent store.
//!
//! The paper evaluates two storage scenarios (§5):
//!
//! * **Memory** — objects of a cluster are stored sequentially in memory to
//!   maximize locality; costs are signature checks, exploration setup, and
//!   per-byte verification.
//! * **Disk** — cluster members live on external storage, stored
//!   sequentially per cluster; exploring a cluster additionally pays one
//!   random disk access (seek) and a per-byte transfer cost.
//!
//! The original experiments ran on 2004 SCSI hardware (15 ms access time,
//! 20 MB/s sustained transfer, 64 MB RAM cap). This crate reproduces that
//! environment as a **simulation**: query execution collects exact access
//! counters ([`AccessStats`]) which a [`CostModel`] prices with the paper's
//! own Table 2 constants. See DESIGN.md §3 for the substitution rationale.

mod cost;
mod counters;
mod crc;
mod device;
mod file;
mod result;
mod segment;
mod simdisk;
pub mod wal;

pub use cost::CostModel;
pub use counters::{AccessStats, AveragedStats};
pub use crc::crc32;
pub use device::{DeviceProfile, StorageScenario};
pub use file::{ClusterRecord, FileStore, SalvagedStore, StoreError, TailCorruption};
pub use result::{QueryMetrics, QueryResult};
pub use segment::{SegmentColumns, SegmentId, SegmentStore};
pub use simdisk::SimulatedDisk;
pub use wal::{
    BackingStore, FaultInjector, FaultPlan, FileBacking, FlushPolicy, MemBacking, TornTail, Wal,
    WalError, WalRecord, WalReplay,
};
