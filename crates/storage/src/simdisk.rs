use crate::DeviceProfile;

/// A simulated rotational disk: tracks head position and charges seek time
/// for non-sequential accesses and transfer time per byte.
///
/// The experiment harness prices queries with per-cluster seek counting
/// (matching the paper's cost model); `SimulatedDisk` provides the finer
/// head-position model used to validate that assumption: when clusters are
/// explored in layout order, some seeks turn out to be sequential
/// continuations and cost nothing.
#[derive(Debug, Clone)]
pub struct SimulatedDisk {
    profile: DeviceProfile,
    head: u64,
    elapsed_ms: f64,
    seeks: u64,
    bytes_read: u64,
}

impl SimulatedDisk {
    /// New disk with head parked at offset 0.
    pub fn new(profile: DeviceProfile) -> Self {
        Self {
            profile,
            head: 0,
            elapsed_ms: 0.0,
            seeks: 0,
            bytes_read: 0,
        }
    }

    /// Reads `len` bytes starting at `offset`, charging a seek if the head
    /// is not already positioned there.
    pub fn read(&mut self, offset: u64, len: u64) {
        if self.head != offset {
            self.seeks += 1;
            self.elapsed_ms += self.profile.seek_ms;
        }
        self.elapsed_ms += len as f64 * self.profile.transfer_ms_per_byte;
        self.bytes_read += len;
        self.head = offset + len;
    }

    /// Simulated time spent so far (ms).
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_ms
    }

    /// Number of random accesses charged so far.
    pub fn seeks(&self) -> u64 {
        self.seeks
    }

    /// Total bytes transferred.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Current head position (byte offset past the last read).
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Resets time, counters and head position.
    pub fn reset(&mut self) {
        self.head = 0;
        self.elapsed_ms = 0.0;
        self.seeks = 0;
        self.bytes_read = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> SimulatedDisk {
        SimulatedDisk::new(DeviceProfile::edbt2004())
    }

    #[test]
    fn sequential_reads_charge_one_seek() {
        let mut d = disk();
        d.read(0, 1000);
        d.read(1000, 1000);
        d.read(2000, 1000);
        // First read from parked head at 0 is sequential (no seek);
        // subsequent contiguous reads stay sequential.
        assert_eq!(d.seeks(), 0);
        assert_eq!(d.bytes_read(), 3000);
    }

    #[test]
    fn random_reads_charge_seeks() {
        let mut d = disk();
        d.read(5000, 100);
        d.read(0, 100);
        d.read(9000, 100);
        assert_eq!(d.seeks(), 3);
        assert!(d.elapsed_ms() >= 45.0);
    }

    #[test]
    fn transfer_time_matches_profile() {
        let mut d = disk();
        let mib = 1024 * 1024;
        d.read(0, 20 * mib);
        // 20 MiB at 20 MiB/s ≈ 1000 ms.
        assert!((d.elapsed_ms() - 1000.0).abs() < 1.0, "{}", d.elapsed_ms());
    }

    #[test]
    fn reset_clears_state() {
        let mut d = disk();
        d.read(100, 50);
        d.reset();
        assert_eq!(d.seeks(), 0);
        assert_eq!(d.elapsed_ms(), 0.0);
        assert_eq!(d.bytes_read(), 0);
        assert_eq!(d.head(), 0);
    }
}
