//! File-backed persistence with a one-block directory (paper §6, "Fail
//! Recovery").
//!
//! Layout of the store file (all integers little-endian):
//!
//! ```text
//! [magic "ACXF"][version u32][dims u32][cluster_count u32]
//! directory: cluster_count × { offset u64, byte_len u64, crc32 u32 }
//! records:   cluster_count × {
//!     sig_len u32, sig bytes,          // opaque signature blob
//!     n u32, n × id u32, n × 2·dims f32 // sequential members
//! }
//! ```
//!
//! The directory indicates the position of each cluster on disk and
//! carries a CRC-32 of its raw bytes, so a damaged or torn record is
//! detected before it is interpreted. Version 2 added the checksum
//! column; version-1 files are refused as unsupported. Signatures are
//! stored **with** the member objects, so the search structure can be
//! rebuilt after a crash.
//!
//! [`FileStore::load`] is strict: the first record that is short,
//! overlong, or fails its checksum aborts the load with a typed
//! [`StoreError::CorruptTail`] naming the record index and byte offset.
//! [`FileStore::load_salvage`] instead returns the valid prefix along
//! with the same damage report, so recovery can rebuild from every
//! cluster that survived.

use std::io::{self, Write};
use std::path::Path;

use acx_geom::Scalar;

use crate::crc::crc32;

const MAGIC: &[u8; 4] = b"ACXF";
const VERSION: u32 = 2;
const HEADER_LEN: usize = 16;
const DIR_ENTRY_LEN: usize = 20;

/// Errors produced by the persistent store.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not an ACX store or its header/directory is
    /// corrupted.
    Corrupt(String),
    /// The record region is damaged from `record` onward; everything
    /// before it is intact and [`FileStore::load_salvage`] returns it.
    CorruptTail(TailCorruption),
    /// The file uses an unsupported format version.
    UnsupportedVersion(u32),
}

/// Where the record region of a store file stops being trustworthy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailCorruption {
    /// Index of the first damaged record.
    pub record: u32,
    /// Byte offset of that record in the file.
    pub offset: u64,
    /// What failed: checksum, bounds, or structure.
    pub reason: String,
}

impl StoreError {
    /// The underlying [`io::ErrorKind`], when the failure came from the
    /// filesystem.
    pub fn io_kind(&self) -> Option<io::ErrorKind> {
        match self {
            StoreError::Io(e) => Some(e.kind()),
            _ => None,
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Corrupt(why) => write!(f, "corrupt store: {why}"),
            StoreError::CorruptTail(tail) => write!(
                f,
                "corrupt store tail at record {} (byte {}): {}",
                tail.record, tail.offset, tail.reason
            ),
            StoreError::UnsupportedVersion(v) => write!(f, "unsupported store version {v}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// One persisted cluster: opaque signature blob plus sequential members.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRecord {
    /// Serialized cluster signature (interpreted by `acx-core`).
    pub signature: Vec<u8>,
    /// Object identifiers, parallel to `coords`.
    pub ids: Vec<u32>,
    /// Flat coordinates, `2·dims` scalars per object.
    pub coords: Vec<Scalar>,
}

/// What [`FileStore::load_salvage`] rescued from a damaged file.
#[derive(Debug)]
pub struct SalvagedStore {
    /// Dimensionality from the header.
    pub dims: usize,
    /// Every record before the first damaged one.
    pub clusters: Vec<ClusterRecord>,
    /// The damage report, or `None` if the whole file was intact.
    pub corrupt: Option<TailCorruption>,
}

/// Persistent cluster store: saves and restores a set of cluster records.
pub struct FileStore;

impl FileStore {
    /// Writes all cluster records to `path`, atomically and durably
    /// replacing any previous content: the temp file is written and
    /// `fsync`ed before the rename, and the parent directory is
    /// `fsync`ed after it, so a power loss leaves either the old or the
    /// new file — never a torn one, and never a rename that evaporates
    /// with the directory cache. Callers may truncate a WAL the moment
    /// `save` returns. Each record's raw bytes are checksummed into the
    /// directory.
    pub fn save(path: &Path, dims: usize, clusters: &[ClusterRecord]) -> Result<(), StoreError> {
        for (i, c) in clusters.iter().enumerate() {
            if c.coords.len() != c.ids.len() * 2 * dims {
                return Err(StoreError::Corrupt(format!(
                    "cluster {i}: coords/ids arity mismatch"
                )));
            }
        }
        let records: Vec<Vec<u8>> = clusters.iter().map(encode_record).collect();
        let dir_len = clusters.len() * DIR_ENTRY_LEN;
        let mut out =
            Vec::with_capacity(HEADER_LEN + dir_len + records.iter().map(Vec::len).sum::<usize>());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(dims as u32).to_le_bytes());
        out.extend_from_slice(&(clusters.len() as u32).to_le_bytes());
        // Directory block: per-cluster (offset, len, crc); offsets are
        // absolute file positions.
        let mut offset = (HEADER_LEN + dir_len) as u64;
        for rec in &records {
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(rec.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(rec).to_le_bytes());
            offset += rec.len() as u64;
        }
        for rec in &records {
            out.extend_from_slice(rec);
        }
        let tmp = path.with_extension("tmp");
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&out)?;
            // The data must be durable *before* the rename makes it
            // reachable: rename-then-sync can expose a torn file.
            file.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        // The rename itself lives in the directory; without this sync a
        // crash can roll the directory back to the old entry (or to the
        // tmp name) even though the data blocks were flushed.
        let dir = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        std::fs::File::open(dir)?.sync_all()?;
        Ok(())
    }

    /// Loads every cluster record from `path`, verifying each against
    /// its directory checksum. Returns the dimensionality and the
    /// records in directory order; the first damaged record aborts with
    /// [`StoreError::CorruptTail`].
    pub fn load(path: &Path) -> Result<(usize, Vec<ClusterRecord>), StoreError> {
        let salvage = Self::load_salvage(path)?;
        match salvage.corrupt {
            None => Ok((salvage.dims, salvage.clusters)),
            Some(tail) => Err(StoreError::CorruptTail(tail)),
        }
    }

    /// Salvage mode: loads the valid record prefix of a possibly
    /// damaged file, together with a report of where (and why) the
    /// first record failed. Header or directory damage is still a hard
    /// error — without the directory there is no trustworthy prefix.
    pub fn load_salvage(path: &Path) -> Result<SalvagedStore, StoreError> {
        let bytes = std::fs::read(path)?;
        if bytes.len() < 4 || &bytes[..4] != MAGIC {
            return Err(StoreError::Corrupt("bad magic".into()));
        }
        if bytes.len() < HEADER_LEN {
            return Err(StoreError::Corrupt("truncated header".into()));
        }
        let version = read_u32(&bytes, 4);
        if version != VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let dims = read_u32(&bytes, 8) as usize;
        if dims == 0 {
            return Err(StoreError::Corrupt("zero dimensions".into()));
        }
        let count = read_u32(&bytes, 12) as usize;
        if bytes.len() < HEADER_LEN + count * DIR_ENTRY_LEN {
            return Err(StoreError::Corrupt(format!(
                "directory truncated: {} records declared, {} bytes present",
                count,
                bytes.len()
            )));
        }
        let mut clusters = Vec::with_capacity(count);
        let mut corrupt = None;
        for i in 0..count {
            let entry = HEADER_LEN + i * DIR_ENTRY_LEN;
            let offset = read_u64(&bytes, entry);
            let len = read_u64(&bytes, entry + 8);
            let crc = read_u32(&bytes, entry + 16);
            match check_record(&bytes, dims, offset, len, crc) {
                Ok(record) => clusters.push(record),
                Err(reason) => {
                    corrupt = Some(TailCorruption {
                        record: i as u32,
                        offset,
                        reason,
                    });
                    break;
                }
            }
        }
        Ok(SalvagedStore {
            dims,
            clusters,
            corrupt,
        })
    }
}

fn encode_record(c: &ClusterRecord) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(4 + c.signature.len() + 4 + c.ids.len() * 4 + c.coords.len() * 4);
    out.extend_from_slice(&(c.signature.len() as u32).to_le_bytes());
    out.extend_from_slice(&c.signature);
    out.extend_from_slice(&(c.ids.len() as u32).to_le_bytes());
    for id in &c.ids {
        out.extend_from_slice(&id.to_le_bytes());
    }
    for v in &c.coords {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Verifies one record's bounds, checksum, and structure; returns the
/// parsed record or the failure reason.
fn check_record(
    bytes: &[u8],
    dims: usize,
    offset: u64,
    len: u64,
    crc: u32,
) -> Result<ClusterRecord, String> {
    let start = usize::try_from(offset).map_err(|_| "offset overflow".to_string())?;
    let rec_len = usize::try_from(len).map_err(|_| "length overflow".to_string())?;
    let raw = start
        .checked_add(rec_len)
        .and_then(|end| bytes.get(start..end))
        .ok_or_else(|| format!("record [{offset}, +{len}) extends past end of file"))?;
    let actual = crc32(raw);
    if actual != crc {
        return Err(format!(
            "checksum mismatch: directory {crc:#010x}, record {actual:#010x}"
        ));
    }
    if raw.len() < 4 {
        return Err("record shorter than its signature length field".into());
    }
    let sig_len = read_u32(raw, 0) as usize;
    if raw.len() < 4 + sig_len + 4 {
        return Err("record shorter than its signature".into());
    }
    let signature = raw[4..4 + sig_len].to_vec();
    let n = read_u32(raw, 4 + sig_len) as usize;
    // Checked arithmetic: `n` and `dims` come from the file, and in a
    // release build `n * 8 * dims` can wrap to match `raw.len()` on a
    // crafted record, driving huge allocations below. Overflow means
    // the declared sizes cannot describe this record — reject it.
    let expected = n
        .checked_mul(4)
        .and_then(|ids| Some((ids, n.checked_mul(8)?.checked_mul(dims)?)))
        .and_then(|(ids, coords)| (4 + sig_len + 4).checked_add(ids)?.checked_add(coords))
        .ok_or_else(|| format!("record length overflows ({n} members, {dims} dims)"))?;
    if expected != raw.len() {
        return Err(format!("directory len {len} != record len {expected}"));
    }
    let mut ids = Vec::with_capacity(n);
    let ids_at = 4 + sig_len + 4;
    for j in 0..n {
        ids.push(read_u32(raw, ids_at + j * 4));
    }
    let mut coords = Vec::with_capacity(n * 2 * dims);
    let coords_at = ids_at + n * 4;
    for j in 0..n * 2 * dims {
        let at = coords_at + j * 4;
        coords.push(Scalar::from_le_bytes(raw[at..at + 4].try_into().unwrap()));
    }
    Ok(ClusterRecord {
        signature,
        ids,
        coords,
    })
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "acx-filestore-{}-{}-{name}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        p
    }

    fn sample_clusters() -> Vec<ClusterRecord> {
        vec![
            ClusterRecord {
                signature: vec![1, 2, 3],
                ids: vec![10, 11],
                coords: vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
            },
            ClusterRecord {
                signature: vec![],
                ids: vec![],
                coords: vec![],
            },
            ClusterRecord {
                signature: vec![0xFF; 64],
                ids: vec![42],
                coords: vec![0.0, 1.0, 0.25, 0.75],
            },
        ]
    }

    #[test]
    fn save_load_roundtrip() {
        let path = temp_path("roundtrip");
        let clusters = sample_clusters();
        FileStore::save(&path, 2, &clusters).unwrap();
        let (dims, loaded) = FileStore::load(&path).unwrap();
        assert_eq!(dims, 2);
        assert_eq!(loaded, clusters);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn save_rejects_arity_mismatch() {
        let path = temp_path("arity");
        let bad = vec![ClusterRecord {
            signature: vec![],
            ids: vec![1],
            coords: vec![0.0, 1.0], // needs 4 scalars for 2 dims
        }];
        assert!(matches!(
            FileStore::save(&path, 2, &bad),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn load_rejects_bad_magic() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOPE....").unwrap();
        assert!(matches!(
            FileStore::load(&path),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_truncated_file_but_salvages_prefix() {
        let path = temp_path("trunc");
        let clusters = sample_clusters();
        FileStore::save(&path, 2, &clusters).unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 5]).unwrap();
        // Strict load refuses, naming the damaged record.
        match FileStore::load(&path) {
            Err(StoreError::CorruptTail(tail)) => assert_eq!(tail.record, 2),
            other => panic!("expected CorruptTail, got {other:?}"),
        }
        // Salvage returns the two intact records.
        let salvage = FileStore::load_salvage(&path).unwrap();
        assert_eq!(salvage.dims, 2);
        assert_eq!(salvage.clusters, clusters[..2]);
        let tail = salvage.corrupt.unwrap();
        assert_eq!(tail.record, 2);
        assert!(tail.reason.contains("past end of file"), "{}", tail.reason);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_future_version() {
        let path = temp_path("version");
        let mut data = Vec::new();
        data.extend_from_slice(MAGIC);
        data.extend_from_slice(&99u32.to_le_bytes());
        data.extend_from_slice(&2u32.to_le_bytes());
        data.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(
            FileStore::load(&path),
            Err(StoreError::UnsupportedVersion(99))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flip_in_record_is_caught_by_checksum() {
        let path = temp_path("bitflip");
        let clusters = sample_clusters();
        FileStore::save(&path, 2, &clusters).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        // Flip one bit in the *first* record's payload (just past the
        // directory: header + 3 × 20-byte entries).
        let first_record = 16 + 3 * 20;
        data[first_record + 6] ^= 0x01;
        std::fs::write(&path, &data).unwrap();
        match FileStore::load(&path) {
            Err(StoreError::CorruptTail(tail)) => {
                assert_eq!(tail.record, 0);
                assert_eq!(tail.offset, first_record as u64);
                assert!(tail.reason.contains("checksum"), "{}", tail.reason);
            }
            other => panic!("expected CorruptTail, got {other:?}"),
        }
        // Salvage rescues nothing before record 0 but does not fail.
        let salvage = FileStore::load_salvage(&path).unwrap();
        assert!(salvage.clusters.is_empty());
        assert!(salvage.corrupt.is_some());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn salvage_of_intact_file_reports_no_corruption() {
        let path = temp_path("intact");
        FileStore::save(&path, 2, &sample_clusters()).unwrap();
        let salvage = FileStore::load_salvage(&path).unwrap();
        assert_eq!(salvage.clusters, sample_clusters());
        assert!(salvage.corrupt.is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn directory_truncation_is_a_hard_error() {
        let path = temp_path("dirtrunc");
        FileStore::save(&path, 2, &sample_clusters()).unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..16 + 10]).unwrap(); // mid-directory
        assert!(matches!(
            FileStore::load_salvage(&path),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn hostile_member_count_is_rejected_without_allocating() {
        // A crafted record whose declared member count × dims overflows
        // the expected-length arithmetic: the CRC is valid, so only the
        // checked size computation stands between the file and a huge
        // `Vec::with_capacity`. It must fail as a typed corrupt tail.
        let path = temp_path("overflow");
        let record: Vec<u8> = [0u32.to_le_bytes(), u32::MAX.to_le_bytes()].concat();
        let mut data = Vec::new();
        data.extend_from_slice(MAGIC);
        data.extend_from_slice(&VERSION.to_le_bytes());
        data.extend_from_slice(&0x4000_0000u32.to_le_bytes()); // dims
        data.extend_from_slice(&1u32.to_le_bytes()); // one record
        data.extend_from_slice(&((HEADER_LEN + DIR_ENTRY_LEN) as u64).to_le_bytes());
        data.extend_from_slice(&(record.len() as u64).to_le_bytes());
        data.extend_from_slice(&crc32(&record).to_le_bytes());
        data.extend_from_slice(&record);
        std::fs::write(&path, &data).unwrap();
        match FileStore::load(&path) {
            Err(StoreError::CorruptTail(tail)) => {
                assert_eq!(tail.record, 0);
                assert!(tail.reason.contains("overflow"), "{}", tail.reason);
            }
            other => panic!("expected CorruptTail, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn save_overwrites_atomically() {
        let path = temp_path("atomic");
        FileStore::save(&path, 2, &sample_clusters()).unwrap();
        let one = vec![ClusterRecord {
            signature: vec![7],
            ids: vec![1],
            coords: vec![0.0, 0.5, 0.5, 1.0],
        }];
        FileStore::save(&path, 2, &one).unwrap();
        let (_, loaded) = FileStore::load(&path).unwrap();
        assert_eq!(loaded, one);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_store_roundtrip() {
        let path = temp_path("empty");
        FileStore::save(&path, 5, &[]).unwrap();
        let (dims, loaded) = FileStore::load(&path).unwrap();
        assert_eq!(dims, 5);
        assert!(loaded.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn store_error_paths_carry_context() {
        let io_err: StoreError = io::Error::new(io::ErrorKind::PermissionDenied, "no").into();
        assert_eq!(io_err.io_kind(), Some(io::ErrorKind::PermissionDenied));
        assert!(std::error::Error::source(&io_err).is_some());
        assert!(io_err.to_string().contains("i/o error"));

        let tail = StoreError::CorruptTail(TailCorruption {
            record: 3,
            offset: 128,
            reason: "checksum mismatch".into(),
        });
        assert!(tail.to_string().contains("record 3"));
        assert!(tail.to_string().contains("byte 128"));
        assert!(tail.io_kind().is_none());

        for e in [
            StoreError::Corrupt("x".into()),
            StoreError::UnsupportedVersion(9),
        ] {
            assert!(!e.to_string().is_empty());
            assert!(std::error::Error::source(&e).is_none());
        }

        let missing = FileStore::load(Path::new("/nonexistent/acx-store")).unwrap_err();
        assert_eq!(missing.io_kind(), Some(io::ErrorKind::NotFound));
    }
}
