//! File-backed persistence with a one-block directory (paper §6, "Fail
//! Recovery").
//!
//! Layout of the store file (all integers little-endian):
//!
//! ```text
//! [magic "ACXF"][version u32][dims u32][cluster_count u32]
//! directory: cluster_count × { offset u64, byte_len u64 }
//! records:   cluster_count × {
//!     sig_len u32, sig bytes,          // opaque signature blob
//!     n u32, n × id u32, n × 2·dims f32 // sequential members
//! }
//! ```
//!
//! The directory indicates the position of each cluster on disk; signatures
//! are stored **with** the member objects, so the search structure can be
//! rebuilt after a crash without replaying statistics (the paper notes
//! statistics can simply be re-gathered).

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use acx_geom::Scalar;

const MAGIC: &[u8; 4] = b"ACXF";
const VERSION: u32 = 1;

/// Errors produced by the persistent store.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not an ACX store or is corrupted.
    Corrupt(String),
    /// The file uses an unsupported format version.
    UnsupportedVersion(u32),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Corrupt(why) => write!(f, "corrupt store: {why}"),
            StoreError::UnsupportedVersion(v) => write!(f, "unsupported store version {v}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// One persisted cluster: opaque signature blob plus sequential members.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRecord {
    /// Serialized cluster signature (interpreted by `acx-core`).
    pub signature: Vec<u8>,
    /// Object identifiers, parallel to `coords`.
    pub ids: Vec<u32>,
    /// Flat coordinates, `2·dims` scalars per object.
    pub coords: Vec<Scalar>,
}

/// Persistent cluster store: saves and restores a set of cluster records.
pub struct FileStore;

impl FileStore {
    /// Writes all cluster records to `path`, atomically replacing any
    /// previous content (write to temp file + rename).
    pub fn save(path: &Path, dims: usize, clusters: &[ClusterRecord]) -> Result<(), StoreError> {
        for (i, c) in clusters.iter().enumerate() {
            if c.coords.len() != c.ids.len() * 2 * dims {
                return Err(StoreError::Corrupt(format!(
                    "cluster {i}: coords/ids arity mismatch"
                )));
            }
        }
        let tmp = path.with_extension("tmp");
        {
            let mut w = BufWriter::new(File::create(&tmp)?);
            w.write_all(MAGIC)?;
            w.write_all(&VERSION.to_le_bytes())?;
            w.write_all(&(dims as u32).to_le_bytes())?;
            w.write_all(&(clusters.len() as u32).to_le_bytes())?;

            // Directory block: per-cluster (offset, len); offsets are
            // relative to the end of the directory.
            let header_len = 4 + 4 + 4 + 4;
            let dir_len = clusters.len() * 16;
            let mut offset = (header_len + dir_len) as u64;
            for c in clusters {
                let len = 4 + c.signature.len() + 4 + c.ids.len() * 4 + c.coords.len() * 4;
                w.write_all(&offset.to_le_bytes())?;
                w.write_all(&(len as u64).to_le_bytes())?;
                offset += len as u64;
            }
            for c in clusters {
                w.write_all(&(c.signature.len() as u32).to_le_bytes())?;
                w.write_all(&c.signature)?;
                w.write_all(&(c.ids.len() as u32).to_le_bytes())?;
                for id in &c.ids {
                    w.write_all(&id.to_le_bytes())?;
                }
                for v in &c.coords {
                    w.write_all(&v.to_le_bytes())?;
                }
            }
            w.flush()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads every cluster record from `path`. Returns the dimensionality
    /// and the records in directory order.
    pub fn load(path: &Path) -> Result<(usize, Vec<ClusterRecord>), StoreError> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(StoreError::Corrupt("bad magic".into()));
        }
        let version = read_u32(&mut r)?;
        if version != VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let dims = read_u32(&mut r)? as usize;
        if dims == 0 {
            return Err(StoreError::Corrupt("zero dimensions".into()));
        }
        let count = read_u32(&mut r)? as usize;
        let mut directory = Vec::with_capacity(count);
        for _ in 0..count {
            let offset = read_u64(&mut r)?;
            let len = read_u64(&mut r)?;
            directory.push((offset, len));
        }
        let mut clusters = Vec::with_capacity(count);
        for (i, (offset, len)) in directory.into_iter().enumerate() {
            r.seek(SeekFrom::Start(offset))?;
            let sig_len = read_u32(&mut r)? as usize;
            let mut signature = vec![0u8; sig_len];
            r.read_exact(&mut signature)?;
            let n = read_u32(&mut r)? as usize;
            let expected = 4 + sig_len + 4 + n * 4 + n * 8 * dims;
            if expected as u64 != len {
                return Err(StoreError::Corrupt(format!(
                    "cluster {i}: directory len {len} != record len {expected}"
                )));
            }
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                ids.push(read_u32(&mut r)?);
            }
            let mut coords = Vec::with_capacity(n * 2 * dims);
            let mut buf = [0u8; 4];
            for _ in 0..n * 2 * dims {
                r.read_exact(&mut buf)?;
                coords.push(Scalar::from_le_bytes(buf));
            }
            clusters.push(ClusterRecord {
                signature,
                ids,
                coords,
            });
        }
        Ok((dims, clusters))
    }
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, StoreError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, StoreError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "acx-filestore-{}-{}-{name}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        p
    }

    fn sample_clusters() -> Vec<ClusterRecord> {
        vec![
            ClusterRecord {
                signature: vec![1, 2, 3],
                ids: vec![10, 11],
                coords: vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
            },
            ClusterRecord {
                signature: vec![],
                ids: vec![],
                coords: vec![],
            },
            ClusterRecord {
                signature: vec![0xFF; 64],
                ids: vec![42],
                coords: vec![0.0, 1.0, 0.25, 0.75],
            },
        ]
    }

    #[test]
    fn save_load_roundtrip() {
        let path = temp_path("roundtrip");
        let clusters = sample_clusters();
        FileStore::save(&path, 2, &clusters).unwrap();
        let (dims, loaded) = FileStore::load(&path).unwrap();
        assert_eq!(dims, 2);
        assert_eq!(loaded, clusters);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn save_rejects_arity_mismatch() {
        let path = temp_path("arity");
        let bad = vec![ClusterRecord {
            signature: vec![],
            ids: vec![1],
            coords: vec![0.0, 1.0], // needs 4 scalars for 2 dims
        }];
        assert!(matches!(
            FileStore::save(&path, 2, &bad),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn load_rejects_bad_magic() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOPE....").unwrap();
        assert!(matches!(
            FileStore::load(&path),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_truncated_file() {
        let path = temp_path("trunc");
        let clusters = sample_clusters();
        FileStore::save(&path, 2, &clusters).unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 5]).unwrap();
        assert!(FileStore::load(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_future_version() {
        let path = temp_path("version");
        let mut data = Vec::new();
        data.extend_from_slice(MAGIC);
        data.extend_from_slice(&99u32.to_le_bytes());
        data.extend_from_slice(&2u32.to_le_bytes());
        data.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(
            FileStore::load(&path),
            Err(StoreError::UnsupportedVersion(99))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn save_overwrites_atomically() {
        let path = temp_path("atomic");
        FileStore::save(&path, 2, &sample_clusters()).unwrap();
        let one = vec![ClusterRecord {
            signature: vec![7],
            ids: vec![1],
            coords: vec![0.0, 0.5, 0.5, 1.0],
        }];
        FileStore::save(&path, 2, &one).unwrap();
        let (_, loaded) = FileStore::load(&path).unwrap();
        assert_eq!(loaded, one);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_store_roundtrip() {
        let path = temp_path("empty");
        FileStore::save(&path, 5, &[]).unwrap();
        let (dims, loaded) = FileStore::load(&path).unwrap();
        assert_eq!(dims, 5);
        assert!(loaded.is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
