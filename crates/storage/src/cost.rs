use crate::{AccessStats, DeviceProfile, StorageScenario};

/// The paper's cost model (§5): prices cluster explorations and whole
/// queries for a given storage scenario and object size.
///
/// The expected query time attributed to a cluster `c` is
///
/// ```text
/// T_c = A + p_c · (B + n_c · C)
/// ```
///
/// where `p_c` is the cluster's access probability, `n_c` its object count,
/// and:
///
/// * `A` — signature verification time,
/// * `B` — exploration setup (memory) plus one disk access (disk scenario),
/// * `C` — per-object verification time (memory) plus per-object transfer
///   time (disk scenario).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    profile: DeviceProfile,
    scenario: StorageScenario,
    object_bytes: usize,
}

impl CostModel {
    /// Builds a cost model for the scenario, pricing objects of
    /// `object_bytes` bytes (see [`acx_geom::object_size_bytes`]).
    pub fn new(profile: DeviceProfile, scenario: StorageScenario, object_bytes: usize) -> Self {
        Self {
            profile,
            scenario,
            object_bytes,
        }
    }

    /// Memory-scenario model on the paper's reference platform.
    pub fn memory(object_bytes: usize) -> Self {
        Self::new(
            DeviceProfile::edbt2004(),
            StorageScenario::Memory,
            object_bytes,
        )
    }

    /// Disk-scenario model on the paper's reference platform.
    pub fn disk(object_bytes: usize) -> Self {
        Self::new(
            DeviceProfile::edbt2004(),
            StorageScenario::Disk,
            object_bytes,
        )
    }

    /// The storage scenario this model prices.
    pub fn scenario(&self) -> StorageScenario {
        self.scenario
    }

    /// The device profile behind this model.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Object size in bytes used for `C`.
    pub fn object_bytes(&self) -> usize {
        self.object_bytes
    }

    /// Model parameter `A`: cluster signature verification time (ms).
    #[inline]
    pub fn a(&self) -> f64 {
        self.profile.signature_check_ms
    }

    /// Model parameter `B`: cluster exploration preparation time (ms).
    /// In the disk scenario this includes one random disk access.
    #[inline]
    pub fn b(&self) -> f64 {
        match self.scenario {
            StorageScenario::Memory => self.profile.exploration_setup_ms,
            StorageScenario::Disk => self.profile.exploration_setup_ms + self.profile.seek_ms,
        }
    }

    /// Model parameter `C`: per-object check time (ms). In the disk
    /// scenario this includes transferring the object from disk.
    #[inline]
    pub fn c(&self) -> f64 {
        self.c_verify() + self.c_transfer()
    }

    /// CPU verification component of `C`: time to check one full object
    /// (ms). Callers that account for early-exit verification (paper
    /// footnote 4) scale this component by the observed checked-bytes
    /// fraction.
    #[inline]
    pub fn c_verify(&self) -> f64 {
        self.object_bytes as f64 * self.profile.verify_ms_per_byte
    }

    /// Transfer component of `C` (ms): zero in memory, one object's disk
    /// transfer in the disk scenario. Transfer always moves the whole
    /// object regardless of early-exit verification.
    #[inline]
    pub fn c_transfer(&self) -> f64 {
        match self.scenario {
            StorageScenario::Memory => 0.0,
            StorageScenario::Disk => self.object_bytes as f64 * self.profile.transfer_ms_per_byte,
        }
    }

    /// Expected per-query time `T = A + p·(B + n·C)` for a cluster with
    /// access probability `p` and `n` objects (ms).
    pub fn expected_cluster_time(&self, p: f64, n: usize) -> f64 {
        self.a() + p * (self.b() + n as f64 * self.c())
    }

    /// Prices a set of measured access counters (ms).
    ///
    /// Unlike [`CostModel::expected_cluster_time`], which the index uses
    /// *prospectively* to decide reorganizations, this prices what a query
    /// *actually did*: signature checks, explorations, byte verifications,
    /// and — in the disk scenario — seeks and transfers.
    pub fn price(&self, stats: &AccessStats) -> f64 {
        let mut ms = stats.signature_checks as f64 * self.profile.signature_check_ms
            + stats.clusters_explored as f64 * self.profile.exploration_setup_ms
            + stats.verified_bytes as f64 * self.profile.verify_ms_per_byte;
        if self.scenario == StorageScenario::Disk {
            ms += stats.seeks as f64 * self.profile.seek_ms
                + stats.transfer_bytes as f64 * self.profile.transfer_ms_per_byte;
        }
        ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OBJ_16D: usize = 132; // 4 + 8·16

    #[test]
    fn memory_parameters() {
        let m = CostModel::memory(OBJ_16D);
        assert_eq!(m.a(), 5e-7);
        assert_eq!(m.b(), 1e-3);
        // C = 132 bytes · ≈3.18e-6 ms/B ≈ 4.2e-4 ms (Table 2 rounds the rate).
        assert!((m.c() - 132.0 * 3.18e-6).abs() / m.c() < 1e-2);
    }

    #[test]
    fn disk_parameters_add_seek_and_transfer() {
        let mem = CostModel::memory(OBJ_16D);
        let disk = CostModel::disk(OBJ_16D);
        assert_eq!(disk.a(), mem.a());
        assert!((disk.b() - (mem.b() + 15.0)).abs() < 1e-9);
        assert!(disk.c() > mem.c());
        // C' − C = transfer time of one object.
        let delta = disk.c() - mem.c();
        assert!((delta - 132.0 * 4.77e-5).abs() / delta < 1e-2);
    }

    #[test]
    fn expected_time_formula() {
        let m = CostModel::memory(OBJ_16D);
        let t = m.expected_cluster_time(0.5, 1000);
        let manual = m.a() + 0.5 * (m.b() + 1000.0 * m.c());
        assert!((t - manual).abs() < 1e-12);
    }

    #[test]
    fn zero_probability_cluster_costs_only_signature_check() {
        let m = CostModel::disk(OBJ_16D);
        assert_eq!(m.expected_cluster_time(0.0, 10_000), m.a());
    }

    #[test]
    fn price_counts_scenario_specific_costs() {
        let stats = AccessStats {
            signature_checks: 100,
            clusters_explored: 10,
            objects_verified: 1000,
            verified_bytes: 132_000,
            seeks: 10,
            transfer_bytes: 132_000,
        };
        let mem = CostModel::memory(OBJ_16D).price(&stats);
        let disk = CostModel::disk(OBJ_16D).price(&stats);
        // Disk adds 10 seeks (150 ms) plus transfer.
        assert!(disk > mem + 150.0 - 1e-6);
        let expected_mem =
            100.0 * 5e-7 + 10.0 * 1e-3 + 132_000.0 * DeviceProfile::edbt2004().verify_ms_per_byte;
        assert!((mem - expected_mem).abs() < 1e-9);
    }

    #[test]
    fn seq_scan_disk_cost_dominated_by_transfer() {
        // A 251 MiB database read sequentially should take ≈ 12.5 s at
        // 20 MiB/s — the flat SS line in Fig. 7 chart B.
        let db_bytes = 2_000_000u64 * OBJ_16D as u64;
        let stats = AccessStats {
            signature_checks: 1,
            clusters_explored: 1,
            objects_verified: 2_000_000,
            verified_bytes: db_bytes,
            seeks: 1,
            transfer_bytes: db_bytes,
        };
        let disk_ms = CostModel::disk(OBJ_16D).price(&stats);
        assert!(disk_ms > 12_000.0 && disk_ms < 15_000.0, "got {disk_ms}");
    }
}
