//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) — the checksum guarding
//! every WAL frame and every checkpoint record. Implemented in-tree
//! (table-driven, byte-at-a-time) so the storage crate stays
//! dependency-free; throughput is irrelevant next to the I/O it guards.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (IEEE, reflected, init and final XOR `!0`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"adaptive clustering".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut corrupted = base.clone();
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), reference, "flip at byte {i} bit {bit}");
            }
        }
    }
}
