//! Benefit functions driving the clustering strategy (paper §5).
//!
//! Both functions derive from the per-cluster expected query time
//! `T = A + p·(B + n·C)` (see [`acx_storage::CostModel`]):
//!
//! * **materialization**: `β(s, c) = (p_c − p_s)·n_s·C − p_s·B − A`
//!   — positive when carving candidate `s` out of cluster `c` lowers the
//!   expected time, i.e. when the candidate is explored sufficiently less
//!   often than its parent (`p_s < p_c`) and holds enough objects.
//! * **merging**: `μ(c, a) = A + p_c·B − (p_a − p_c)·n_c·C`
//!   — positive when maintaining `c` separately from its parent `a` no
//!   longer pays: the saved signature check and exploration setup outweigh
//!   the extra verifications caused by folding `c`'s objects into `a`.
//!
//! The functions take the cost terms as scalars so callers can refine
//! them: the index passes an *effective* `C` that scales the verification
//! component by the measured early-exit fraction (an object is rejected
//! on its first failing dimension — paper footnote 4 — so verifying one
//! object rarely touches all of its bytes).

/// Materialization benefit `β(s, c)` in milliseconds per query.
///
/// * `a`, `b`, `c` — the cost model terms (signature check, exploration
///   setup, per-object verification),
/// * `p_c` — access probability of the existing cluster,
/// * `p_s` — access probability of the candidate subcluster,
/// * `n_s` — number of the cluster's objects qualifying for the candidate.
///
/// Derivation (§5): before the split the candidate's objects are verified
/// whenever `c` is explored; after, they are verified only when `s` is
/// explored (`p_s ≤ p_c` by backward compatibility), at the price of one
/// extra signature check (`A`) on every query and an exploration setup
/// (`B`) whenever `s` is explored.
#[inline]
pub fn materialization_benefit(a: f64, b: f64, c: f64, p_c: f64, p_s: f64, n_s: usize) -> f64 {
    (p_c - p_s) * n_s as f64 * c - p_s * b - a
}

/// Merging benefit `μ(c, a)` in milliseconds per query.
///
/// * `p_c` — access probability of the cluster considered for removal,
/// * `p_a` — access probability of its parent,
/// * `n_c` — number of objects in the cluster.
///
/// Mirror image of materialization: merging saves `A` on every query and
/// `p_c·B` of exploration setup, but the parent's explorations now verify
/// `n_c` extra objects `(p_a − p_c)` of the time.
#[inline]
pub fn merging_benefit(a: f64, b: f64, c: f64, p_c: f64, p_a: f64, n_c: usize) -> f64 {
    a + p_c * b - (p_a - p_c) * n_c as f64 * c
}

#[cfg(test)]
mod tests {
    use super::*;
    use acx_geom::object_size_bytes;
    use acx_storage::CostModel;

    fn mem_terms() -> (f64, f64, f64) {
        let m = CostModel::memory(object_size_bytes(16));
        (m.a(), m.b(), m.c())
    }

    fn disk_terms() -> (f64, f64, f64) {
        let m = CostModel::disk(object_size_bytes(16));
        (m.a(), m.b(), m.c())
    }

    #[test]
    fn materialization_profitable_for_cold_populated_candidate() {
        let (a, b, c) = mem_terms();
        // Parent explored on every query, candidate on 1 %: moving 10,000
        // objects out saves ~0.99·10000·C per query.
        let benefit = materialization_benefit(a, b, c, 1.0, 0.01, 10_000);
        assert!(benefit > 0.0, "benefit {benefit}");
    }

    #[test]
    fn materialization_unprofitable_for_hot_candidate() {
        let (a, b, c) = mem_terms();
        // Candidate explored as often as the parent: only costs are added.
        let benefit = materialization_benefit(a, b, c, 0.8, 0.8, 10_000);
        assert!(benefit < 0.0, "benefit {benefit}");
    }

    #[test]
    fn materialization_unprofitable_for_tiny_candidate() {
        let (a, b, c) = mem_terms();
        // One object saves at most C per query — below A + p_s·B.
        let benefit = materialization_benefit(a, b, c, 1.0, 0.9, 1);
        assert!(benefit < 0.0, "benefit {benefit}");
    }

    #[test]
    fn disk_seek_raises_split_threshold() {
        // On disk, B includes a 15 ms seek: a candidate must be much
        // larger (or much colder) to justify materialization — this is
        // why the paper reports far fewer clusters on disk.
        let n = 200;
        let (p_c, p_s) = (1.0, 0.5);
        let (a, b, c) = mem_terms();
        let mem = materialization_benefit(a, b, c, p_c, p_s, n);
        let (a, b, c) = disk_terms();
        let disk = materialization_benefit(a, b, c, p_c, p_s, n);
        assert!(mem > 0.0, "memory benefit {mem}");
        assert!(disk < 0.0, "disk benefit {disk}");
    }

    #[test]
    fn smaller_effective_c_discourages_splits() {
        // Early-exit verification makes scanning cheaper than the full
        // object size suggests, so the same candidate can be unprofitable
        // under the effective C.
        let (a, b, c) = mem_terms();
        let n = 6;
        let full = materialization_benefit(a, b, c, 1.0, 0.5, n);
        let effective = materialization_benefit(a, b, c * 0.1, 1.0, 0.5, n);
        assert!(full > 0.0);
        assert!(effective < 0.0, "effective benefit {effective}");
    }

    #[test]
    fn merging_profitable_when_probabilities_converge() {
        let (a, b, c) = mem_terms();
        // Child explored almost as often as parent → keeping it separate
        // costs A + p·B for nothing.
        let benefit = merging_benefit(a, b, c, 0.95, 1.0, 20);
        assert!(benefit > 0.0, "benefit {benefit}");
    }

    #[test]
    fn merging_profitable_when_cluster_empties() {
        let (a, b, c) = mem_terms();
        let benefit = merging_benefit(a, b, c, 0.2, 1.0, 0);
        assert!(benefit > 0.0, "benefit {benefit}");
    }

    #[test]
    fn merging_unprofitable_for_cold_large_cluster() {
        let (a, b, c) = mem_terms();
        let benefit = merging_benefit(a, b, c, 0.01, 1.0, 50_000);
        assert!(benefit < 0.0, "benefit {benefit}");
    }

    #[test]
    fn merge_and_split_are_exact_negations() {
        // β(s,c) > 0 should imply μ(s→c-after-split) < 0 for the same
        // statistics: a just-materialized profitable cluster must not be
        // immediately merged back.
        let (a, b, c) = mem_terms();
        let (p_c, p_s, n_s) = (1.0, 0.05, 5_000);
        let beta = materialization_benefit(a, b, c, p_c, p_s, n_s);
        let mu = merging_benefit(a, b, c, p_s, p_c, n_s);
        assert!(beta > 0.0);
        assert!(mu < 0.0);
        assert!((beta + mu).abs() < 1e-12, "β and μ are exact negations");
    }
}
