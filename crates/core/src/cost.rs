//! Benefit functions driving the clustering strategy (paper §5).
//!
//! Both functions derive from the per-cluster expected query time
//! `T = A + p·(B + n·C)` (see [`acx_storage::CostModel`]):
//!
//! * **materialization**: `β(s, c) = (p_c − p_s)·n_s·C − p_s·B − A`
//!   — positive when carving candidate `s` out of cluster `c` lowers the
//!   expected time, i.e. when the candidate is explored sufficiently less
//!   often than its parent (`p_s < p_c`) and holds enough objects.
//! * **merging**: `μ(c, a) = A + p_c·B − (p_a − p_c)·n_c·C`
//!   — positive when maintaining `c` separately from its parent `a` no
//!   longer pays: the saved signature check and exploration setup outweigh
//!   the extra verifications caused by folding `c`'s objects into `a`.
//!
//! The functions take the cost terms as scalars so callers can refine
//! them: the index passes an *effective* `C` that scales the verification
//! component by the measured early-exit fraction (an object is rejected
//! on its first failing dimension — paper footnote 4 — so verifying one
//! object rarely touches all of its bytes).

/// Materialization benefit `β(s, c)` in milliseconds per query.
///
/// * `a`, `b`, `c` — the cost model terms (signature check, exploration
///   setup, per-object verification),
/// * `p_c` — access probability of the existing cluster,
/// * `p_s` — access probability of the candidate subcluster,
/// * `n_s` — number of the cluster's objects qualifying for the candidate.
///
/// Derivation (§5): before the split the candidate's objects are verified
/// whenever `c` is explored; after, they are verified only when `s` is
/// explored (`p_s ≤ p_c` by backward compatibility), at the price of one
/// extra signature check (`A`) on every query and an exploration setup
/// (`B`) whenever `s` is explored.
#[inline]
pub fn materialization_benefit(a: f64, b: f64, c: f64, p_c: f64, p_s: f64, n_s: usize) -> f64 {
    (p_c - p_s) * n_s as f64 * c - p_s * b - a
}

/// Merging benefit `μ(c, a)` in milliseconds per query.
///
/// * `p_c` — access probability of the cluster considered for removal,
/// * `p_a` — access probability of its parent,
/// * `n_c` — number of objects in the cluster.
///
/// Mirror image of materialization: merging saves `A` on every query and
/// `p_c·B` of exploration setup, but the parent's explorations now verify
/// `n_c` extra objects `(p_a − p_c)` of the time.
#[inline]
pub fn merging_benefit(a: f64, b: f64, c: f64, p_c: f64, p_a: f64, n_c: usize) -> f64 {
    a + p_c * b - (p_a - p_c) * n_c as f64 * c
}

/// Relative deflation applied to the reciprocal in
/// [`materialization_benefit_column`]: four thousand times the
/// accumulated relative rounding error of the reciprocal rewrite, so the
/// column's probability under-estimates — and therefore its benefit
/// over-estimates — are *sound* bounds, not approximations that could
/// flip a comparison.
const RECIPROCAL_SLACK: f64 = 1e-12;

/// Sound per-candidate **upper bounds** on the materialization benefits
/// of one cluster's whole candidate set, evaluated in a single
/// branch-free pass over the [`crate::candidates::CandidateSet`] counter
/// columns (`n`, `q`, `q_eff`) into a benefit column. On x86_64 the
/// pass is dispatched to an AVX2-compiled clone when the CPU supports
/// it (runtime-detected once, like the scan kernels' byte fills).
///
/// Each element prices the scalar expression `materialization_benefit(a,
/// b, c, p_c, p_s, n)` with the candidate's access probability replaced
/// by `(q_eff + q) · (1 − 1e-12)/denom` — one hoisted reciprocal
/// multiply instead of a division per candidate. The deflated
/// reciprocal under-estimates every true `p_s` by construction (the
/// slack dwarfs the reciprocal's rounding error), and the benefit is
/// monotonically non-increasing in `p_s` under IEEE rounding, so every
/// column element is `≥` the exact scalar benefit while staying within
/// a few parts in 10¹² of it. A candidate whose *bound* already fails a
/// threshold is provably rejected by the exact arithmetic too; the
/// caller re-prices the rare survivors exactly (division, sqrt
/// threshold) before deciding — see
/// `AdaptiveClusterIndex::reorganize`. When `denom ≤ 0` every
/// probability is exactly zero in the scalar loop, and the column is
/// bit-identical to it.
///
/// The pass additionally compares every bound against the caller's
/// per-candidate threshold floor `n·floor_r + floor_s` (the move margin
/// plus the confidence margin's variance floor, slack-deflated by the
/// caller) in the same traversal. The returned summary carries the
/// maximum `n` over all candidates — the exact value of the cached
/// member-count bound the reorganization screen uses
/// ([`crate::candidates::CandidateSet::n_hi`]) — and whether any bound
/// exceeded its floor; when none did, the caller skips its selection
/// sweep outright, since every exact benefit provably fails its
/// threshold.
///
/// In that common no-survivor case the column itself is never read, so
/// the pass runs **store-free** first (pure reduction over the counter
/// columns) and fills `out` only when some bound cleared its floor —
/// `out` then holds one bound per candidate, recomputed by the same
/// expressions. The reduction also carries the maximum bound over
/// populated candidates (the cached-verdict coefficient) in four
/// explicit max lanes — a single fmax accumulator would serialize the
/// loop — folded at the end.
#[allow(clippy::too_many_arguments)] // mirrors the scalar call plus the three counter columns
pub fn materialization_benefit_column(
    a: f64,
    b: f64,
    c: f64,
    p_c: f64,
    denom: f64,
    floor_r: f64,
    floor_s: f64,
    n: &[u32],
    q: &[u32],
    q_eff: &[f64],
    out: &mut Vec<f64>,
) -> BenefitColumnSummary {
    #[cfg(target_arch = "x86_64")]
    if acx_geom::scan::avx2_detected() {
        // SAFETY: AVX2 presence was just verified; the callee is the
        // same safe loop compiled with the feature enabled.
        return unsafe {
            materialization_benefit_column_avx2(
                a, b, c, p_c, denom, floor_r, floor_s, n, q, q_eff, out,
            )
        };
    }
    materialization_benefit_column_impl(a, b, c, p_c, denom, floor_r, floor_s, n, q, q_eff, out)
}

/// What one benefit-column pass found — see
/// [`materialization_benefit_column`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenefitColumnSummary {
    /// Exact maximum of the `n` column.
    pub max_n: u32,
    /// Whether any candidate's benefit bound exceeded its threshold
    /// floor `n·floor_r + floor_s`.
    pub any_above_floor: bool,
    /// Maximum benefit bound over candidates holding members
    /// (`NEG_INFINITY` when none do) — the raw material of the cached
    /// no-split verdict later passes screen with.
    pub max_bound: f64,
}

/// [`materialization_benefit_column_impl`] compiled for AVX2 so the
/// fill vectorizes at four lanes — bound semantics are identical, only
/// the lane width changes.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
fn materialization_benefit_column_avx2(
    a: f64,
    b: f64,
    c: f64,
    p_c: f64,
    denom: f64,
    floor_r: f64,
    floor_s: f64,
    n: &[u32],
    q: &[u32],
    q_eff: &[f64],
    out: &mut Vec<f64>,
) -> BenefitColumnSummary {
    materialization_benefit_column_impl(a, b, c, p_c, denom, floor_r, floor_s, n, q, q_eff, out)
}

#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn materialization_benefit_column_impl(
    a: f64,
    b: f64,
    c: f64,
    p_c: f64,
    denom: f64,
    floor_r: f64,
    floor_s: f64,
    n: &[u32],
    q: &[u32],
    q_eff: &[f64],
    out: &mut Vec<f64>,
) -> BenefitColumnSummary {
    debug_assert!(q.len() == n.len() && q_eff.len() == n.len());
    let len = n.len();
    let mut any_above_floor = false;
    let mut max_lanes = [f64::NEG_INFINITY; 4];
    let inv = if denom <= 0.0 {
        // Every probability is exactly zero in the scalar loop; a zero
        // reciprocal reproduces that (`s · 0.0 = +0.0` for the
        // non-negative counters stored here).
        0.0
    } else {
        (1.0 / denom) * (1.0 - RECIPROCAL_SLACK)
    };
    let mut i = 0;
    while i + 4 <= len {
        for j in 0..4 {
            let n_s = n[i + j];
            let p_s_lo = (q_eff[i + j] + q[i + j] as f64) * inv;
            let bound = materialization_benefit(a, b, c, p_c, p_s_lo, n_s as usize);
            any_above_floor |= bound > n_s as f64 * floor_r + floor_s;
            let masked = if n_s > 0 { bound } else { f64::NEG_INFINITY };
            max_lanes[j] = max_lanes[j].max(masked);
        }
        i += 4;
    }
    for k in i..len {
        let n_s = n[k];
        let p_s_lo = (q_eff[k] + q[k] as f64) * inv;
        let bound = materialization_benefit(a, b, c, p_c, p_s_lo, n_s as usize);
        any_above_floor |= bound > n_s as f64 * floor_r + floor_s;
        if n_s > 0 {
            max_lanes[0] = max_lanes[0].max(bound);
        }
    }
    let max_bound = max_lanes.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    out.clear();
    if any_above_floor {
        out.resize(len, 0.0);
        for (((out_s, &n_s), &q_s), &q_eff_s) in out.iter_mut().zip(n).zip(q).zip(q_eff) {
            let p_s_lo = (q_eff_s + q_s as f64) * inv;
            *out_s = materialization_benefit(a, b, c, p_c, p_s_lo, n_s as usize);
        }
    }
    BenefitColumnSummary {
        max_n: n.iter().copied().max().unwrap_or(0),
        any_above_floor,
        max_bound,
    }
}

/// Merging benefits of many clusters at once: one vectorizable pass over
/// per-slot `(p_c, p_a, n_c)` columns into a benefit column. Element `i`
/// is bit-identical to `merging_benefit(a, b, c, p_c[i], p_a[i],
/// n_c[i])` — the batched form the incremental reorganization pass
/// evaluates up front over all cluster slots (falling back to the scalar
/// call once a merge or split has changed the inputs mid-pass).
pub fn merging_benefit_column(
    a: f64,
    b: f64,
    c: f64,
    p_c: &[f64],
    p_a: &[f64],
    n_c: &[u32],
    out: &mut Vec<f64>,
) {
    debug_assert!(p_a.len() == p_c.len() && n_c.len() == p_c.len());
    out.clear();
    out.reserve(p_c.len());
    for ((&pc, &pa), &n) in p_c.iter().zip(p_a).zip(n_c) {
        out.push(merging_benefit(a, b, c, pc, pa, n as usize));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acx_geom::object_size_bytes;
    use acx_storage::CostModel;

    fn mem_terms() -> (f64, f64, f64) {
        let m = CostModel::memory(object_size_bytes(16));
        (m.a(), m.b(), m.c())
    }

    fn disk_terms() -> (f64, f64, f64) {
        let m = CostModel::disk(object_size_bytes(16));
        (m.a(), m.b(), m.c())
    }

    #[test]
    fn materialization_profitable_for_cold_populated_candidate() {
        let (a, b, c) = mem_terms();
        // Parent explored on every query, candidate on 1 %: moving 10,000
        // objects out saves ~0.99·10000·C per query.
        let benefit = materialization_benefit(a, b, c, 1.0, 0.01, 10_000);
        assert!(benefit > 0.0, "benefit {benefit}");
    }

    #[test]
    fn materialization_unprofitable_for_hot_candidate() {
        let (a, b, c) = mem_terms();
        // Candidate explored as often as the parent: only costs are added.
        let benefit = materialization_benefit(a, b, c, 0.8, 0.8, 10_000);
        assert!(benefit < 0.0, "benefit {benefit}");
    }

    #[test]
    fn materialization_unprofitable_for_tiny_candidate() {
        let (a, b, c) = mem_terms();
        // One object saves at most C per query — below A + p_s·B.
        let benefit = materialization_benefit(a, b, c, 1.0, 0.9, 1);
        assert!(benefit < 0.0, "benefit {benefit}");
    }

    #[test]
    fn disk_seek_raises_split_threshold() {
        // On disk, B includes a 15 ms seek: a candidate must be much
        // larger (or much colder) to justify materialization — this is
        // why the paper reports far fewer clusters on disk.
        let n = 200;
        let (p_c, p_s) = (1.0, 0.5);
        let (a, b, c) = mem_terms();
        let mem = materialization_benefit(a, b, c, p_c, p_s, n);
        let (a, b, c) = disk_terms();
        let disk = materialization_benefit(a, b, c, p_c, p_s, n);
        assert!(mem > 0.0, "memory benefit {mem}");
        assert!(disk < 0.0, "disk benefit {disk}");
    }

    #[test]
    fn smaller_effective_c_discourages_splits() {
        // Early-exit verification makes scanning cheaper than the full
        // object size suggests, so the same candidate can be unprofitable
        // under the effective C.
        let (a, b, c) = mem_terms();
        let n = 6;
        let full = materialization_benefit(a, b, c, 1.0, 0.5, n);
        let effective = materialization_benefit(a, b, c * 0.1, 1.0, 0.5, n);
        assert!(full > 0.0);
        assert!(effective < 0.0, "effective benefit {effective}");
    }

    #[test]
    fn merging_profitable_when_probabilities_converge() {
        let (a, b, c) = mem_terms();
        // Child explored almost as often as parent → keeping it separate
        // costs A + p·B for nothing.
        let benefit = merging_benefit(a, b, c, 0.95, 1.0, 20);
        assert!(benefit > 0.0, "benefit {benefit}");
    }

    #[test]
    fn merging_profitable_when_cluster_empties() {
        let (a, b, c) = mem_terms();
        let benefit = merging_benefit(a, b, c, 0.2, 1.0, 0);
        assert!(benefit > 0.0, "benefit {benefit}");
    }

    #[test]
    fn merging_unprofitable_for_cold_large_cluster() {
        let (a, b, c) = mem_terms();
        let benefit = merging_benefit(a, b, c, 0.01, 1.0, 50_000);
        assert!(benefit < 0.0, "benefit {benefit}");
    }

    #[test]
    fn benefit_column_bounds_the_scalar_calls_tightly() {
        let (a, b, c) = mem_terms();
        let n = [0u32, 1, 40, 10_000, u32::MAX];
        let q = [0u32, 3, 0, 250, u32::MAX];
        let q_eff = [0.0, 1.5, 0.25, 900.75, 1e9];
        let (p_c, denom) = (0.37, 240.0);
        let mut col = Vec::new();
        let summary = materialization_benefit_column(
            a, b, c, p_c, denom, 0.0, 0.0, &n, &q, &q_eff, &mut col,
        );
        assert_eq!(summary.max_n, u32::MAX);
        assert!(summary.any_above_floor, "zero floors: positive bounds must fire");
        assert_eq!(col.len(), n.len());
        for i in 0..n.len() {
            let p_s = (q_eff[i] + q[i] as f64) / denom;
            let exact = materialization_benefit(a, b, c, p_c, p_s, n[i] as usize);
            // Sound upper bound…
            assert!(col[i] >= exact, "candidate {i}: bound {} < exact {exact}", col[i]);
            // …within a few parts in 10¹² of the exact value's scale.
            let scale = exact.abs().max(p_s * (n[i] as f64 * c + b)).max(1e-300);
            assert!(
                col[i] - exact <= 1e-9 * scale,
                "candidate {i}: bound {} too loose vs exact {exact}",
                col[i]
            );
        }
        // Zero statistics: the bound degenerates to the exact value.
        let zeros = [0u32; 5];
        let zeros_f = [0.0f64; 5];
        materialization_benefit_column(
            a, b, c, p_c, denom, 0.0, 0.0, &n, &zeros, &zeros_f, &mut col,
        );
        for (i, &got) in col.iter().enumerate() {
            let want = materialization_benefit(a, b, c, p_c, 0.0, n[i] as usize);
            assert_eq!(got.to_bits(), want.to_bits(), "candidate {i} (cold)");
        }
        // Degenerate denominator: every p_s collapses to exactly 0 in
        // the scalar loop, and the column is bit-identical to it.
        let summary = materialization_benefit_column(
            a, b, c, p_c, 0.0, 0.0, 0.0, &n, &q, &q_eff, &mut col,
        );
        assert_eq!(summary.max_n, u32::MAX);
        for (i, &got) in col.iter().enumerate() {
            let want = materialization_benefit(a, b, c, p_c, 0.0, n[i] as usize);
            assert_eq!(got.to_bits(), want.to_bits(), "candidate {i} (denom 0)");
        }
        // A floor above every bound reports no candidate above it.
        let summary = materialization_benefit_column(
            a, b, c, p_c, denom, 1e9, 1e9, &n, &q, &q_eff, &mut col,
        );
        assert!(!summary.any_above_floor);
    }

    #[test]
    fn merging_column_is_bit_identical_to_scalar_calls() {
        let (a, b, c) = disk_terms();
        let p_c = [0.0, 0.2, 0.95, 1.0];
        let p_a = [0.5, 0.2, 1.0, 1.0];
        let n_c = [0u32, 17, 400, 100_000];
        let mut col = Vec::new();
        merging_benefit_column(a, b, c, &p_c, &p_a, &n_c, &mut col);
        assert_eq!(col.len(), p_c.len());
        for i in 0..p_c.len() {
            let want = merging_benefit(a, b, c, p_c[i], p_a[i], n_c[i] as usize);
            assert_eq!(col[i].to_bits(), want.to_bits(), "slot {i}");
        }
    }

    #[test]
    fn merge_and_split_are_exact_negations() {
        // β(s,c) > 0 should imply μ(s→c-after-split) < 0 for the same
        // statistics: a just-materialized profitable cluster must not be
        // immediately merged back.
        let (a, b, c) = mem_terms();
        let (p_c, p_s, n_s) = (1.0, 0.05, 5_000);
        let beta = materialization_benefit(a, b, c, p_c, p_s, n_s);
        let mu = merging_benefit(a, b, c, p_s, p_c, n_s);
        assert!(beta > 0.0);
        assert!(mu < 0.0);
        assert!((beta + mu).abs() < 1e-12, "β and μ are exact negations");
    }
}
