//! Cluster signatures (paper §4.1).
//!
//! A cluster groups objects defining *similar intervals*: in each dimension
//! `d`, the member's interval must **start** inside a variation interval
//! `[amin, amax]` and **end** inside `[bmin, bmax]`. The root signature uses
//! the full domain for every variation interval and therefore accepts any
//! object.
//!
//! Subdivision produces half-open subintervals (the paper writes
//! `[0.00, 0.25) : [0.00, 0.25)`), with the last subinterval inheriting the
//! closedness of its parent's upper bound, so membership at boundaries is
//! unambiguous.

use acx_geom::{HyperRect, Scalar, SpatialQuery};

/// A signature variation interval: `[lo, hi)` or `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SigInterval {
    lo: Scalar,
    hi: Scalar,
    hi_open: bool,
}

impl SigInterval {
    /// The full closed domain `[0, 1]`.
    pub fn full() -> Self {
        Self {
            lo: acx_geom::DOMAIN_MIN,
            hi: acx_geom::DOMAIN_MAX,
            hi_open: false,
        }
    }

    /// Builds a variation interval; `hi_open` selects `[lo, hi)`.
    pub fn new(lo: Scalar, hi: Scalar, hi_open: bool) -> Self {
        debug_assert!(lo <= hi);
        Self { lo, hi, hi_open }
    }

    /// Lower bound (always inclusive).
    pub fn lo(&self) -> Scalar {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> Scalar {
        self.hi
    }

    /// Whether the upper bound is exclusive.
    pub fn hi_open(&self) -> bool {
        self.hi_open
    }

    /// Membership test respecting the open/closed upper bound.
    #[inline]
    pub fn contains(&self, v: Scalar) -> bool {
        self.lo <= v && (v < self.hi || (!self.hi_open && v == self.hi))
    }

    /// Largest value the interval can supply is `hi` (closed) or anything
    /// strictly below `hi` (open). `can_reach(x)` answers whether some
    /// member value `v` satisfies `v >= x`.
    #[inline]
    pub fn can_reach(&self, x: Scalar) -> bool {
        if self.hi_open {
            self.hi > x
        } else {
            self.hi >= x
        }
    }

    /// The `k`-th of `f` equal-width subintervals.
    ///
    /// Interior children are half-open; the last child inherits the
    /// parent's upper-bound closedness.
    pub fn subdivide(&self, f: u8, k: u8) -> SigInterval {
        debug_assert!(k < f);
        let f32f = f as Scalar;
        let width = (self.hi - self.lo) / f32f;
        let lo = self.lo + width * k as Scalar;
        let last = k == f - 1;
        // Use the exact parent bound for the last child to avoid float
        // drift excluding the parent's own upper boundary.
        let hi = if last {
            self.hi
        } else {
            self.lo + width * (k + 1) as Scalar
        };
        SigInterval {
            lo,
            hi,
            hi_open: if last { self.hi_open } else { true },
        }
    }
}

/// The per-dimension part of a cluster signature:
/// starts vary in `start`, ends vary in `end`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DimSignature {
    /// Variation interval `[amin, amax]` for interval starts.
    pub start: SigInterval,
    /// Variation interval `[bmin, bmax]` for interval ends.
    pub end: SigInterval,
}

impl DimSignature {
    fn full() -> Self {
        Self {
            start: SigInterval::full(),
            end: SigInterval::full(),
        }
    }

    /// Whether an object interval `[a, b]` satisfies this dimension.
    #[inline]
    pub fn accepts(&self, a: Scalar, b: Scalar) -> bool {
        self.start.contains(a) && self.end.contains(b)
    }
}

/// A cluster signature: one [`DimSignature`] per dimension (paper §4.1).
///
/// The signature determines (a) which objects can become members and
/// (b) whether a spatial query has to explore the cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct Signature {
    dims: Box<[DimSignature]>,
}

impl Signature {
    /// The root signature: complete domains in all dimensions, accepting
    /// any spatial object.
    pub fn root(dims: usize) -> Self {
        assert!(dims > 0, "signature needs at least one dimension");
        Self {
            dims: vec![DimSignature::full(); dims].into_boxed_slice(),
        }
    }

    /// Builds a signature from explicit per-dimension parts.
    pub fn from_dims(dims: Vec<DimSignature>) -> Self {
        assert!(!dims.is_empty());
        Self {
            dims: dims.into_boxed_slice(),
        }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims.len()
    }

    /// The per-dimension signature parts.
    pub fn dim_signatures(&self) -> &[DimSignature] {
        &self.dims
    }

    /// The signature part of dimension `d`.
    pub fn dim(&self, d: usize) -> &DimSignature {
        &self.dims[d]
    }

    /// Whether an object (flat `[a0, b0, a1, b1, …]` coordinates) can be a
    /// member of the cluster.
    #[inline]
    pub fn accepts_flat(&self, coords: &[Scalar]) -> bool {
        debug_assert_eq!(coords.len(), self.dims.len() * 2);
        self.dims
            .iter()
            .zip(coords.chunks_exact(2))
            .all(|(ds, pair)| ds.accepts(pair[0], pair[1]))
    }

    /// Whether a materialized rectangle can be a member of the cluster.
    pub fn accepts_rect(&self, rect: &HyperRect) -> bool {
        debug_assert_eq!(rect.dims(), self.dims.len());
        self.dims
            .iter()
            .zip(rect.intervals())
            .all(|(ds, iv)| ds.accepts(iv.lo(), iv.hi()))
    }

    /// Whether the query **may** match some object satisfying this
    /// signature — the exploration test of §3.6 (no false negatives).
    ///
    /// Per dimension, a member's start `a` ranges over `start` and its end
    /// `b` over `end`; the query matches the signature when the relation's
    /// per-dimension condition is satisfiable by *some* `(a, b)` pair:
    ///
    /// * intersection (`a ≤ q.hi ∧ b ≥ q.lo`):
    ///   `start.lo ≤ q.hi` and `end` can reach `q.lo`;
    /// * containment (`a ≥ q.lo ∧ b ≤ q.hi`):
    ///   `start` can reach `q.lo` and `end.lo ≤ q.hi`;
    /// * enclosure (`a ≤ q.lo ∧ b ≥ q.hi`):
    ///   `start.lo ≤ q.lo` and `end` can reach `q.hi`;
    /// * point-enclosing (`a ≤ p ∧ b ≥ p`):
    ///   `start.lo ≤ p` and `end` can reach `p`.
    pub fn matches_query(&self, query: &SpatialQuery) -> bool {
        match query {
            SpatialQuery::Intersection(w) => self
                .dims
                .iter()
                .zip(w.intervals())
                .all(|(ds, q)| ds.start.lo() <= q.hi() && ds.end.can_reach(q.lo())),
            SpatialQuery::Containment(w) => self
                .dims
                .iter()
                .zip(w.intervals())
                .all(|(ds, q)| ds.start.can_reach(q.lo()) && ds.end.lo() <= q.hi()),
            SpatialQuery::Enclosure(w) => self
                .dims
                .iter()
                .zip(w.intervals())
                .all(|(ds, q)| ds.start.lo() <= q.lo() && ds.end.can_reach(q.hi())),
            SpatialQuery::PointEnclosing(p) => self
                .dims
                .iter()
                .zip(p.iter())
                .all(|(ds, &v)| ds.start.lo() <= v && ds.end.can_reach(v)),
        }
    }

    /// Specializes dimension `d`: replaces the variation pair with the
    /// `i`-th start subinterval and `j`-th end subinterval out of `f`
    /// (the clustering function of §4.2).
    pub fn specialize(&self, d: usize, f: u8, i: u8, j: u8) -> Signature {
        let mut dims = self.dims.to_vec();
        dims[d] = DimSignature {
            start: dims[d].start.subdivide(f, i),
            end: dims[d].end.subdivide(f, j),
        };
        Signature {
            dims: dims.into_boxed_slice(),
        }
    }

    /// Whether the variation pair of dimension `d` after specialization
    /// `(i, j)` can hold any valid object interval (`a ≤ b`), and, in the
    /// symmetric case, survives the paper's de-duplication.
    ///
    /// When the start and end variation intervals of dimension `d` are
    /// identical, only `i ≤ j` combinations are kept — the `f(f+1)/2`
    /// distinct combinations of §4.2. In the general case a combination is
    /// kept when `min(start_i) ≤ max(end_j)`.
    pub fn combination_feasible(&self, d: usize, f: u8, i: u8, j: u8) -> bool {
        let ds = &self.dims[d];
        if ds.start == ds.end {
            return i <= j;
        }
        let start_i = ds.start.subdivide(f, i);
        let end_j = ds.end.subdivide(f, j);
        // Some a in start_i and b in end_j with a <= b must exist.
        if end_j.hi_open() {
            start_i.lo() < end_j.hi()
        } else {
            start_i.lo() <= end_j.hi()
        }
    }

    /// Serializes the signature (used by the persistent store).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.dims.len() * 18);
        out.extend_from_slice(&(self.dims.len() as u16).to_le_bytes());
        for ds in self.dims.iter() {
            for iv in [&ds.start, &ds.end] {
                out.extend_from_slice(&iv.lo.to_le_bytes());
                out.extend_from_slice(&iv.hi.to_le_bytes());
                out.push(iv.hi_open as u8);
            }
        }
        out
    }

    /// Deserializes a signature written by [`Signature::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Signature> {
        if bytes.len() < 2 {
            return None;
        }
        let n = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
        let expected = 2 + n * 18;
        if n == 0 || bytes.len() != expected {
            return None;
        }
        let mut dims = Vec::with_capacity(n);
        let mut at = 2;
        for _ in 0..n {
            let mut ivs = [SigInterval::full(); 2];
            for iv in ivs.iter_mut() {
                let lo = Scalar::from_le_bytes(bytes[at..at + 4].try_into().ok()?);
                let hi = Scalar::from_le_bytes(bytes[at + 4..at + 8].try_into().ok()?);
                let hi_open = match bytes[at + 8] {
                    0 => false,
                    1 => true,
                    _ => return None,
                };
                if !(lo.is_finite() && hi.is_finite() && lo <= hi) {
                    return None;
                }
                *iv = SigInterval::new(lo, hi, hi_open);
                at += 9;
            }
            dims.push(DimSignature {
                start: ivs[0],
                end: ivs[1],
            });
        }
        Some(Signature {
            dims: dims.into_boxed_slice(),
        })
    }
}

impl std::fmt::Display for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (d, ds) in self.dims.iter().enumerate() {
            if d > 0 {
                write!(f, ", ")?;
            }
            let sc = if ds.start.hi_open { ')' } else { ']' };
            let ec = if ds.end.hi_open { ')' } else { ']' };
            write!(
                f,
                "d{}[{:.4},{:.4}{}:[{:.4},{:.4}{}",
                d + 1,
                ds.start.lo,
                ds.start.hi,
                sc,
                ds.end.lo,
                ds.end.hi,
                ec
            )?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acx_geom::HyperRect;
    use proptest::prelude::*;

    fn rect(lo: &[Scalar], hi: &[Scalar]) -> HyperRect {
        HyperRect::from_bounds(lo, hi).unwrap()
    }

    #[test]
    fn root_accepts_any_object() {
        let sig = Signature::root(3);
        assert!(sig.accepts_rect(&rect(&[0.0, 0.5, 1.0], &[0.0, 0.5, 1.0])));
        assert!(sig.accepts_flat(&[0.0, 1.0, 0.2, 0.8, 0.99, 1.0]));
    }

    #[test]
    fn root_matches_every_query() {
        let sig = Signature::root(2);
        let w = rect(&[0.2, 0.3], &[0.4, 0.5]);
        assert!(sig.matches_query(&SpatialQuery::intersection(w.clone())));
        assert!(sig.matches_query(&SpatialQuery::containment(w.clone())));
        assert!(sig.matches_query(&SpatialQuery::enclosure(w)));
        assert!(sig.matches_query(&SpatialQuery::point_enclosing(vec![0.7, 0.1])));
    }

    #[test]
    fn subdivide_produces_half_open_children() {
        let full = SigInterval::full();
        let c0 = full.subdivide(4, 0);
        assert_eq!(c0.lo(), 0.0);
        assert_eq!(c0.hi(), 0.25);
        assert!(c0.hi_open());
        let c3 = full.subdivide(4, 3);
        assert_eq!(c3.lo(), 0.75);
        assert_eq!(c3.hi(), 1.0);
        assert!(!c3.hi_open(), "last child inherits closed parent bound");
    }

    #[test]
    fn subdivision_partitions_membership() {
        // Every value in [0,1] belongs to exactly one of the f children.
        let full = SigInterval::full();
        for f in [2u8, 4, 8] {
            for v in [0.0f32, 0.1, 0.25, 0.33, 0.5, 0.75, 0.999, 1.0] {
                let owners = (0..f)
                    .filter(|&k| full.subdivide(f, k).contains(v))
                    .count();
                assert_eq!(owners, 1, "value {v} with f={f}");
            }
        }
    }

    #[test]
    fn nested_subdivision_keeps_exact_parent_bounds() {
        let full = SigInterval::full();
        let child = full.subdivide(4, 2); // [0.5, 0.75)
        let grandchild = child.subdivide(4, 3); // [..., 0.75) open
        assert_eq!(grandchild.hi(), 0.75);
        assert!(grandchild.hi_open());
        assert!(!grandchild.contains(0.75));
    }

    #[test]
    fn example2_cluster_membership() {
        // Paper Example 2: σ1 = {d1[0,0.25):[0,0.25), d2[0,1]:[0,1]}.
        let sig = Signature::root(2).specialize(0, 4, 0, 0);
        // O1-like object: starts and ends in the first quarter of d1.
        assert!(sig.accepts_rect(&rect(&[0.05, 0.3], &[0.2, 0.9])));
        // Interval ending beyond 0.25 in d1 is rejected.
        assert!(!sig.accepts_rect(&rect(&[0.05, 0.3], &[0.3, 0.9])));
        // Boundary: 0.25 itself is outside the half-open interval.
        assert!(!sig.accepts_rect(&rect(&[0.25, 0.0], &[0.25, 1.0])));
    }

    #[test]
    fn example3_candidate_count_with_symmetry() {
        // Paper Example 3: identical variation intervals on d1, f = 4
        // → 10 valid combinations out of 16.
        let sig = Signature::root(2);
        let valid = (0..4u8)
            .flat_map(|i| (0..4u8).map(move |j| (i, j)))
            .filter(|&(i, j)| sig.combination_feasible(0, 4, i, j))
            .count();
        assert_eq!(valid, 10);
    }

    #[test]
    fn asymmetric_combination_feasibility() {
        // After specializing d1 to start∈[0,0.25), end∈[0.75,1.0], the
        // variation intervals differ; every (i,j) is feasible because all
        // starts are below all ends.
        let sig = Signature::root(2).specialize(0, 4, 0, 3);
        let valid = (0..4u8)
            .flat_map(|i| (0..4u8).map(move |j| (i, j)))
            .filter(|&(i, j)| sig.combination_feasible(0, 4, i, j))
            .count();
        assert_eq!(valid, 16);
    }

    #[test]
    fn infeasible_combination_detected() {
        // start ∈ [0.75,1.0], end ∈ [0,0.25): no a ≤ b exists unless the
        // subintervals touch.
        let sig = Signature::from_dims(vec![DimSignature {
            start: SigInterval::new(0.75, 1.0, false),
            end: SigInterval::new(0.0, 0.25, true),
        }]);
        // start sub 3 = [0.9375,1.0], end sub 0 = [0,0.0625): infeasible.
        assert!(!sig.combination_feasible(0, 4, 3, 0));
    }

    #[test]
    fn specialized_signature_narrows_query_matching() {
        // Objects start and end in [0, 0.25) on d1.
        let sig = Signature::root(1).specialize(0, 4, 0, 0);
        // A window beyond the cluster's reach cannot match.
        let far = SpatialQuery::intersection(rect(&[0.5], &[0.9]));
        assert!(!sig.matches_query(&far));
        // A window overlapping [0, 0.25) may match.
        let near = SpatialQuery::intersection(rect(&[0.2], &[0.9]));
        assert!(near.dims() == 1 && sig.matches_query(&near));
    }

    #[test]
    fn point_query_against_open_bound() {
        // Ends vary in [0, 0.25) open: an object can never reach 0.25.
        let sig = Signature::root(1).specialize(0, 4, 0, 0);
        assert!(!sig.matches_query(&SpatialQuery::point_enclosing(vec![0.25])));
        assert!(sig.matches_query(&SpatialQuery::point_enclosing(vec![0.2])));
    }

    #[test]
    fn containment_matching_uses_start_reach() {
        // Starts in [0.75, 1.0]: objects begin late. Containment in a
        // window ending before 0.75 is impossible.
        let sig = Signature::root(1).specialize(0, 4, 3, 3);
        let w = SpatialQuery::containment(rect(&[0.0], &[0.7]));
        assert!(!sig.matches_query(&w));
        let w2 = SpatialQuery::containment(rect(&[0.7], &[1.0]));
        assert!(sig.matches_query(&w2));
    }

    #[test]
    fn enclosure_matching_uses_start_lo() {
        // Starts in [0.25, 0.5): an object cannot enclose a window that
        // starts at 0.2.
        let sig = Signature::root(1).specialize(0, 4, 1, 3);
        let w = SpatialQuery::enclosure(rect(&[0.2], &[0.9]));
        assert!(!sig.matches_query(&w));
        let w2 = SpatialQuery::enclosure(rect(&[0.6], &[0.9]));
        assert!(sig.matches_query(&w2));
    }

    #[test]
    fn serialization_roundtrip() {
        let sig = Signature::root(3)
            .specialize(0, 4, 1, 2)
            .specialize(2, 4, 0, 3);
        let bytes = sig.to_bytes();
        let back = Signature::from_bytes(&bytes).unwrap();
        assert_eq!(sig, back);
    }

    #[test]
    fn deserialization_rejects_garbage() {
        assert!(Signature::from_bytes(&[]).is_none());
        assert!(Signature::from_bytes(&[1, 0, 1, 2, 3]).is_none());
        let mut ok = Signature::root(1).to_bytes();
        ok[10] = 7; // invalid hi_open flag
        assert!(Signature::from_bytes(&ok).is_none());
    }

    #[test]
    fn display_renders_paper_notation() {
        let sig = Signature::root(2).specialize(0, 4, 0, 0);
        let s = sig.to_string();
        assert!(s.contains("d1[0.0000,0.2500)"), "got {s}");
        assert!(s.contains("d2[0.0000,1.0000]"), "got {s}");
    }

    fn arb_object(dims: usize) -> impl Strategy<Value = Vec<Scalar>> {
        prop::collection::vec((0.0f32..=1.0, 0.0f32..=1.0), dims).prop_map(|pairs| {
            let mut flat = Vec::with_capacity(pairs.len() * 2);
            for (a, b) in pairs {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                flat.push(lo);
                flat.push(hi);
            }
            flat
        })
    }

    proptest! {
        /// Backward compatibility (§3.3): an object accepted by a
        /// specialized signature is accepted by its parent.
        #[test]
        fn prop_specialization_preserves_membership(
            flat in arb_object(3),
            d in 0usize..3,
            i in 0u8..4,
            j in 0u8..4,
        ) {
            let parent = Signature::root(3);
            let child = parent.specialize(d, 4, i, j);
            if child.accepts_flat(&flat) {
                prop_assert!(parent.accepts_flat(&flat));
            }
        }

        /// Exploration safety: if an object is accepted by the signature
        /// and matches the query, the signature must match the query
        /// (no false negatives during cluster pruning).
        #[test]
        fn prop_signature_matching_is_conservative(
            flat in arb_object(3),
            win in arb_object(3),
            d in 0usize..3,
            i in 0u8..4,
            j in 0u8..4,
            rel in 0usize..4,
        ) {
            let sig = Signature::root(3).specialize(d, 4, i, j);
            let query = match rel {
                0 => SpatialQuery::intersection(HyperRect::from_flat(&win).unwrap()),
                1 => SpatialQuery::containment(HyperRect::from_flat(&win).unwrap()),
                2 => SpatialQuery::enclosure(HyperRect::from_flat(&win).unwrap()),
                _ => SpatialQuery::point_enclosing(
                    win.chunks_exact(2).map(|p| p[0]).collect::<Vec<_>>()),
            };
            if sig.accepts_flat(&flat) && query.matches_flat(&flat).matched {
                prop_assert!(
                    sig.matches_query(&query),
                    "signature pruned a cluster containing a match"
                );
            }
        }

        /// Each object belongs to exactly one (i, j) specialization cell
        /// per dimension when feasibility is ignored.
        #[test]
        fn prop_object_in_exactly_one_cell(flat in arb_object(2), d in 0usize..2) {
            let root = Signature::root(2);
            let mut owners = 0;
            for i in 0..4u8 {
                for j in 0..4u8 {
                    if root.specialize(d, 4, i, j).accepts_flat(&flat) {
                        owners += 1;
                    }
                }
            }
            prop_assert_eq!(owners, 1);
        }

        #[test]
        fn prop_serialization_roundtrip(
            d in 0usize..4, i in 0u8..4, j in 0u8..4,
        ) {
            let sig = Signature::root(4).specialize(d, 4, i, j);
            prop_assert_eq!(Signature::from_bytes(&sig.to_bytes()), Some(sig));
        }
    }
}
