//! Virtual candidate subclusters (paper §3.2, §4.2).
//!
//! Every materialized cluster carries a set of *candidate* subclusters —
//! potential specializations of its signature on a single dimension. Only
//! their performance indicators (`n` objects, `q` matching queries) are
//! maintained; a candidate becomes a real cluster only when the
//! materialization benefit function selects it.

use acx_geom::{Scalar, SpatialQuery};

use crate::signature::{SigInterval, Signature};

/// A candidate subcluster: specialization `(i, j)` of dimension `dim`
/// with cached subintervals, plus its two performance indicators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Specialized dimension.
    pub dim: u16,
    /// Index of the start subinterval (`0..f`).
    pub i: u8,
    /// Index of the end subinterval (`0..f`).
    pub j: u8,
    /// Cached start variation subinterval.
    pub start: SigInterval,
    /// Cached end variation subinterval.
    pub end: SigInterval,
    /// Number of member objects of the parent qualifying for the candidate.
    pub n: u32,
    /// Number of queries matching the candidate signature since the last
    /// statistics epoch.
    pub q: u32,
    /// Exponentially decayed query count from previous epochs (smooths the
    /// access-probability estimate across reorganization periods).
    pub q_eff: f64,
}

impl Candidate {
    /// Whether an object *that already satisfies the parent signature*
    /// also satisfies this candidate (only the specialized dimension needs
    /// to be checked).
    #[inline]
    pub fn accepts_member(&self, flat: &[Scalar]) -> bool {
        let d = self.dim as usize;
        let a = flat[2 * d];
        let b = flat[2 * d + 1];
        self.start.contains(a) && self.end.contains(b)
    }

    /// Whether a query *that already matches the parent signature* also
    /// matches this candidate (only the specialized dimension is checked).
    #[inline]
    pub fn matches_query(&self, query: &SpatialQuery) -> bool {
        let d = self.dim as usize;
        match query {
            SpatialQuery::Intersection(w) => {
                let q = w.interval(d);
                self.start.lo() <= q.hi() && self.end.can_reach(q.lo())
            }
            SpatialQuery::Containment(w) => {
                let q = w.interval(d);
                self.start.can_reach(q.lo()) && self.end.lo() <= q.hi()
            }
            SpatialQuery::Enclosure(w) => {
                let q = w.interval(d);
                self.start.lo() <= q.lo() && self.end.can_reach(q.hi())
            }
            SpatialQuery::PointEnclosing(p) => {
                let v = p[d];
                self.start.lo() <= v && self.end.can_reach(v)
            }
        }
    }

    /// Materializes the candidate's full signature.
    pub fn signature(&self, parent: &Signature, f: u8) -> Signature {
        parent.specialize(self.dim as usize, f, self.i, self.j)
    }
}

/// Generates the candidate set of a cluster signature: for each dimension,
/// every feasible `(i, j)` combination of `f` start/end subintervals
/// (paper §4.2). Candidate counters start at zero.
pub fn generate_candidates(sig: &Signature, f: u8) -> Vec<Candidate> {
    let mut out = Vec::with_capacity(sig.dims() * (f as usize * (f as usize + 1)) / 2);
    for d in 0..sig.dims() {
        let ds = sig.dim(d);
        for i in 0..f {
            for j in 0..f {
                if !sig.combination_feasible(d, f, i, j) {
                    continue;
                }
                out.push(Candidate {
                    dim: d as u16,
                    i,
                    j,
                    start: ds.start.subdivide(f, i),
                    end: ds.end.subdivide(f, j),
                    n: 0,
                    q: 0,
                    q_eff: 0.0,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use acx_geom::HyperRect;

    fn rect(lo: &[Scalar], hi: &[Scalar]) -> HyperRect {
        HyperRect::from_bounds(lo, hi).unwrap()
    }

    #[test]
    fn root_candidate_count_matches_paper() {
        // Root: identical variation intervals in every dimension →
        // f(f+1)/2 = 10 candidates per dimension with f = 4.
        let sig = Signature::root(16);
        let cands = generate_candidates(&sig, 4);
        assert_eq!(cands.len(), 16 * 10);
        // §6: between 10·Nd and 16·Nd candidates per cluster.
        assert!(cands.len() >= 10 * 16 && cands.len() <= 16 * 16);
    }

    #[test]
    fn specialized_cluster_candidate_count_in_paper_range() {
        // After specializing d0 with distinct start/end variation
        // intervals, d0 contributes up to 16 combinations.
        let sig = Signature::root(4).specialize(0, 4, 0, 3);
        let cands = generate_candidates(&sig, 4);
        assert!(cands.len() > 4 * 10 && cands.len() <= 4 * 16, "{}", cands.len());
    }

    #[test]
    fn accepts_member_checks_only_specialized_dimension() {
        let sig = Signature::root(2);
        let cands = generate_candidates(&sig, 4);
        // Candidate: d0, starts in [0,0.25), ends in [0,0.25).
        let c = cands
            .iter()
            .find(|c| c.dim == 0 && c.i == 0 && c.j == 0)
            .unwrap();
        assert!(c.accepts_member(&rect(&[0.1, 0.9], &[0.2, 1.0]).to_flat()));
        assert!(!c.accepts_member(&rect(&[0.1, 0.9], &[0.3, 1.0]).to_flat()));
    }

    #[test]
    fn candidate_signature_equals_specialization() {
        let sig = Signature::root(3);
        let cands = generate_candidates(&sig, 4);
        for c in cands.iter().take(5) {
            let expected = sig.specialize(c.dim as usize, 4, c.i, c.j);
            assert_eq!(c.signature(&sig, 4), expected);
        }
    }

    #[test]
    fn matches_query_agrees_with_full_signature_matching() {
        let sig = Signature::root(2);
        let cands = generate_candidates(&sig, 4);
        let queries = [
            SpatialQuery::intersection(rect(&[0.1, 0.2], &[0.3, 0.6])),
            SpatialQuery::containment(rect(&[0.0, 0.0], &[0.5, 0.5])),
            SpatialQuery::enclosure(rect(&[0.4, 0.4], &[0.45, 0.45])),
            SpatialQuery::point_enclosing(vec![0.3, 0.7]),
        ];
        for c in &cands {
            let full = c.signature(&sig, 4);
            for q in &queries {
                assert_eq!(
                    c.matches_query(q),
                    full.matches_query(q),
                    "candidate d{} ({},{}) vs query {q:?}",
                    c.dim,
                    c.i,
                    c.j
                );
            }
        }
    }

    #[test]
    fn division_factor_two_produces_three_per_dim() {
        let sig = Signature::root(5);
        // f = 2 on identical intervals → 2·3/2 = 3 combinations per dim.
        assert_eq!(generate_candidates(&sig, 2).len(), 5 * 3);
    }

    #[test]
    fn counters_start_at_zero() {
        let sig = Signature::root(2);
        for c in generate_candidates(&sig, 4) {
            assert_eq!(c.n, 0);
            assert_eq!(c.q, 0);
            assert_eq!(c.q_eff, 0.0);
        }
    }
}
