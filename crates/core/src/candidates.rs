//! Virtual candidate subclusters (paper §3.2, §4.2) — stored
//! column-wise so the candidate loop batches like member verification.
//!
//! Every materialized cluster carries a set of *candidate* subclusters —
//! potential specializations of its signature on a single dimension. Only
//! their performance indicators (`n` objects, `q` matching queries) are
//! maintained; a candidate becomes a real cluster only when the
//! materialization benefit function selects it.
//!
//! ## Structure-of-arrays layout
//!
//! Per recorded query, every explored cluster checks **all** of its
//! `≈ f²·Nd` candidates against the query — the same shape as member
//! verification, and (after the columnar member kernel) the dominant
//! cost of recorded execution at high dimensionality. [`CandidateSet`]
//! therefore stores candidates as contiguous columns, grouped by their
//! specialized dimension:
//!
//! * four bound columns (`start_lo`, `start_reach`, `end_lo`,
//!   `end_reach`) shaped exactly like object coordinate columns, and
//! * parallel counter columns (`n`, `q`, `q_eff`) addressed by candidate
//!   index — the `q` counters the survivors bitmask of
//!   [`acx_geom::scan::scan_candidates`] drives.
//!
//! `*_reach` is the variation interval's upper bound pre-adjusted for
//! open intervals: `hi` when closed, [`f32::next_down`]`(hi)` when open.
//! For finite `f32` this encodes the half-open semantics losslessly —
//! `contains(v) ⇔ lo ≤ v ≤ reach` and `can_reach(x) ⇔ reach ≥ x` — so
//! both the batch kernel and the scalar oracle are single two-sided
//! comparisons, bit-identical to the [`SigInterval`] predicates.
//!
//! Candidate counters saturate instead of wrapping: a `u32` query
//! counter that hits `u32::MAX` stays pinned there (the benefit
//! functions only compare magnitudes, so saturation is benign; wrapping
//! would invert a reorganization decision).
//!
//! ## Index-wide statistics arena
//!
//! Under [`crate::StatsLayout::Arena`] (the default) clusters do **not**
//! own their columns: the index holds one [`StatsArena`] — a single slab
//! per column family — and each cluster slot owns a [`CandHandle`] naming
//! a `(base, len)` range into the slabs. The reorganization pass then
//! streams one contiguous counter column instead of pointer-chasing ~11
//! separate `Vec`s per cluster. Ranges are bump-allocated at the tail,
//! retired (not freed) when a cluster is merged away or re-materialized,
//! and compacted during reorganization when dead bytes reach a quarter
//! of capacity — the pass walks every slot anyway, so compaction is
//! amortized free and keeps hot clusters' columns adjacent.
//!
//! All statistics logic is written once, on the borrowed views
//! [`CandidateSlice`] / [`CandidateSliceMut`]: an owned [`CandidateSet`]
//! (the [`crate::StatsLayout::PerClusterOracle`] layout) and an arena
//! range both project to the same view types, so the two layouts are
//! decision-identical by construction.

use acx_geom::scan::{CandidateColumns, RunBounds};
use acx_geom::{Scalar, SpatialQuery};

use crate::signature::{SigInterval, Signature};

/// Largest value a [`SigInterval`] contains: its upper bound when
/// closed, the next `f32` below when open (exact for finite bounds).
#[inline]
fn reach_of(iv: &SigInterval) -> Scalar {
    if iv.hi_open() {
        iv.hi().next_down()
    } else {
        iv.hi()
    }
}

/// The identity of one candidate: specialization `(i, j)` of dimension
/// `dim`, materialized on demand from the [`CandidateSet`] columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateId {
    /// Specialized dimension.
    pub dim: u16,
    /// Index of the start subinterval (`0..f`).
    pub i: u8,
    /// Index of the end subinterval (`0..f`).
    pub j: u8,
}

/// The membership bounds of one candidate, copied out of the columns —
/// used by reorganization while the set itself is mutably borrowed.
#[derive(Debug, Clone, Copy)]
pub struct CandidateBounds {
    dim: usize,
    start_lo: Scalar,
    start_reach: Scalar,
    end_lo: Scalar,
    end_reach: Scalar,
}

impl CandidateBounds {
    /// Whether an object *that already satisfies the parent signature*
    /// also satisfies this candidate (only the specialized dimension
    /// needs to be checked).
    #[inline]
    pub fn accepts_member(&self, flat: &[Scalar]) -> bool {
        let a = flat[2 * self.dim];
        let b = flat[2 * self.dim + 1];
        self.start_lo <= a && a <= self.start_reach && self.end_lo <= b && b <= self.end_reach
    }
}

/// Borrowed, read-only view of one cluster's candidate statistics —
/// the common projection of an owned [`CandidateSet`] and a
/// [`StatsArena`] range. All read logic lives here; both layouts
/// delegate, so their answers are bit-identical by construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateSlice<'a> {
    /// Candidate range per dimension, **range-relative** (first entry is
    /// always `0`). Length `dims + 1`.
    dim_offsets: &'a [u32],
    /// Aggregate bounds per dimension run, driving the matches-all fast
    /// path of [`acx_geom::scan::scan_candidates`]. Length `dims`.
    run_bounds: &'a [RunBounds],
    /// Specialized dimension per candidate.
    dim: &'a [u16],
    /// Start subinterval index per candidate.
    sub_i: &'a [u8],
    /// End subinterval index per candidate.
    sub_j: &'a [u8],
    /// Inclusive lower bound of the start variation subinterval.
    start_lo: &'a [Scalar],
    /// Largest value the start variation subinterval contains.
    start_reach: &'a [Scalar],
    /// Inclusive lower bound of the end variation subinterval.
    end_lo: &'a [Scalar],
    /// Largest value the end variation subinterval contains.
    end_reach: &'a [Scalar],
    /// Member objects of the parent qualifying for each candidate.
    n: &'a [u32],
    /// Queries matching each candidate since the last statistics epoch.
    q: &'a [u32],
    /// Exponentially decayed query count from previous epochs.
    q_eff: &'a [f64],
    /// Cached upper bound on `max(n)` (may be loose, never low).
    n_hi: u32,
    /// Statistics epoch up to which this set's decay is applied.
    stamp: u64,
}

impl<'a> CandidateSlice<'a> {
    /// Number of candidates.
    #[inline]
    pub fn len(&self) -> usize {
        self.dim.len()
    }

    /// Whether the set holds no candidates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.dim.is_empty()
    }

    /// Number of dimensions the candidates specialize.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dim_offsets.len() - 1
    }

    /// The bound columns as the batch kernel's borrowed view.
    pub fn columns(&self) -> CandidateColumns<'a> {
        CandidateColumns::new(
            self.start_lo,
            self.start_reach,
            self.end_lo,
            self.end_reach,
            self.dim_offsets,
            self.run_bounds,
        )
    }

    /// The identity of candidate `ci`.
    pub fn id(&self, ci: usize) -> CandidateId {
        CandidateId {
            dim: self.dim[ci],
            i: self.sub_i[ci],
            j: self.sub_j[ci],
        }
    }

    /// The membership bounds of candidate `ci`, copied out.
    pub fn bounds(&self, ci: usize) -> CandidateBounds {
        CandidateBounds {
            dim: self.dim[ci] as usize,
            start_lo: self.start_lo[ci],
            start_reach: self.start_reach[ci],
            end_lo: self.end_lo[ci],
            end_reach: self.end_reach[ci],
        }
    }

    /// Qualifying-member count of candidate `ci`.
    #[inline]
    pub fn n(&self, ci: usize) -> u32 {
        self.n[ci]
    }

    /// Matching-query count of candidate `ci` in the current epoch.
    #[inline]
    pub fn q(&self, ci: usize) -> u32 {
        self.q[ci]
    }

    /// Decayed matching-query history of candidate `ci`.
    #[inline]
    pub fn q_eff(&self, ci: usize) -> f64 {
        self.q_eff[ci]
    }

    /// The qualifying-member counter column (parallel to the candidate
    /// index) — input of the batched benefit evaluation.
    #[inline]
    pub fn n_col(&self) -> &'a [u32] {
        self.n
    }

    /// The epoch matching-query counter column.
    #[inline]
    pub fn q_col(&self) -> &'a [u32] {
        self.q
    }

    /// The decayed matching-query history column.
    #[inline]
    pub fn q_eff_col(&self) -> &'a [f64] {
        self.q_eff
    }

    /// Cached upper bound on the maximal qualifying-member count over
    /// all candidates (may be loose, never low).
    #[inline]
    pub fn n_hi(&self) -> u32 {
        self.n_hi
    }

    /// Statistics epoch up to which this set's lazy decay is applied.
    #[inline]
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Whether an object *that already satisfies the parent signature*
    /// also satisfies candidate `ci`.
    #[inline]
    pub fn accepts_member(&self, ci: usize, flat: &[Scalar]) -> bool {
        let d = self.dim[ci] as usize;
        let a = flat[2 * d];
        let b = flat[2 * d + 1];
        self.start_lo[ci] <= a
            && a <= self.start_reach[ci]
            && self.end_lo[ci] <= b
            && b <= self.end_reach[ci]
    }

    /// Whether a query *that already matches the parent signature* also
    /// matches candidate `ci` (only the specialized dimension is
    /// checked) — the scalar oracle of
    /// [`acx_geom::scan::scan_candidates`], same comparisons in the same
    /// order.
    #[inline]
    pub fn matches_query(&self, ci: usize, query: &SpatialQuery) -> bool {
        let d = self.dim[ci] as usize;
        match query {
            SpatialQuery::Intersection(w) => {
                let q = w.interval(d);
                self.start_lo[ci] <= q.hi() && self.end_reach[ci] >= q.lo()
            }
            SpatialQuery::Containment(w) => {
                let q = w.interval(d);
                self.end_lo[ci] <= q.hi() && self.start_reach[ci] >= q.lo()
            }
            SpatialQuery::Enclosure(w) => {
                let q = w.interval(d);
                self.start_lo[ci] <= q.lo() && self.end_reach[ci] >= q.hi()
            }
            SpatialQuery::PointEnclosing(p) => {
                let v = p[d];
                self.start_lo[ci] <= v && self.end_reach[ci] >= v
            }
        }
    }

    /// Materializes the full signature of candidate `ci`.
    pub fn signature(&self, ci: usize, parent: &Signature, f: u8) -> Signature {
        parent.specialize(self.dim[ci] as usize, f, self.sub_i[ci], self.sub_j[ci])
    }
}

/// Borrowed, mutable view of one cluster's candidate statistics — the
/// single home of all counter-mutation logic (member recording, query
/// counting, decay). Bound and identity columns stay immutable: they
/// are fixed at generation.
#[derive(Debug, PartialEq)]
pub struct CandidateSliceMut<'a> {
    dim_offsets: &'a [u32],
    run_bounds: &'a [RunBounds],
    dim: &'a [u16],
    sub_i: &'a [u8],
    sub_j: &'a [u8],
    start_lo: &'a [Scalar],
    start_reach: &'a [Scalar],
    end_lo: &'a [Scalar],
    end_reach: &'a [Scalar],
    n: &'a mut [u32],
    q: &'a mut [u32],
    q_eff: &'a mut [f64],
    n_hi: &'a mut u32,
    stamp: &'a mut u64,
}

impl CandidateSliceMut<'_> {
    /// Reborrows as the read-only view.
    #[inline]
    pub fn as_slice(&self) -> CandidateSlice<'_> {
        CandidateSlice {
            dim_offsets: self.dim_offsets,
            run_bounds: self.run_bounds,
            dim: self.dim,
            sub_i: self.sub_i,
            sub_j: self.sub_j,
            start_lo: self.start_lo,
            start_reach: self.start_reach,
            end_lo: self.end_lo,
            end_reach: self.end_reach,
            n: self.n,
            q: self.q,
            q_eff: self.q_eff,
            n_hi: *self.n_hi,
            stamp: *self.stamp,
        }
    }

    /// Number of candidates.
    #[inline]
    pub fn len(&self) -> usize {
        self.dim.len()
    }

    /// Whether the set holds no candidates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.dim.is_empty()
    }

    /// Number of dimensions the candidates specialize.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dim_offsets.len() - 1
    }

    /// Counts a new member of the parent cluster into every candidate
    /// accepting it.
    pub fn record_member(&mut self, flat: &[Scalar]) {
        self.adjust_member(flat, true);
    }

    /// Removes a departing member of the parent cluster from every
    /// candidate accepting it.
    pub fn unrecord_member(&mut self, flat: &[Scalar]) {
        self.adjust_member(flat, false);
    }

    fn adjust_member(&mut self, flat: &[Scalar], add: bool) {
        for d in 0..self.dims() {
            let a = flat[2 * d];
            let b = flat[2 * d + 1];
            let run = self.dim_offsets[d] as usize..self.dim_offsets[d + 1] as usize;
            for ci in run {
                let accepts = self.start_lo[ci] <= a
                    && a <= self.start_reach[ci]
                    && self.end_lo[ci] <= b
                    && b <= self.end_reach[ci];
                if accepts {
                    if add {
                        self.n[ci] += 1;
                        *self.n_hi = (*self.n_hi).max(self.n[ci]);
                    } else {
                        debug_assert!(self.n[ci] > 0);
                        self.n[ci] -= 1;
                    }
                }
            }
        }
    }

    /// Adds `inc` matching queries to candidate `ci`, saturating at
    /// `u32::MAX` instead of wrapping.
    pub fn add_q(&mut self, ci: usize, inc: u32) {
        self.q[ci] = self.q[ci].saturating_add(inc);
    }

    /// Adds a whole per-candidate increment vector (saturating) — the
    /// branch-free bulk form [`crate::StatsDelta`] application uses.
    /// `incs` may be shorter than the set; missing entries add nothing.
    pub fn add_q_slice(&mut self, incs: &[u32]) {
        for (q, &inc) in self.q.iter_mut().zip(incs) {
            *q = q.saturating_add(inc);
        }
    }

    /// Closes the statistics epoch: folds each candidate's `q` into its
    /// decayed history with weight `gamma` and resets the epoch counter.
    pub fn decay(&mut self, gamma: f64) {
        for (q_eff, q) in self.q_eff.iter_mut().zip(self.q.iter_mut()) {
            *q_eff = gamma * *q_eff + *q as f64;
            *q = 0;
        }
    }

    /// Replays `epochs` missed statistics-epoch closes at once — the
    /// lazy-decay catch-up applied on the first touch after epoch rolls.
    /// See [`CandidateSet::catch_up`] for the bit-identity argument.
    pub fn catch_up(&mut self, gamma: f64, epochs: u64) {
        if epochs == 0 {
            return;
        }
        self.decay(gamma);
        for q_eff in self.q_eff.iter_mut() {
            for _ in 1..epochs {
                if *q_eff == 0.0 {
                    break;
                }
                *q_eff *= gamma;
            }
        }
    }

    /// Cached upper bound on the maximal qualifying-member count.
    #[inline]
    pub fn n_hi(&self) -> u32 {
        *self.n_hi
    }

    /// Re-tightens the cached bound to the exact maximum, as computed by
    /// a pass that walked the `n` column anyway.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `exact_max` really bounds every counter.
    pub(crate) fn set_n_hi(&mut self, exact_max: u32) {
        debug_assert!(self.n.iter().all(|&n| n <= exact_max));
        *self.n_hi = exact_max;
    }

    /// Statistics epoch up to which this set's lazy decay is applied.
    #[inline]
    pub fn stamp(&self) -> u64 {
        *self.stamp
    }

    /// Advances the lazy-decay stamp to `epoch`.
    pub(crate) fn set_stamp(&mut self, epoch: u64) {
        *self.stamp = epoch;
    }
}

/// The candidate subclusters of one materialized cluster, stored as
/// dimension-grouped columns (see the module docs) — the owned,
/// per-cluster layout ([`crate::StatsLayout::PerClusterOracle`]) and
/// the staging value [`StatsArena::alloc`] copies from.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateSet {
    /// Candidate range per dimension: dimension `d` owns candidates
    /// `dim_offsets[d] .. dim_offsets[d + 1]`. Length `dims + 1`.
    dim_offsets: Vec<u32>,
    /// Aggregate bounds per dimension run (length `dims`), computed once
    /// at generation — bound columns never change afterwards.
    run_bounds: Vec<RunBounds>,
    /// Specialized dimension per candidate (redundant with the offsets,
    /// kept for O(1) per-candidate access).
    dim: Vec<u16>,
    /// Start subinterval index per candidate.
    sub_i: Vec<u8>,
    /// End subinterval index per candidate.
    sub_j: Vec<u8>,
    /// Inclusive lower bound of the start variation subinterval.
    start_lo: Vec<Scalar>,
    /// Largest value the start variation subinterval contains.
    start_reach: Vec<Scalar>,
    /// Inclusive lower bound of the end variation subinterval.
    end_lo: Vec<Scalar>,
    /// Largest value the end variation subinterval contains.
    end_reach: Vec<Scalar>,
    /// Member objects of the parent qualifying for each candidate.
    n: Vec<u32>,
    /// Queries matching each candidate since the last statistics epoch
    /// (saturating).
    q: Vec<u32>,
    /// Exponentially decayed query count from previous epochs (smooths
    /// the access-probability estimate across reorganization periods).
    q_eff: Vec<f64>,
    /// Cached **upper bound** on `max(n)`: raised whenever a member
    /// recording pushes a counter above it, left untouched by removals
    /// (so it may be loose, never low), and re-tightened to the exact
    /// maximum whenever a reorganization scan walks the counters anyway.
    /// The incremental reorganization's O(1) no-split screen prices its
    /// most-profitable-possible candidate with this bound; a loose bound
    /// only costs an unnecessary scan, never a wrong decision.
    n_hi: u32,
    /// Statistics epoch up to which this set's lazy decay is applied
    /// (the index's `stats_epoch` at the last touch).
    stamp: u64,
}

impl CandidateSet {
    /// Generates the candidate set of a cluster signature: for each
    /// dimension, every feasible `(i, j)` combination of `f` start/end
    /// subintervals (paper §4.2). Candidate counters start at zero.
    pub fn generate(sig: &Signature, f: u8) -> Self {
        let cap = sig.dims() * (f as usize * (f as usize + 1)) / 2;
        let mut set = Self {
            dim_offsets: Vec::with_capacity(sig.dims() + 1),
            run_bounds: Vec::new(),
            dim: Vec::with_capacity(cap),
            sub_i: Vec::with_capacity(cap),
            sub_j: Vec::with_capacity(cap),
            start_lo: Vec::with_capacity(cap),
            start_reach: Vec::with_capacity(cap),
            end_lo: Vec::with_capacity(cap),
            end_reach: Vec::with_capacity(cap),
            n: Vec::with_capacity(cap),
            q: Vec::with_capacity(cap),
            q_eff: Vec::with_capacity(cap),
            n_hi: 0,
            stamp: 0,
        };
        set.dim_offsets.push(0);
        for d in 0..sig.dims() {
            let ds = sig.dim(d);
            for i in 0..f {
                for j in 0..f {
                    if !sig.combination_feasible(d, f, i, j) {
                        continue;
                    }
                    let start = ds.start.subdivide(f, i);
                    let end = ds.end.subdivide(f, j);
                    set.dim.push(d as u16);
                    set.sub_i.push(i);
                    set.sub_j.push(j);
                    set.start_lo.push(start.lo());
                    set.start_reach.push(reach_of(&start));
                    set.end_lo.push(end.lo());
                    set.end_reach.push(reach_of(&end));
                    set.n.push(0);
                    set.q.push(0);
                    set.q_eff.push(0.0);
                }
            }
            set.dim_offsets.push(set.dim.len() as u32);
        }
        set.run_bounds = RunBounds::compute_all(
            &set.start_lo,
            &set.start_reach,
            &set.end_lo,
            &set.end_reach,
            &set.dim_offsets,
        );
        set
    }

    /// Borrows the read-only view all read logic lives on.
    #[inline]
    pub fn as_slice(&self) -> CandidateSlice<'_> {
        CandidateSlice {
            dim_offsets: &self.dim_offsets,
            run_bounds: &self.run_bounds,
            dim: &self.dim,
            sub_i: &self.sub_i,
            sub_j: &self.sub_j,
            start_lo: &self.start_lo,
            start_reach: &self.start_reach,
            end_lo: &self.end_lo,
            end_reach: &self.end_reach,
            n: &self.n,
            q: &self.q,
            q_eff: &self.q_eff,
            n_hi: self.n_hi,
            stamp: self.stamp,
        }
    }

    /// Borrows the mutable view all mutation logic lives on.
    #[inline]
    pub fn as_slice_mut(&mut self) -> CandidateSliceMut<'_> {
        CandidateSliceMut {
            dim_offsets: &self.dim_offsets,
            run_bounds: &self.run_bounds,
            dim: &self.dim,
            sub_i: &self.sub_i,
            sub_j: &self.sub_j,
            start_lo: &self.start_lo,
            start_reach: &self.start_reach,
            end_lo: &self.end_lo,
            end_reach: &self.end_reach,
            n: &mut self.n,
            q: &mut self.q,
            q_eff: &mut self.q_eff,
            n_hi: &mut self.n_hi,
            stamp: &mut self.stamp,
        }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.dim.len()
    }

    /// Whether the set holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.dim.is_empty()
    }

    /// Number of dimensions the candidates specialize.
    pub fn dims(&self) -> usize {
        self.dim_offsets.len() - 1
    }

    /// The bound columns as the batch kernel's borrowed view.
    pub fn columns(&self) -> CandidateColumns<'_> {
        self.as_slice().columns()
    }

    /// The identity of candidate `ci`.
    pub fn id(&self, ci: usize) -> CandidateId {
        self.as_slice().id(ci)
    }

    /// The membership bounds of candidate `ci`, copied out.
    pub fn bounds(&self, ci: usize) -> CandidateBounds {
        self.as_slice().bounds(ci)
    }

    /// Qualifying-member count of candidate `ci`.
    pub fn n(&self, ci: usize) -> u32 {
        self.n[ci]
    }

    /// Matching-query count of candidate `ci` in the current epoch.
    pub fn q(&self, ci: usize) -> u32 {
        self.q[ci]
    }

    /// Decayed matching-query history of candidate `ci`.
    pub fn q_eff(&self, ci: usize) -> f64 {
        self.q_eff[ci]
    }

    /// The qualifying-member counter column (parallel to the candidate
    /// index) — input of the batched benefit evaluation.
    pub fn n_col(&self) -> &[u32] {
        &self.n
    }

    /// The epoch matching-query counter column.
    pub fn q_col(&self) -> &[u32] {
        &self.q
    }

    /// The decayed matching-query history column.
    pub fn q_eff_col(&self) -> &[f64] {
        &self.q_eff
    }

    /// Cached upper bound on the maximal qualifying-member count over
    /// all candidates (see the field docs: may be loose, never low).
    pub fn n_hi(&self) -> u32 {
        self.n_hi
    }

    /// Re-tightens the cached bound to the exact maximum, as computed by
    /// a pass that walked the `n` column anyway.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `exact_max` really bounds every counter.
    #[cfg(test)]
    pub(crate) fn set_n_hi(&mut self, exact_max: u32) {
        self.as_slice_mut().set_n_hi(exact_max);
    }

    /// Advances the lazy-decay stamp to `epoch`.
    pub(crate) fn set_stamp(&mut self, epoch: u64) {
        self.stamp = epoch;
    }

    /// Restores persisted query counters onto a freshly regenerated set —
    /// the checkpoint-recovery path. The `n` column is never persisted
    /// (membership replay recomputes it exactly), so only the query
    /// columns, the `n_hi` bound, and the decay stamp come from disk.
    ///
    /// # Panics
    ///
    /// Panics if the column lengths do not match this set's candidate
    /// count; callers validate against the checkpoint before reaching
    /// here, so a mismatch is a logic error.
    pub(crate) fn restore_counters(&mut self, q: &[u32], q_eff: &[f64], n_hi: u32, stamp: u64) {
        assert_eq!(q.len(), self.q.len(), "restored q column length");
        assert_eq!(
            q_eff.len(),
            self.q_eff.len(),
            "restored q_eff column length"
        );
        self.q.copy_from_slice(q);
        self.q_eff.copy_from_slice(q_eff);
        // The persisted bound was valid for the persisted membership; the
        // members replayed so far may already exceed a stale bound, so
        // keep whichever is higher (the bound may be loose, never low).
        let replayed_max = self.n.iter().copied().max().unwrap_or(0);
        self.n_hi = n_hi.max(replayed_max);
        self.stamp = stamp;
    }

    /// Whether an object *that already satisfies the parent signature*
    /// also satisfies candidate `ci`.
    #[inline]
    pub fn accepts_member(&self, ci: usize, flat: &[Scalar]) -> bool {
        self.as_slice().accepts_member(ci, flat)
    }

    /// Whether a query *that already matches the parent signature* also
    /// matches candidate `ci` (only the specialized dimension is
    /// checked) — the scalar oracle of
    /// [`acx_geom::scan::scan_candidates`], same comparisons in the same
    /// order.
    #[inline]
    pub fn matches_query(&self, ci: usize, query: &SpatialQuery) -> bool {
        self.as_slice().matches_query(ci, query)
    }

    /// Counts a new member of the parent cluster into every candidate
    /// accepting it.
    pub fn record_member(&mut self, flat: &[Scalar]) {
        self.as_slice_mut().record_member(flat);
    }

    /// Removes a departing member of the parent cluster from every
    /// candidate accepting it.
    pub fn unrecord_member(&mut self, flat: &[Scalar]) {
        self.as_slice_mut().unrecord_member(flat);
    }

    /// Adds `inc` matching queries to candidate `ci`, saturating at
    /// `u32::MAX` instead of wrapping.
    pub fn add_q(&mut self, ci: usize, inc: u32) {
        self.as_slice_mut().add_q(ci, inc);
    }

    /// Adds a whole per-candidate increment vector (saturating) — the
    /// branch-free bulk form [`crate::StatsDelta`] application uses.
    /// `incs` may be shorter than the set; missing entries add nothing.
    pub fn add_q_slice(&mut self, incs: &[u32]) {
        self.as_slice_mut().add_q_slice(incs);
    }

    /// Closes the statistics epoch: folds each candidate's `q` into its
    /// decayed history with weight `gamma` and resets the epoch counter.
    pub fn decay(&mut self, gamma: f64) {
        self.as_slice_mut().decay(gamma);
    }

    /// Replays `epochs` missed statistics-epoch closes at once — the
    /// lazy-decay catch-up applied on the first touch after epoch rolls.
    ///
    /// Bit-identical to calling [`CandidateSet::decay`] `epochs` times:
    /// the first replayed close folds the pending `q` counters (which
    /// accumulated while the set's stamp epoch was open — later epochs
    /// saw no touches, so their folds add exactly zero), and every
    /// further close multiplies the history by `gamma`. `γ·x + 0.0`
    /// equals `γ·x` bitwise for the non-negative histories stored here,
    /// so the catch-up runs the pure multiplications, element-major:
    /// each history stops at its own underflow to exactly `+0.0`
    /// (multiplying `+0.0` further is the identity), so a mostly-cold
    /// set costs one check per zero history regardless of how many
    /// epochs it slept. Saturated `q` counters (pinned at `u32::MAX`)
    /// fold like any other value. The worst case is bounded by the
    /// rounds a history needs to underflow (≈ 1 100 for the default
    /// `γ = 0.5`; configurations with `γ` near 1 pay proportionally
    /// more, but only once, on the first touch after the idle
    /// stretch — the same multiplications an eager fold would have
    /// spread across the idle epochs).
    pub fn catch_up(&mut self, gamma: f64, epochs: u64) {
        self.as_slice_mut().catch_up(gamma, epochs);
    }

    /// Materializes the full signature of candidate `ci`.
    pub fn signature(&self, ci: usize, parent: &Signature, f: u8) -> Signature {
        self.as_slice().signature(ci, parent, f)
    }
}

/// Generates the candidate set of a cluster signature — see
/// [`CandidateSet::generate`].
pub fn generate_candidates(sig: &Signature, f: u8) -> CandidateSet {
    CandidateSet::generate(sig, f)
}

/// Opaque handle to one cluster's candidate range inside a
/// [`StatsArena`]. Handles stay valid across compaction (ranges move,
/// ids do not) and are invalidated only by [`StatsArena::retire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandHandle(u32);

/// One allocated range of the arena: `base..base + len` into the
/// candidate slabs, plus its private meta rows (offsets, run bounds)
/// and the per-set scalars (`n_hi`, lazy-decay stamp).
#[derive(Debug, Clone)]
struct RangeEntry {
    /// First candidate index in the per-candidate slabs.
    base: u32,
    /// Number of candidates.
    len: u32,
    /// First entry in the `dim_offsets` slab (`dims + 1` entries).
    meta_base: u32,
    /// First entry in the `run_bounds` slab (`dims` entries).
    runs_base: u32,
    /// Number of specialized dimensions.
    dims: u32,
    /// Whether the range is still owned by a cluster slot. Dead ranges
    /// keep their bytes until the next compaction.
    live: bool,
    /// Cached upper bound on `max(n)` for this range.
    n_hi: u32,
    /// Statistics epoch up to which this range's lazy decay is applied.
    stamp: u64,
}

/// Bytes per candidate across the per-candidate slabs
/// (`dim` 2 + `sub_i` 1 + `sub_j` 1 + four `f32` bounds 16 + `n` 4 +
/// `q` 4 + `q_eff` 8).
const CAND_BYTES: usize = 36;
/// Bytes per `dim_offsets` entry.
const META_BYTES: usize = 4;
/// Bytes per `run_bounds` entry (four `f32` aggregates).
const RUNS_BYTES: usize = 16;

/// Index-wide statistics arena: one contiguous slab per candidate
/// column family, shared by every cluster slot. See the module docs for
/// the layout rationale; the life cycle is:
///
/// 1. [`StatsArena::alloc`] copies a freshly generated (or staged)
///    [`CandidateSet`] to the slab tail — bump allocation, O(len).
/// 2. [`StatsArena::slice`] / [`StatsArena::slice_mut`] project a range
///    to the shared view types; all statistics logic goes through them.
/// 3. [`StatsArena::retire`] marks a range dead when its cluster is
///    merged away or re-materialized. Bytes stay in place (no id reuse
///    before compaction, so stale handles cannot alias a new range).
/// 4. [`StatsArena::maybe_compact`] — called from the reorganization
///    pass, which walks every slot anyway — slides live ranges down in
///    allocation order once dead bytes reach a quarter of capacity,
///    returning retired ids to the free list. Compaction moves bytes
///    with `copy_within` and never allocates.
///
/// `dim_offsets` entries are stored **range-relative** (each range's
/// first entry is `0`), so compaction moves them verbatim without
/// rewriting.
#[derive(Debug, Default)]
pub struct StatsArena {
    dim: Vec<u16>,
    sub_i: Vec<u8>,
    sub_j: Vec<u8>,
    start_lo: Vec<Scalar>,
    start_reach: Vec<Scalar>,
    end_lo: Vec<Scalar>,
    end_reach: Vec<Scalar>,
    n: Vec<u32>,
    q: Vec<u32>,
    q_eff: Vec<f64>,
    /// `dim_offsets` slab: `dims + 1` range-relative entries per range.
    dim_offsets: Vec<u32>,
    /// `run_bounds` slab: `dims` entries per range.
    run_bounds: Vec<RunBounds>,
    /// Range table, indexed by [`CandHandle`] id. Never shrinks.
    ranges: Vec<RangeEntry>,
    /// Ids available for reuse — replenished **only** by compaction, so
    /// a dead range's id stays unique until its bytes are reclaimed.
    free_ids: Vec<u32>,
    /// Allocated ids in slab order (live and dead until compaction) —
    /// ascending `base`, which makes the compaction slide-down a single
    /// forward walk.
    order: Vec<u32>,
    /// Live candidates across all ranges.
    live_candidates: usize,
    /// Live `dim_offsets` entries.
    live_meta: usize,
    /// Live `run_bounds` entries.
    live_runs: usize,
    /// Number of compactions performed over the arena's lifetime.
    compactions: u64,
}

impl StatsArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `set`'s columns to the slab tail and returns the handle of
    /// the new range. The set's counters, `n_hi`, and stamp carry over.
    pub fn alloc(&mut self, set: &CandidateSet) -> CandHandle {
        let entry = RangeEntry {
            base: self.dim.len() as u32,
            len: set.len() as u32,
            meta_base: self.dim_offsets.len() as u32,
            runs_base: self.run_bounds.len() as u32,
            dims: set.dims() as u32,
            live: true,
            n_hi: set.n_hi,
            stamp: set.stamp,
        };
        self.dim.extend_from_slice(&set.dim);
        self.sub_i.extend_from_slice(&set.sub_i);
        self.sub_j.extend_from_slice(&set.sub_j);
        self.start_lo.extend_from_slice(&set.start_lo);
        self.start_reach.extend_from_slice(&set.start_reach);
        self.end_lo.extend_from_slice(&set.end_lo);
        self.end_reach.extend_from_slice(&set.end_reach);
        self.n.extend_from_slice(&set.n);
        self.q.extend_from_slice(&set.q);
        self.q_eff.extend_from_slice(&set.q_eff);
        // Owned sets index from 0 already, so the offsets are
        // range-relative verbatim.
        self.dim_offsets.extend_from_slice(&set.dim_offsets);
        self.run_bounds.extend_from_slice(&set.run_bounds);
        self.live_candidates += set.len();
        self.live_meta += set.dims() + 1;
        self.live_runs += set.dims();
        let id = match self.free_ids.pop() {
            Some(id) => {
                self.ranges[id as usize] = entry;
                id
            }
            None => {
                self.ranges.push(entry);
                (self.ranges.len() - 1) as u32
            }
        };
        // The new range has the largest base, so pushing keeps `order`
        // sorted by base.
        self.order.push(id);
        CandHandle(id)
    }

    /// Marks a range dead. Its bytes stay in place and its id stays
    /// unavailable until the next compaction, so no live handle can
    /// alias it.
    ///
    /// # Panics
    ///
    /// Panics if the handle was already retired.
    pub fn retire(&mut self, h: CandHandle) {
        let e = &mut self.ranges[h.0 as usize];
        assert!(e.live, "candidate range retired twice");
        e.live = false;
        self.live_candidates -= e.len as usize;
        self.live_meta -= e.dims as usize + 1;
        self.live_runs -= e.dims as usize;
    }

    /// Read-only view of a live range.
    #[inline]
    pub fn slice(&self, h: CandHandle) -> CandidateSlice<'_> {
        let e = &self.ranges[h.0 as usize];
        debug_assert!(e.live, "viewing a retired candidate range");
        let (base, len) = (e.base as usize, e.len as usize);
        let (mb, rb, dims) = (e.meta_base as usize, e.runs_base as usize, e.dims as usize);
        CandidateSlice {
            dim_offsets: &self.dim_offsets[mb..mb + dims + 1],
            run_bounds: &self.run_bounds[rb..rb + dims],
            dim: &self.dim[base..base + len],
            sub_i: &self.sub_i[base..base + len],
            sub_j: &self.sub_j[base..base + len],
            start_lo: &self.start_lo[base..base + len],
            start_reach: &self.start_reach[base..base + len],
            end_lo: &self.end_lo[base..base + len],
            end_reach: &self.end_reach[base..base + len],
            n: &self.n[base..base + len],
            q: &self.q[base..base + len],
            q_eff: &self.q_eff[base..base + len],
            n_hi: e.n_hi,
            stamp: e.stamp,
        }
    }

    /// Mutable view of a live range.
    #[inline]
    pub fn slice_mut(&mut self, h: CandHandle) -> CandidateSliceMut<'_> {
        let e = &mut self.ranges[h.0 as usize];
        debug_assert!(e.live, "viewing a retired candidate range");
        let (base, len) = (e.base as usize, e.len as usize);
        let (mb, rb, dims) = (e.meta_base as usize, e.runs_base as usize, e.dims as usize);
        CandidateSliceMut {
            dim_offsets: &self.dim_offsets[mb..mb + dims + 1],
            run_bounds: &self.run_bounds[rb..rb + dims],
            dim: &self.dim[base..base + len],
            sub_i: &self.sub_i[base..base + len],
            sub_j: &self.sub_j[base..base + len],
            start_lo: &self.start_lo[base..base + len],
            start_reach: &self.start_reach[base..base + len],
            end_lo: &self.end_lo[base..base + len],
            end_reach: &self.end_reach[base..base + len],
            n: &mut self.n[base..base + len],
            q: &mut self.q[base..base + len],
            q_eff: &mut self.q_eff[base..base + len],
            n_hi: &mut e.n_hi,
            stamp: &mut e.stamp,
        }
    }

    /// Bytes owned by live ranges across all slabs.
    pub fn live_bytes(&self) -> usize {
        self.live_candidates * CAND_BYTES
            + self.live_meta * META_BYTES
            + self.live_runs * RUNS_BYTES
    }

    /// Bytes occupied by the slabs (live plus not-yet-compacted dead).
    pub fn capacity_bytes(&self) -> usize {
        self.dim.len() * CAND_BYTES
            + self.dim_offsets.len() * META_BYTES
            + self.run_bounds.len() * RUNS_BYTES
    }

    /// Number of compactions performed over the arena's lifetime.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Number of live ranges.
    pub fn live_ranges(&self) -> usize {
        self.order
            .iter()
            .filter(|&&id| self.ranges[id as usize].live)
            .count()
    }

    /// Whether dead bytes have reached a quarter of slab capacity — the
    /// compaction trigger.
    pub fn should_compact(&self) -> bool {
        let cap = self.capacity_bytes();
        cap > 0 && (cap - self.live_bytes()) * 4 >= cap
    }

    /// Compacts if [`StatsArena::should_compact`]; returns whether a
    /// compaction ran.
    pub fn maybe_compact(&mut self) -> bool {
        if self.should_compact() {
            self.compact();
            true
        } else {
            false
        }
    }

    /// Slides every live range down over the dead ones, in allocation
    /// order, and returns retired ids to the free list. Handles stay
    /// valid (only `base` moves); `dim_offsets` move verbatim because
    /// they are range-relative. Moves bytes with `copy_within` within
    /// the existing slabs — no allocation, no per-range scratch.
    pub fn compact(&mut self) {
        let mut cand_w = 0usize;
        let mut meta_w = 0usize;
        let mut runs_w = 0usize;
        for &id in &self.order {
            let (live, base, len, mb, rb, dims) = {
                let e = &self.ranges[id as usize];
                (
                    e.live,
                    e.base as usize,
                    e.len as usize,
                    e.meta_base as usize,
                    e.runs_base as usize,
                    e.dims as usize,
                )
            };
            if !live {
                self.free_ids.push(id);
                continue;
            }
            // `order` is ascending in base and the write cursor never
            // overtakes a live base, so the forward copies cannot clobber
            // unread bytes.
            if base != cand_w {
                self.dim.copy_within(base..base + len, cand_w);
                self.sub_i.copy_within(base..base + len, cand_w);
                self.sub_j.copy_within(base..base + len, cand_w);
                self.start_lo.copy_within(base..base + len, cand_w);
                self.start_reach.copy_within(base..base + len, cand_w);
                self.end_lo.copy_within(base..base + len, cand_w);
                self.end_reach.copy_within(base..base + len, cand_w);
                self.n.copy_within(base..base + len, cand_w);
                self.q.copy_within(base..base + len, cand_w);
                self.q_eff.copy_within(base..base + len, cand_w);
            }
            if mb != meta_w {
                self.dim_offsets.copy_within(mb..mb + dims + 1, meta_w);
            }
            if rb != runs_w {
                self.run_bounds.copy_within(rb..rb + dims, runs_w);
            }
            let e = &mut self.ranges[id as usize];
            e.base = cand_w as u32;
            e.meta_base = meta_w as u32;
            e.runs_base = runs_w as u32;
            cand_w += len;
            meta_w += dims + 1;
            runs_w += dims;
        }
        self.order.retain(|&id| self.ranges[id as usize].live);
        self.dim.truncate(cand_w);
        self.sub_i.truncate(cand_w);
        self.sub_j.truncate(cand_w);
        self.start_lo.truncate(cand_w);
        self.start_reach.truncate(cand_w);
        self.end_lo.truncate(cand_w);
        self.end_reach.truncate(cand_w);
        self.n.truncate(cand_w);
        self.q.truncate(cand_w);
        self.q_eff.truncate(cand_w);
        self.dim_offsets.truncate(meta_w);
        self.run_bounds.truncate(runs_w);
        self.compactions += 1;
    }

    /// Structural self-check, used by the index's `check_invariants` and
    /// the arena tests: slab lengths agree, every allocated id is
    /// tracked exactly once, live ranges are disjoint, in-bounds, and
    /// ascending in slab order, range-relative offsets partition each
    /// range, and the live-byte accounting matches a linear rebuild.
    pub fn check(&self) -> Result<(), String> {
        let n = self.dim.len();
        let cols_agree = self.sub_i.len() == n
            && self.sub_j.len() == n
            && self.start_lo.len() == n
            && self.start_reach.len() == n
            && self.end_lo.len() == n
            && self.end_reach.len() == n
            && self.n.len() == n
            && self.q.len() == n
            && self.q_eff.len() == n;
        if !cols_agree {
            return Err("candidate slabs disagree on length".into());
        }
        if self.order.len() + self.free_ids.len() != self.ranges.len() {
            return Err(format!(
                "id accounting broken: {} in order + {} free != {} ranges",
                self.order.len(),
                self.free_ids.len(),
                self.ranges.len()
            ));
        }
        let mut seen = vec![false; self.ranges.len()];
        for &id in self.order.iter().chain(&self.free_ids) {
            let slot = seen
                .get_mut(id as usize)
                .ok_or_else(|| format!("id {id} out of range"))?;
            if std::mem::replace(slot, true) {
                return Err(format!("id {id} tracked twice"));
            }
        }
        let (mut cand_w, mut meta_w, mut runs_w) = (0usize, 0usize, 0usize);
        let (mut live_c, mut live_m, mut live_r) = (0usize, 0usize, 0usize);
        for &id in &self.order {
            let e = &self.ranges[id as usize];
            let (base, len) = (e.base as usize, e.len as usize);
            let (mb, rb, dims) = (e.meta_base as usize, e.runs_base as usize, e.dims as usize);
            if base < cand_w || mb < meta_w || rb < runs_w {
                return Err(format!("range {id} overlaps its predecessor"));
            }
            if base + len > n
                || mb + dims + 1 > self.dim_offsets.len()
                || rb + dims > self.run_bounds.len()
            {
                return Err(format!("range {id} exceeds slab bounds"));
            }
            let offs = &self.dim_offsets[mb..mb + dims + 1];
            if offs[0] != 0 || offs[dims] as usize != len {
                return Err(format!("range {id} offsets do not span its candidates"));
            }
            if offs.windows(2).any(|w| w[0] > w[1]) {
                return Err(format!("range {id} offsets decrease"));
            }
            cand_w = base + len;
            meta_w = mb + dims + 1;
            runs_w = rb + dims;
            if e.live {
                live_c += len;
                live_m += dims + 1;
                live_r += dims;
            }
        }
        if (live_c, live_m, live_r) != (self.live_candidates, self.live_meta, self.live_runs) {
            return Err(format!(
                "live accounting drifted: counted ({live_c}, {live_m}, {live_r}), \
                 recorded ({}, {}, {})",
                self.live_candidates, self.live_meta, self.live_runs
            ));
        }
        Ok(())
    }
}

/// Where one cluster's candidate statistics live: owned per-cluster
/// columns (the [`crate::StatsLayout::PerClusterOracle`] decision
/// oracle) or a range of the index-wide [`StatsArena`].
#[derive(Debug, Clone)]
pub(crate) enum CandStore {
    /// The cluster owns its columns (boxed: the store is embedded in
    /// every `Cluster`, and the arena variant is a 4-byte handle).
    Owned(Box<CandidateSet>),
    /// The cluster's columns live in the index's arena.
    Arena(CandHandle),
}

/// Projects a store to the shared read-only view.
#[inline]
pub(crate) fn view<'a>(arena: &'a StatsArena, store: &'a CandStore) -> CandidateSlice<'a> {
    match store {
        CandStore::Owned(set) => set.as_slice(),
        CandStore::Arena(h) => arena.slice(*h),
    }
}

/// Projects a store to the shared mutable view.
#[inline]
pub(crate) fn view_mut<'a>(
    arena: &'a mut StatsArena,
    store: &'a mut CandStore,
) -> CandidateSliceMut<'a> {
    match store {
        CandStore::Owned(set) => set.as_slice_mut(),
        CandStore::Arena(h) => arena.slice_mut(*h),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acx_geom::HyperRect;

    fn rect(lo: &[Scalar], hi: &[Scalar]) -> HyperRect {
        HyperRect::from_bounds(lo, hi).unwrap()
    }

    #[test]
    fn root_candidate_count_matches_paper() {
        // Root: identical variation intervals in every dimension →
        // f(f+1)/2 = 10 candidates per dimension with f = 4.
        let sig = Signature::root(16);
        let cands = generate_candidates(&sig, 4);
        assert_eq!(cands.len(), 16 * 10);
        // §6: between 10·Nd and 16·Nd candidates per cluster.
        assert!(cands.len() >= 10 * 16 && cands.len() <= 16 * 16);
        assert_eq!(cands.dims(), 16);
    }

    #[test]
    fn specialized_cluster_candidate_count_in_paper_range() {
        // After specializing d0 with distinct start/end variation
        // intervals, d0 contributes up to 16 combinations.
        let sig = Signature::root(4).specialize(0, 4, 0, 3);
        let cands = generate_candidates(&sig, 4);
        assert!(
            cands.len() > 4 * 10 && cands.len() <= 4 * 16,
            "{}",
            cands.len()
        );
    }

    #[test]
    fn dim_offsets_partition_the_set() {
        let sig = Signature::root(3).specialize(1, 4, 0, 3);
        let cands = generate_candidates(&sig, 4);
        for d in 0..cands.dims() {
            let cols = cands.columns();
            assert_eq!(cols.dims(), 3);
            for ci in cands.dim_offsets[d] as usize..cands.dim_offsets[d + 1] as usize {
                assert_eq!(cands.id(ci).dim as usize, d);
            }
        }
        assert_eq!(*cands.dim_offsets.last().unwrap() as usize, cands.len());
    }

    fn find(cands: &CandidateSet, dim: u16, i: u8, j: u8) -> usize {
        (0..cands.len())
            .find(|&ci| {
                let id = cands.id(ci);
                id.dim == dim && id.i == i && id.j == j
            })
            .expect("candidate exists")
    }

    #[test]
    fn accepts_member_checks_only_specialized_dimension() {
        let sig = Signature::root(2);
        let cands = generate_candidates(&sig, 4);
        // Candidate: d0, starts in [0,0.25), ends in [0,0.25).
        let c = find(&cands, 0, 0, 0);
        assert!(cands.accepts_member(c, &rect(&[0.1, 0.9], &[0.2, 1.0]).to_flat()));
        assert!(!cands.accepts_member(c, &rect(&[0.1, 0.9], &[0.3, 1.0]).to_flat()));
        // The copied-out bounds agree.
        assert!(cands
            .bounds(c)
            .accepts_member(&rect(&[0.1, 0.9], &[0.2, 1.0]).to_flat()));
        assert!(!cands
            .bounds(c)
            .accepts_member(&rect(&[0.1, 0.9], &[0.3, 1.0]).to_flat()));
    }

    #[test]
    fn open_bound_boundary_is_excluded_exactly() {
        // d0 candidate (0,0): starts and ends vary in [0, 0.25) — an
        // object touching 0.25 must be rejected despite the closed
        // `reach` encoding.
        let sig = Signature::root(1);
        let cands = generate_candidates(&sig, 4);
        let c = find(&cands, 0, 0, 0);
        assert!(cands.accepts_member(c, &[0.0, 0.2499]));
        assert!(!cands.accepts_member(c, &[0.0, 0.25]));
        assert!(cands.accepts_member(c, &[0.0, 0.25f32.next_down()]));
    }

    #[test]
    fn candidate_signature_equals_specialization() {
        let sig = Signature::root(3);
        let cands = generate_candidates(&sig, 4);
        for ci in 0..5 {
            let id = cands.id(ci);
            let expected = sig.specialize(id.dim as usize, 4, id.i, id.j);
            assert_eq!(cands.signature(ci, &sig, 4), expected);
        }
    }

    #[test]
    fn matches_query_agrees_with_full_signature_matching() {
        let sig = Signature::root(2);
        let cands = generate_candidates(&sig, 4);
        let queries = [
            SpatialQuery::intersection(rect(&[0.1, 0.2], &[0.3, 0.6])),
            SpatialQuery::containment(rect(&[0.0, 0.0], &[0.5, 0.5])),
            SpatialQuery::enclosure(rect(&[0.4, 0.4], &[0.45, 0.45])),
            SpatialQuery::point_enclosing(vec![0.3, 0.7]),
        ];
        for ci in 0..cands.len() {
            let full = cands.signature(ci, &sig, 4);
            for q in &queries {
                assert_eq!(
                    cands.matches_query(ci, q),
                    full.matches_query(q),
                    "candidate {:?} vs query {q:?}",
                    cands.id(ci)
                );
            }
        }
    }

    #[test]
    fn kernel_mask_agrees_with_scalar_oracle() {
        use acx_geom::scan::{scan_candidates, ScanScratch, BLOCK};
        // A specialized signature in 3 dims; boundary-coincident query
        // edges on the f = 4 grid.
        let sig = Signature::root(3).specialize(2, 4, 1, 3);
        let cands = generate_candidates(&sig, 4);
        let queries = [
            SpatialQuery::intersection(rect(&[0.25, 0.0, 0.5], &[0.5, 0.25, 0.75])),
            SpatialQuery::containment(rect(&[0.0, 0.25, 0.25], &[0.75, 1.0, 1.0])),
            SpatialQuery::enclosure(rect(&[0.25, 0.5, 0.6], &[0.25, 0.5, 0.9])),
            SpatialQuery::point_enclosing(vec![0.25, 0.75, 0.5]),
            SpatialQuery::point_enclosing(vec![0.0, 1.0, 0.9999]),
        ];
        let mut scratch = ScanScratch::new();
        for q in &queries {
            let matched = scan_candidates(q, &cands.columns(), &mut scratch);
            let mut want = 0usize;
            for ci in 0..cands.len() {
                let bit = scratch.mask_words()[ci / BLOCK] >> (ci % BLOCK) & 1 == 1;
                assert_eq!(bit, cands.matches_query(ci, q), "candidate {ci} on {q:?}");
                want += cands.matches_query(ci, q) as usize;
            }
            assert_eq!(matched, want);
        }
    }

    #[test]
    fn division_factor_two_produces_three_per_dim() {
        let sig = Signature::root(5);
        // f = 2 on identical intervals → 2·3/2 = 3 combinations per dim.
        assert_eq!(generate_candidates(&sig, 2).len(), 5 * 3);
    }

    #[test]
    fn counters_start_at_zero_and_members_roundtrip() {
        let sig = Signature::root(2);
        let mut cands = generate_candidates(&sig, 4);
        for ci in 0..cands.len() {
            assert_eq!(cands.n(ci), 0);
            assert_eq!(cands.q(ci), 0);
            assert_eq!(cands.q_eff(ci), 0.0);
        }
        let flat = rect(&[0.1, 0.6], &[0.2, 0.9]).to_flat();
        cands.record_member(&flat);
        let total: u32 = (0..cands.len()).map(|ci| cands.n(ci)).sum();
        // Exactly one accepting candidate per dimension (§4.2 cells).
        assert_eq!(total, 2);
        cands.unrecord_member(&flat);
        assert!((0..cands.len()).all(|ci| cands.n(ci) == 0));
    }

    #[test]
    fn q_counters_saturate_instead_of_wrapping() {
        let sig = Signature::root(1);
        let mut cands = generate_candidates(&sig, 2);
        cands.add_q(0, u32::MAX - 1);
        cands.add_q(0, 5);
        assert_eq!(cands.q(0), u32::MAX, "increment must saturate");
        cands.add_q(0, 1);
        assert_eq!(cands.q(0), u32::MAX, "saturated counter stays pinned");
        // Decay folds the saturated value into history and reopens the
        // epoch counter.
        cands.decay(0.5);
        assert_eq!(cands.q(0), 0);
        assert_eq!(cands.q_eff(0), u32::MAX as f64);
    }

    #[test]
    fn catch_up_is_bit_identical_to_eager_decay() {
        // The eager oracle: one `decay` per epoch, exactly as the index
        // performed before decay went lazy.
        let sig = Signature::root(2);
        let mut eager = generate_candidates(&sig, 4);
        // A spread of magnitudes, including a saturated counter and a
        // tiny history that decays through many epochs.
        eager.add_q(0, 10);
        eager.add_q(3, u32::MAX);
        eager.add_q(7, 1);
        eager.decay(0.5);
        eager.add_q(7, 3);
        let mut lazy = eager.clone();
        let gamma = 0.37;
        for k in [1u64, 2, 5, 40] {
            for _ in 0..k {
                eager.decay(gamma);
            }
            lazy.catch_up(gamma, k);
            assert_eq!(lazy, eager, "diverged after catching up {k} epochs");
            for ci in 0..eager.len() {
                assert_eq!(
                    lazy.q_eff(ci).to_bits(),
                    eager.q_eff(ci).to_bits(),
                    "candidate {ci} after {k} epochs"
                );
            }
        }
        // Far past underflow: every history is exactly +0.0 in both, and
        // the lazy early-exit must not change that.
        for _ in 0..4000 {
            eager.decay(gamma);
        }
        lazy.catch_up(gamma, 4000);
        for ci in 0..eager.len() {
            assert_eq!(lazy.q_eff(ci).to_bits(), eager.q_eff(ci).to_bits());
            assert_eq!(lazy.q_eff(ci), 0.0, "histories underflow to exact zero");
        }
        lazy.catch_up(gamma, 0); // no-op
        assert_eq!(lazy, eager);
    }

    #[test]
    fn n_hi_bounds_member_counts() {
        let sig = Signature::root(2);
        let mut cands = generate_candidates(&sig, 4);
        assert_eq!(cands.n_hi(), 0);
        let a = rect(&[0.1, 0.6], &[0.2, 0.9]).to_flat();
        let b = rect(&[0.12, 0.6], &[0.2, 0.9]).to_flat();
        cands.record_member(&a);
        cands.record_member(&b);
        assert_eq!(cands.n_hi(), 2, "raised by recordings");
        cands.unrecord_member(&a);
        assert_eq!(cands.n_hi(), 2, "removals leave the bound loose, never low");
        let max_n = (0..cands.len()).map(|ci| cands.n(ci)).max().unwrap();
        assert!(cands.n_hi() >= max_n);
        cands.set_n_hi(max_n);
        assert_eq!(cands.n_hi(), 1, "scans re-tighten to the exact maximum");
        // Decay never touches member counts or the bound.
        cands.catch_up(0.5, 3);
        assert_eq!(cands.n_hi(), 1);
    }

    #[test]
    fn decay_folds_and_resets() {
        let sig = Signature::root(1);
        let mut cands = generate_candidates(&sig, 2);
        cands.add_q(1, 10);
        cands.decay(0.5);
        assert_eq!(cands.q(1), 0);
        assert_eq!(cands.q_eff(1), 10.0);
        cands.add_q(1, 4);
        cands.decay(0.5);
        assert_eq!(cands.q_eff(1), 9.0);
    }

    /// A candidate set with pseudo-random member/query history, used as
    /// arena test fodder.
    fn seasoned_set(dims: usize, f: u8, seed: u64) -> CandidateSet {
        let mut set = generate_candidates(&Signature::root(dims), f);
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) % 33) as Scalar / 32.0
        };
        for _ in 0..5 {
            let mut flat = Vec::with_capacity(2 * dims);
            for _ in 0..dims {
                let (a, b) = (next(), next());
                flat.push(a.min(b));
                flat.push(a.max(b));
            }
            set.record_member(&flat);
        }
        for ci in 0..set.len().min(7) {
            set.add_q(ci, (seed % 11) as u32 + ci as u32);
        }
        set.decay(0.5);
        set.add_q(0, 3);
        set.set_stamp(seed % 5);
        set
    }

    #[test]
    fn arena_ranges_project_identically_to_owned_sets() {
        let mut arena = StatsArena::new();
        let sets: Vec<CandidateSet> = (0..4)
            .map(|k| seasoned_set(1 + k, 4, 17 * k as u64 + 1))
            .collect();
        let handles: Vec<CandHandle> = sets.iter().map(|s| arena.alloc(s)).collect();
        arena.check().unwrap();
        for (set, &h) in sets.iter().zip(&handles) {
            assert_eq!(arena.slice(h), set.as_slice());
        }
        assert_eq!(arena.live_bytes(), arena.capacity_bytes());
        assert_eq!(arena.live_ranges(), 4);
    }

    #[test]
    fn mutations_through_arena_views_match_owned_mutations() {
        let mut arena = StatsArena::new();
        let mut owned = seasoned_set(3, 4, 99);
        let h = arena.alloc(&owned);
        let flat = rect(&[0.1, 0.4, 0.6], &[0.3, 0.5, 0.9]).to_flat();
        let incs = [2u32, 0, 5, 1];
        for (target, is_arena) in [(true, true), (false, false)] {
            let _ = target;
            let mut view = if is_arena {
                arena.slice_mut(h)
            } else {
                owned.as_slice_mut()
            };
            view.record_member(&flat);
            view.add_q_slice(&incs);
            view.add_q(1, 7);
            view.catch_up(0.5, 2);
            view.unrecord_member(&flat);
            view.set_stamp(9);
        }
        assert_eq!(arena.slice(h), owned.as_slice());
        for ci in 0..owned.len() {
            assert_eq!(
                arena.slice(h).q_eff(ci).to_bits(),
                owned.q_eff(ci).to_bits()
            );
        }
    }

    #[test]
    fn retire_and_compact_preserve_survivors_and_recycle_ids() {
        let mut arena = StatsArena::new();
        let sets: Vec<CandidateSet> = (0..5)
            .map(|k| seasoned_set(2, 4, 1000 + k as u64))
            .collect();
        let handles: Vec<CandHandle> = sets.iter().map(|s| arena.alloc(s)).collect();
        // Retire the middle and last ranges.
        arena.retire(handles[2]);
        arena.retire(handles[4]);
        arena.check().unwrap();
        let live_before = arena.live_bytes();
        assert!(
            arena.should_compact(),
            "2/5 dead is past the quarter trigger"
        );
        assert!(arena.maybe_compact());
        arena.check().unwrap();
        assert_eq!(arena.compactions(), 1);
        assert_eq!(
            arena.live_bytes(),
            live_before,
            "compaction conserves live bytes"
        );
        assert_eq!(
            arena.capacity_bytes(),
            live_before,
            "compaction reclaims all dead bytes"
        );
        for (k, (&h, set)) in handles.iter().zip(&sets).enumerate() {
            if k != 2 && k != 4 {
                assert_eq!(arena.slice(h), set.as_slice(), "survivor {k} moved intact");
            }
        }
        // Retired ids are recycled only after compaction.
        let fresh = seasoned_set(2, 4, 7);
        let h_new = arena.alloc(&fresh);
        assert!(
            h_new == handles[2] || h_new == handles[4],
            "freed id is reused: {h_new:?}"
        );
        assert_eq!(arena.slice(h_new), fresh.as_slice());
        arena.check().unwrap();
        // An idle arena with no dead bytes declines to compact.
        assert!(!arena.maybe_compact());
        assert_eq!(arena.compactions(), 1);
    }

    #[test]
    #[should_panic(expected = "retired twice")]
    fn double_retire_panics() {
        let mut arena = StatsArena::new();
        let h = arena.alloc(&seasoned_set(1, 2, 3));
        arena.retire(h);
        arena.retire(h);
    }

    #[test]
    fn cand_store_views_dispatch_to_both_layouts() {
        let mut arena = StatsArena::new();
        let set = seasoned_set(2, 4, 42);
        let h = arena.alloc(&set);
        let mut owned_store = CandStore::Owned(Box::new(set.clone()));
        let mut arena_store = CandStore::Arena(h);
        assert_eq!(
            view(&arena, &owned_store),
            view(&arena, &arena_store),
            "both stores project the same statistics"
        );
        view_mut(&mut arena, &mut owned_store).add_q(0, 9);
        view_mut(&mut arena, &mut arena_store).add_q(0, 9);
        assert_eq!(view(&arena, &owned_store), view(&arena, &arena_store));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use acx_geom::scan::{scan_candidates, ScanScratch, BLOCK};
    use acx_geom::HyperRect;
    use proptest::prelude::*;

    /// Grid-snapped coordinate so query edges coincide with the f = 4
    /// subdivision boundaries constantly.
    fn coord() -> impl Strategy<Value = Scalar> {
        (0u8..=8).prop_map(|k| k as Scalar / 8.0)
    }

    proptest! {
        /// The candidate bitmask kernel equals the scalar oracle for
        /// 1–8 dimensions, both division factors, all four query kinds,
        /// and signatures specialized to produce open and closed
        /// variation intervals — including boundary-coincident query
        /// edges.
        #[test]
        fn candidate_kernel_equals_scalar_oracle(
            dims in 1usize..=8,
            f in prop_oneof![Just(2u8), Just(4u8)],
            spec_dim in 0usize..8,
            spec_i in 0u8..4,
            spec_j in 0u8..4,
            pairs in prop::collection::vec((coord(), coord()), 8),
            kind in 0usize..4,
        ) {
            let spec_dim = spec_dim % dims;
            let (spec_i, spec_j) = (spec_i % f, spec_j % f);
            let sig = if spec_i <= spec_j {
                Signature::root(dims).specialize(spec_dim, f, spec_i, spec_j)
            } else {
                Signature::root(dims)
            };
            let cands = CandidateSet::generate(&sig, f);
            prop_assert!(!cands.is_empty(), "every signature yields candidates");

            let mut lo = Vec::with_capacity(dims);
            let mut hi = Vec::with_capacity(dims);
            for &(a, b) in pairs.iter().take(dims) {
                lo.push(a.min(b));
                hi.push(a.max(b));
            }
            let w = HyperRect::from_bounds(&lo, &hi).unwrap();
            let query = match kind {
                0 => SpatialQuery::intersection(w),
                1 => SpatialQuery::containment(w),
                2 => SpatialQuery::enclosure(w),
                _ => SpatialQuery::point_enclosing(lo.clone()),
            };

            let mut scratch = ScanScratch::new();
            let matched = scan_candidates(&query, &cands.columns(), &mut scratch);
            let mut want = 0usize;
            for ci in 0..cands.len() {
                let bit = scratch.mask_words()[ci / BLOCK] >> (ci % BLOCK) & 1 == 1;
                let oracle = cands.matches_query(ci, &query);
                prop_assert_eq!(bit, oracle, "candidate {} ({:?})", ci, cands.id(ci));
                // When the parent signature matches the query — the
                // precondition under which `explore` consults candidates
                // — the one-dimension check equals full-signature
                // matching (§3.6 safety).
                if sig.matches_query(&query) {
                    prop_assert_eq!(
                        oracle,
                        cands.signature(ci, &sig, f).matches_query(&query),
                        "candidate matching diverged from the full signature"
                    );
                }
                want += oracle as usize;
            }
            prop_assert_eq!(matched, want);
        }

        /// The per-run matches-all fast path (a query interval spanning
        /// the full domain of a specialized dimension) is bit-identical
        /// to the per-candidate evaluation: masks equal the scalar
        /// oracle, and full-domain intersection/containment runs are
        /// all-ones.
        #[test]
        fn full_domain_query_intervals_match_whole_runs(
            dims in 1usize..=6,
            f in prop_oneof![Just(2u8), Just(4u8)],
            spec_dim in 0usize..6,
            spec_i in 0u8..4,
            spec_j in 0u8..4,
            full_mask in 0u8..64,
            pairs in prop::collection::vec((coord(), coord()), 6),
            kind in 0usize..3,
        ) {
            let spec_dim = spec_dim % dims;
            let (spec_i, spec_j) = (spec_i % f, spec_j % f);
            let sig = if spec_i <= spec_j {
                Signature::root(dims).specialize(spec_dim, f, spec_i, spec_j)
            } else {
                Signature::root(dims)
            };
            let cands = CandidateSet::generate(&sig, f);

            // Force the full [0, 1] domain on the masked dimensions so
            // the kernel's run screen fires; the rest stay random.
            let mut lo = Vec::with_capacity(dims);
            let mut hi = Vec::with_capacity(dims);
            for (d, &(a, b)) in pairs.iter().take(dims).enumerate() {
                if full_mask >> d & 1 == 1 {
                    lo.push(0.0);
                    hi.push(1.0);
                } else {
                    lo.push(a.min(b));
                    hi.push(a.max(b));
                }
            }
            let w = HyperRect::from_bounds(&lo, &hi).unwrap();
            let query = match kind {
                0 => SpatialQuery::intersection(w),
                1 => SpatialQuery::containment(w),
                _ => SpatialQuery::enclosure(w),
            };

            let mut scratch = ScanScratch::new();
            scan_candidates(&query, &cands.columns(), &mut scratch);
            for ci in 0..cands.len() {
                let bit = scratch.mask_words()[ci / BLOCK] >> (ci % BLOCK) & 1 == 1;
                prop_assert_eq!(
                    bit,
                    cands.matches_query(ci, &query),
                    "candidate {} under {:?}", ci, &query
                );
                // A full-domain interval cannot discriminate candidates
                // of its dimension for intersection/containment: all
                // bounds live inside the domain, so the whole run
                // matches.
                let d = cands.id(ci).dim as usize;
                if full_mask >> d & 1 == 1 && kind < 2 {
                    prop_assert!(bit, "full-domain run candidate {} must match", ci);
                }
            }
        }

        /// Arena life-cycle invariants across random interleavings of
        /// alloc / retire / mutate / compact, mirrored against owned
        /// [`CandidateSet`]s: the structural `check()` holds after every
        /// step, live bytes are conserved across compaction, and every
        /// live range stays bit-identical to its independently mutated
        /// mirror (the "linear rebuild" of the slot→range map).
        #[test]
        fn compaction_preserves_live_ranges_and_accounting(
            ops in prop::collection::vec((0usize..6, 0usize..8, 0u64..u64::MAX), 1..40),
        ) {
            let mut arena = StatsArena::new();
            // Mirror of every live slot: the handle plus an owned set
            // receiving the same mutations.
            let mut mirror: Vec<(CandHandle, CandidateSet)> = Vec::new();
            for (op, pick, seed) in ops {
                match op {
                    // Alloc (twice as likely as the others).
                    0 | 1 => {
                        let dims = 1 + (seed % 3) as usize;
                        let f = if seed & 4 == 0 { 2 } else { 4 };
                        let set = CandidateSet::generate(&Signature::root(dims), f);
                        let h = arena.alloc(&set);
                        mirror.push((h, set));
                    }
                    2 => {
                        if !mirror.is_empty() {
                            let (h, _) = mirror.swap_remove(pick % mirror.len());
                            arena.retire(h);
                        }
                    }
                    3 => {
                        if !mirror.is_empty() {
                            let idx = pick % mirror.len();
                            let (h, set) = &mut mirror[idx];
                            let dims = set.dims();
                            let mut s = seed;
                            let mut next = move || {
                                s = s
                                    .wrapping_mul(6364136223846793005)
                                    .wrapping_add(1442695040888963407);
                                ((s >> 33) % 33) as Scalar / 32.0
                            };
                            let mut flat = Vec::with_capacity(2 * dims);
                            for _ in 0..dims {
                                let (a, b) = (next(), next());
                                flat.push(a.min(b));
                                flat.push(a.max(b));
                            }
                            arena.slice_mut(*h).record_member(&flat);
                            set.record_member(&flat);
                        }
                    }
                    4 => {
                        if !mirror.is_empty() {
                            let idx = pick % mirror.len();
                            let (h, set) = &mut mirror[idx];
                            let ci = pick % set.len();
                            let inc = (seed % 100) as u32;
                            arena.slice_mut(*h).add_q(ci, inc);
                            set.add_q(ci, inc);
                            arena.slice_mut(*h).catch_up(0.5, seed % 3);
                            set.catch_up(0.5, seed % 3);
                        }
                    }
                    _ => {
                        let live = arena.live_bytes();
                        arena.compact();
                        prop_assert_eq!(arena.live_bytes(), live);
                        prop_assert_eq!(arena.capacity_bytes(), live);
                    }
                }
                prop_assert!(arena.check().is_ok(), "{:?}", arena.check());
                prop_assert_eq!(arena.live_ranges(), mirror.len());
            }
            // Final compaction, then the whole map must equal the
            // mirror's linear rebuild.
            arena.compact();
            prop_assert!(arena.check().is_ok());
            prop_assert_eq!(arena.capacity_bytes(), arena.live_bytes());
            for (h, set) in &mirror {
                prop_assert_eq!(arena.slice(*h), set.as_slice());
                for ci in 0..set.len() {
                    prop_assert_eq!(
                        arena.slice(*h).q_eff(ci).to_bits(),
                        set.q_eff(ci).to_bits()
                    );
                }
            }
        }
    }
}
