//! Virtual candidate subclusters (paper §3.2, §4.2) — stored
//! column-wise so the candidate loop batches like member verification.
//!
//! Every materialized cluster carries a set of *candidate* subclusters —
//! potential specializations of its signature on a single dimension. Only
//! their performance indicators (`n` objects, `q` matching queries) are
//! maintained; a candidate becomes a real cluster only when the
//! materialization benefit function selects it.
//!
//! ## Structure-of-arrays layout
//!
//! Per recorded query, every explored cluster checks **all** of its
//! `≈ f²·Nd` candidates against the query — the same shape as member
//! verification, and (after the columnar member kernel) the dominant
//! cost of recorded execution at high dimensionality. [`CandidateSet`]
//! therefore stores candidates as contiguous columns, grouped by their
//! specialized dimension:
//!
//! * four bound columns (`start_lo`, `start_reach`, `end_lo`,
//!   `end_reach`) shaped exactly like object coordinate columns, and
//! * parallel counter columns (`n`, `q`, `q_eff`) addressed by candidate
//!   index — the `q` counters the survivors bitmask of
//!   [`acx_geom::scan::scan_candidates`] drives.
//!
//! `*_reach` is the variation interval's upper bound pre-adjusted for
//! open intervals: `hi` when closed, [`f32::next_down`]`(hi)` when open.
//! For finite `f32` this encodes the half-open semantics losslessly —
//! `contains(v) ⇔ lo ≤ v ≤ reach` and `can_reach(x) ⇔ reach ≥ x` — so
//! both the batch kernel and the scalar oracle are single two-sided
//! comparisons, bit-identical to the [`SigInterval`] predicates.
//!
//! Candidate counters saturate instead of wrapping: a `u32` query
//! counter that hits `u32::MAX` stays pinned there (the benefit
//! functions only compare magnitudes, so saturation is benign; wrapping
//! would invert a reorganization decision).

use acx_geom::scan::CandidateColumns;
use acx_geom::{Scalar, SpatialQuery};

use crate::signature::{SigInterval, Signature};

/// Largest value a [`SigInterval`] contains: its upper bound when
/// closed, the next `f32` below when open (exact for finite bounds).
#[inline]
fn reach_of(iv: &SigInterval) -> Scalar {
    if iv.hi_open() {
        iv.hi().next_down()
    } else {
        iv.hi()
    }
}

/// The identity of one candidate: specialization `(i, j)` of dimension
/// `dim`, materialized on demand from the [`CandidateSet`] columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateId {
    /// Specialized dimension.
    pub dim: u16,
    /// Index of the start subinterval (`0..f`).
    pub i: u8,
    /// Index of the end subinterval (`0..f`).
    pub j: u8,
}

/// The membership bounds of one candidate, copied out of the columns —
/// used by reorganization while the set itself is mutably borrowed.
#[derive(Debug, Clone, Copy)]
pub struct CandidateBounds {
    dim: usize,
    start_lo: Scalar,
    start_reach: Scalar,
    end_lo: Scalar,
    end_reach: Scalar,
}

impl CandidateBounds {
    /// Whether an object *that already satisfies the parent signature*
    /// also satisfies this candidate (only the specialized dimension
    /// needs to be checked).
    #[inline]
    pub fn accepts_member(&self, flat: &[Scalar]) -> bool {
        let a = flat[2 * self.dim];
        let b = flat[2 * self.dim + 1];
        self.start_lo <= a && a <= self.start_reach && self.end_lo <= b && b <= self.end_reach
    }
}

/// The candidate subclusters of one materialized cluster, stored as
/// dimension-grouped columns (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateSet {
    /// Candidate range per dimension: dimension `d` owns candidates
    /// `dim_offsets[d] .. dim_offsets[d + 1]`. Length `dims + 1`.
    dim_offsets: Vec<u32>,
    /// Specialized dimension per candidate (redundant with the offsets,
    /// kept for O(1) per-candidate access).
    dim: Vec<u16>,
    /// Start subinterval index per candidate.
    sub_i: Vec<u8>,
    /// End subinterval index per candidate.
    sub_j: Vec<u8>,
    /// Inclusive lower bound of the start variation subinterval.
    start_lo: Vec<Scalar>,
    /// Largest value the start variation subinterval contains.
    start_reach: Vec<Scalar>,
    /// Inclusive lower bound of the end variation subinterval.
    end_lo: Vec<Scalar>,
    /// Largest value the end variation subinterval contains.
    end_reach: Vec<Scalar>,
    /// Member objects of the parent qualifying for each candidate.
    n: Vec<u32>,
    /// Queries matching each candidate since the last statistics epoch
    /// (saturating).
    q: Vec<u32>,
    /// Exponentially decayed query count from previous epochs (smooths
    /// the access-probability estimate across reorganization periods).
    q_eff: Vec<f64>,
    /// Cached **upper bound** on `max(n)`: raised whenever a member
    /// recording pushes a counter above it, left untouched by removals
    /// (so it may be loose, never low), and re-tightened to the exact
    /// maximum whenever a reorganization scan walks the counters anyway.
    /// The incremental reorganization's O(1) no-split screen prices its
    /// most-profitable-possible candidate with this bound; a loose bound
    /// only costs an unnecessary scan, never a wrong decision.
    n_hi: u32,
}

impl CandidateSet {
    /// Generates the candidate set of a cluster signature: for each
    /// dimension, every feasible `(i, j)` combination of `f` start/end
    /// subintervals (paper §4.2). Candidate counters start at zero.
    pub fn generate(sig: &Signature, f: u8) -> Self {
        let cap = sig.dims() * (f as usize * (f as usize + 1)) / 2;
        let mut set = Self {
            dim_offsets: Vec::with_capacity(sig.dims() + 1),
            dim: Vec::with_capacity(cap),
            sub_i: Vec::with_capacity(cap),
            sub_j: Vec::with_capacity(cap),
            start_lo: Vec::with_capacity(cap),
            start_reach: Vec::with_capacity(cap),
            end_lo: Vec::with_capacity(cap),
            end_reach: Vec::with_capacity(cap),
            n: Vec::with_capacity(cap),
            q: Vec::with_capacity(cap),
            q_eff: Vec::with_capacity(cap),
            n_hi: 0,
        };
        set.dim_offsets.push(0);
        for d in 0..sig.dims() {
            let ds = sig.dim(d);
            for i in 0..f {
                for j in 0..f {
                    if !sig.combination_feasible(d, f, i, j) {
                        continue;
                    }
                    let start = ds.start.subdivide(f, i);
                    let end = ds.end.subdivide(f, j);
                    set.dim.push(d as u16);
                    set.sub_i.push(i);
                    set.sub_j.push(j);
                    set.start_lo.push(start.lo());
                    set.start_reach.push(reach_of(&start));
                    set.end_lo.push(end.lo());
                    set.end_reach.push(reach_of(&end));
                    set.n.push(0);
                    set.q.push(0);
                    set.q_eff.push(0.0);
                }
            }
            set.dim_offsets.push(set.dim.len() as u32);
        }
        set
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.dim.len()
    }

    /// Whether the set holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.dim.is_empty()
    }

    /// Number of dimensions the candidates specialize.
    pub fn dims(&self) -> usize {
        self.dim_offsets.len() - 1
    }

    /// The bound columns as the batch kernel's borrowed view.
    pub fn columns(&self) -> CandidateColumns<'_> {
        CandidateColumns::new(
            &self.start_lo,
            &self.start_reach,
            &self.end_lo,
            &self.end_reach,
            &self.dim_offsets,
        )
    }

    /// The identity of candidate `ci`.
    pub fn id(&self, ci: usize) -> CandidateId {
        CandidateId {
            dim: self.dim[ci],
            i: self.sub_i[ci],
            j: self.sub_j[ci],
        }
    }

    /// The membership bounds of candidate `ci`, copied out.
    pub fn bounds(&self, ci: usize) -> CandidateBounds {
        CandidateBounds {
            dim: self.dim[ci] as usize,
            start_lo: self.start_lo[ci],
            start_reach: self.start_reach[ci],
            end_lo: self.end_lo[ci],
            end_reach: self.end_reach[ci],
        }
    }

    /// Qualifying-member count of candidate `ci`.
    pub fn n(&self, ci: usize) -> u32 {
        self.n[ci]
    }

    /// Matching-query count of candidate `ci` in the current epoch.
    pub fn q(&self, ci: usize) -> u32 {
        self.q[ci]
    }

    /// Decayed matching-query history of candidate `ci`.
    pub fn q_eff(&self, ci: usize) -> f64 {
        self.q_eff[ci]
    }

    /// The qualifying-member counter column (parallel to the candidate
    /// index) — input of the batched benefit evaluation.
    pub fn n_col(&self) -> &[u32] {
        &self.n
    }

    /// The epoch matching-query counter column.
    pub fn q_col(&self) -> &[u32] {
        &self.q
    }

    /// The decayed matching-query history column.
    pub fn q_eff_col(&self) -> &[f64] {
        &self.q_eff
    }

    /// Cached upper bound on the maximal qualifying-member count over
    /// all candidates (see the field docs: may be loose, never low).
    pub fn n_hi(&self) -> u32 {
        self.n_hi
    }

    /// Re-tightens the cached bound to the exact maximum, as computed by
    /// a pass that walked the `n` column anyway.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `exact_max` really bounds every counter.
    pub(crate) fn set_n_hi(&mut self, exact_max: u32) {
        debug_assert!(self.n.iter().all(|&n| n <= exact_max));
        self.n_hi = exact_max;
    }

    /// Whether an object *that already satisfies the parent signature*
    /// also satisfies candidate `ci`.
    #[inline]
    pub fn accepts_member(&self, ci: usize, flat: &[Scalar]) -> bool {
        let d = self.dim[ci] as usize;
        let a = flat[2 * d];
        let b = flat[2 * d + 1];
        self.start_lo[ci] <= a
            && a <= self.start_reach[ci]
            && self.end_lo[ci] <= b
            && b <= self.end_reach[ci]
    }

    /// Whether a query *that already matches the parent signature* also
    /// matches candidate `ci` (only the specialized dimension is
    /// checked) — the scalar oracle of
    /// [`acx_geom::scan::scan_candidates`], same comparisons in the same
    /// order.
    #[inline]
    pub fn matches_query(&self, ci: usize, query: &SpatialQuery) -> bool {
        let d = self.dim[ci] as usize;
        match query {
            SpatialQuery::Intersection(w) => {
                let q = w.interval(d);
                self.start_lo[ci] <= q.hi() && self.end_reach[ci] >= q.lo()
            }
            SpatialQuery::Containment(w) => {
                let q = w.interval(d);
                self.end_lo[ci] <= q.hi() && self.start_reach[ci] >= q.lo()
            }
            SpatialQuery::Enclosure(w) => {
                let q = w.interval(d);
                self.start_lo[ci] <= q.lo() && self.end_reach[ci] >= q.hi()
            }
            SpatialQuery::PointEnclosing(p) => {
                let v = p[d];
                self.start_lo[ci] <= v && self.end_reach[ci] >= v
            }
        }
    }

    /// Counts a new member of the parent cluster into every candidate
    /// accepting it.
    pub fn record_member(&mut self, flat: &[Scalar]) {
        self.adjust_member(flat, true);
    }

    /// Removes a departing member of the parent cluster from every
    /// candidate accepting it.
    pub fn unrecord_member(&mut self, flat: &[Scalar]) {
        self.adjust_member(flat, false);
    }

    fn adjust_member(&mut self, flat: &[Scalar], add: bool) {
        for d in 0..self.dims() {
            let a = flat[2 * d];
            let b = flat[2 * d + 1];
            let run = self.dim_offsets[d] as usize..self.dim_offsets[d + 1] as usize;
            for ci in run {
                let accepts = self.start_lo[ci] <= a
                    && a <= self.start_reach[ci]
                    && self.end_lo[ci] <= b
                    && b <= self.end_reach[ci];
                if accepts {
                    if add {
                        self.n[ci] += 1;
                        self.n_hi = self.n_hi.max(self.n[ci]);
                    } else {
                        debug_assert!(self.n[ci] > 0);
                        self.n[ci] -= 1;
                    }
                }
            }
        }
    }

    /// Adds `inc` matching queries to candidate `ci`, saturating at
    /// `u32::MAX` instead of wrapping.
    pub fn add_q(&mut self, ci: usize, inc: u32) {
        self.q[ci] = self.q[ci].saturating_add(inc);
    }

    /// Adds a whole per-candidate increment vector (saturating) — the
    /// branch-free bulk form [`crate::StatsDelta`] application uses.
    /// `incs` may be shorter than the set; missing entries add nothing.
    pub fn add_q_slice(&mut self, incs: &[u32]) {
        for (q, &inc) in self.q.iter_mut().zip(incs) {
            *q = q.saturating_add(inc);
        }
    }

    /// Closes the statistics epoch: folds each candidate's `q` into its
    /// decayed history with weight `gamma` and resets the epoch counter.
    pub fn decay(&mut self, gamma: f64) {
        for (q_eff, q) in self.q_eff.iter_mut().zip(self.q.iter_mut()) {
            *q_eff = gamma * *q_eff + *q as f64;
            *q = 0;
        }
    }

    /// Replays `epochs` missed statistics-epoch closes at once — the
    /// lazy-decay catch-up applied on the first touch after epoch rolls.
    ///
    /// Bit-identical to calling [`CandidateSet::decay`] `epochs` times:
    /// the first replayed close folds the pending `q` counters (which
    /// accumulated while the set's stamp epoch was open — later epochs
    /// saw no touches, so their folds add exactly zero), and every
    /// further close multiplies the history by `gamma`. `γ·x + 0.0`
    /// equals `γ·x` bitwise for the non-negative histories stored here,
    /// so the catch-up runs the pure multiplications, element-major:
    /// each history stops at its own underflow to exactly `+0.0`
    /// (multiplying `+0.0` further is the identity), so a mostly-cold
    /// set costs one check per zero history regardless of how many
    /// epochs it slept. Saturated `q` counters (pinned at `u32::MAX`)
    /// fold like any other value. The worst case is bounded by the
    /// rounds a history needs to underflow (≈ 1 100 for the default
    /// `γ = 0.5`; configurations with `γ` near 1 pay proportionally
    /// more, but only once, on the first touch after the idle
    /// stretch — the same multiplications an eager fold would have
    /// spread across the idle epochs).
    pub fn catch_up(&mut self, gamma: f64, epochs: u64) {
        if epochs == 0 {
            return;
        }
        self.decay(gamma);
        for q_eff in &mut self.q_eff {
            for _ in 1..epochs {
                if *q_eff == 0.0 {
                    break;
                }
                *q_eff *= gamma;
            }
        }
    }

    /// Materializes the full signature of candidate `ci`.
    pub fn signature(&self, ci: usize, parent: &Signature, f: u8) -> Signature {
        parent.specialize(self.dim[ci] as usize, f, self.sub_i[ci], self.sub_j[ci])
    }
}

/// Generates the candidate set of a cluster signature — see
/// [`CandidateSet::generate`].
pub fn generate_candidates(sig: &Signature, f: u8) -> CandidateSet {
    CandidateSet::generate(sig, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acx_geom::HyperRect;

    fn rect(lo: &[Scalar], hi: &[Scalar]) -> HyperRect {
        HyperRect::from_bounds(lo, hi).unwrap()
    }

    #[test]
    fn root_candidate_count_matches_paper() {
        // Root: identical variation intervals in every dimension →
        // f(f+1)/2 = 10 candidates per dimension with f = 4.
        let sig = Signature::root(16);
        let cands = generate_candidates(&sig, 4);
        assert_eq!(cands.len(), 16 * 10);
        // §6: between 10·Nd and 16·Nd candidates per cluster.
        assert!(cands.len() >= 10 * 16 && cands.len() <= 16 * 16);
        assert_eq!(cands.dims(), 16);
    }

    #[test]
    fn specialized_cluster_candidate_count_in_paper_range() {
        // After specializing d0 with distinct start/end variation
        // intervals, d0 contributes up to 16 combinations.
        let sig = Signature::root(4).specialize(0, 4, 0, 3);
        let cands = generate_candidates(&sig, 4);
        assert!(cands.len() > 4 * 10 && cands.len() <= 4 * 16, "{}", cands.len());
    }

    #[test]
    fn dim_offsets_partition_the_set() {
        let sig = Signature::root(3).specialize(1, 4, 0, 3);
        let cands = generate_candidates(&sig, 4);
        for d in 0..cands.dims() {
            let cols = cands.columns();
            assert_eq!(cols.dims(), 3);
            for ci in cands.dim_offsets[d] as usize..cands.dim_offsets[d + 1] as usize {
                assert_eq!(cands.id(ci).dim as usize, d);
            }
        }
        assert_eq!(*cands.dim_offsets.last().unwrap() as usize, cands.len());
    }

    fn find(cands: &CandidateSet, dim: u16, i: u8, j: u8) -> usize {
        (0..cands.len())
            .find(|&ci| {
                let id = cands.id(ci);
                id.dim == dim && id.i == i && id.j == j
            })
            .expect("candidate exists")
    }

    #[test]
    fn accepts_member_checks_only_specialized_dimension() {
        let sig = Signature::root(2);
        let cands = generate_candidates(&sig, 4);
        // Candidate: d0, starts in [0,0.25), ends in [0,0.25).
        let c = find(&cands, 0, 0, 0);
        assert!(cands.accepts_member(c, &rect(&[0.1, 0.9], &[0.2, 1.0]).to_flat()));
        assert!(!cands.accepts_member(c, &rect(&[0.1, 0.9], &[0.3, 1.0]).to_flat()));
        // The copied-out bounds agree.
        assert!(cands.bounds(c).accepts_member(&rect(&[0.1, 0.9], &[0.2, 1.0]).to_flat()));
        assert!(!cands.bounds(c).accepts_member(&rect(&[0.1, 0.9], &[0.3, 1.0]).to_flat()));
    }

    #[test]
    fn open_bound_boundary_is_excluded_exactly() {
        // d0 candidate (0,0): starts and ends vary in [0, 0.25) — an
        // object touching 0.25 must be rejected despite the closed
        // `reach` encoding.
        let sig = Signature::root(1);
        let cands = generate_candidates(&sig, 4);
        let c = find(&cands, 0, 0, 0);
        assert!(cands.accepts_member(c, &[0.0, 0.2499]));
        assert!(!cands.accepts_member(c, &[0.0, 0.25]));
        assert!(cands.accepts_member(c, &[0.0, 0.25f32.next_down()]));
    }

    #[test]
    fn candidate_signature_equals_specialization() {
        let sig = Signature::root(3);
        let cands = generate_candidates(&sig, 4);
        for ci in 0..5 {
            let id = cands.id(ci);
            let expected = sig.specialize(id.dim as usize, 4, id.i, id.j);
            assert_eq!(cands.signature(ci, &sig, 4), expected);
        }
    }

    #[test]
    fn matches_query_agrees_with_full_signature_matching() {
        let sig = Signature::root(2);
        let cands = generate_candidates(&sig, 4);
        let queries = [
            SpatialQuery::intersection(rect(&[0.1, 0.2], &[0.3, 0.6])),
            SpatialQuery::containment(rect(&[0.0, 0.0], &[0.5, 0.5])),
            SpatialQuery::enclosure(rect(&[0.4, 0.4], &[0.45, 0.45])),
            SpatialQuery::point_enclosing(vec![0.3, 0.7]),
        ];
        for ci in 0..cands.len() {
            let full = cands.signature(ci, &sig, 4);
            for q in &queries {
                assert_eq!(
                    cands.matches_query(ci, q),
                    full.matches_query(q),
                    "candidate {:?} vs query {q:?}",
                    cands.id(ci)
                );
            }
        }
    }

    #[test]
    fn kernel_mask_agrees_with_scalar_oracle() {
        use acx_geom::scan::{scan_candidates, ScanScratch, BLOCK};
        // A specialized signature in 3 dims; boundary-coincident query
        // edges on the f = 4 grid.
        let sig = Signature::root(3).specialize(2, 4, 1, 3);
        let cands = generate_candidates(&sig, 4);
        let queries = [
            SpatialQuery::intersection(rect(&[0.25, 0.0, 0.5], &[0.5, 0.25, 0.75])),
            SpatialQuery::containment(rect(&[0.0, 0.25, 0.25], &[0.75, 1.0, 1.0])),
            SpatialQuery::enclosure(rect(&[0.25, 0.5, 0.6], &[0.25, 0.5, 0.9])),
            SpatialQuery::point_enclosing(vec![0.25, 0.75, 0.5]),
            SpatialQuery::point_enclosing(vec![0.0, 1.0, 0.9999]),
        ];
        let mut scratch = ScanScratch::new();
        for q in &queries {
            let matched = scan_candidates(q, &cands.columns(), &mut scratch);
            let mut want = 0usize;
            for ci in 0..cands.len() {
                let bit = scratch.mask_words()[ci / BLOCK] >> (ci % BLOCK) & 1 == 1;
                assert_eq!(bit, cands.matches_query(ci, q), "candidate {ci} on {q:?}");
                want += cands.matches_query(ci, q) as usize;
            }
            assert_eq!(matched, want);
        }
    }

    #[test]
    fn division_factor_two_produces_three_per_dim() {
        let sig = Signature::root(5);
        // f = 2 on identical intervals → 2·3/2 = 3 combinations per dim.
        assert_eq!(generate_candidates(&sig, 2).len(), 5 * 3);
    }

    #[test]
    fn counters_start_at_zero_and_members_roundtrip() {
        let sig = Signature::root(2);
        let mut cands = generate_candidates(&sig, 4);
        for ci in 0..cands.len() {
            assert_eq!(cands.n(ci), 0);
            assert_eq!(cands.q(ci), 0);
            assert_eq!(cands.q_eff(ci), 0.0);
        }
        let flat = rect(&[0.1, 0.6], &[0.2, 0.9]).to_flat();
        cands.record_member(&flat);
        let total: u32 = (0..cands.len()).map(|ci| cands.n(ci)).sum();
        // Exactly one accepting candidate per dimension (§4.2 cells).
        assert_eq!(total, 2);
        cands.unrecord_member(&flat);
        assert!((0..cands.len()).all(|ci| cands.n(ci) == 0));
    }

    #[test]
    fn q_counters_saturate_instead_of_wrapping() {
        let sig = Signature::root(1);
        let mut cands = generate_candidates(&sig, 2);
        cands.add_q(0, u32::MAX - 1);
        cands.add_q(0, 5);
        assert_eq!(cands.q(0), u32::MAX, "increment must saturate");
        cands.add_q(0, 1);
        assert_eq!(cands.q(0), u32::MAX, "saturated counter stays pinned");
        // Decay folds the saturated value into history and reopens the
        // epoch counter.
        cands.decay(0.5);
        assert_eq!(cands.q(0), 0);
        assert_eq!(cands.q_eff(0), u32::MAX as f64);
    }

    #[test]
    fn catch_up_is_bit_identical_to_eager_decay() {
        // The eager oracle: one `decay` per epoch, exactly as the index
        // performed before decay went lazy.
        let sig = Signature::root(2);
        let mut eager = generate_candidates(&sig, 4);
        // A spread of magnitudes, including a saturated counter and a
        // tiny history that decays through many epochs.
        eager.add_q(0, 10);
        eager.add_q(3, u32::MAX);
        eager.add_q(7, 1);
        eager.decay(0.5);
        eager.add_q(7, 3);
        let mut lazy = eager.clone();
        let gamma = 0.37;
        for k in [1u64, 2, 5, 40] {
            for _ in 0..k {
                eager.decay(gamma);
            }
            lazy.catch_up(gamma, k);
            assert_eq!(lazy, eager, "diverged after catching up {k} epochs");
            for ci in 0..eager.len() {
                assert_eq!(
                    lazy.q_eff(ci).to_bits(),
                    eager.q_eff(ci).to_bits(),
                    "candidate {ci} after {k} epochs"
                );
            }
        }
        // Far past underflow: every history is exactly +0.0 in both, and
        // the lazy early-exit must not change that.
        for _ in 0..4000 {
            eager.decay(gamma);
        }
        lazy.catch_up(gamma, 4000);
        for ci in 0..eager.len() {
            assert_eq!(lazy.q_eff(ci).to_bits(), eager.q_eff(ci).to_bits());
            assert_eq!(lazy.q_eff(ci), 0.0, "histories underflow to exact zero");
        }
        lazy.catch_up(gamma, 0); // no-op
        assert_eq!(lazy, eager);
    }

    #[test]
    fn n_hi_bounds_member_counts() {
        let sig = Signature::root(2);
        let mut cands = generate_candidates(&sig, 4);
        assert_eq!(cands.n_hi(), 0);
        let a = rect(&[0.1, 0.6], &[0.2, 0.9]).to_flat();
        let b = rect(&[0.12, 0.6], &[0.2, 0.9]).to_flat();
        cands.record_member(&a);
        cands.record_member(&b);
        assert_eq!(cands.n_hi(), 2, "raised by recordings");
        cands.unrecord_member(&a);
        assert_eq!(cands.n_hi(), 2, "removals leave the bound loose, never low");
        let max_n = (0..cands.len()).map(|ci| cands.n(ci)).max().unwrap();
        assert!(cands.n_hi() >= max_n);
        cands.set_n_hi(max_n);
        assert_eq!(cands.n_hi(), 1, "scans re-tighten to the exact maximum");
        // Decay never touches member counts or the bound.
        cands.catch_up(0.5, 3);
        assert_eq!(cands.n_hi(), 1);
    }

    #[test]
    fn decay_folds_and_resets() {
        let sig = Signature::root(1);
        let mut cands = generate_candidates(&sig, 2);
        cands.add_q(1, 10);
        cands.decay(0.5);
        assert_eq!(cands.q(1), 0);
        assert_eq!(cands.q_eff(1), 10.0);
        cands.add_q(1, 4);
        cands.decay(0.5);
        assert_eq!(cands.q_eff(1), 9.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use acx_geom::scan::{scan_candidates, ScanScratch, BLOCK};
    use acx_geom::HyperRect;
    use proptest::prelude::*;

    /// Grid-snapped coordinate so query edges coincide with the f = 4
    /// subdivision boundaries constantly.
    fn coord() -> impl Strategy<Value = Scalar> {
        (0u8..=8).prop_map(|k| k as Scalar / 8.0)
    }

    proptest! {
        /// The candidate bitmask kernel equals the scalar oracle for
        /// 1–8 dimensions, both division factors, all four query kinds,
        /// and signatures specialized to produce open and closed
        /// variation intervals — including boundary-coincident query
        /// edges.
        #[test]
        fn candidate_kernel_equals_scalar_oracle(
            dims in 1usize..=8,
            f in prop_oneof![Just(2u8), Just(4u8)],
            spec_dim in 0usize..8,
            spec_i in 0u8..4,
            spec_j in 0u8..4,
            pairs in prop::collection::vec((coord(), coord()), 8),
            kind in 0usize..4,
        ) {
            let spec_dim = spec_dim % dims;
            let (spec_i, spec_j) = (spec_i % f, spec_j % f);
            let sig = if spec_i <= spec_j {
                Signature::root(dims).specialize(spec_dim, f, spec_i, spec_j)
            } else {
                Signature::root(dims)
            };
            let cands = CandidateSet::generate(&sig, f);
            prop_assert!(!cands.is_empty(), "every signature yields candidates");

            let mut lo = Vec::with_capacity(dims);
            let mut hi = Vec::with_capacity(dims);
            for &(a, b) in pairs.iter().take(dims) {
                lo.push(a.min(b));
                hi.push(a.max(b));
            }
            let w = HyperRect::from_bounds(&lo, &hi).unwrap();
            let query = match kind {
                0 => SpatialQuery::intersection(w),
                1 => SpatialQuery::containment(w),
                2 => SpatialQuery::enclosure(w),
                _ => SpatialQuery::point_enclosing(lo.clone()),
            };

            let mut scratch = ScanScratch::new();
            let matched = scan_candidates(&query, &cands.columns(), &mut scratch);
            let mut want = 0usize;
            for ci in 0..cands.len() {
                let bit = scratch.mask_words()[ci / BLOCK] >> (ci % BLOCK) & 1 == 1;
                let oracle = cands.matches_query(ci, &query);
                prop_assert_eq!(bit, oracle, "candidate {} ({:?})", ci, cands.id(ci));
                // When the parent signature matches the query — the
                // precondition under which `explore` consults candidates
                // — the one-dimension check equals full-signature
                // matching (§3.6 safety).
                if sig.matches_query(&query) {
                    prop_assert_eq!(
                        oracle,
                        cands.signature(ci, &sig, f).matches_query(&query),
                        "candidate matching diverged from the full signature"
                    );
                }
                want += oracle as usize;
            }
            prop_assert_eq!(matched, want);
        }
    }
}
