//! The adaptive cost-based clustering index (paper §3).
//!
//! Objects live in a tree of materialized clusters, each holding its
//! members sequentially in a [`SegmentStore`] segment. Every cluster
//! carries a signature, access statistics, and a set of *virtual*
//! candidate subclusters. Periodically (every `reorg_period` queries) the
//! index reconsiders each cluster: merge it into its parent, or split off
//! the candidate subclusters whose materialization benefit is positive.

use std::collections::HashMap;
use std::path::Path;
use std::time::Instant;

use acx_geom::scan::{scan_candidates, scan_columns, ScanScratch};
use acx_geom::{HyperRect, ObjectId, Scalar, SpatialQuery, OBJECT_ID_BYTES};
use acx_storage::{
    AccessStats, BackingStore, ClusterRecord, CostModel, FileStore, FlushPolicy, SegmentId,
    SegmentStore, Wal, WalError, WalRecord,
};

use crate::batch::StatsDelta;
use crate::candidates::{generate_candidates, view, view_mut, CandStore, CandidateSet, StatsArena};
use crate::config::{ReorgMode, ScanMode, StatsLayout};
use crate::cost::{
    materialization_benefit, materialization_benefit_column, merging_benefit,
    merging_benefit_column,
};
use crate::metrics::{
    ClusterSnapshot, QueryMetrics, QueryResult, RecoveryReport, ReorgProfile, ReorgReport,
};
use crate::signature::Signature;
use crate::{IndexConfig, IndexError};

/// Reusable per-query scratch arena for the read-only matching phase:
/// the scan kernel's survivors bitmask and match buffer, the result
/// buffer, the cluster traversal stack, and the scalar oracle's gather
/// buffer. Buffers grow to the workload's high-water mark and are then
/// reused, so a warmed-up scratch lets
/// [`AdaptiveClusterIndex::query_with`] execute without allocating.
///
/// One scratch serves one thread: batch execution gives each worker its
/// own, and the sequential [`AdaptiveClusterIndex::execute`] path keeps
/// one inside the index.
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// Columnar kernel state (bitmask + per-segment match indices).
    scan: ScanScratch,
    /// Matches of the last query, across all explored clusters.
    matches: Vec<ObjectId>,
    /// DFS stack over cluster slots.
    stack: Vec<u32>,
    /// Interleaved gather buffer for the scalar oracle mode.
    flat: Vec<Scalar>,
}

impl QueryScratch {
    /// An empty scratch; buffers are sized lazily by the first queries.
    pub fn new() -> Self {
        Self::default()
    }

    /// Identifiers of the objects matched by the most recent query run
    /// through this scratch (cluster exploration order).
    pub fn matches(&self) -> &[ObjectId] {
        &self.matches
    }
}

const NO_PARENT: u32 = u32::MAX;

/// How many reorganization passes a merged-away signature is remembered
/// for thrash accounting: a materialization re-creating a signature
/// merged within this window counts as one completed split→merge→split
/// cycle ([`ReorgProfile::thrash_cycles`]). The optional
/// [`IndexConfig::merge_cooldown`] hysteresis reuses the same memory
/// (entries are retained for `max(THRASH_WINDOW, merge_cooldown)`
/// passes).
const THRASH_WINDOW: u64 = 8;

/// Relative deflation applied to the selection sweep's threshold floor
/// (see `split_scan_columnar`): large enough to dominate the few-ulp
/// rounding error of the floor and threshold expressions by four orders
/// of magnitude, small enough to stay a tight prefilter.
const FLOOR_SLACK: f64 = 1e-12;

/// Relative inflation applied to a cached no-split verdict's benefit
/// coefficient: generous enough to dominate the per-epoch ulp drift of
/// the lazily decayed counters it summarizes (bounded by
/// epochs-until-underflow times the rounding unit, orders of magnitude
/// below this), so the cached bound stays sound however long the
/// cluster sleeps.
const SCAN_CACHE_SLACK: f64 = 1e-6;

/// Relative growth of the effective `C` a cached no-split verdict
/// tolerates: `verify_fraction` jitters a little every period, and a
/// hard `C' ≤ C` gate would void caches on every up-tick. For
/// `C' ≤ C·(1 + h)` each benefit coefficient is bounded by
/// `(1 + h)·g_hi + h·B` (the `C`-scaled part grows by at most `1 + h`,
/// and the `−r·B` part gives back at most `h·B`), which the consult
/// prices instead of `g_hi` itself.
const SCAN_CACHE_C_HEADROOM: f64 = 1e-3;

/// The cached verdict of a cluster's last candidate scan: the scan
/// found nothing to materialize, and — while the cluster's statistics
/// stay untouched — nothing can *become* materializable except through
/// the cluster's own access probability. Invalidated by
/// `AdaptiveClusterIndex::mark_dirty` (any query increment or
/// membership change), i.e. exactly through the dirty-set machinery.
///
/// Soundness (see `scan_cache_rules_out`): for a cluster untouched in
/// the epoch the verdict was stored in *and ever since*, every epoch
/// close scales the candidate histories and the cluster's own by the
/// same pure `×γ`, so the ratio `r_i = p_si / p_c` is invariant and
/// each benefit is `p_c · g_i − A` with `g_i = (1 − r_i)·n_i·C −
/// r_i·B` fixed up to the effective `C`. The cache stores an upper
/// bound on `max g_i` (from the scan's benefit-bound column) plus the
/// `C` it was priced at; benefits can only shrink while `C` does not
/// grow (`r_i ∈ [0, 1]` since a candidate is never matched more often
/// than its cluster). Verdicts are therefore only stored when
/// `q_count == 0` (see `store_scan_cache`): a fold of fresh traffic
/// mixes an *undecayed* count into `q_eff` and moves the ratios, which
/// is not summarizable by the single cached coefficient.
#[derive(Debug, Clone, Copy)]
struct ScanCache {
    /// Upper bound on `max_i g_i` over candidates holding members.
    g_hi: f64,
    /// Effective `C` the bound was priced at.
    c: f64,
}

/// Per-pass cost terms — see `AdaptiveClusterIndex::pass_costs`.
#[derive(Debug, Clone, Copy)]
struct PassCosts {
    /// Signature-check cost `A`.
    a: f64,
    /// Exploration-setup cost `B`.
    b: f64,
    /// Effective per-object cost `C` (`decision_c` at pass start).
    c: f64,
    /// Reorganization pay-back horizon (queries).
    horizon: f64,
    /// Confidence factor `z`.
    z: f64,
}

/// The single definition of the move margin `2·n·C / horizon` — the
/// per-call method and every hoisted pass-loop use delegate here, so
/// their float results cannot drift apart.
#[inline]
fn move_margin_c(c: f64, horizon: f64, n: usize) -> f64 {
    2.0 * n as f64 * c / horizon
}

/// The single definition of the confidence margin — see
/// `AdaptiveClusterIndex::confidence_margin` for the rationale.
#[inline]
fn confidence_margin_c(z: f64, c: f64, b: f64, p: f64, n_eff: f64, n_objects: usize) -> f64 {
    if z == 0.0 || n_eff <= 0.0 {
        return 0.0;
    }
    let variance = (p * (1.0 - p)).max(1.0 / n_eff) / n_eff;
    z * variance.sqrt() * (n_objects as f64 * c + b)
}

/// Relative tolerance under which two access probabilities count as tied
/// during insertion (paper §3.5: ties prefer the most specific cluster).
/// Exact float equality almost never holds once probabilities are nonzero
/// — decayed counters accumulate rounding — so the preference would
/// otherwise never fire in a warmed-up index.
const PROB_TIE_RELATIVE_EPS: f64 = 1e-9;

/// Whether two access probabilities are equal up to accumulated float
/// rounding (relative epsilon; exact zeros tie).
pub(crate) fn probabilities_tie(a: f64, b: f64) -> bool {
    (a - b).abs() <= PROB_TIE_RELATIVE_EPS * a.abs().max(b.abs())
}

/// One materialized cluster (paper §3.1).
#[derive(Debug)]
struct Cluster {
    signature: Signature,
    parent: Option<u32>,
    children: Vec<u32>,
    segment: SegmentId,
    /// Where the cluster's candidate statistics live: an owned
    /// [`CandidateSet`] ([`StatsLayout::PerClusterOracle`]) or a range
    /// of the index-wide [`StatsArena`] ([`StatsLayout::Arena`]). The
    /// lazy-decay stamp travels with the statistics (see
    /// `AdaptiveClusterIndex::materialize_candidates`).
    candidates: CandStore,
    /// Queries whose signature matched this cluster since `epoch_start`.
    q_count: u64,
    /// Global query counter value when this cluster's statistics epoch
    /// began (creation or last reorganization).
    epoch_start: u64,
    /// Exponentially decayed matching-query count of completed epochs.
    q_eff: f64,
    /// Exponentially decayed length (in queries) of completed epochs —
    /// the denominator paired with `q_eff`.
    weight: f64,
    /// Whether this cluster is on the index's reorganization dirty set
    /// (statistics changed since the last pass).
    dirty: bool,
}

/// Cost-based adaptive clustering index over multidimensional extended
/// objects — the paper's primary contribution.
///
/// ```
/// use acx_core::{AdaptiveClusterIndex, IndexConfig};
/// use acx_geom::{HyperRect, ObjectId, SpatialQuery};
///
/// let mut index = AdaptiveClusterIndex::new(IndexConfig::memory(2)).unwrap();
/// let obj = HyperRect::from_bounds(&[0.1, 0.6], &[0.3, 0.9]).unwrap();
/// index.insert(ObjectId(1), obj).unwrap();
/// let window = HyperRect::from_bounds(&[0.0, 0.5], &[0.2, 1.0]).unwrap();
/// let found = index.execute(&SpatialQuery::intersection(window));
/// assert_eq!(found.matches, vec![ObjectId(1)]);
/// ```
pub struct AdaptiveClusterIndex {
    config: IndexConfig,
    model: CostModel,
    store: SegmentStore,
    /// The index-wide candidate statistics slabs (empty under
    /// [`StatsLayout::PerClusterOracle`], where clusters own their
    /// columns). Compacted by the reorganization pass.
    stats_arena: StatsArena,
    clusters: Vec<Option<Cluster>>,
    free_slots: Vec<u32>,
    root: u32,
    /// object id → cluster slot currently hosting it.
    object_cluster: HashMap<u32, u32>,
    total_queries: u64,
    queries_since_reorg: u64,
    /// Bumped whenever a reorganization changes the clustering (merges
    /// may recycle cluster slots); stamps [`StatsDelta`]s so stale
    /// per-cluster increments are never misattributed.
    structure_epoch: u64,
    reorganizations: u64,
    total_merges: u64,
    total_splits: u64,
    /// Verified bytes in the current epoch (early-exit accounted).
    epoch_verified_bytes: u64,
    /// Full-object bytes of the objects verified in the current epoch.
    epoch_full_bytes: u64,
    /// Exponentially decayed verified-byte history.
    hist_verified_bytes: f64,
    /// Exponentially decayed full-byte history.
    hist_full_bytes: f64,
    /// Scratch arena reused by the sequential `execute` path.
    query_scratch: QueryScratch,
    /// Statistics delta reused by the sequential `execute` path.
    delta_scratch: StatsDelta,
    /// Completed statistics epochs (one per reorganization pass) — the
    /// clock the per-cluster `cand_stamp`s lag behind.
    stats_epoch: u64,
    /// The persistent dirty set: slots whose statistics (matching-query
    /// counters or membership) changed since the last reorganization.
    /// Fed from every applied [`StatsDelta`]'s dirty list and from the
    /// membership mutation paths; cleared when a pass closes its epoch.
    dirty_slots: Vec<u32>,
    /// Cached no-split verdicts of the last candidate scans, indexed by
    /// cluster slot (kept out of [`Cluster`]: the verdicts are touched
    /// only by the pass and the invalidation paths, and fattening every
    /// cluster would cost the latency-bound pass loop extra cache
    /// lines). `None` = no valid verdict; entries past the end mean the
    /// same.
    scan_caches: Vec<Option<ScanCache>>,
    /// Column buffers reused by the incremental reorganization pass.
    reorg_scratch: ReorgScratch,
    /// Work profile of the most recent reorganization pass.
    last_profile: ReorgProfile,
    /// Recently merged-away cluster signatures (rendered bytes → the
    /// pass count at merge time), feeding the thrash counter and the
    /// optional [`IndexConfig::merge_cooldown`] hysteresis. Pruned each
    /// pass to `max(THRASH_WINDOW, merge_cooldown)` passes of history.
    recent_merges: HashMap<Vec<u8>, u64>,
    /// Thrash cycles detected by the pass currently running.
    pass_thrash: u64,
    /// Cool-down vetoes applied by the pass currently running.
    pass_cooldown_blocked: u64,
    /// Cumulative thrash cycles across all passes.
    total_thrash: u64,
    /// Id of the last completed checkpoint (0 = never checkpointed).
    /// Persisted in the checkpoint META record and stamped into the
    /// WAL header at reset time, so recovery can tell a live log
    /// suffix from a log whose records the checkpoint it loads already
    /// absorbed (the crash window between checkpoint save and WAL
    /// truncation).
    checkpoint_id: u64,
    /// The attached write-ahead log, when durability is enabled. Every
    /// structural mutation is appended (and, per the flush policy, made
    /// durable) *before* it is applied in memory.
    wal: Option<Wal>,
    /// First WAL failure swallowed inside a reorganization pass: the
    /// pass cannot abort between its atomic units without losing the
    /// log/memory correspondence, so it completes in memory, the log is
    /// poisoned, and the failure is surfaced here for the caller
    /// ([`AdaptiveClusterIndex::take_wal_failure`]).
    wal_failure: Option<WalError>,
    /// Test-only fault hook fired at the boundaries of a pass's atomic
    /// structural units ([`ReorgFaultPoint`]); `None` in production.
    reorg_fault_hook: Option<Box<dyn FnMut(ReorgFaultPoint) + Send + Sync>>,
    /// Cumulative wall-clock nanoseconds spent inside
    /// [`AdaptiveClusterIndex::reorganize`] — the serving-path stall a
    /// pass causes, surfaced per shard by the serving tier and per
    /// measured stream by the throughput harness.
    reorg_wall_ns: u64,
}

/// Boundaries of the atomic structural units of a reorganization pass.
/// The test-only fault hook
/// ([`AdaptiveClusterIndex::set_reorg_fault_hook`]) fires at each one;
/// panicking there unwinds out of the pass *between* units, which must
/// leave the index valid and queryable — the contract the panic-safety
/// suite asserts with `catch_unwind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReorgFaultPoint {
    /// About to merge a cluster into its parent.
    BeforeMerge,
    /// A merge completed.
    AfterMerge,
    /// About to materialize a candidate subcluster.
    BeforeMaterialize,
    /// A materialization completed.
    AfterMaterialize,
    /// The pass is about to close the statistics epoch.
    BeforeEpochClose,
}

/// Reusable column buffers of the incremental reorganization pass: the
/// per-candidate benefit column of the cluster currently being scanned
/// and the per-slot merge-benefit columns of the batched pre-pass. Like
/// [`QueryScratch`], buffers grow to the workload's high-water mark and
/// are then reused, so a warmed-up pass allocates nothing.
#[derive(Debug, Default)]
struct ReorgScratch {
    /// The pass's slot snapshot (live clusters at pass start).
    snapshot: Vec<u32>,
    /// Candidate materialization benefits (one per candidate).
    benefits: Vec<f64>,
    /// Per-snapshot-slot access probability of each cluster.
    merge_p_c: Vec<f64>,
    /// Per-snapshot-slot access probability of each cluster's parent.
    merge_p_a: Vec<f64>,
    /// Per-snapshot-slot member count of each cluster.
    merge_n: Vec<u32>,
    /// Batched merge benefit per snapshot slot.
    merge_benefits: Vec<f64>,
}

impl ReorgScratch {
    /// Pre-sizes the benefit column to the widest candidate set any
    /// cluster can own (`dims · f(f+1)/2` virtual subclusters), so a
    /// settled pass never grows it mid-scan: the first scan that prices
    /// its column — possibly long after warm-up, once a cached verdict
    /// expires — must not be the one that pays the allocation.
    fn with_candidate_capacity(config: &IndexConfig) -> Self {
        let f = config.division_factor as usize;
        Self {
            benefits: Vec::with_capacity(config.dims * (f * (f + 1)) / 2),
            ..Self::default()
        }
    }
}

impl AdaptiveClusterIndex {
    /// Creates an empty index: a single root cluster whose general
    /// signature accepts any spatial object.
    pub fn new(config: IndexConfig) -> Result<Self, IndexError> {
        config.validate()?;
        let model = config.cost_model();
        let mut store = SegmentStore::with_reserve(config.dims, config.reserve_fraction);
        let segment = store.create(16);
        let signature = Signature::root(config.dims);
        let mut stats_arena = StatsArena::new();
        let candidates = generate_candidates(&signature, config.division_factor);
        let candidates = match config.stats_layout {
            StatsLayout::Arena => CandStore::Arena(stats_arena.alloc(&candidates)),
            StatsLayout::PerClusterOracle => CandStore::Owned(Box::new(candidates)),
        };
        let root = Cluster {
            signature,
            parent: None,
            children: Vec::new(),
            segment,
            candidates,
            q_count: 0,
            epoch_start: 0,
            q_eff: 0.0,
            weight: 0.0,
            dirty: false,
        };
        let reorg_scratch = ReorgScratch::with_candidate_capacity(&config);
        Ok(Self {
            config,
            model,
            store,
            stats_arena,
            clusters: vec![Some(root)],
            free_slots: Vec::new(),
            root: 0,
            object_cluster: HashMap::new(),
            total_queries: 0,
            queries_since_reorg: 0,
            structure_epoch: 0,
            reorganizations: 0,
            total_merges: 0,
            total_splits: 0,
            epoch_verified_bytes: 0,
            epoch_full_bytes: 0,
            hist_verified_bytes: 0.0,
            hist_full_bytes: 0.0,
            query_scratch: QueryScratch::new(),
            delta_scratch: StatsDelta::new(),
            stats_epoch: 0,
            dirty_slots: Vec::new(),
            scan_caches: Vec::new(),
            reorg_scratch,
            last_profile: ReorgProfile::default(),
            recent_merges: HashMap::new(),
            pass_thrash: 0,
            pass_cooldown_blocked: 0,
            total_thrash: 0,
            checkpoint_id: 0,
            wal: None,
            wal_failure: None,
            reorg_fault_hook: None,
            reorg_wall_ns: 0,
        })
    }

    /// The index configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// The cost model pricing this index's storage scenario.
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    /// Dimensionality of indexed objects.
    pub fn dims(&self) -> usize {
        self.config.dims
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.object_cluster.len()
    }

    /// Whether the index holds no objects.
    pub fn is_empty(&self) -> bool {
        self.object_cluster.is_empty()
    }

    /// Number of materialized clusters (including the root).
    pub fn cluster_count(&self) -> usize {
        self.clusters.len() - self.free_slots.len()
    }

    /// Total queries executed so far.
    pub fn total_queries(&self) -> u64 {
        self.total_queries
    }

    /// Reorganization passes run so far.
    pub fn reorganizations(&self) -> u64 {
        self.reorganizations
    }

    /// Total merge operations across all reorganizations.
    pub fn total_merges(&self) -> u64 {
        self.total_merges
    }

    /// Total materializations across all reorganizations.
    pub fn total_splits(&self) -> u64 {
        self.total_splits
    }

    /// Total split→merge→split thrash cycles across all reorganizations:
    /// materializations that re-created a cluster signature merged away
    /// a few passes earlier (see [`ReorgProfile::thrash_cycles`]).
    pub fn total_thrash(&self) -> u64 {
        self.total_thrash
    }

    /// Whether the object id is currently indexed.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.object_cluster.contains_key(&id.raw())
    }

    /// All indexed object ids, in arbitrary order. Pair with
    /// [`AdaptiveClusterIndex::get`] to enumerate the full contents —
    /// e.g. to diff two indexes after crash recovery.
    pub fn object_ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.object_cluster.keys().map(|&id| ObjectId(id))
    }

    fn cluster(&self, slot: u32) -> &Cluster {
        self.clusters[slot as usize]
            .as_ref()
            .expect("cluster slot is live")
    }

    fn cluster_mut(&mut self, slot: u32) -> &mut Cluster {
        self.clusters[slot as usize]
            .as_mut()
            .expect("cluster slot is live")
    }

    /// Access probability of a cluster: decayed history plus the current
    /// (partial) epoch.
    fn access_probability(&self, c: &Cluster) -> f64 {
        let epoch_len = self.total_queries.saturating_sub(c.epoch_start) as f64;
        let denom = c.weight + epoch_len;
        if denom <= 0.0 {
            0.0
        } else {
            (c.q_eff + c.q_count as f64) / denom
        }
    }

    /// Measured early-exit verification fraction (paper footnote 4):
    /// verified bytes over full-object bytes among verified objects,
    /// smoothed across epochs. `1.0` until the first query provides data.
    ///
    /// Verifying an object stops at its first failing dimension, so the
    /// *effective* per-object verification cost is usually a small
    /// fraction of `C`'s full-object estimate; reorganization decisions
    /// use the effective value to avoid over-splitting.
    pub fn verify_fraction(&self) -> f64 {
        let denom = self.hist_full_bytes + self.epoch_full_bytes as f64;
        if denom <= 0.0 {
            return 1.0;
        }
        ((self.hist_verified_bytes + self.epoch_verified_bytes as f64) / denom).clamp(0.0, 1.0)
    }

    /// The effective `C` used by reorganization decisions: the measured
    /// early-exit fraction applies to the verification component, while
    /// the disk-transfer component always moves whole objects.
    fn decision_c(&self) -> f64 {
        self.model.c_verify() * self.verify_fraction() + self.model.c_transfer()
    }

    /// The cost terms of one reorganization pass, hoisted: every term is
    /// deterministic while a pass runs (no byte counter moves between
    /// its evaluations), so pricing thousands of candidates through this
    /// struct is bit-identical to the per-call methods — it just skips
    /// re-deriving `decision_c` (a `verify_fraction` division) each
    /// time.
    fn pass_costs(&self) -> PassCosts {
        PassCosts {
            a: self.model.a(),
            b: self.model.b(),
            c: self.decision_c(),
            horizon: self.config.reorg_cost_horizon,
            z: self.config.confidence_z,
        }
    }

    /// Hysteresis threshold: a reorganization that moves `n` objects must
    /// save more than the move cost (read + write ≈ `2·n·C`) amortized
    /// over the configured pay-back horizon.
    fn move_margin(&self, n: usize) -> f64 {
        move_margin_c(self.decision_c(), self.config.reorg_cost_horizon, n)
    }

    /// Statistical margin: `z` standard errors of a benefit estimate whose
    /// dominant noise source is the sampled access probability `p` over
    /// `n_eff` effective observations, with sensitivity `∂benefit/∂p ≈
    /// n·C + B`. Acting only on statistically significant benefits stops
    /// sampling noise from ping-ponging marginal clusters.
    fn confidence_margin(&self, p: f64, n_eff: f64, n_objects: usize) -> f64 {
        confidence_margin_c(
            self.config.confidence_z,
            self.decision_c(),
            self.model.b(),
            p,
            n_eff,
            n_objects,
        )
    }

    /// Inserts a new object (paper §3.5, Fig. 4): among all materialized
    /// clusters whose signature accepts the object, the one with the
    /// lowest access probability is chosen (ties broken towards the most
    /// specific cluster).
    pub fn insert(&mut self, id: ObjectId, rect: HyperRect) -> Result<(), IndexError> {
        if rect.dims() != self.config.dims {
            return Err(IndexError::DimensionMismatch {
                expected: self.config.dims,
                actual: rect.dims(),
            });
        }
        if self.object_cluster.contains_key(&id.raw()) {
            return Err(IndexError::DuplicateObject(id.raw()));
        }
        let flat = rect.to_flat();
        // Write-ahead: the record is logged (and, per the flush policy,
        // durable) before any in-memory state moves, so a logged insert
        // either fully applies or — on append failure — not at all.
        if self.wal.is_some() {
            self.wal_append(WalRecord::Insert {
                id: id.raw(),
                coords: flat.clone(),
            })?;
        }

        // Backward compatibility makes acceptance hereditary: descend the
        // tree, pruning subtrees whose root rejects the object.
        let mut best: Option<(u32, f64, usize)> = None; // (slot, p, depth)
        let mut stack: Vec<(u32, usize)> = vec![(self.root, 0)];
        while let Some((slot, depth)) = stack.pop() {
            let cluster = self.cluster(slot);
            if !cluster.signature.accepts_flat(&flat) {
                continue;
            }
            let p = self.access_probability(cluster);
            let better = match best {
                None => true,
                Some((_, bp, bd)) => {
                    if probabilities_tie(p, bp) {
                        depth > bd
                    } else {
                        p < bp
                    }
                }
            };
            if better {
                best = Some((slot, p, depth));
            }
            for &child in &cluster.children {
                stack.push((child, depth + 1));
            }
        }
        let (slot, _, _) = best.expect("root accepts every object");

        let cluster = self.clusters[slot as usize]
            .as_mut()
            .expect("cluster slot is live");
        view_mut(&mut self.stats_arena, &mut cluster.candidates).record_member(&flat);
        self.store.push(cluster.segment, id.raw(), &flat);
        self.object_cluster.insert(id.raw(), slot);
        self.mark_dirty(slot);
        Ok(())
    }

    /// Puts a cluster on the reorganization dirty set (idempotent): its
    /// statistics changed since the last pass.
    fn mark_dirty(&mut self, slot: u32) {
        // Any statistics change voids the cached no-split verdict.
        if let Some(cache) = self.scan_caches.get_mut(slot as usize) {
            *cache = None;
        }
        let cluster = self.clusters[slot as usize]
            .as_mut()
            .expect("cluster slot is live");
        if !cluster.dirty {
            cluster.dirty = true;
            self.dirty_slots.push(slot);
        }
    }

    /// Brings a cluster's candidate counters up to the current
    /// statistics epoch by replaying every close it skipped — the lazy
    /// half of [`AdaptiveClusterIndex::decay_statistics`]. The replay
    /// ([`CandidateSet::catch_up`]) is bit-identical to having folded
    /// the counters eagerly at each close, so lazily decayed clusters
    /// are indistinguishable from eagerly decayed ones at every read.
    fn materialize_candidates(&mut self, slot: u32) {
        let epoch = self.stats_epoch;
        let gamma = self.config.stats_decay;
        let cluster = self.clusters[slot as usize]
            .as_mut()
            .expect("cluster slot is live");
        let mut cands = view_mut(&mut self.stats_arena, &mut cluster.candidates);
        let behind = epoch - cands.stamp();
        if behind > 0 {
            cands.catch_up(gamma, behind);
            cands.set_stamp(epoch);
        }
    }

    /// Removes an object, returning its rectangle. The object is located
    /// through the store's position map in O(1) — no segment scan.
    pub fn remove(&mut self, id: ObjectId) -> Result<HyperRect, IndexError> {
        let slot = *self
            .object_cluster
            .get(&id.raw())
            .ok_or(IndexError::UnknownObject(id.raw()))?;
        self.wal_append(WalRecord::Remove { id: id.raw() })?;
        let (segment, idx) = self
            .store
            .position_of(id.raw())
            .expect("object map and position map agree");
        let flat: Vec<Scalar> = self.store.object_flat(segment, idx);
        let cluster = self.clusters[slot as usize]
            .as_mut()
            .expect("cluster slot is live");
        debug_assert_eq!(cluster.segment, segment);
        view_mut(&mut self.stats_arena, &mut cluster.candidates).unrecord_member(&flat);
        self.store.swap_remove(cluster.segment, idx);
        self.object_cluster.remove(&id.raw());
        self.mark_dirty(slot);
        Ok(HyperRect::from_flat(&flat)?)
    }

    /// Returns the rectangle of an indexed object, located through the
    /// store's position map in O(1) — no per-object work at any index
    /// size.
    pub fn get(&self, id: ObjectId) -> Option<HyperRect> {
        let (segment, idx) = self.store.position_of(id.raw())?;
        HyperRect::from_flat(&self.store.object_flat(segment, idx)).ok()
    }

    /// Replaces the rectangle of an existing object.
    pub fn update(&mut self, id: ObjectId, rect: HyperRect) -> Result<HyperRect, IndexError> {
        if rect.dims() != self.config.dims {
            return Err(IndexError::DimensionMismatch {
                expected: self.config.dims,
                actual: rect.dims(),
            });
        }
        if !self.object_cluster.contains_key(&id.raw()) {
            return Err(IndexError::UnknownObject(id.raw()));
        }
        if self.wal.is_some() {
            self.wal_append(WalRecord::Update {
                id: id.raw(),
                coords: rect.to_flat(),
            })?;
        }
        // One logical mutation, one WAL record: detach the log so the
        // internal remove+insert pair does not log again.
        let wal = self.wal.take();
        let result = self.remove(id).and_then(|old| {
            self.insert(id, rect)?;
            Ok(old)
        });
        self.wal = wal;
        result
    }

    fn check_query_dims(&self, query: &SpatialQuery) -> Result<(), IndexError> {
        if query.dims() != self.config.dims {
            return Err(IndexError::DimensionMismatch {
                expected: self.config.dims,
                actual: query.dims(),
            });
        }
        Ok(())
    }

    /// The read-only matching phase shared by every query entry point
    /// (paper §3.6, Fig. 5): explores every materialized cluster whose
    /// signature matches the query and verifies its members sequentially,
    /// leaving the matches in `scratch`. When `delta` is given, the
    /// statistics the execution would have written — per-cluster and
    /// per-candidate matching-query counts, epoch byte counters — are
    /// recorded into it instead of mutating the index, so the matching
    /// phase needs only `&self`.
    ///
    /// Member verification follows `config.scan_mode`: the columnar batch
    /// kernel over the store's dimension-major columns, or the scalar
    /// object-at-a-time oracle. Both are bit-identical in matches, match
    /// order, and every statistic. Nothing is allocated once the
    /// scratch's buffers have grown to the workload's high-water mark.
    fn explore(
        &self,
        query: &SpatialQuery,
        mut delta: Option<&mut StatsDelta>,
        scratch: &mut QueryScratch,
    ) -> QueryMetrics {
        let started = Instant::now();
        let mut stats = AccessStats::new();
        let object_bytes = self.store.object_bytes() as u64;
        scratch.matches.clear();

        if let Some(delta) = delta.as_deref_mut() {
            match delta.epoch {
                None => delta.epoch = Some(self.structure_epoch),
                Some(e) => assert_eq!(
                    e, self.structure_epoch,
                    "StatsDelta was recorded against a different clustering state"
                ),
            }
        }
        scratch.stack.clear();
        scratch.stack.push(self.root);
        while let Some(slot) = scratch.stack.pop() {
            stats.signature_checks += 1;
            let cluster = self.cluster(slot);
            if !cluster.signature.matches_query(query) {
                continue;
            }
            // Record candidate statistics first: the candidate kernel
            // and the member kernel share the scratch's bitmask buffer,
            // so the candidate mask must be consumed into the delta
            // before member verification overwrites it.
            if let Some(delta) = delta.as_deref_mut() {
                let cands = view(&self.stats_arena, &cluster.candidates);
                let recorded = delta.cluster_mut(slot, cands.len());
                recorded.q_count += 1;
                match self.config.candidate_scan {
                    ScanMode::Columnar => {
                        scan_candidates(query, &cands.columns(), &mut scratch.scan);
                        recorded.add_candidate_mask(scratch.scan.mask_words());
                    }
                    ScanMode::ScalarOracle => {
                        for ci in 0..cands.len() {
                            if cands.matches_query(ci, query) {
                                recorded.bump_candidate(ci as u32);
                            }
                        }
                    }
                }
            }
            let n = self.store.segment_len(cluster.segment);
            stats.clusters_explored += 1;
            stats.seeks += 1;
            stats.transfer_bytes += n as u64 * object_bytes;
            stats.objects_verified += n as u64;
            let ids = self.store.ids(cluster.segment);
            match self.config.scan_mode {
                ScanMode::Columnar => {
                    let columns = self.store.columns(cluster.segment);
                    let outcome = if self.config.zone_maps {
                        scan_columns(query, &columns, &mut scratch.scan)
                    } else {
                        scan_columns(query, &columns.without_zones(), &mut scratch.scan)
                    };
                    stats.verified_bytes += outcome.verified_bytes();
                    for &idx in scratch.scan.matches() {
                        scratch.matches.push(ObjectId(ids[idx as usize]));
                    }
                }
                ScanMode::ScalarOracle => {
                    for (idx, &oid) in ids.iter().enumerate() {
                        self.store
                            .read_object_into(cluster.segment, idx, &mut scratch.flat);
                        let outcome = query.matches_flat(&scratch.flat);
                        stats.verified_bytes +=
                            OBJECT_ID_BYTES as u64 + 8 * outcome.dims_checked as u64;
                        if outcome.matched {
                            scratch.matches.push(ObjectId(oid));
                        }
                    }
                }
            }
            scratch.stack.extend_from_slice(&cluster.children);
        }

        if let Some(delta) = delta {
            delta.queries += 1;
            delta.verified_bytes += stats.verified_bytes;
            delta.full_bytes += stats.objects_verified * object_bytes;
        }

        let priced_ms = self.model.price(&stats);
        QueryMetrics {
            stats,
            priced_ms,
            wall: started.elapsed(),
        }
    }

    /// Executes a spatial selection **read-only**: identical match set and
    /// access metrics to [`AdaptiveClusterIndex::execute`], but no
    /// statistics are recorded and no reorganization can trigger. Because
    /// it takes `&self`, any number of `query` calls may run concurrently
    /// from threads sharing the index.
    ///
    /// ```
    /// use acx_core::{AdaptiveClusterIndex, IndexConfig};
    /// use acx_geom::{HyperRect, ObjectId, SpatialQuery};
    ///
    /// let mut index = AdaptiveClusterIndex::new(IndexConfig::memory(2)).unwrap();
    /// index.insert(ObjectId(1), HyperRect::unit(2)).unwrap();
    /// let q = SpatialQuery::point_enclosing(vec![0.5, 0.5]);
    /// let (a, b) = std::thread::scope(|s| {
    ///     let (shared, q) = (&index, &q); // no `mut`: readers share the index
    ///     let a = s.spawn(move || shared.query(q).matches);
    ///     let b = s.spawn(move || shared.query(q).matches);
    ///     (a.join().unwrap(), b.join().unwrap())
    /// });
    /// assert_eq!(a, vec![ObjectId(1)]);
    /// assert_eq!(a, b);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the query dimensionality differs from the index's; use
    /// [`AdaptiveClusterIndex::try_query`] for a fallible variant.
    pub fn query(&self, query: &SpatialQuery) -> QueryResult {
        self.try_query(query)
            .unwrap_or_else(|e| panic!("{}", Self::dims_panic(&e)))
    }

    /// Fallible variant of [`AdaptiveClusterIndex::query`]: returns
    /// [`IndexError::DimensionMismatch`] instead of panicking.
    pub fn try_query(&self, query: &SpatialQuery) -> Result<QueryResult, IndexError> {
        self.check_query_dims(query)?;
        let mut scratch = QueryScratch::new();
        let metrics = self.explore(query, None, &mut scratch);
        Ok(QueryResult {
            matches: std::mem::take(&mut scratch.matches),
            metrics,
        })
    }

    /// Zero-allocation variant of [`AdaptiveClusterIndex::query`]: the
    /// matching phase runs entirely inside the caller-provided scratch
    /// arena and the matches are read back through
    /// [`QueryScratch::matches`]. Once the scratch's buffers have grown
    /// to the workload's high-water mark, repeated calls allocate
    /// nothing — the hot serving loop for callers that do not need owned
    /// results.
    ///
    /// ```
    /// use acx_core::{AdaptiveClusterIndex, IndexConfig, QueryScratch};
    /// use acx_geom::{HyperRect, ObjectId, SpatialQuery};
    ///
    /// let mut index = AdaptiveClusterIndex::new(IndexConfig::memory(2)).unwrap();
    /// index.insert(ObjectId(1), HyperRect::unit(2)).unwrap();
    /// let mut scratch = QueryScratch::new();
    /// let q = SpatialQuery::point_enclosing(vec![0.5, 0.5]);
    /// let metrics = index.query_with(&q, &mut scratch);
    /// assert_eq!(scratch.matches(), &[ObjectId(1)]);
    /// assert_eq!(metrics.stats.objects_verified, 1);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the query dimensionality differs from the index's.
    pub fn query_with(&self, query: &SpatialQuery, scratch: &mut QueryScratch) -> QueryMetrics {
        self.check_query_dims(query)
            .unwrap_or_else(|e| panic!("{}", Self::dims_panic(&e)));
        self.explore(query, None, scratch)
    }

    /// Read-only execution that additionally records the statistics the
    /// query would have written into `delta`. Apply the delta later with
    /// [`AdaptiveClusterIndex::apply_stats`] to make the adaptive
    /// reorganization see the queries exactly as if they had been run via
    /// [`AdaptiveClusterIndex::execute`].
    ///
    /// The first recorded query stamps the delta with the index's current
    /// structural epoch, so one delta never mixes queries recorded across
    /// a reorganization that changed the clustering.
    ///
    /// # Panics
    ///
    /// Panics if the query dimensionality differs from the index's, or if
    /// `delta` already holds queries recorded against a different
    /// clustering state.
    pub fn query_recorded(&self, query: &SpatialQuery, delta: &mut StatsDelta) -> QueryResult {
        let mut scratch = QueryScratch::new();
        let metrics = self.query_recorded_with(query, delta, &mut scratch);
        QueryResult {
            matches: std::mem::take(&mut scratch.matches),
            metrics,
        }
    }

    /// [`AdaptiveClusterIndex::query_recorded`] through a reusable
    /// scratch arena: matches land in [`QueryScratch::matches`] and a
    /// warmed-up (scratch, delta) pair records queries without
    /// allocating. Batch workers drive one such pair per thread.
    ///
    /// # Panics
    ///
    /// Same conditions as [`AdaptiveClusterIndex::query_recorded`].
    pub fn query_recorded_with(
        &self,
        query: &SpatialQuery,
        delta: &mut StatsDelta,
        scratch: &mut QueryScratch,
    ) -> QueryMetrics {
        self.check_query_dims(query)
            .unwrap_or_else(|e| panic!("{}", Self::dims_panic(&e)));
        self.explore(query, Some(delta), scratch)
    }

    /// Applies statistics recorded by
    /// [`AdaptiveClusterIndex::query_recorded`], then runs a
    /// reorganization pass if the configured `reorg_period` has elapsed.
    ///
    /// Apply a delta before the next reorganization. If a reorganization
    /// *changed* the clustering in between, the delta is stale: its
    /// per-cluster increments are dropped (merges recycle cluster slots,
    /// so applying them could credit unrelated clusters), while the
    /// global query and byte totals — which stay meaningful — are still
    /// counted.
    pub fn apply_stats(&mut self, delta: &StatsDelta) {
        self.total_queries += delta.queries;
        self.epoch_verified_bytes += delta.verified_bytes;
        self.epoch_full_bytes += delta.full_bytes;
        let current = delta.epoch.is_none_or(|e| e == self.structure_epoch);
        if current {
            // Only the dirty list carries increments: a reused delta
            // (see [`StatsDelta::clear`]) may retain zeroed entries for
            // clusters of earlier epochs whose slots were since recycled
            // or freed, but those are not on the list. The same list
            // feeds the persistent reorganization dirty set, and each
            // touched cluster replays any lazily skipped decay epochs
            // before the new increments land on it.
            for &slot in &delta.touched {
                let recorded = &delta.clusters[&slot];
                self.materialize_candidates(slot);
                let cluster = self
                    .clusters
                    .get_mut(slot as usize)
                    .and_then(|c| c.as_mut())
                    .expect("delta epoch matches, so its cluster slots are live");
                cluster.q_count += recorded.q_count;
                view_mut(&mut self.stats_arena, &mut cluster.candidates)
                    .add_q_slice(&recorded.cand_q);
                // Inline `mark_dirty` (the cluster is already borrowed):
                // the new increments void the cached no-split verdict
                // and put the slot on the dirty set.
                let newly_dirty = !cluster.dirty;
                cluster.dirty = true;
                if newly_dirty {
                    self.dirty_slots.push(slot);
                }
                if let Some(cache) = self.scan_caches.get_mut(slot as usize) {
                    *cache = None;
                }
            }
        }
        self.queries_since_reorg += delta.queries;
        if self.config.reorg_period > 0 && self.queries_since_reorg >= self.config.reorg_period {
            self.reorganize();
        }
    }

    fn dims_panic(e: &IndexError) -> String {
        match e {
            IndexError::DimensionMismatch { expected, actual } => {
                format!("query dimensionality {actual} != index dimensionality {expected}")
            }
            other => other.to_string(),
        }
    }

    /// Executes a spatial selection (paper §3.6, Fig. 5) and maintains
    /// the statistics of explored clusters and their candidate
    /// subclusters: a thin wrapper that runs the read-only matching phase
    /// and applies the recorded [`StatsDelta`].
    ///
    /// When `reorg_period` is non-zero, a cluster reorganization pass runs
    /// automatically every `reorg_period` executed queries.
    ///
    /// # Panics
    ///
    /// Panics if the query dimensionality differs from the index's; use
    /// [`AdaptiveClusterIndex::try_execute`] for a fallible variant.
    pub fn execute(&mut self, query: &SpatialQuery) -> QueryResult {
        self.try_execute(query)
            .unwrap_or_else(|e| panic!("{}", Self::dims_panic(&e)))
    }

    /// Fallible variant of [`AdaptiveClusterIndex::execute`]: returns
    /// [`IndexError::DimensionMismatch`] instead of panicking.
    ///
    /// The matching phase runs through the index-owned scratch arena and
    /// a reused [`StatsDelta`] (cleared in place, keeping capacity), so
    /// the only per-query allocation left is the returned match vector.
    pub fn try_execute(&mut self, query: &SpatialQuery) -> Result<QueryResult, IndexError> {
        self.check_query_dims(query)?;
        // Move the scratch pair out so `explore` can borrow `self`
        // immutably; both moves are pointer swaps, not allocations.
        let mut delta = std::mem::take(&mut self.delta_scratch);
        let mut scratch = std::mem::take(&mut self.query_scratch);
        delta.clear();
        let metrics = self.explore(query, Some(&mut delta), &mut scratch);
        self.apply_stats(&delta);
        let matches = scratch.matches.clone();
        self.delta_scratch = delta;
        self.query_scratch = scratch;
        Ok(QueryResult { matches, metrics })
    }

    /// Executes a batch of queries, fanning the read-only matching phase
    /// across `threads` scoped worker threads.
    ///
    /// Results come back in query order, and the index ends up in
    /// **exactly** the state sequential [`AdaptiveClusterIndex::execute`]
    /// calls would have produced: the batch is processed in windows that
    /// end at reorganization boundaries, each worker records one
    /// [`StatsDelta`], and the deltas (commutative integer sums) are
    /// merged serially before being applied. Only per-query wall-clock
    /// times differ.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or on query dimensionality mismatch; use
    /// [`AdaptiveClusterIndex::try_execute_batch`] for a fallible variant.
    pub fn execute_batch(&mut self, queries: &[SpatialQuery], threads: usize) -> Vec<QueryResult> {
        self.try_execute_batch(queries, threads)
            .unwrap_or_else(|e| panic!("{}", Self::dims_panic(&e)))
    }

    /// Fallible variant of [`AdaptiveClusterIndex::execute_batch`]:
    /// returns [`IndexError::DimensionMismatch`] (before executing
    /// anything) instead of panicking.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn try_execute_batch(
        &mut self,
        queries: &[SpatialQuery],
        threads: usize,
    ) -> Result<Vec<QueryResult>, IndexError> {
        assert!(threads > 0, "need at least one thread");
        for query in queries {
            self.check_query_dims(query)?;
        }
        let mut results = Vec::with_capacity(queries.len());
        let mut rest = queries;
        // Reuse the index-owned scratch pair across windows, exactly as
        // the sequential path does per query.
        let mut delta = std::mem::take(&mut self.delta_scratch);
        let mut scratch = std::mem::take(&mut self.query_scratch);
        while !rest.is_empty() {
            // A window never crosses a reorganization boundary, so the
            // cluster tree is frozen while workers read it and the pass
            // triggered by `apply_stats` sees sequential statistics.
            let window = if self.config.reorg_period == 0 {
                rest.len()
            } else {
                let until_reorg = self
                    .config
                    .reorg_period
                    .saturating_sub(self.queries_since_reorg)
                    .max(1) as usize;
                until_reorg.min(rest.len())
            };
            let (head, tail) = rest.split_at(window);
            delta.clear();
            self.query_window(head, threads, &mut results, &mut delta, &mut scratch);
            self.apply_stats(&delta);
            rest = tail;
        }
        self.delta_scratch = delta;
        self.query_scratch = scratch;
        Ok(results)
    }

    /// Runs one reorganization-free window of queries read-only, with one
    /// worker thread (and one [`StatsDelta`] + [`QueryScratch`]) per
    /// chunk, appending results in query order and accumulating the
    /// merged statistics into `delta` (pre-cleared by the caller).
    fn query_window(
        &self,
        queries: &[SpatialQuery],
        threads: usize,
        results: &mut Vec<QueryResult>,
        delta: &mut StatsDelta,
        scratch: &mut QueryScratch,
    ) {
        // Threading pays off only when every worker gets a few queries.
        let workers = threads.min(queries.len().div_ceil(4)).max(1);
        if workers == 1 {
            // Single worker: record straight into the caller's reusable
            // pair — no per-window allocations.
            for q in queries {
                let metrics = self.explore(q, Some(&mut *delta), &mut *scratch);
                results.push(QueryResult {
                    matches: scratch.matches.clone(),
                    metrics,
                });
            }
            return;
        }
        let chunk = queries.len().div_ceil(workers);
        let per_worker: Vec<(Vec<QueryResult>, StatsDelta)> = std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .chunks(chunk)
                .map(|chunk_queries| {
                    scope.spawn(move || {
                        // One delta and one scratch per worker, reused
                        // across its whole chunk.
                        let mut delta = StatsDelta::new();
                        let mut scratch = QueryScratch::new();
                        let chunk_results: Vec<QueryResult> = chunk_queries
                            .iter()
                            .map(|q| {
                                let metrics = self.explore(q, Some(&mut delta), &mut scratch);
                                QueryResult {
                                    matches: scratch.matches.clone(),
                                    metrics,
                                }
                            })
                            .collect();
                        (chunk_results, delta)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("query worker panicked"))
                .collect()
        });
        for (chunk_results, worker_delta) in per_worker {
            results.extend(chunk_results);
            delta.merge(&worker_delta);
        }
    }

    /// Runs one cluster reorganization pass (paper Fig. 1): for every
    /// materialized cluster, merge it into its parent when the merging
    /// benefit is positive, otherwise greedily materialize its profitable
    /// candidate subclusters. Statistics epochs restart afterwards.
    ///
    /// Two decision-identical evaluation strategies exist
    /// ([`crate::ReorgMode`]): the full scalar sweep, and the default
    /// incremental pass, which screens out clusters that provably cannot
    /// split and batches the remaining benefit arithmetic over the
    /// candidate counter columns. Both produce the same [`ReorgReport`],
    /// the same merges and materializations, and bit-identical
    /// [`ClusterSnapshot`]s; the work they spend differs
    /// ([`AdaptiveClusterIndex::last_reorg_profile`]).
    pub fn reorganize(&mut self) -> ReorgReport {
        let pass_started = std::time::Instant::now();
        let mut report = ReorgReport {
            clusters_before: self.cluster_count(),
            ..Default::default()
        };
        let mut profile = ReorgProfile {
            dirty_clusters: self.dirty_slots.len() as u64,
            ..Default::default()
        };
        self.pass_thrash = 0;
        self.pass_cooldown_blocked = 0;
        let mut snapshot = std::mem::take(&mut self.reorg_scratch.snapshot);
        snapshot.clear();
        snapshot.extend(
            (0..self.clusters.len() as u32).filter(|&s| self.clusters[s as usize].is_some()),
        );
        match self.config.reorg_mode {
            ReorgMode::FullOracle => self.full_pass(&snapshot, &mut report, &mut profile),
            ReorgMode::Incremental => self.incremental_pass(&snapshot, &mut report, &mut profile),
        }
        self.reorg_scratch.snapshot = snapshot;
        profile.thrash_cycles = self.pass_thrash;
        profile.cooldown_blocked = self.pass_cooldown_blocked;
        report.clusters_after = self.cluster_count();
        self.reorg_fault(ReorgFaultPoint::BeforeEpochClose);
        if self.wal.is_some() {
            self.wal_log_structural(WalRecord::EpochClose);
        }
        self.close_epoch(report.changed());
        profile.arena_live_bytes = self.stats_arena.live_bytes() as u64;
        profile.arena_capacity_bytes = self.stats_arena.capacity_bytes() as u64;
        profile.compactions = self.stats_arena.compactions();
        self.total_merges += report.merges;
        self.total_splits += report.splits;
        self.last_profile = profile;
        self.reorg_wall_ns += pass_started.elapsed().as_nanos() as u64;
        report
    }

    /// The epoch-close tail shared by a live pass and WAL replay:
    /// compact the arena (structural changes retired candidate ranges —
    /// reclaim the dead bytes here, off the query path, once they
    /// dominate), fold the statistics epoch, advance the pass clock,
    /// prune merge memory too old to matter for either the thrash
    /// window or the cool-down, and — when the pass changed the
    /// clustering — open a new structure epoch.
    fn close_epoch(&mut self, structure_changed: bool) {
        self.stats_arena.maybe_compact();
        self.decay_statistics();
        self.reorganizations += 1;
        let passes = self.reorganizations;
        let retention = THRASH_WINDOW.max(self.config.merge_cooldown);
        self.recent_merges.retain(|_, at| passes - *at < retention);
        self.queries_since_reorg = 0;
        if structure_changed {
            self.structure_epoch += 1;
        }
    }

    /// Work profile of the most recent reorganization pass — how many
    /// clusters were dirty, evaluated, candidate-scanned, or screened
    /// out. Diagnostics only: unlike the [`ReorgReport`], the profile
    /// legitimately differs between [`crate::ReorgMode`]s.
    pub fn last_reorg_profile(&self) -> ReorgProfile {
        self.last_profile
    }

    /// Cumulative wall-clock nanoseconds this index has spent inside
    /// [`AdaptiveClusterIndex::reorganize`] since construction.
    ///
    /// Every pass runs on the mutation path — `execute` triggers it
    /// inline when the period elapses — so this is exactly the serving
    /// stall reorganization has caused: the batched path hides it inside
    /// window boundaries, the sharded serving tier confines it to one
    /// shard. Diagnostics only (wall time, not part of any decision
    /// surface); not persisted by checkpoints.
    pub fn reorg_wall_ns(&self) -> u64 {
        self.reorg_wall_ns
    }

    /// The full-sweep reorganization pass: every cluster surviving the
    /// epoch gate is merge-evaluated and candidate-scanned with scalar
    /// benefit arithmetic — the decision oracle the incremental pass is
    /// tested against.
    fn full_pass(
        &mut self,
        snapshot: &[u32],
        report: &mut ReorgReport,
        profile: &mut ReorgProfile,
    ) {
        for &slot in snapshot {
            if self.clusters[slot as usize].is_none() {
                continue; // removed by an earlier merge in this pass
            }
            let cluster = self.cluster(slot);
            let epoch_len = self.total_queries.saturating_sub(cluster.epoch_start);
            if cluster.weight + (epoch_len as f64) < self.config.min_epoch_queries as f64 {
                continue;
            }
            profile.evaluated += 1;
            if slot != self.root && self.merge_profitable(slot) {
                self.merge_cluster(slot);
                report.merges += 1;
            } else {
                let splits = self.try_cluster_split(slot, epoch_len);
                profile.candidate_scans += 1 + splits;
                report.splits += splits;
            }
        }
    }

    /// The incremental reorganization pass. Decision-identical to
    /// [`AdaptiveClusterIndex::full_pass`] (same visit order, same gate,
    /// bit-identical benefit values), three layers cheaper:
    ///
    /// * merge benefits are evaluated up front in one batched column
    ///   over the snapshot slots, falling back to the scalar expression
    ///   once a merge or materialization has changed some cluster's
    ///   inputs mid-pass (the column is the same arithmetic, batched);
    /// * the O(1) screen ([`AdaptiveClusterIndex::split_screen_rules_out`])
    ///   skips the candidate scan of every cluster that provably cannot
    ///   materialize anything — with the dirty set, the common case of a
    ///   cluster whose statistics barely moved costs O(1) per pass;
    /// * the scans that do run evaluate their benefit column in one
    ///   vectorizable pass over the candidate counter columns and price
    ///   the sqrt-bearing significance threshold only for candidates
    ///   whose benefit can still win.
    fn incremental_pass(
        &mut self,
        snapshot: &[u32],
        report: &mut ReorgReport,
        profile: &mut ReorgProfile,
    ) {
        let mut scratch = std::mem::take(&mut self.reorg_scratch);
        // This pass only needs the merge columns; park the benefit
        // column back where the nested split scans will look for it.
        self.reorg_scratch.benefits = std::mem::take(&mut scratch.benefits);
        scratch.merge_p_c.clear();
        scratch.merge_p_a.clear();
        scratch.merge_n.clear();
        let mut denom_min = f64::INFINITY;
        let mut denom_max = f64::NEG_INFINITY;
        for &slot in snapshot {
            let cluster = self.cluster(slot);
            let denom =
                cluster.weight + self.total_queries.saturating_sub(cluster.epoch_start) as f64;
            denom_min = denom_min.min(denom);
            denom_max = denom_max.max(denom);
            // `p_c` is invariant for the rest of the pass (no scalar
            // statistic moves while it runs), so the gathered column
            // also feeds the screen and the split scans.
            scratch.merge_p_c.push(self.access_probability(cluster));
            match cluster.parent {
                Some(parent) => {
                    scratch
                        .merge_p_a
                        .push(self.access_probability(self.cluster(parent)));
                    scratch
                        .merge_n
                        .push(self.store.segment_len(cluster.segment) as u32);
                }
                // The root never merges; its benefit entry is never read.
                None => {
                    scratch.merge_p_a.push(0.0);
                    scratch.merge_n.push(0);
                }
            }
        }
        let costs = self.pass_costs();
        merging_benefit_column(
            costs.a,
            costs.b,
            costs.c,
            &scratch.merge_p_c,
            &scratch.merge_p_a,
            &scratch.merge_n,
            &mut scratch.merge_benefits,
        );
        // Division- and sqrt-free floor under every cluster's merge
        // threshold: `threshold ≥ 2nC/H + (z/D)(nC + B)` with `D` at
        // most the largest statistics denominator of the pass (smaller
        // `D` only raises the confidence term), deflated by the slack
        // that dominates the rounding error of either side. Clusters
        // whose merge benefit sits at or below the floor are provably
        // unprofitable without pricing the sqrt-bearing threshold —
        // which includes the ubiquitous `benefit ≈ A` cold-on-cold
        // pairs. The z-term is dropped if any denominator is
        // non-positive (such a cluster's confidence margin is zero).
        let zd_merge = if costs.z > 0.0 && denom_min > 0.0 {
            costs.z / denom_max
        } else {
            0.0
        };
        let merge_r_floor =
            (2.0 * costs.c / costs.horizon + zd_merge * costs.c) * (1.0 - FLOOR_SLACK);
        let merge_s_floor = zd_merge * costs.b * (1.0 - FLOOR_SLACK);

        let mut structure_changed = false;
        for (k, &slot) in snapshot.iter().enumerate() {
            if self.clusters[slot as usize].is_none() {
                continue; // removed by an earlier merge in this pass
            }
            let cluster = self.cluster(slot);
            let epoch_len = self.total_queries.saturating_sub(cluster.epoch_start);
            if cluster.weight + (epoch_len as f64) < self.config.min_epoch_queries as f64 {
                continue;
            }
            profile.evaluated += 1;
            let merges = slot != self.root && {
                let (benefit, n_c) = if structure_changed {
                    (
                        self.merge_benefit(slot),
                        self.store.segment_len(self.cluster(slot).segment),
                    )
                } else {
                    (scratch.merge_benefits[k], scratch.merge_n[k] as usize)
                };
                // The threshold is non-negative, so a non-positive
                // benefit can never clear it; the exact sqrt-bearing
                // threshold is priced only for benefits above the floor.
                benefit > 0.0
                    && benefit > n_c as f64 * merge_r_floor + merge_s_floor
                    && benefit > self.merge_threshold(slot)
            };
            if merges {
                self.merge_cluster(slot);
                report.merges += 1;
                structure_changed = true;
            } else if self.scan_cache_rules_out(slot, epoch_len, &costs, scratch.merge_p_c[k]) {
                // Debug builds re-run the scan the cached verdict just
                // skipped and insist it really finds nothing — a
                // tripwire for any future hole in the cache's soundness
                // argument (it caught a missing invalidation once).
                #[cfg(debug_assertions)]
                {
                    let cache = self.scan_caches[slot as usize].expect("verdict implies cache");
                    let diagnostics = self.debug_price_candidates(slot, epoch_len, &costs);
                    let splits = self.try_cluster_split_columnar_entry(
                        slot,
                        epoch_len,
                        &costs,
                        scratch.merge_p_c[k],
                    );
                    assert_eq!(
                        splits, 0,
                        "cached verdict wrongly skipped a split on slot {slot}: p_c={} \
                         g_hi={} cached_c={} current_c={} epoch_len={epoch_len}\n{diagnostics}",
                        scratch.merge_p_c[k], cache.g_hi, cache.c, costs.c
                    );
                }
                profile.screened_out += 1;
                profile.cached_verdicts += 1;
            } else if self.split_screen_rules_out(slot, epoch_len, &costs, scratch.merge_p_c[k]) {
                // Same tripwire for the O(1) screen: debug builds run
                // the scan it skipped and insist it finds nothing.
                #[cfg(debug_assertions)]
                {
                    let n_hi = view(&self.stats_arena, &self.cluster(slot).candidates).n_hi();
                    let splits = self.try_cluster_split_columnar_entry(
                        slot,
                        epoch_len,
                        &costs,
                        scratch.merge_p_c[k],
                    );
                    assert_eq!(
                        splits, 0,
                        "screen wrongly skipped a split on slot {slot}: p_c={} \
                         n_hi={n_hi} epoch_len={epoch_len}",
                        scratch.merge_p_c[k]
                    );
                }
                profile.screened_out += 1;
            } else {
                let splits = self.try_cluster_split_columnar_entry(
                    slot,
                    epoch_len,
                    &costs,
                    scratch.merge_p_c[k],
                );
                profile.candidate_scans += 1 + splits;
                report.splits += splits;
                if splits > 0 {
                    structure_changed = true;
                }
            }
        }
        // The nested split scans parked the benefit column back into
        // `self.reorg_scratch` (this pass holds the merge columns via
        // `take`); carry it over or its capacity is dropped every pass.
        scratch.benefits = std::mem::take(&mut self.reorg_scratch.benefits);
        self.reorg_scratch = scratch;
    }

    /// Merging benefit `μ(c, parent)` of one cluster under current
    /// statistics (paper §5).
    fn merge_benefit(&self, slot: u32) -> f64 {
        let cluster = self.cluster(slot);
        let parent = self.cluster(cluster.parent.expect("non-root has a parent"));
        merging_benefit(
            self.model.a(),
            self.model.b(),
            self.decision_c(),
            self.access_probability(cluster),
            self.access_probability(parent),
            self.store.segment_len(cluster.segment),
        )
    }

    /// The hysteresis + significance threshold a merge benefit must
    /// clear (non-negative by construction).
    fn merge_threshold(&self, slot: u32) -> f64 {
        let cluster = self.cluster(slot);
        let p_c = self.access_probability(cluster);
        let n_c = self.store.segment_len(cluster.segment);
        let n_eff = cluster.weight + self.total_queries.saturating_sub(cluster.epoch_start) as f64;
        self.move_margin(n_c) + self.confidence_margin(p_c, n_eff, n_c)
    }

    fn merge_profitable(&self, slot: u32) -> bool {
        self.merge_benefit(slot) > self.merge_threshold(slot)
    }

    /// The O(1) cached-verdict screen: decides — soundly — whether a
    /// full candidate scan of `slot` could possibly materialize
    /// anything, without touching the candidate columns (and therefore
    /// without forcing their lazy decay).
    ///
    /// The screen prices the most profitable candidate any scan could
    /// find: a hypothetical candidate holding the cluster's cached
    /// maximal member count ([`CandidateSet::n_hi`] — exact after every
    /// scan, only ever *raised* by mutations in between) with access
    /// probability zero. Soundness against the scalar scan, including
    /// its float arithmetic:
    ///
    /// * a real candidate's benefit is monotonically non-increasing in
    ///   `p_s` under IEEE rounding (every op of
    ///   [`materialization_benefit`] preserves ordering), so the screen's
    ///   `benefit(p_s = 0, n_hi)` dominates every candidate with the
    ///   maximal member count — **bit-exactly equalling** the scan's
    ///   value for a cold such candidate, the decisive case;
    /// * its significance threshold is monotonically non-decreasing in
    ///   the variance, whose floor `1/denom²` is attained exactly at
    ///   `p = 0` — again the screen's own expression;
    /// * for smaller member counts the real-arithmetic margin
    ///   `benefit − threshold` is linear in `n` with negative intercept
    ///   `−(A + z·B/denom)`, so it sits below the `n_hi` margin (when
    ///   the slope is positive) or below `−A` (when it is not) — `A`
    ///   dwarfs accumulated rounding noise at every realistic scale.
    ///
    /// A `true` verdict is therefore decision-identical to running the
    /// scan and finding nothing; `false` only costs the scan itself.
    fn split_screen_rules_out(
        &self,
        slot: u32,
        epoch_len: u64,
        costs: &PassCosts,
        p_c: f64,
    ) -> bool {
        let cluster = self.cluster(slot);
        let n_hi = view(&self.stats_arena, &cluster.candidates).n_hi() as usize;
        if n_hi == 0 {
            return true; // no candidate holds members: the scan skips them all
        }
        let denom = cluster.weight + epoch_len as f64;
        if denom <= 0.0 {
            // Every probability the scan would price collapses to zero:
            // each benefit is exactly −A < 0 and thresholds are
            // non-negative.
            return true;
        }
        debug_assert_eq!(p_c.to_bits(), self.access_probability(cluster).to_bits());
        let benefit_hi = materialization_benefit(costs.a, costs.b, costs.c, p_c, 0.0, n_hi);
        if benefit_hi <= 0.0 {
            return true; // thresholds of populated candidates are strictly positive
        }
        // Cheap tier first: the slack-deflated floor under the exact
        // threshold (same construction as the scan's per-candidate
        // prefilter) resolves almost every screened cluster without the
        // sqrt-bearing confidence margin.
        let zd = if costs.z > 0.0 { costs.z / denom } else { 0.0 };
        let floor = (n_hi as f64 * (2.0 * costs.c / costs.horizon + zd * costs.c) + zd * costs.b)
            * (1.0 - FLOOR_SLACK);
        if benefit_hi <= floor {
            return true;
        }
        let threshold_lo = move_margin_c(costs.c, costs.horizon, n_hi)
            + confidence_margin_c(costs.z, costs.c, costs.b, 0.0, denom, n_hi);
        benefit_hi <= threshold_lo
    }

    /// The dirty-set-gated verdict cache (see [`ScanCache`]): `true`
    /// when the cluster's last candidate scan found nothing, no
    /// statistic has been touched since (any touch drops the cache via
    /// [`AdaptiveClusterIndex::mark_dirty`]), and the cached benefit
    /// coefficient proves the scan would still find nothing at the
    /// current access probability and cost terms. Untouched clusters
    /// only get *colder* — `p_c` is monotonically non-increasing under
    /// pure decay and every candidate benefit is `p_c·g_i − A` with
    /// `g_i` invariant (up to an effective `C` that must not have
    /// grown) — so on workloads with any skew most clusters resolve
    /// here, without even the screen's benefit pricing.
    fn scan_cache_rules_out(&self, slot: u32, epoch_len: u64, costs: &PassCosts, p_c: f64) -> bool {
        let Some(cache) = self.scan_caches.get(slot as usize).copied().flatten() else {
            return false;
        };
        if costs.c > cache.c * (1.0 + SCAN_CACHE_C_HEADROOM) {
            // The effective C grew past the verdict's headroom: the
            // benefit coefficients may have too.
            return false;
        }
        // Every candidate benefit is at most `p_c·g − A` with `g` the
        // headroom-adjusted coefficient bound (see
        // [`SCAN_CACHE_C_HEADROOM`]); the slack inflates the bound
        // *upward* regardless of its sign (covering the lazily decayed
        // counters' ulp drift).
        let g = (1.0 + SCAN_CACHE_C_HEADROOM) * cache.g_hi + SCAN_CACHE_C_HEADROOM * costs.b;
        let base = p_c * g;
        let benefit_hi = base + base.abs() * SCAN_CACHE_SLACK - costs.a;
        if benefit_hi <= 0.0 {
            return true; // thresholds of populated candidates are strictly positive
        }
        // Thresholds are at least the n = 1 floor.
        let cluster = self.cluster(slot);
        let denom = cluster.weight + epoch_len as f64;
        let zd = if costs.z > 0.0 && denom > 0.0 {
            costs.z / denom
        } else {
            0.0
        };
        let thr1 = (2.0 * costs.c / costs.horizon + zd * (costs.c + costs.b)) * (1.0 - FLOOR_SLACK);
        benefit_hi <= thr1
    }

    /// Paper Fig. 2: moves all members of `slot` into its parent, updates
    /// the parent's candidate statistics, reparents the children, and
    /// removes the cluster.
    fn merge_cluster(&mut self, slot: u32) {
        self.reorg_fault(ReorgFaultPoint::BeforeMerge);
        if self.wal.is_some() {
            let signature = self.cluster(slot).signature.to_bytes();
            self.wal_log_structural(WalRecord::Merge { signature });
        }
        // The dying slot's verdict must not leak to a later occupant.
        if let Some(cache) = self.scan_caches.get_mut(slot as usize) {
            *cache = None;
        }
        let parent_slot = self.cluster(slot).parent.expect("non-root has a parent");
        let cluster = self.clusters[slot as usize]
            .take()
            .expect("cluster slot is live");
        self.free_slots.push(slot);
        // The dying cluster's statistics range is dead arena bytes from
        // here on; the next reorganization-pass compaction reclaims it.
        if let CandStore::Arena(h) = cluster.candidates {
            self.stats_arena.retire(h);
        }
        // Remember the dying signature: a near-term re-materialization
        // of it is a thrash cycle (and, under the cool-down, vetoed).
        self.recent_merges
            .insert(cluster.signature.to_bytes(), self.reorganizations);

        let (ids, coords) = self.store.remove(cluster.segment);
        let width = 2 * self.config.dims;
        {
            let parent = self.clusters[parent_slot as usize]
                .as_mut()
                .expect("parent slot is live");
            parent.children.retain(|&c| c != slot);
            let parent_segment = parent.segment;
            let mut pcands = view_mut(&mut self.stats_arena, &mut parent.candidates);
            for (i, oid) in ids.iter().enumerate() {
                let flat = &coords[i * width..(i + 1) * width];
                debug_assert!(parent.signature.accepts_flat(flat));
                pcands.record_member(flat);
                self.store.push(parent_segment, *oid, flat);
                self.object_cluster.insert(*oid, parent_slot);
            }
        }
        for child in cluster.children {
            self.cluster_mut(child).parent = Some(parent_slot);
            self.cluster_mut(parent_slot).children.push(child);
        }
        self.mark_dirty(parent_slot);
        self.reorg_fault(ReorgFaultPoint::AfterMerge);
    }

    /// Paper Fig. 3: greedily materializes the best positive-benefit
    /// candidate subclusters of `slot` with the full sweep's
    /// candidate-at-a-time scalar arithmetic. Returns the number of
    /// materializations performed.
    ///
    /// The cluster's candidate counters are brought up to the current
    /// statistics epoch first (lazy-decay catch-up). The incremental
    /// pass runs the decision-identical
    /// [`AdaptiveClusterIndex::try_cluster_split_columnar_entry`]
    /// instead; both pick identical candidates.
    fn try_cluster_split(&mut self, slot: u32, epoch_len: u64) -> u64 {
        self.materialize_candidates(slot);
        self.split_scan_scalar(slot, epoch_len)
    }

    /// The incremental pass's split scan: lazy-decay catch-up, then the
    /// columnar benefit evaluation. `p_c` is the cluster's access
    /// probability, invariant across the pass and therefore computed
    /// once by the gather loop.
    fn try_cluster_split_columnar_entry(
        &mut self,
        slot: u32,
        epoch_len: u64,
        costs: &PassCosts,
        p_c: f64,
    ) -> u64 {
        self.materialize_candidates(slot);
        self.split_scan_columnar(slot, epoch_len, costs, p_c)
    }

    /// The scalar split scan: the candidate-at-a-time loop, kept as the
    /// decision oracle of the columnar scan.
    fn split_scan_scalar(&mut self, slot: u32, epoch_len: u64) -> u64 {
        let mut splits = 0u64;
        let mut blocked = 0u64;
        let (a, b, c) = (self.model.a(), self.model.b(), self.decision_c());
        loop {
            let (best, max_n) = {
                let cluster = self.cluster(slot);
                let p_c = self.access_probability(cluster);
                let denom = cluster.weight + epoch_len as f64;
                let cands = view(&self.stats_arena, &cluster.candidates);
                let mut best: Option<(usize, f64)> = None;
                let mut max_n = 0u32;
                for idx in 0..cands.len() {
                    let n = cands.n(idx);
                    max_n = max_n.max(n);
                    if n == 0 {
                        continue;
                    }
                    let p_s = if denom <= 0.0 {
                        0.0
                    } else {
                        (cands.q_eff(idx) + cands.q(idx) as f64) / denom
                    };
                    let benefit = materialization_benefit(a, b, c, p_c, p_s, n as usize);
                    let threshold = self.move_margin(n as usize)
                        + self.confidence_margin(p_s, denom, n as usize);
                    if benefit > threshold && best.is_none_or(|(_, bst)| benefit > bst) {
                        if self.candidate_on_cooldown(cluster, idx) {
                            blocked += 1;
                            continue;
                        }
                        best = Some((idx, benefit));
                    }
                }
                (best, max_n)
            };
            // The scan walked every counter anyway: re-tighten the
            // cached bound the incremental screen prices.
            {
                let cluster = self.clusters[slot as usize]
                    .as_mut()
                    .expect("cluster slot is live");
                view_mut(&mut self.stats_arena, &mut cluster.candidates).set_n_hi(max_n);
            }
            let Some((cand_idx, _)) = best else {
                break;
            };
            self.materialize_candidate(slot, cand_idx);
            splits += 1;
        }
        self.pass_cooldown_blocked += blocked;
        splits
    }

    /// The columnar split scan: evaluates a sound benefit **bound**
    /// column in one vectorizable pass over the candidate counter
    /// columns ([`materialization_benefit_column`] — reciprocal-multiply
    /// upper bounds within parts in 10¹² of the exact benefits,
    /// AVX2-dispatched), prunes it against a division- and sqrt-free
    /// threshold floor, and re-prices only the rare survivors with the
    /// scalar loop's exact arithmetic and selection semantics (first
    /// candidate strictly exceeding both its own significance threshold
    /// and the best so far). Every pruned candidate is provably rejected
    /// by the scalar loop too — its exact benefit sits at or below the
    /// bound, which sits at or below the floor, which under-prices its
    /// threshold — so the chosen candidate is identical.
    fn split_scan_columnar(
        &mut self,
        slot: u32,
        epoch_len: u64,
        costs: &PassCosts,
        p_c: f64,
    ) -> u64 {
        let mut splits = 0u64;
        let mut blocked = 0u64;
        // Re-assigned by every column evaluation; the loop always runs
        // at least once before it is read.
        #[allow(unused_assignments)]
        let mut last_max_bound = f64::NEG_INFINITY;
        let mut benefits = std::mem::take(&mut self.reorg_scratch.benefits);
        loop {
            let (best, max_n) = {
                let cluster = self.cluster(slot);
                debug_assert_eq!(p_c.to_bits(), self.access_probability(cluster).to_bits());
                let denom = cluster.weight + epoch_len as f64;
                let cands = view(&self.stats_arena, &cluster.candidates);
                // Division- and sqrt-free threshold floor, hoisted per
                // scan: a candidate's significance threshold is at
                // least `2nC/H + (z/D)(nC + B)` (move margin plus the
                // confidence margin at its variance floor `1/D²`, both
                // monotone under IEEE rounding), so `n·r_floor +
                // s_floor` — deflated by 1e-12, ten thousand times the
                // accumulated relative rounding error of either side —
                // soundly under-prices every threshold. Candidates at
                // or below the floor are provably rejected with one
                // multiply-add fused into the column pass; only the
                // handful near the split boundary pay the exact margin
                // division and the sqrt.
                let zd = if costs.z > 0.0 && denom > 0.0 {
                    costs.z / denom
                } else {
                    0.0
                };
                let r_floor = (2.0 * costs.c / costs.horizon + zd * costs.c) * (1.0 - FLOOR_SLACK);
                let s_floor = zd * costs.b * (1.0 - FLOOR_SLACK);
                let summary = materialization_benefit_column(
                    costs.a,
                    costs.b,
                    costs.c,
                    p_c,
                    denom,
                    r_floor,
                    s_floor,
                    cands.n_col(),
                    cands.q_col(),
                    cands.q_eff_col(),
                    &mut benefits,
                );
                let max_n = summary.max_n;
                last_max_bound = summary.max_bound;
                // Almost every scan of an adapted index finds *no*
                // candidate above its floor (memberless candidates have
                // negative bounds, so they can never fire); the branchy
                // selection sweep below runs only when a candidate
                // might actually qualify — its skip test is the same
                // float comparison, so the short-cut is
                // decision-identical.
                let mut best: Option<(usize, f64)> = None;
                if summary.any_above_floor {
                    for ((idx, &bound), &n_s) in benefits.iter().enumerate().zip(cands.n_col()) {
                        if n_s == 0 || bound <= n_s as f64 * r_floor + s_floor {
                            continue;
                        }
                        let n = n_s as usize;
                        // Exact expressions from here on: `decision_c`
                        // is deterministic across the pass, so the
                        // hoisted costs make this margin equal
                        // `move_margin(n)` bit for bit, the benefit the
                        // scalar loop's, and the threshold the scalar
                        // scan's.
                        let p_s = if denom <= 0.0 {
                            0.0
                        } else {
                            (cands.q_eff(idx) + cands.q(idx) as f64) / denom
                        };
                        let benefit =
                            materialization_benefit(costs.a, costs.b, costs.c, p_c, p_s, n);
                        if let Some((_, bst)) = best {
                            if benefit <= bst {
                                continue;
                            }
                        }
                        let margin = move_margin_c(costs.c, costs.horizon, n);
                        if benefit <= margin {
                            continue;
                        }
                        let threshold =
                            margin + confidence_margin_c(costs.z, costs.c, costs.b, p_s, denom, n);
                        if benefit > threshold {
                            if self.candidate_on_cooldown(cluster, idx) {
                                blocked += 1;
                                continue;
                            }
                            best = Some((idx, benefit));
                        }
                    }
                }
                (best, max_n)
            };
            {
                let cluster = self.clusters[slot as usize]
                    .as_mut()
                    .expect("cluster slot is live");
                view_mut(&mut self.stats_arena, &mut cluster.candidates).set_n_hi(max_n);
            }
            let Some((cand_idx, _)) = best else {
                break;
            };
            self.materialize_candidate(slot, cand_idx);
            splits += 1;
        }
        self.reorg_scratch.benefits = benefits;
        self.store_scan_cache(slot, p_c, costs, last_max_bound);
        self.pass_cooldown_blocked += blocked;
        splits
    }

    /// Whether the [`IndexConfig::merge_cooldown`] hysteresis vetoes
    /// materializing candidate `idx` of `cluster`: its signature was
    /// merged away within the last `merge_cooldown` passes. Always
    /// `false` with the cool-down disabled (the default).
    ///
    /// Called by both split scans at the same point of their selection
    /// semantics — only for a candidate that cleared its significance
    /// threshold and the best-so-far — so the veto is a pure filter on
    /// the qualifying set and [`crate::ReorgMode`] decision-identity is
    /// preserved for every cool-down value. Rendering the candidate
    /// signature is deferred to that rare case, keeping the veto off an
    /// adapted index's hot path. Soundness of the incremental pass's
    /// screens is unaffected: the cool-down only *removes*
    /// materializations, and the cached-bound column still prices vetoed
    /// candidates, so a profitable-but-vetoed candidate keeps its
    /// cluster's scan alive until the cool-down expires.
    fn candidate_on_cooldown(&self, cluster: &Cluster, idx: usize) -> bool {
        if self.config.merge_cooldown == 0 || self.recent_merges.is_empty() {
            return false;
        }
        let sig = view(&self.stats_arena, &cluster.candidates).signature(
            idx,
            &cluster.signature,
            self.config.division_factor,
        );
        match self.recent_merges.get(&sig.to_bytes()) {
            Some(&at) => self.reorganizations.saturating_sub(at) < self.config.merge_cooldown,
            None => false,
        }
    }

    /// Debug-only: catches the candidate counters up and prices every
    /// populated candidate with the scalar expressions, returning a dump
    /// of those that would qualify for materialization — tripwire
    /// forensics for an unsound screen/cache verdict.
    #[cfg(debug_assertions)]
    fn debug_price_candidates(&mut self, slot: u32, epoch_len: u64, costs: &PassCosts) -> String {
        use std::fmt::Write as _;
        self.materialize_candidates(slot);
        let cluster = self.cluster(slot);
        let cands = view(&self.stats_arena, &cluster.candidates);
        let p_c = self.access_probability(cluster);
        let denom = cluster.weight + epoch_len as f64;
        let mut out = format!(
            "cluster: weight={} epoch_start={} denom={denom} p_c={p_c} q_count={} q_eff={} \
             cand_stamp={} stats_epoch={} n_hi={}\n",
            cluster.weight,
            cluster.epoch_start,
            cluster.q_count,
            cluster.q_eff,
            cands.stamp(),
            self.stats_epoch,
            cands.n_hi(),
        );
        for idx in 0..cands.len() {
            let n = cands.n(idx);
            if n == 0 {
                continue;
            }
            let p_s = if denom <= 0.0 {
                0.0
            } else {
                (cands.q_eff(idx) + cands.q(idx) as f64) / denom
            };
            let benefit = materialization_benefit(costs.a, costs.b, costs.c, p_c, p_s, n as usize);
            let threshold =
                self.move_margin(n as usize) + self.confidence_margin(p_s, denom, n as usize);
            if benefit > threshold {
                let _ = writeln!(
                    out,
                    "  QUALIFIES idx={idx}: n={n} q={} q_eff={} p_s={p_s} \
                     benefit={benefit} threshold={threshold} g_i={}",
                    cands.q(idx),
                    cands.q_eff(idx),
                    if p_c > 0.0 {
                        (benefit + costs.a) / p_c
                    } else {
                        f64::NAN
                    },
                );
            }
        }
        out
    }

    /// Records the final iteration's no-split outcome as the cluster's
    /// cached verdict (after any materializations of this scan have
    /// already re-marked it dirty and dropped the stale cache, so the
    /// stored bound reflects the cluster's final state).
    ///
    /// A verdict is only stored for a cluster **untouched in the open
    /// epoch** (`q_count == 0`). The epoch close that follows this pass
    /// folds the fresh count undecayed (`q_eff ← γ·q_eff + q_count`)
    /// while every history decays, so a cluster with fresh traffic has
    /// its candidate/cluster probability *ratios* — exactly what the
    /// cached coefficient bound summarizes — shifted at the fold: a
    /// candidate whose traffic is relatively more historical than the
    /// cluster's gets relatively colder, its benefit coefficient
    /// *grows*, and a verdict priced pre-fold could wrongly rule the
    /// post-fold scan out (observed as a missed split on a mixed-kind
    /// workload). Since caches are only consulted in *later* passes —
    /// always across at least one fold — such a verdict could never be
    /// soundly used, so it is simply not stored. With `q_count == 0`
    /// the fold is a pure `×γ` scaling of both sides of every ratio
    /// (and the lazy candidate catch-up replays exactly those
    /// multiplications), leaving the ratios invariant up to the ulp
    /// drift [`SCAN_CACHE_SLACK`] absorbs.
    fn store_scan_cache(&mut self, slot: u32, p_c: f64, costs: &PassCosts, max_bound: f64) {
        if self.cluster(slot).q_count > 0 {
            // mark_dirty already dropped any previous verdict when the
            // cluster was touched this epoch.
            debug_assert!(self
                .scan_caches
                .get(slot as usize)
                .copied()
                .flatten()
                .is_none());
            return;
        }
        let g_hi = if max_bound == f64::NEG_INFINITY || p_c <= 0.0 {
            // No populated candidates, or a cluster whose probability —
            // and with it every candidate's — is exactly zero and stays
            // zero under decay: nothing can materialize while clean.
            0.0
        } else {
            (max_bound + costs.a) / p_c
        };
        if self.scan_caches.len() <= slot as usize {
            self.scan_caches.resize(slot as usize + 1, None);
        }
        self.scan_caches[slot as usize] = Some(ScanCache { g_hi, c: costs.c });
    }

    /// Materializes candidate `cand_idx` of cluster `slot` as a new
    /// cluster, moving the qualifying objects.
    fn materialize_candidate(&mut self, slot: u32, cand_idx: usize) {
        self.reorg_fault(ReorgFaultPoint::BeforeMaterialize);
        if self.wal.is_some() {
            let signature = self.cluster(slot).signature.to_bytes();
            self.wal_log_structural(WalRecord::Materialize {
                signature,
                candidate: cand_idx as u32,
            });
        }
        let f = self.config.division_factor;
        let width = 2 * self.config.dims;
        let (new_signature, expected, inherited_q, inherited_q_eff, parent_epoch, parent_weight) = {
            let cluster = self.cluster(slot);
            let cands = view(&self.stats_arena, &cluster.candidates);
            (
                cands.signature(cand_idx, &cluster.signature, f),
                cands.n(cand_idx) as usize,
                cands.q(cand_idx) as u64,
                cands.q_eff(cand_idx),
                cluster.epoch_start,
                cluster.weight,
            )
        };
        // A signature merged away a few passes ago coming back is one
        // completed split→merge→split cycle. Counted regardless of the
        // cool-down (which, when enabled, prevents reaching this point
        // within its own window).
        if let Some(&merged_at) = self.recent_merges.get(&new_signature.to_bytes()) {
            if self.reorganizations.saturating_sub(merged_at) < THRASH_WINDOW {
                self.pass_thrash += 1;
                self.total_thrash += 1;
            }
        }
        let new_segment = self.store.create(expected.max(1));
        let mut new_candidates = generate_candidates(&new_signature, f);
        // Fresh counters are de-facto materialized to the open epoch.
        new_candidates.set_stamp(self.stats_epoch);
        let candidates = self.store_candidates(new_candidates);
        let new_slot = self.alloc_slot(Cluster {
            signature: new_signature,
            parent: Some(slot),
            children: Vec::new(),
            segment: new_segment,
            candidates,
            q_count: inherited_q,
            epoch_start: parent_epoch,
            q_eff: inherited_q_eff,
            weight: parent_weight,
            dirty: false,
        });

        // Move qualifying objects; maintain the source cluster's candidate
        // counters and compute the new cluster's.
        let parent_cluster = self.clusters[slot as usize]
            .as_mut()
            .expect("cluster slot is live");
        let parent_segment = parent_cluster.segment;
        let cand = view(&self.stats_arena, &parent_cluster.candidates).bounds(cand_idx);
        let mut moved: Vec<(u32, Vec<Scalar>)> = Vec::with_capacity(expected);
        let mut flat = Vec::with_capacity(width);
        let mut idx = 0;
        while idx < self.store.segment_len(parent_segment) {
            self.store.read_object_into(parent_segment, idx, &mut flat);
            if cand.accepts_member(&flat) {
                let oid = self.store.ids(parent_segment)[idx];
                self.store.swap_remove(parent_segment, idx);
                moved.push((oid, flat.clone()));
            } else {
                idx += 1;
            }
        }
        {
            let mut pcands = view_mut(&mut self.stats_arena, &mut parent_cluster.candidates);
            for (oid, flat) in &moved {
                pcands.unrecord_member(flat);
                self.object_cluster.insert(*oid, new_slot);
            }
        }
        parent_cluster.children.push(new_slot);
        debug_assert_eq!(
            view(&self.stats_arena, &parent_cluster.candidates).n(cand_idx),
            0
        );

        let new_cluster = self.clusters[new_slot as usize]
            .as_mut()
            .expect("new slot is live");
        let mut ncands = view_mut(&mut self.stats_arena, &mut new_cluster.candidates);
        for (oid, flat) in &moved {
            ncands.record_member(flat);
            self.store.push(new_segment, *oid, flat);
        }
        self.mark_dirty(slot);
        self.mark_dirty(new_slot);
        self.reorg_fault(ReorgFaultPoint::AfterMaterialize);
    }

    /// Places a freshly generated candidate set into the layout the
    /// index runs under: copied into the arena slabs
    /// ([`StatsLayout::Arena`]) or kept as an owned per-cluster value
    /// ([`StatsLayout::PerClusterOracle`]).
    fn store_candidates(&mut self, set: CandidateSet) -> CandStore {
        match self.config.stats_layout {
            StatsLayout::Arena => CandStore::Arena(self.stats_arena.alloc(&set)),
            StatsLayout::PerClusterOracle => CandStore::Owned(Box::new(set)),
        }
    }

    fn alloc_slot(&mut self, cluster: Cluster) -> u32 {
        if let Some(slot) = self.free_slots.pop() {
            self.clusters[slot as usize] = Some(cluster);
            slot
        } else {
            self.clusters.push(Some(cluster));
            (self.clusters.len() - 1) as u32
        }
    }

    /// Closes the current statistics epoch: folds the per-cluster scalar
    /// counters into the exponentially decayed history (`stats_decay`
    /// weight) and restarts the epoch, so access probabilities track
    /// recent periods while damping single-period noise.
    ///
    /// The per-**candidate** counters — `f²·N_d` of them per cluster,
    /// the bulk of every counter in the system — are *not* folded here:
    /// the close only rolls the global epoch number, and each cluster
    /// replays its missed folds exactly on its next touch
    /// ([`AdaptiveClusterIndex::materialize_candidates`]). A close is
    /// therefore O(clusters) scalar work plus O(changed counters)
    /// amortized, instead of O(total counters) every period.
    ///
    /// The close also retires the dirty set: every statistic is folded
    /// (or stamped for lazy folding), so no cluster has changed relative
    /// to the *new* epoch.
    fn decay_statistics(&mut self) {
        let now = self.total_queries;
        let gamma = self.config.stats_decay;
        self.hist_verified_bytes =
            gamma * self.hist_verified_bytes + self.epoch_verified_bytes as f64;
        self.hist_full_bytes = gamma * self.hist_full_bytes + self.epoch_full_bytes as f64;
        self.epoch_verified_bytes = 0;
        self.epoch_full_bytes = 0;
        for cluster in self.clusters.iter_mut().flatten() {
            let epoch_len = now.saturating_sub(cluster.epoch_start) as f64;
            cluster.q_eff = gamma * cluster.q_eff + cluster.q_count as f64;
            cluster.weight = gamma * cluster.weight + epoch_len;
            cluster.q_count = 0;
            cluster.epoch_start = now;
        }
        self.stats_epoch += 1;
        let mut dirty = std::mem::take(&mut self.dirty_slots);
        for slot in dirty.drain(..) {
            // Entries may point at clusters merged away since they were
            // marked (or, rarely, at a recycled slot — clearing a fresh
            // cluster's flag is a no-op either way).
            if let Some(cluster) = self
                .clusters
                .get_mut(slot as usize)
                .and_then(|c| c.as_mut())
            {
                cluster.dirty = false;
            }
        }
        self.dirty_slots = dirty;
    }

    /// Read-only snapshots of all materialized clusters (depth-first
    /// order from the root).
    pub fn snapshots(&self) -> Vec<ClusterSnapshot> {
        let mut out = Vec::with_capacity(self.cluster_count());
        let mut stack = vec![(self.root, 0usize)];
        while let Some((slot, depth)) = stack.pop() {
            let cluster = self.cluster(slot);
            out.push(ClusterSnapshot {
                id: slot,
                parent: cluster.parent,
                objects: self.store.segment_len(cluster.segment),
                access_probability: self.access_probability(cluster),
                depth,
                signature: cluster.signature.to_string(),
            });
            for &child in &cluster.children {
                stack.push((child, depth + 1));
            }
        }
        out
    }

    /// Storage utilization of the underlying segment store.
    pub fn storage_utilization(&self) -> f64 {
        self.store.utilization()
    }

    /// Segment relocations performed by the store since creation.
    pub fn storage_relocations(&self) -> u64 {
        self.store.relocations()
    }

    /// Persists a full-fidelity checkpoint to `path` following the
    /// paper's recovery scheme (§6): signatures are stored with the
    /// member objects behind a one-block directory. A leading metadata
    /// record additionally carries the adaptive state — per-cluster
    /// access statistics, candidate query counters, the slot layout,
    /// and the pass clocks — so a reloaded index resumes making exactly
    /// the reorganization decisions it would have made without the
    /// restart (the crash-recovery equivalence the durability suite
    /// asserts). Candidate `n` counters are *not* persisted: membership
    /// replay recomputes them exactly from the stored objects.
    pub fn save(&self, path: &Path) -> Result<(), IndexError> {
        let live: Vec<u32> = (0..self.clusters.len() as u32)
            .filter(|&s| self.clusters[s as usize].is_some())
            .collect();
        let mut records = Vec::with_capacity(live.len() + 1);
        records.push(ClusterRecord {
            signature: self.checkpoint_meta(&live).encode(),
            ids: Vec::new(),
            coords: Vec::new(),
        });
        for &slot in &live {
            let cluster = self.cluster(slot);
            // Parents stay in slot space: the metadata record carries
            // the slot of every record, so no densification is needed
            // (and replayed WAL suffixes address clusters by signature,
            // which slot fidelity keeps deterministic).
            let parent = cluster.parent.unwrap_or(NO_PARENT);
            let mut signature = parent.to_le_bytes().to_vec();
            signature.extend_from_slice(&cluster.signature.to_bytes());
            records.push(ClusterRecord {
                signature,
                ids: self.store.ids(cluster.segment).to_vec(),
                coords: self.store.interleaved_coords(cluster.segment),
            });
        }
        FileStore::save(path, self.config.dims, &records)?;
        Ok(())
    }

    /// Gathers the adaptive state of the index into the checkpoint
    /// metadata record. `live` is the ascending slot list matching the
    /// cluster records that follow the metadata in the file.
    fn checkpoint_meta(&self, live: &[u32]) -> CheckpointMeta {
        let clusters = live
            .iter()
            .map(|&slot| {
                let cluster = self.cluster(slot);
                let cands = view(&self.stats_arena, &cluster.candidates);
                ClusterMeta {
                    slot,
                    q_count: cluster.q_count,
                    epoch_start: cluster.epoch_start,
                    q_eff: cluster.q_eff,
                    weight: cluster.weight,
                    stamp: cands.stamp(),
                    n_hi: cands.n_hi(),
                    cand_q: cands.q_col().to_vec(),
                    cand_q_eff: cands.q_eff_col().to_vec(),
                }
            })
            .collect();
        // Sorted for a byte-deterministic checkpoint (the map iterates
        // in arbitrary order).
        let mut recent_merges: Vec<(Vec<u8>, u64)> = self
            .recent_merges
            .iter()
            .map(|(sig, &pass)| (sig.clone(), pass))
            .collect();
        recent_merges.sort();
        CheckpointMeta {
            checkpoint_id: self.checkpoint_id,
            total_queries: self.total_queries,
            queries_since_reorg: self.queries_since_reorg,
            structure_epoch: self.structure_epoch,
            reorganizations: self.reorganizations,
            stats_epoch: self.stats_epoch,
            total_merges: self.total_merges,
            total_splits: self.total_splits,
            total_thrash: self.total_thrash,
            epoch_verified_bytes: self.epoch_verified_bytes,
            epoch_full_bytes: self.epoch_full_bytes,
            hist_verified_bytes: self.hist_verified_bytes,
            hist_full_bytes: self.hist_full_bytes,
            clusters,
            free_slots: self.free_slots.clone(),
            recent_merges,
        }
    }

    /// Restores an index persisted by [`AdaptiveClusterIndex::save`].
    /// The configuration must use the same dimensionality.
    ///
    /// Checkpoints carrying the metadata record restore the full
    /// adaptive state (slot layout, statistics, pass clocks); files
    /// without one — e.g. hand-built fixtures — load with dense slots
    /// and zeroed statistics, exactly as before the metadata existed.
    pub fn load(path: &Path, config: IndexConfig) -> Result<Self, IndexError> {
        config.validate()?;
        let (dims, records) = FileStore::load(path)?;
        if dims != config.dims {
            return Err(IndexError::DimensionMismatch {
                expected: config.dims,
                actual: dims,
            });
        }
        let (meta, cluster_records) = match records.first() {
            Some(first) if CheckpointMeta::is_meta(first) => {
                let meta = CheckpointMeta::decode(&first.signature).map_err(corrupt)?;
                (Some(meta), &records[1..])
            }
            _ => (None, &records[..]),
        };
        // The slot of each cluster record: from the metadata when
        // present (parents are then in slot space), dense otherwise.
        let slots: Vec<u32> = match &meta {
            Some(meta) => {
                if meta.clusters.len() != cluster_records.len() {
                    return Err(corrupt(format!(
                        "metadata describes {} clusters but the file holds {}",
                        meta.clusters.len(),
                        cluster_records.len()
                    )));
                }
                for pair in meta.clusters.windows(2) {
                    if pair[1].slot <= pair[0].slot {
                        return Err(corrupt("cluster slots not strictly ascending".into()));
                    }
                }
                meta.clusters.iter().map(|c| c.slot).collect()
            }
            None => (0..cluster_records.len() as u32).collect(),
        };
        let capacity = slots.last().map_or(0, |&s| s as usize + 1);
        let mut live = vec![false; capacity];
        for &slot in &slots {
            live[slot as usize] = true;
        }
        let f = config.division_factor;
        let width = 2 * dims;
        let mut store = SegmentStore::with_reserve(dims, config.reserve_fraction);
        let mut stats_arena = StatsArena::new();
        let mut clusters: Vec<Option<Cluster>> = (0..capacity).map(|_| None).collect();
        let mut object_cluster = HashMap::new();
        let mut root = None;
        let mut parents: Vec<Option<u32>> = Vec::with_capacity(cluster_records.len());
        for (i, rec) in cluster_records.iter().enumerate() {
            let slot = slots[i];
            if rec.signature.len() < 4 {
                return Err(corrupt(format!("cluster {i}: signature blob too short")));
            }
            let parent = u32::from_le_bytes(rec.signature[..4].try_into().unwrap());
            let signature = Signature::from_bytes(&rec.signature[4..])
                .ok_or_else(|| corrupt(format!("cluster {i}: undecodable signature")))?;
            if signature.dims() != dims {
                return Err(IndexError::DimensionMismatch {
                    expected: dims,
                    actual: signature.dims(),
                });
            }
            let segment = store.create(rec.ids.len());
            let mut candidates = generate_candidates(&signature, f);
            for (k, &oid) in rec.ids.iter().enumerate() {
                let flat = &rec.coords[k * width..(k + 1) * width];
                if !signature.accepts_flat(flat) {
                    return Err(corrupt(format!(
                        "cluster {i}: object #{oid} violates signature"
                    )));
                }
                store.push(segment, oid, flat);
                if object_cluster.insert(oid, slot).is_some() {
                    return Err(corrupt(format!("object #{oid} appears in two clusters")));
                }
                candidates.record_member(flat);
            }
            let mut cluster_meta = None;
            if let Some(meta) = &meta {
                let cm = &meta.clusters[i];
                if cm.cand_q.len() != candidates.len() || cm.cand_q_eff.len() != candidates.len() {
                    return Err(corrupt(format!(
                        "cluster {i}: {} persisted candidate counters but the signature \
                         generates {}",
                        cm.cand_q.len(),
                        candidates.len()
                    )));
                }
                if cm.stamp > meta.stats_epoch {
                    return Err(corrupt(format!(
                        "cluster {i}: decay stamp {} ahead of the statistics epoch {}",
                        cm.stamp, meta.stats_epoch
                    )));
                }
                if cm.epoch_start > meta.total_queries {
                    return Err(corrupt(format!(
                        "cluster {i}: epoch start {} ahead of the query clock {}",
                        cm.epoch_start, meta.total_queries
                    )));
                }
                if !(cm.q_eff.is_finite() && cm.weight.is_finite()) {
                    return Err(corrupt(format!("cluster {i}: non-finite statistics")));
                }
                candidates.restore_counters(&cm.cand_q, &cm.cand_q_eff, cm.n_hi, cm.stamp);
                cluster_meta = Some((cm.q_count, cm.epoch_start, cm.q_eff, cm.weight));
            }
            let parent = if parent == NO_PARENT {
                if root.replace(slot).is_some() {
                    return Err(corrupt("multiple root clusters".into()));
                }
                None
            } else {
                if (parent as usize) >= capacity || !live[parent as usize] {
                    return Err(corrupt(format!("cluster {i}: dangling parent {parent}")));
                }
                Some(parent)
            };
            parents.push(parent);
            let candidates = match config.stats_layout {
                StatsLayout::Arena => CandStore::Arena(stats_arena.alloc(&candidates)),
                StatsLayout::PerClusterOracle => CandStore::Owned(Box::new(candidates)),
            };
            let (q_count, epoch_start, q_eff, weight) = cluster_meta.unwrap_or((0, 0, 0.0, 0.0));
            clusters[slot as usize] = Some(Cluster {
                signature,
                parent,
                children: Vec::new(),
                segment,
                candidates,
                q_count,
                epoch_start,
                q_eff,
                weight,
                dirty: false,
            });
        }
        let root = root.ok_or_else(|| corrupt("no root cluster".into()))?;
        for (i, parent) in parents.iter().enumerate() {
            if let Some(p) = parent {
                clusters[*p as usize]
                    .as_mut()
                    .expect("parents are live")
                    .children
                    .push(slots[i]);
            }
        }
        // The free list must account for exactly the holes in the slot
        // space, so recycled slot numbers stay replay-stable.
        let free_slots = match &meta {
            Some(meta) => {
                let mut seen = vec![false; capacity];
                for &slot in &meta.free_slots {
                    if (slot as usize) >= capacity || live[slot as usize] {
                        return Err(corrupt(format!("free slot {slot} is live or out of range")));
                    }
                    if std::mem::replace(&mut seen[slot as usize], true) {
                        return Err(corrupt(format!("free slot {slot} listed twice")));
                    }
                }
                if meta.free_slots.len() + slots.len() != capacity {
                    return Err(corrupt(format!(
                        "{} free + {} live slots do not cover the {capacity}-slot space",
                        meta.free_slots.len(),
                        slots.len()
                    )));
                }
                meta.free_slots.clone()
            }
            None => Vec::new(),
        };
        let model = config.cost_model();
        let reorg_scratch = ReorgScratch::with_candidate_capacity(&config);
        let mut index = Self {
            config,
            model,
            store,
            stats_arena,
            clusters,
            free_slots,
            root,
            object_cluster,
            total_queries: 0,
            queries_since_reorg: 0,
            structure_epoch: 0,
            reorganizations: 0,
            total_merges: 0,
            total_splits: 0,
            epoch_verified_bytes: 0,
            epoch_full_bytes: 0,
            hist_verified_bytes: 0.0,
            hist_full_bytes: 0.0,
            query_scratch: QueryScratch::new(),
            delta_scratch: StatsDelta::new(),
            stats_epoch: 0,
            dirty_slots: Vec::new(),
            scan_caches: Vec::new(),
            reorg_scratch,
            last_profile: ReorgProfile::default(),
            recent_merges: HashMap::new(),
            pass_thrash: 0,
            pass_cooldown_blocked: 0,
            total_thrash: 0,
            checkpoint_id: 0,
            wal: None,
            wal_failure: None,
            reorg_fault_hook: None,
            reorg_wall_ns: 0,
        };
        if let Some(meta) = meta {
            if !(meta.hist_verified_bytes.is_finite() && meta.hist_full_bytes.is_finite()) {
                return Err(corrupt("non-finite byte history".into()));
            }
            index.total_queries = meta.total_queries;
            index.queries_since_reorg = meta.queries_since_reorg;
            index.structure_epoch = meta.structure_epoch;
            index.reorganizations = meta.reorganizations;
            index.stats_epoch = meta.stats_epoch;
            index.total_merges = meta.total_merges;
            index.total_splits = meta.total_splits;
            index.total_thrash = meta.total_thrash;
            index.epoch_verified_bytes = meta.epoch_verified_bytes;
            index.epoch_full_bytes = meta.epoch_full_bytes;
            index.hist_verified_bytes = meta.hist_verified_bytes;
            index.hist_full_bytes = meta.hist_full_bytes;
            index.recent_merges = meta.recent_merges.into_iter().collect();
            index.checkpoint_id = meta.checkpoint_id;
        }
        Ok(index)
    }

    /// Attaches a write-ahead log: every structural mutation from here
    /// on is appended to `wal` — and made durable per its flush policy
    /// — before being applied in memory. The log's dimensionality must
    /// match the index's.
    ///
    /// The log is aligned to the index's checkpoint generation: if its
    /// header carries a different checkpoint id (e.g. a fresh log
    /// attached to an index loaded from a checkpoint), it is reset and
    /// restamped so a later [`recover`] pairs it with the right
    /// checkpoint. To continue an existing log *with* its records, go
    /// through [`recover`] instead.
    ///
    /// [`recover`]: AdaptiveClusterIndex::recover
    pub fn attach_wal(&mut self, mut wal: Wal) -> Result<(), IndexError> {
        if wal.dims() != self.config.dims {
            return Err(IndexError::DimensionMismatch {
                expected: self.config.dims,
                actual: wal.dims(),
            });
        }
        if wal.checkpoint_id() != self.checkpoint_id {
            wal.reset_to(self.checkpoint_id).map_err(IndexError::Wal)?;
        }
        self.wal = Some(wal);
        Ok(())
    }

    /// Detaches and returns the write-ahead log, if one is attached.
    pub fn detach_wal(&mut self) -> Option<Wal> {
        self.wal.take()
    }

    /// Whether a write-ahead log is attached.
    pub fn wal_attached(&self) -> bool {
        self.wal.is_some()
    }

    /// Forces every appended WAL record down to durable storage,
    /// regardless of the flush policy.
    pub fn sync_wal(&mut self) -> Result<(), IndexError> {
        if let Some(wal) = self.wal.as_mut() {
            wal.sync().map_err(IndexError::Wal)?;
        }
        Ok(())
    }

    /// The first WAL failure swallowed inside a reorganization pass, if
    /// any — the pass completes in memory and poisons the log instead
    /// of aborting between its atomic units (graceful degradation).
    pub fn wal_failure(&self) -> Option<&WalError> {
        self.wal_failure.as_ref()
    }

    /// Takes (and clears) the stashed reorganization WAL failure.
    pub fn take_wal_failure(&mut self) -> Option<WalError> {
        self.wal_failure.take()
    }

    /// Installs (or clears) the test-only reorganization fault hook
    /// fired at every [`ReorgFaultPoint`].
    #[doc(hidden)]
    pub fn set_reorg_fault_hook(
        &mut self,
        hook: Option<Box<dyn FnMut(ReorgFaultPoint) + Send + Sync>>,
    ) {
        self.reorg_fault_hook = hook;
    }

    #[inline]
    fn reorg_fault(&mut self, point: ReorgFaultPoint) {
        if let Some(hook) = self.reorg_fault_hook.as_mut() {
            hook(point);
        }
    }

    /// Appends a record on a user-facing mutation path: the failure
    /// aborts the mutation before any in-memory state has moved.
    fn wal_append(&mut self, record: WalRecord) -> Result<(), IndexError> {
        if let Some(wal) = self.wal.as_mut() {
            wal.append(&record).map_err(IndexError::Wal)?;
        }
        Ok(())
    }

    /// Appends a record inside a reorganization pass, which cannot
    /// abort between its atomic units: the first failure is stashed
    /// (the log is poisoned by the failed append, so no later record
    /// can silently succeed past the gap) and the pass completes in
    /// memory.
    fn wal_log_structural(&mut self, record: WalRecord) {
        let Some(wal) = self.wal.as_mut() else { return };
        if let Err(e) = wal.append(&record) {
            self.wal_failure.get_or_insert(e);
        }
    }

    /// Writes a checkpoint to `path` and, on success, truncates the
    /// attached WAL: the checkpoint now carries everything the log
    /// recorded, so recovery needs only the records appended after it.
    ///
    /// The two steps are coupled by a checkpoint id: the saved META
    /// record and the truncated log's header both carry the new id. A
    /// crash *between* them leaves the new checkpoint next to a log
    /// still stamped with the previous id — recovery detects the stale
    /// stamp and discards those records instead of double-applying
    /// history the checkpoint already absorbed. ([`save`] is durable
    /// before it returns: data fsync, rename, directory fsync.)
    ///
    /// [`save`]: AdaptiveClusterIndex::save
    pub fn checkpoint(&mut self, path: &Path) -> Result<(), IndexError> {
        let id = self.checkpoint_id + 1;
        // The META record encodes `self.checkpoint_id`: bump before the
        // save, roll back if it fails so a retry reuses the id.
        self.checkpoint_id = id;
        if let Err(e) = self.save(path) {
            self.checkpoint_id = id - 1;
            return Err(e);
        }
        if let Some(wal) = self.wal.as_mut() {
            wal.reset_to(id).map_err(IndexError::Wal)?;
        }
        Ok(())
    }

    /// Recovers an index after a crash: loads the `checkpoint` (an
    /// empty index under `config` when `None`), replays the surviving
    /// WAL suffix from `store` — [`Wal::reopen`] truncates the torn
    /// tail at the first bad checksum — validates the result via
    /// [`AdaptiveClusterIndex::check_invariants`], and re-attaches the
    /// repaired log under `policy` so logging continues seamlessly.
    ///
    /// The log's header stamp is matched against the checkpoint's id.
    /// A log stamped with an *older* checkpoint id is a crash caught
    /// between a checkpoint save and its WAL truncation: every one of
    /// its records is already absorbed by the checkpoint, so they are
    /// discarded (reported via
    /// [`RecoveryReport::superseded_records`]) and the log is reset to
    /// the checkpoint's generation. A log stamped *newer* than the
    /// checkpoint means the checkpoint that truncated it is missing —
    /// mutations would be silently lost, so recovery refuses.
    ///
    /// Replay drives the same public mutation paths a live index runs,
    /// so the recovered index is decision- and answer-identical to one
    /// that executed the surviving operation prefix directly.
    pub fn recover(
        checkpoint: Option<&Path>,
        store: Box<dyn BackingStore>,
        policy: FlushPolicy,
        config: IndexConfig,
    ) -> Result<(Self, RecoveryReport), IndexError> {
        let mut index = match checkpoint {
            Some(path) => Self::load(path, config)?,
            None => Self::new(config)?,
        };
        let (mut wal, replay) = Wal::reopen(store, policy, index.config.dims)?;
        if wal.checkpoint_id() > index.checkpoint_id {
            return Err(IndexError::Recovery {
                record: 0,
                detail: format!(
                    "wal is stamped with checkpoint {} but the loaded checkpoint is {}: \
                     the checkpoint that truncated this log is missing or stale",
                    wal.checkpoint_id(),
                    index.checkpoint_id
                ),
            });
        }
        // A stale stamp: the checkpoint was saved but the crash hit
        // before the log was truncated. Its records are history the
        // checkpoint already contains — replaying them would
        // double-apply structure and duplicate inserts.
        let stale = wal.checkpoint_id() < index.checkpoint_id;
        let (records, superseded, torn) = if stale {
            (&[] as &[WalRecord], replay.records.len() as u64, None)
        } else {
            (&replay.records[..], 0, replay.torn)
        };
        let mut epoch_changed = false;
        for (i, record) in records.iter().enumerate() {
            index
                .apply_wal_record(record, &mut epoch_changed)
                .map_err(|detail| IndexError::Recovery {
                    record: i as u64,
                    detail,
                })?;
        }
        index
            .check_invariants()
            .map_err(|detail| IndexError::Recovery {
                record: records.len() as u64,
                detail,
            })?;
        if stale {
            wal.reset_to(index.checkpoint_id)
                .map_err(IndexError::Wal)?;
        }
        let report = RecoveryReport {
            replayed_records: records.len() as u64,
            superseded_records: superseded,
            torn_tail: torn,
            clusters: index.cluster_count(),
            objects: index.len(),
        };
        index.wal = Some(wal);
        Ok((index, report))
    }

    /// Applies one replayed WAL record. Membership records run the
    /// public mutation paths (no log is attached yet, so nothing
    /// double-logs); structural records address their cluster by
    /// signature — slot numbers are checkpoint-stable but not
    /// log-stable, signatures are both — and mirror exactly the state
    /// transitions the live pass performs around them.
    fn apply_wal_record(
        &mut self,
        record: &WalRecord,
        epoch_changed: &mut bool,
    ) -> Result<(), String> {
        match record {
            WalRecord::Insert { id, coords } => {
                let rect = HyperRect::from_flat(coords).map_err(|e| e.to_string())?;
                self.insert(ObjectId(*id), rect).map_err(|e| e.to_string())
            }
            WalRecord::Remove { id } => self
                .remove(ObjectId(*id))
                .map(|_| ())
                .map_err(|e| e.to_string()),
            WalRecord::Update { id, coords } => {
                let rect = HyperRect::from_flat(coords).map_err(|e| e.to_string())?;
                self.update(ObjectId(*id), rect)
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            }
            WalRecord::Merge { signature } => {
                let slot = self
                    .slot_of_signature(signature)
                    .ok_or("merge of an unknown cluster signature")?;
                if slot == self.root {
                    return Err("merge of the root cluster".into());
                }
                self.merge_cluster(slot);
                self.total_merges += 1;
                *epoch_changed = true;
                Ok(())
            }
            WalRecord::Materialize {
                signature,
                candidate,
            } => {
                let slot = self
                    .slot_of_signature(signature)
                    .ok_or("materialization from an unknown cluster signature")?;
                // The live scan catches the counters up to the open
                // epoch before picking a candidate; mirror it so the
                // child inherits identically decayed statistics.
                self.materialize_candidates(slot);
                let ci = *candidate as usize;
                let ncand = view(&self.stats_arena, &self.cluster(slot).candidates).len();
                if ci >= ncand {
                    return Err(format!("candidate {ci} out of range ({ncand} candidates)"));
                }
                self.materialize_candidate(slot, ci);
                self.total_splits += 1;
                *epoch_changed = true;
                Ok(())
            }
            WalRecord::EpochClose => {
                self.close_epoch(*epoch_changed);
                *epoch_changed = false;
                Ok(())
            }
        }
    }

    /// The live cluster carrying `signature` (rendered bytes), if any.
    /// Signatures are unique across live clusters: every child's
    /// signature strictly specializes its parent's.
    fn slot_of_signature(&self, signature: &[u8]) -> Option<u32> {
        (0..self.clusters.len() as u32).find(|&slot| {
            self.clusters[slot as usize]
                .as_ref()
                .is_some_and(|c| c.signature.to_bytes() == signature)
        })
    }

    /// Verifies internal invariants; used by tests and debug assertions.
    ///
    /// Checks that every object is hosted by a cluster whose signature
    /// accepts it, that candidate `n` counters agree with the stored
    /// members, that parent/child links are consistent, and that the
    /// object map matches segment contents.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen_objects = 0usize;
        let mut flat = Vec::new();
        let mut arena_stored = 0usize;
        for (slot, cluster) in self.clusters.iter().enumerate() {
            let Some(cluster) = cluster else { continue };
            if matches!(cluster.candidates, CandStore::Arena(_)) {
                arena_stored += 1;
            }
            let cands = view(&self.stats_arena, &cluster.candidates);
            let ids = self.store.ids(cluster.segment);
            seen_objects += ids.len();
            let mut expected_n = vec![0u32; cands.len()];
            for (k, &oid) in ids.iter().enumerate() {
                self.store.read_object_into(cluster.segment, k, &mut flat);
                if !cluster.signature.accepts_flat(&flat) {
                    return Err(format!(
                        "object #{oid} violates signature of cluster {slot}"
                    ));
                }
                if self.object_cluster.get(&oid) != Some(&(slot as u32)) {
                    return Err(format!(
                        "object #{oid} map entry disagrees with cluster {slot}"
                    ));
                }
                for (ci, expected) in expected_n.iter_mut().enumerate() {
                    if cands.accepts_member(ci, &flat) {
                        *expected += 1;
                    }
                }
            }
            for (ci, &expected) in expected_n.iter().enumerate() {
                if cands.n(ci) != expected {
                    return Err(format!(
                        "cluster {slot} candidate {ci}: n={} but {} members qualify",
                        cands.n(ci),
                        expected
                    ));
                }
            }
            let max_n = expected_n.iter().copied().max().unwrap_or(0);
            if cands.n_hi() < max_n {
                return Err(format!(
                    "cluster {slot}: cached member-count bound {} below actual maximum {max_n}",
                    cands.n_hi()
                ));
            }
            for &child in &cluster.children {
                let c = self
                    .clusters
                    .get(child as usize)
                    .and_then(|c| c.as_ref())
                    .ok_or_else(|| format!("cluster {slot} has dangling child {child}"))?;
                if c.parent != Some(slot as u32) {
                    return Err(format!("child {child} does not point back to {slot}"));
                }
            }
            if let Some(parent) = cluster.parent {
                let p = self.clusters[parent as usize]
                    .as_ref()
                    .ok_or_else(|| format!("cluster {slot} has dangling parent {parent}"))?;
                if !p.children.contains(&(slot as u32)) {
                    return Err(format!("parent {parent} does not list child {slot}"));
                }
            } else if slot as u32 != self.root {
                return Err(format!("non-root cluster {slot} has no parent"));
            }
        }
        if seen_objects != self.object_cluster.len() {
            return Err(format!(
                "{} objects in segments but {} in the object map",
                seen_objects,
                self.object_cluster.len()
            ));
        }
        for (&oid, &slot) in &self.object_cluster {
            match self.store.position_of(oid) {
                None => return Err(format!("object #{oid} missing from the position map")),
                Some((segment, idx)) => {
                    let cluster = self
                        .clusters
                        .get(slot as usize)
                        .and_then(|c| c.as_ref())
                        .ok_or_else(|| format!("object #{oid} maps to dead cluster {slot}"))?;
                    if cluster.segment != segment || self.store.ids(segment)[idx] != oid {
                        return Err(format!("position map misplaces object #{oid}"));
                    }
                }
            }
        }
        self.stats_arena.check()?;
        if self.stats_arena.live_ranges() != arena_stored {
            return Err(format!(
                "{} live arena ranges but {} clusters store their statistics there",
                self.stats_arena.live_ranges(),
                arena_stored
            ));
        }
        Ok(())
    }
}

/// Shorthand for a corrupt-checkpoint error.
fn corrupt(msg: String) -> IndexError {
    IndexError::Store(acx_storage::StoreError::Corrupt(msg))
}

/// Magic prefix of the checkpoint metadata record (record 0 of a
/// full-fidelity checkpoint). A legacy cluster record cannot collide:
/// its blob starts with a parent index (`0x4D58_4341` would require
/// over a billion clusters) and always carries members or a signature
/// of its own, while the metadata record has no ids and no coords.
const META_MAGIC: &[u8; 8] = b"ACXMETA1";

/// Per-cluster adaptive state carried by the checkpoint metadata,
/// aligned record-for-record with the cluster records that follow it.
struct ClusterMeta {
    /// The cluster's slot (recycled slot numbers stay stable across a
    /// save/load cycle, keeping replayed WAL suffixes deterministic).
    slot: u32,
    q_count: u64,
    epoch_start: u64,
    q_eff: f64,
    weight: f64,
    /// The candidate columns' lazy-decay stamp.
    stamp: u64,
    /// Cached upper bound on the candidates' member counts.
    n_hi: u32,
    /// Per-candidate epoch matching-query counters.
    cand_q: Vec<u32>,
    /// Per-candidate decayed matching-query histories.
    cand_q_eff: Vec<f64>,
}

/// The adaptive state a full-fidelity checkpoint carries beyond the
/// cluster tree itself: index-wide clocks and byte histories, the
/// per-cluster statistics, the free-slot stack, and the recent-merge
/// memory. Everything else (candidate `n` counters, scan caches, dirty
/// flags, scratch) is recomputed or safely dropped on load.
struct CheckpointMeta {
    /// Id of the checkpoint this META record belongs to; matched
    /// against the WAL header's stamp during recovery.
    checkpoint_id: u64,
    total_queries: u64,
    queries_since_reorg: u64,
    structure_epoch: u64,
    reorganizations: u64,
    stats_epoch: u64,
    total_merges: u64,
    total_splits: u64,
    total_thrash: u64,
    epoch_verified_bytes: u64,
    epoch_full_bytes: u64,
    hist_verified_bytes: f64,
    hist_full_bytes: f64,
    clusters: Vec<ClusterMeta>,
    free_slots: Vec<u32>,
    recent_merges: Vec<(Vec<u8>, u64)>,
}

/// Bounds-checked little-endian reader over the metadata blob.
struct MetaCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> MetaCursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| format!("checkpoint metadata truncated at byte {}", self.pos))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }
}

impl CheckpointMeta {
    /// Whether a store record is the checkpoint metadata record.
    fn is_meta(record: &ClusterRecord) -> bool {
        record.ids.is_empty()
            && record.coords.is_empty()
            && record.signature.starts_with(META_MAGIC)
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(META_MAGIC);
        for v in [
            self.checkpoint_id,
            self.total_queries,
            self.queries_since_reorg,
            self.structure_epoch,
            self.reorganizations,
            self.stats_epoch,
            self.total_merges,
            self.total_splits,
            self.total_thrash,
            self.epoch_verified_bytes,
            self.epoch_full_bytes,
            self.hist_verified_bytes.to_bits(),
            self.hist_full_bytes.to_bits(),
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.clusters.len() as u32).to_le_bytes());
        for c in &self.clusters {
            out.extend_from_slice(&c.slot.to_le_bytes());
            out.extend_from_slice(&c.q_count.to_le_bytes());
            out.extend_from_slice(&c.epoch_start.to_le_bytes());
            out.extend_from_slice(&c.q_eff.to_bits().to_le_bytes());
            out.extend_from_slice(&c.weight.to_bits().to_le_bytes());
            out.extend_from_slice(&c.stamp.to_le_bytes());
            out.extend_from_slice(&c.n_hi.to_le_bytes());
            out.extend_from_slice(&(c.cand_q.len() as u32).to_le_bytes());
            for &q in &c.cand_q {
                out.extend_from_slice(&q.to_le_bytes());
            }
            for &q_eff in &c.cand_q_eff {
                out.extend_from_slice(&q_eff.to_bits().to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.free_slots.len() as u32).to_le_bytes());
        for &slot in &self.free_slots {
            out.extend_from_slice(&slot.to_le_bytes());
        }
        out.extend_from_slice(&(self.recent_merges.len() as u32).to_le_bytes());
        for (signature, pass) in &self.recent_merges {
            out.extend_from_slice(&(signature.len() as u32).to_le_bytes());
            out.extend_from_slice(signature);
            out.extend_from_slice(&pass.to_le_bytes());
        }
        out
    }

    fn decode(bytes: &[u8]) -> Result<Self, String> {
        let mut cur = MetaCursor { bytes, pos: 0 };
        if cur.take(META_MAGIC.len())? != META_MAGIC {
            return Err("checkpoint metadata magic mismatch".into());
        }
        let checkpoint_id = cur.u64()?;
        let total_queries = cur.u64()?;
        let queries_since_reorg = cur.u64()?;
        let structure_epoch = cur.u64()?;
        let reorganizations = cur.u64()?;
        let stats_epoch = cur.u64()?;
        let total_merges = cur.u64()?;
        let total_splits = cur.u64()?;
        let total_thrash = cur.u64()?;
        let epoch_verified_bytes = cur.u64()?;
        let epoch_full_bytes = cur.u64()?;
        let hist_verified_bytes = cur.f64()?;
        let hist_full_bytes = cur.f64()?;
        let cluster_count = cur.u32()?;
        let mut clusters = Vec::new();
        for _ in 0..cluster_count {
            let slot = cur.u32()?;
            let q_count = cur.u64()?;
            let epoch_start = cur.u64()?;
            let q_eff = cur.f64()?;
            let weight = cur.f64()?;
            let stamp = cur.u64()?;
            let n_hi = cur.u32()?;
            let ncand = cur.u32()?;
            let mut cand_q = Vec::new();
            for _ in 0..ncand {
                cand_q.push(cur.u32()?);
            }
            let mut cand_q_eff = Vec::new();
            for _ in 0..ncand {
                cand_q_eff.push(cur.f64()?);
            }
            clusters.push(ClusterMeta {
                slot,
                q_count,
                epoch_start,
                q_eff,
                weight,
                stamp,
                n_hi,
                cand_q,
                cand_q_eff,
            });
        }
        let free_count = cur.u32()?;
        let mut free_slots = Vec::new();
        for _ in 0..free_count {
            free_slots.push(cur.u32()?);
        }
        let merge_count = cur.u32()?;
        let mut recent_merges = Vec::new();
        for _ in 0..merge_count {
            let len = cur.u32()? as usize;
            let signature = cur.take(len)?.to_vec();
            let pass = cur.u64()?;
            recent_merges.push((signature, pass));
        }
        if cur.pos != bytes.len() {
            return Err(format!(
                "checkpoint metadata has {} trailing bytes",
                bytes.len() - cur.pos
            ));
        }
        Ok(Self {
            checkpoint_id,
            total_queries,
            queries_since_reorg,
            structure_epoch,
            reorganizations,
            stats_epoch,
            total_merges,
            total_splits,
            total_thrash,
            epoch_verified_bytes,
            epoch_full_bytes,
            hist_verified_bytes,
            hist_full_bytes,
            clusters,
            free_slots,
            recent_merges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::probabilities_tie;

    #[test]
    fn exact_equality_ties() {
        assert!(probabilities_tie(0.0, 0.0));
        assert!(probabilities_tie(0.25, 0.25));
        assert!(probabilities_tie(1.0, 1.0));
    }

    #[test]
    fn rounding_noise_ties_but_real_differences_do_not() {
        // One-ulp discrepancies, as produced by decayed counters that
        // accumulate the same history along different float paths.
        let p = 1.0 / 3.0;
        assert!(probabilities_tie(p, p + f64::EPSILON / 3.0));
        assert!(probabilities_tie(0.9f64.mul_add(10.0, 10.0) / 19.0, 1.0));
        // Genuine probability differences must still order clusters.
        assert!(!probabilities_tie(0.5, 0.500001));
        assert!(!probabilities_tie(0.0, 0.01));
        assert!(!probabilities_tie(1e-3, 2e-3));
    }

    #[test]
    fn tie_is_symmetric() {
        let (a, b) = (0.7, 0.7 + 1e-13);
        assert_eq!(probabilities_tie(a, b), probabilities_tie(b, a));
    }
}
