pub use acx_storage::{QueryMetrics, QueryResult};

/// Outcome of one reorganization pass (paper Fig. 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReorgReport {
    /// Clusters merged back into their parents.
    pub merges: u64,
    /// Candidate subclusters materialized as new clusters.
    pub splits: u64,
    /// Materialized clusters before the pass.
    pub clusters_before: usize,
    /// Materialized clusters after the pass.
    pub clusters_after: usize,
}

impl ReorgReport {
    /// Whether the pass changed the clustering at all.
    pub fn changed(&self) -> bool {
        self.merges > 0 || self.splits > 0
    }
}

/// Work profile of the most recent reorganization pass — diagnostics
/// for the incremental pass, *not* part of its decision surface.
///
/// Unlike [`ReorgReport`], which is identical across
/// [`crate::ReorgMode`]s by construction, the profile describes how much
/// work a pass performed and therefore legitimately differs between the
/// incremental pass and the full sweep (the full sweep scans every
/// evaluated cluster and screens none).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReorgProfile {
    /// Size of the dirty set at pass start: clusters whose statistics
    /// (matching-query counters or membership) changed since the
    /// previous pass.
    pub dirty_clusters: u64,
    /// Clusters that passed the epoch gate and had their merge and
    /// split verdicts evaluated.
    pub evaluated: u64,
    /// Full candidate benefit scans performed (each walks the cluster's
    /// whole `f²·N_d` counter columns, possibly several times when
    /// materializations cascade).
    pub candidate_scans: u64,
    /// Clusters whose O(1) screen proved the candidate scan could not
    /// find a profitable split, skipping it entirely.
    pub screened_out: u64,
    /// Clusters resolved even cheaper than the screen: untouched since
    /// their last scan, their cached no-split verdict still holds under
    /// pure decay (a subset of the dirty-set savings; counted within
    /// `screened_out` as well).
    pub cached_verdicts: u64,
    /// Materializations this pass that re-created a cluster signature
    /// merged away within the last few passes — one completed
    /// split→merge→split cycle each. Counted whether or not the
    /// [`crate::IndexConfig::merge_cooldown`] hysteresis is enabled.
    pub thrash_cycles: u64,
    /// Would-be materializations this pass vetoed by the
    /// [`crate::IndexConfig::merge_cooldown`] hysteresis (always `0`
    /// when the cool-down is disabled).
    pub cooldown_blocked: u64,
    /// Bytes of live candidate statistics in the index-wide arena at
    /// pass end (always `0` under
    /// [`crate::StatsLayout::PerClusterOracle`], where every cluster
    /// owns its columns).
    pub arena_live_bytes: u64,
    /// Bytes the arena slabs currently occupy, live or dead. The gap to
    /// [`ReorgProfile::arena_live_bytes`] is garbage from retired
    /// ranges awaiting the next compaction.
    pub arena_capacity_bytes: u64,
    /// Arena compactions performed over the index's lifetime (cumulative,
    /// not per-pass: compactions are rare enough that the running total
    /// is the useful signal).
    pub compactions: u64,
}

/// A read-only view of one materialized cluster, for inspection, tests
/// and the experiment harness. Comparable with `==` so tests can assert
/// that two execution strategies leave identical clustering state.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSnapshot {
    /// Dense identifier of the cluster within the index.
    pub id: u32,
    /// Identifier of the parent cluster (`None` for the root).
    pub parent: Option<u32>,
    /// Number of member objects.
    pub objects: usize,
    /// Estimated access probability in the current statistics epoch.
    pub access_probability: f64,
    /// Depth in the cluster tree (root = 0).
    pub depth: usize,
    /// Rendered signature (paper notation).
    pub signature: String,
}

/// Outcome of [`crate::AdaptiveClusterIndex::recover`]: what survived
/// the crash and what it took to come back.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// WAL records replayed on top of the checkpoint.
    pub replayed_records: u64,
    /// Records discarded because the loaded checkpoint already absorbed
    /// them: the crash hit between a checkpoint save and its WAL
    /// truncation, leaving the log stamped with the previous
    /// checkpoint id.
    pub superseded_records: u64,
    /// The torn tail truncated from the log, if the crash left one.
    pub torn_tail: Option<acx_storage::TornTail>,
    /// Materialized clusters after recovery.
    pub clusters: usize,
    /// Indexed objects after recovery.
    pub objects: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reorg_report_changed() {
        let mut r = ReorgReport::default();
        assert!(!r.changed());
        r.merges = 1;
        assert!(r.changed());
        r = ReorgReport {
            splits: 2,
            ..Default::default()
        };
        assert!(r.changed());
    }

    #[test]
    fn snapshot_fields_are_accessible() {
        let s = ClusterSnapshot {
            id: 1,
            parent: Some(0),
            objects: 10,
            access_probability: 0.5,
            depth: 1,
            signature: "sig".into(),
        };
        assert_eq!(s.parent, Some(0));
        assert_eq!(s.depth, 1);
    }
}
