//! Recorded statistics of read-only query execution — the "write half"
//! of the split read path.
//!
//! [`crate::AdaptiveClusterIndex::execute`] interleaved matching with
//! statistics bookkeeping in the seed, which forced `&mut self` onto the
//! hottest path of the system. The split read path instead *records* what
//! an execution would have written — per-cluster matching-query counts,
//! per-candidate matching-query counts, and the epoch byte counters
//! feeding the early-exit verification fraction — into a [`StatsDelta`]
//! that is applied to the index afterwards, under the exclusive borrow.
//!
//! Deltas are pure sums of integers, so merging them is associative and
//! commutative: a batch fanned across worker threads (one delta each,
//! merged serially afterwards) leaves the index with *exactly* the same
//! statistics as executing the same queries sequentially, and therefore
//! with identical reorganization decisions.

use std::collections::HashMap;

/// Statistics recorded by [`crate::AdaptiveClusterIndex::query_recorded`]
/// and applied by [`crate::AdaptiveClusterIndex::apply_stats`].
///
/// A delta is only meaningful against the clustering state it was
/// recorded from, so the index stamps it with its structural epoch at
/// the first recorded query: recording into the same delta after a
/// reorganization changed the clustering panics, and applying a stale
/// delta drops the per-cluster increments (slots may have been recycled
/// for unrelated clusters) while still counting the global query and
/// byte totals. [`crate::AdaptiveClusterIndex::execute_batch`] never
/// produces stale deltas — it splits batches at reorganization
/// boundaries.
/// Two deltas compare equal when they hold the same totals and the same
/// per-cluster increments — used by tests proving that different
/// execution strategies (columnar vs. scalar verification, parallel vs.
/// sequential batches) record identical statistics. A cleared, reused
/// delta may retain zeroed per-cluster entries, so compare freshly
/// recorded deltas.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsDelta {
    /// Structural epoch of the index when recording started (`None`
    /// until the first query is recorded).
    pub(crate) epoch: Option<u64>,
    /// Queries recorded into this delta.
    pub(crate) queries: u64,
    /// Early-exit-accounted bytes verified by the recorded queries.
    pub(crate) verified_bytes: u64,
    /// Full-object bytes of the objects the recorded queries verified.
    pub(crate) full_bytes: u64,
    /// Per-cluster increments, keyed by cluster slot.
    pub(crate) clusters: HashMap<u32, ClusterDelta>,
}

/// Increments destined for one cluster's statistics.
///
/// Candidate increments are a dense counter vector indexed by candidate
/// position (sized to the cluster's candidate count on first use), so
/// recording a match is one add — no hashing — and a delta's size stays
/// O(explored clusters × candidates) regardless of how many queries it
/// accumulates.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct ClusterDelta {
    /// Queries whose signature matched the cluster.
    pub(crate) q_count: u64,
    /// Matching-query increments, indexed by candidate position.
    pub(crate) cand_q: Vec<u32>,
}

impl StatsDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queries recorded so far.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Whether no query has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.queries == 0
    }

    /// Resets the delta for reuse while keeping its allocations: the
    /// per-cluster map and its dense candidate counter vectors are zeroed
    /// in place, so a scratch delta reused across sequential queries
    /// stops allocating once it has seen every explored cluster.
    /// [`crate::AdaptiveClusterIndex::apply_stats`] skips zeroed entries,
    /// so retained keys whose cluster was since merged away are harmless.
    pub fn clear(&mut self) {
        self.epoch = None;
        self.queries = 0;
        self.verified_bytes = 0;
        self.full_bytes = 0;
        for delta in self.clusters.values_mut() {
            delta.q_count = 0;
            delta.cand_q.iter_mut().for_each(|q| *q = 0);
        }
    }

    /// Accumulates `other` into `self`. Merging is commutative, so
    /// per-worker deltas of a parallel batch can be merged in any order.
    ///
    /// # Panics
    ///
    /// Panics when the deltas were recorded against different structural
    /// epochs of the index (i.e. across a reorganization that changed
    /// the clustering).
    pub fn merge(&mut self, other: &StatsDelta) {
        match (self.epoch, other.epoch) {
            (Some(a), Some(b)) => assert_eq!(
                a, b,
                "merging StatsDelta recorded against a different clustering state"
            ),
            (None, Some(b)) => self.epoch = Some(b),
            _ => {}
        }
        self.queries += other.queries;
        self.verified_bytes += other.verified_bytes;
        self.full_bytes += other.full_bytes;
        for (&slot, delta) in &other.clusters {
            let mine = self.clusters.entry(slot).or_default();
            mine.q_count += delta.q_count;
            if mine.cand_q.len() < delta.cand_q.len() {
                mine.cand_q.resize(delta.cand_q.len(), 0);
            }
            for (acc, &q) in mine.cand_q.iter_mut().zip(&delta.cand_q) {
                *acc += q;
            }
        }
    }

    /// The increment slot for one cluster, with its counter vector sized
    /// for `candidates` entries.
    pub(crate) fn cluster_mut(&mut self, slot: u32, candidates: usize) -> &mut ClusterDelta {
        let delta = self.clusters.entry(slot).or_default();
        if delta.cand_q.len() < candidates {
            delta.cand_q.resize(candidates, 0);
        }
        delta
    }
}

impl ClusterDelta {
    pub(crate) fn bump_candidate(&mut self, cand: u32) {
        self.cand_q[cand as usize] += 1;
    }

    /// Whether the entry records nothing — true for entries zeroed by
    /// [`StatsDelta::clear`] and never touched since.
    pub(crate) fn is_noop(&self) -> bool {
        self.q_count == 0 && self.cand_q.iter().all(|&q| q == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate_total(delta: &StatsDelta, slot: u32, cand: u32) -> u32 {
        delta.clusters[&slot].cand_q[cand as usize]
    }

    #[test]
    fn new_delta_is_empty() {
        let d = StatsDelta::new();
        assert!(d.is_empty());
        assert_eq!(d.queries(), 0);
        assert_eq!(d.epoch, None);
    }

    #[test]
    fn merge_sums_all_counters() {
        let mut a = StatsDelta::new();
        a.queries = 2;
        a.verified_bytes = 100;
        a.full_bytes = 300;
        a.cluster_mut(0, 4).q_count = 2;
        a.cluster_mut(0, 4).bump_candidate(3);
        let mut b = StatsDelta::new();
        b.queries = 1;
        b.verified_bytes = 50;
        b.full_bytes = 120;
        b.cluster_mut(0, 4).q_count = 1;
        b.cluster_mut(0, 4).bump_candidate(3);
        b.cluster_mut(7, 4).q_count = 1;

        a.merge(&b);
        assert_eq!(a.queries, 3);
        assert_eq!(a.verified_bytes, 150);
        assert_eq!(a.full_bytes, 420);
        assert_eq!(a.clusters[&0].q_count, 3);
        assert_eq!(candidate_total(&a, 0, 3), 2);
        assert_eq!(a.clusters[&7].q_count, 1);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = StatsDelta::new();
        a.queries = 1;
        a.cluster_mut(1, 4).q_count = 1;
        a.cluster_mut(1, 4).bump_candidate(0);
        let mut b = StatsDelta::new();
        b.queries = 4;
        b.cluster_mut(1, 4).q_count = 2;
        b.cluster_mut(2, 4).q_count = 2;

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.queries, ba.queries);
        assert_eq!(ab.clusters[&1].q_count, ba.clusters[&1].q_count);
        assert_eq!(ab.clusters[&2].q_count, ba.clusters[&2].q_count);
        assert_eq!(candidate_total(&ab, 1, 0), candidate_total(&ba, 1, 0));
    }

    #[test]
    fn merge_adopts_and_keeps_matching_epochs() {
        let mut a = StatsDelta::new();
        let mut b = StatsDelta::new();
        b.epoch = Some(3);
        b.queries = 1;
        a.merge(&b);
        assert_eq!(a.epoch, Some(3));
        a.merge(&b); // same epoch merges fine
        assert_eq!(a.queries, 2);
    }

    #[test]
    fn clear_zeroes_but_keeps_capacity() {
        let mut d = StatsDelta::new();
        d.epoch = Some(4);
        d.queries = 3;
        d.verified_bytes = 10;
        d.full_bytes = 20;
        d.cluster_mut(2, 4).q_count = 3;
        d.cluster_mut(2, 4).bump_candidate(1);
        d.clear();
        assert!(d.is_empty());
        assert_eq!(d.epoch, None);
        assert_eq!(d.verified_bytes, 0);
        assert_eq!(d.full_bytes, 0);
        // The per-cluster entry survives, zeroed, with its counter vector.
        assert!(d.clusters[&2].is_noop());
        assert_eq!(d.clusters[&2].cand_q.len(), 4);
        // Reuse records into the retained storage.
        d.cluster_mut(2, 4).q_count = 1;
        assert!(!d.clusters[&2].is_noop());
    }

    #[test]
    #[should_panic(expected = "different clustering state")]
    fn merge_rejects_mismatched_epochs() {
        let mut a = StatsDelta::new();
        a.epoch = Some(1);
        let mut b = StatsDelta::new();
        b.epoch = Some(2);
        a.merge(&b);
    }
}
