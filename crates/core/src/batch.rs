//! Recorded statistics of read-only query execution — the "write half"
//! of the split read path.
//!
//! [`crate::AdaptiveClusterIndex::execute`] interleaved matching with
//! statistics bookkeeping in the seed, which forced `&mut self` onto the
//! hottest path of the system. The split read path instead *records* what
//! an execution would have written — per-cluster matching-query counts,
//! per-candidate matching-query counts, and the epoch byte counters
//! feeding the early-exit verification fraction — into a [`StatsDelta`]
//! that is applied to the index afterwards, under the exclusive borrow.
//!
//! Deltas are pure sums of integers, so merging them is associative and
//! commutative: a batch fanned across worker threads (one delta each,
//! merged serially afterwards) leaves the index with *exactly* the same
//! statistics as executing the same queries sequentially, and therefore
//! with identical reorganization decisions.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A multiplicative hasher for the `u32` cluster-slot keys of
/// [`StatsDelta::clusters`]: slots are small dense integers, so one
/// odd-constant multiply (Fibonacci hashing) spreads them perfectly well
/// and costs a fraction of the default SipHash on the recording hot
/// path.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct SlotHasher(u64);

impl Hasher for SlotHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by u32 keys, kept for correctness).
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u32(&mut self, value: u32) {
        self.0 = (value as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

pub(crate) type SlotMap<V> = HashMap<u32, V, BuildHasherDefault<SlotHasher>>;

/// Statistics recorded by [`crate::AdaptiveClusterIndex::query_recorded`]
/// and applied by [`crate::AdaptiveClusterIndex::apply_stats`].
///
/// A delta is only meaningful against the clustering state it was
/// recorded from, so the index stamps it with its structural epoch at
/// the first recorded query: recording into the same delta after a
/// reorganization changed the clustering panics, and applying a stale
/// delta drops the per-cluster increments (slots may have been recycled
/// for unrelated clusters) while still counting the global query and
/// byte totals. [`crate::AdaptiveClusterIndex::execute_batch`] never
/// produces stale deltas — it splits batches at reorganization
/// boundaries.
/// Two deltas compare equal when they hold the same totals and the same
/// **live** per-cluster increments — used by tests proving that
/// different execution strategies (columnar vs. scalar verification,
/// zone maps on or off, parallel vs. sequential batches) record
/// identical statistics. A cleared, reused delta retains zeroed
/// per-cluster entries for capacity; they are ignored by equality.
#[derive(Debug, Clone, Default)]
pub struct StatsDelta {
    /// Structural epoch of the index when recording started (`None`
    /// until the first query is recorded).
    pub(crate) epoch: Option<u64>,
    /// Queries recorded into this delta.
    pub(crate) queries: u64,
    /// Early-exit-accounted bytes verified by the recorded queries.
    pub(crate) verified_bytes: u64,
    /// Full-object bytes of the objects the recorded queries verified.
    pub(crate) full_bytes: u64,
    /// Per-cluster increments, keyed by cluster slot.
    pub(crate) clusters: SlotMap<ClusterDelta>,
    /// Slots whose entry has recorded something since the last
    /// [`StatsDelta::clear`] — the *dirty list*. Clearing and applying a
    /// delta walk this list instead of the whole map, so a reused delta
    /// costs O(explored clusters) per query even after it has grown
    /// entries for every cluster of the index.
    pub(crate) touched: Vec<u32>,
}

impl PartialEq for StatsDelta {
    fn eq(&self, other: &Self) -> bool {
        if self.epoch != other.epoch
            || self.queries != other.queries
            || self.verified_bytes != other.verified_bytes
            || self.full_bytes != other.full_bytes
        {
            return false;
        }
        // Dirty entries must agree pairwise; retained zeroed entries and
        // the order slots were first touched in are capacity, not
        // content.
        let mut a = self.touched.clone();
        let mut b = other.touched.clone();
        a.sort_unstable();
        b.sort_unstable();
        a == b
            && a.iter().all(|slot| {
                let (x, y) = (&self.clusters[slot], &other.clusters[slot]);
                x.q_count == y.q_count && cand_eq(&x.cand_q, &y.cand_q)
            })
    }
}

/// Candidate counter vectors compare equal up to trailing zeros (a
/// reused delta may have grown its vector beyond another's).
fn cand_eq(a: &[u32], b: &[u32]) -> bool {
    let shared = a.len().min(b.len());
    a[..shared] == b[..shared]
        && a[shared..].iter().all(|&q| q == 0)
        && b[shared..].iter().all(|&q| q == 0)
}

/// Increments destined for one cluster's statistics.
///
/// Candidate increments are a dense counter vector indexed by candidate
/// position (sized to the cluster's candidate count on first use), so
/// recording a match is one add — no hashing — and a delta's size stays
/// O(explored clusters × candidates) regardless of how many queries it
/// accumulates.
#[derive(Debug, Clone, Default)]
pub(crate) struct ClusterDelta {
    /// Queries whose signature matched the cluster.
    pub(crate) q_count: u64,
    /// Matching-query increments, indexed by candidate position.
    pub(crate) cand_q: Vec<u32>,
    /// Whether the entry recorded anything since the last clear (its
    /// slot is then on [`StatsDelta::touched`]).
    pub(crate) dirty: bool,
}

impl StatsDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queries recorded so far.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Whether no query has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.queries == 0
    }

    /// The slots of the clusters this delta recorded statistics for — the
    /// *dirty list*, in first-touch order.
    ///
    /// Applying a delta walks exactly this list, and the same machinery
    /// feeds the index's persistent reorganization dirty set: a cluster
    /// absent from every applied delta (and untouched by membership
    /// mutations) reaches the next reorganization with provably unchanged
    /// candidate statistics, which is what lets the incremental pass keep
    /// its counters un-decayed (lazy epoch stamps) and skip its candidate
    /// scan through the cached-verdict screen.
    pub fn touched_slots(&self) -> &[u32] {
        &self.touched
    }

    /// Resets the delta for reuse while keeping its allocations: only
    /// the entries on the dirty list are zeroed (in place, keeping their
    /// counter vectors), so clearing costs O(explored clusters of the
    /// recorded queries) — not O(every cluster the delta ever saw) — and
    /// a scratch delta reused across sequential queries stops allocating
    /// once it has seen every explored cluster.
    /// [`crate::AdaptiveClusterIndex::apply_stats`] walks the same dirty
    /// list, so retained keys whose cluster was since merged away are
    /// harmless.
    pub fn clear(&mut self) {
        self.epoch = None;
        self.queries = 0;
        self.verified_bytes = 0;
        self.full_bytes = 0;
        for slot in self.touched.drain(..) {
            let delta = self
                .clusters
                .get_mut(&slot)
                .expect("touched slots have entries");
            delta.q_count = 0;
            delta.cand_q.iter_mut().for_each(|q| *q = 0);
            delta.dirty = false;
        }
    }

    /// Accumulates `other` into `self`. Merging is commutative, so
    /// per-worker deltas of a parallel batch can be merged in any order.
    ///
    /// # Panics
    ///
    /// Panics when the deltas were recorded against different structural
    /// epochs of the index (i.e. across a reorganization that changed
    /// the clustering).
    pub fn merge(&mut self, other: &StatsDelta) {
        match (self.epoch, other.epoch) {
            (Some(a), Some(b)) => assert_eq!(
                a, b,
                "merging StatsDelta recorded against a different clustering state"
            ),
            (None, Some(b)) => self.epoch = Some(b),
            _ => {}
        }
        self.queries += other.queries;
        self.verified_bytes += other.verified_bytes;
        self.full_bytes += other.full_bytes;
        for &slot in &other.touched {
            let delta = &other.clusters[&slot];
            let mine = self.cluster_mut(slot, delta.cand_q.len());
            mine.q_count += delta.q_count;
            for (acc, &q) in mine.cand_q.iter_mut().zip(&delta.cand_q) {
                *acc = acc.saturating_add(q);
            }
        }
    }

    /// The increment slot for one cluster, with its counter vector sized
    /// for `candidates` entries; marks the entry dirty.
    pub(crate) fn cluster_mut(&mut self, slot: u32, candidates: usize) -> &mut ClusterDelta {
        let delta = self.clusters.entry(slot).or_default();
        if !delta.dirty {
            delta.dirty = true;
            self.touched.push(slot);
        }
        if delta.cand_q.len() < candidates {
            delta.cand_q.resize(candidates, 0);
        }
        delta
    }
}

impl ClusterDelta {
    pub(crate) fn bump_candidate(&mut self, cand: u32) {
        let q = &mut self.cand_q[cand as usize];
        *q = q.saturating_add(1);
    }

    /// Adds the set bits of a candidate match bitmask (word `k` bit `i`
    /// = candidate `64·k + i`, as written by
    /// [`acx_geom::scan::scan_candidates`]) into the counter vector —
    /// the columnar equivalent of one [`ClusterDelta::bump_candidate`]
    /// call per set bit, in the same candidate order. Cost is
    /// proportional to the *matching* candidates (set-bit iteration),
    /// not the candidate count.
    pub(crate) fn add_candidate_mask(&mut self, words: &[u64]) {
        for (chunk, &word) in self.cand_q.chunks_mut(64).zip(words) {
            let mut bits = word;
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                let q = &mut chunk[i];
                *q = q.saturating_add(1);
                bits &= bits - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate_total(delta: &StatsDelta, slot: u32, cand: u32) -> u32 {
        delta.clusters[&slot].cand_q[cand as usize]
    }

    #[test]
    fn new_delta_is_empty() {
        let d = StatsDelta::new();
        assert!(d.is_empty());
        assert_eq!(d.queries(), 0);
        assert_eq!(d.epoch, None);
    }

    #[test]
    fn merge_sums_all_counters() {
        let mut a = StatsDelta::new();
        a.queries = 2;
        a.verified_bytes = 100;
        a.full_bytes = 300;
        a.cluster_mut(0, 4).q_count = 2;
        a.cluster_mut(0, 4).bump_candidate(3);
        let mut b = StatsDelta::new();
        b.queries = 1;
        b.verified_bytes = 50;
        b.full_bytes = 120;
        b.cluster_mut(0, 4).q_count = 1;
        b.cluster_mut(0, 4).bump_candidate(3);
        b.cluster_mut(7, 4).q_count = 1;

        a.merge(&b);
        assert_eq!(a.queries, 3);
        assert_eq!(a.verified_bytes, 150);
        assert_eq!(a.full_bytes, 420);
        assert_eq!(a.clusters[&0].q_count, 3);
        assert_eq!(candidate_total(&a, 0, 3), 2);
        assert_eq!(a.clusters[&7].q_count, 1);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = StatsDelta::new();
        a.queries = 1;
        a.cluster_mut(1, 4).q_count = 1;
        a.cluster_mut(1, 4).bump_candidate(0);
        let mut b = StatsDelta::new();
        b.queries = 4;
        b.cluster_mut(1, 4).q_count = 2;
        b.cluster_mut(2, 4).q_count = 2;

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.queries, ba.queries);
        assert_eq!(ab.clusters[&1].q_count, ba.clusters[&1].q_count);
        assert_eq!(ab.clusters[&2].q_count, ba.clusters[&2].q_count);
        assert_eq!(candidate_total(&ab, 1, 0), candidate_total(&ba, 1, 0));
    }

    #[test]
    fn merge_adopts_and_keeps_matching_epochs() {
        let mut a = StatsDelta::new();
        let mut b = StatsDelta::new();
        b.epoch = Some(3);
        b.queries = 1;
        a.merge(&b);
        assert_eq!(a.epoch, Some(3));
        a.merge(&b); // same epoch merges fine
        assert_eq!(a.queries, 2);
    }

    #[test]
    fn clear_zeroes_but_keeps_capacity() {
        let mut d = StatsDelta::new();
        d.epoch = Some(4);
        d.queries = 3;
        d.verified_bytes = 10;
        d.full_bytes = 20;
        d.cluster_mut(2, 4).q_count = 3;
        d.cluster_mut(2, 4).bump_candidate(1);
        d.clear();
        assert!(d.is_empty());
        assert_eq!(d.epoch, None);
        assert_eq!(d.verified_bytes, 0);
        assert_eq!(d.full_bytes, 0);
        // The per-cluster entry survives, zeroed, with its counter
        // vector, but is off the dirty list.
        assert!(!d.clusters[&2].dirty);
        assert!(d.touched.is_empty());
        assert_eq!(d.clusters[&2].q_count, 0);
        assert!(d.clusters[&2].cand_q.iter().all(|&q| q == 0));
        assert_eq!(d.clusters[&2].cand_q.len(), 4);
        // Reuse records into the retained storage and re-dirties it.
        d.cluster_mut(2, 4).q_count = 1;
        assert!(d.clusters[&2].dirty);
        assert_eq!(d.touched, vec![2]);
    }

    #[test]
    fn cleared_delta_compares_equal_to_a_fresh_recording() {
        // Equality ignores retained zeroed entries: a reused delta that
        // once saw other clusters equals a fresh delta with the same
        // live increments.
        let mut reused = StatsDelta::new();
        reused.queries = 1;
        reused.cluster_mut(9, 4).q_count = 1; // later cleared away
        reused.clear();
        reused.queries = 2;
        reused.verified_bytes = 7;
        reused.cluster_mut(1, 4).q_count = 2;
        reused.cluster_mut(1, 4).bump_candidate(3);
        let mut fresh = StatsDelta::new();
        fresh.queries = 2;
        fresh.verified_bytes = 7;
        fresh.cluster_mut(1, 4).q_count = 2;
        fresh.cluster_mut(1, 4).bump_candidate(3);
        assert_eq!(reused, fresh);
        fresh.cluster_mut(1, 4).bump_candidate(0);
        assert_ne!(reused, fresh);
    }

    #[test]
    fn candidate_mask_bits_equal_scalar_bumps() {
        // 70 candidates: the mask spans two words.
        let mut via_mask = StatsDelta::new();
        let mut via_bumps = StatsDelta::new();
        let words = [0x8000_0000_0000_0401u64, 0b101u64];
        via_mask.cluster_mut(3, 70).add_candidate_mask(&words);
        for ci in [0u32, 10, 63, 64, 66] {
            via_bumps.cluster_mut(3, 70).bump_candidate(ci);
        }
        assert_eq!(via_mask.clusters[&3].cand_q, via_bumps.clusters[&3].cand_q);
    }

    #[test]
    fn candidate_counters_saturate_not_wrap() {
        let mut d = StatsDelta::new();
        d.cluster_mut(0, 2).cand_q[1] = u32::MAX - 1;
        d.cluster_mut(0, 2).bump_candidate(1);
        d.cluster_mut(0, 2).bump_candidate(1);
        assert_eq!(d.clusters[&0].cand_q[1], u32::MAX);
        d.cluster_mut(0, 2).add_candidate_mask(&[0b10]);
        assert_eq!(d.clusters[&0].cand_q[1], u32::MAX);
        // Merging two near-max deltas saturates too.
        let mut other = StatsDelta::new();
        other.cluster_mut(0, 2).cand_q[1] = u32::MAX;
        other.queries = 1;
        d.merge(&other);
        assert_eq!(d.clusters[&0].cand_q[1], u32::MAX);
    }

    #[test]
    #[should_panic(expected = "different clustering state")]
    fn merge_rejects_mismatched_epochs() {
        let mut a = StatsDelta::new();
        a.epoch = Some(1);
        let mut b = StatsDelta::new();
        b.epoch = Some(2);
        a.merge(&b);
    }
}
