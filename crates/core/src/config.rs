use acx_geom::object_size_bytes;
use acx_storage::{CostModel, DeviceProfile, StorageScenario};

/// How cluster exploration verifies the members of a matched cluster.
///
/// Both modes perform the same comparisons in the same dimension order
/// and are bit-identical in match sets, access statistics
/// (`dims_checked`-derived byte counters included) and therefore in
/// every reorganization decision; only the memory access pattern and
/// speed differ. The scalar mode is kept as the correctness and
/// metrics *oracle* for equivalence tests and benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanMode {
    /// Dimension-major batch kernel over the store's coordinate columns
    /// ([`acx_geom::scan::scan_columns`]): branch-light blocked loops
    /// over a survivors bitmask that the compiler auto-vectorizes.
    #[default]
    Columnar,
    /// Object-at-a-time verification via
    /// [`acx_geom::SpatialQuery::matches_flat`] — the seed's original
    /// loop, gathering each object from the columns before checking it.
    ScalarOracle,
}

impl std::str::FromStr for ScanMode {
    type Err = String;

    /// Parses `"columnar"` or `"oracle"`/`"scalar"`/`"scalar-oracle"`
    /// (case-insensitive) — the spelling used by the bench CLI flags.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "columnar" => Ok(ScanMode::Columnar),
            "oracle" | "scalar" | "scalar-oracle" | "scalar_oracle" => Ok(ScanMode::ScalarOracle),
            other => Err(format!("unknown scan mode {other:?}")),
        }
    }
}

/// How the periodic reorganization pass evaluates the benefit functions.
///
/// Both modes make **identical decisions** — same merges, same
/// materializations, same [`crate::ReorgReport`]s, bit-identical
/// [`crate::ClusterSnapshot`]s — on any workload; only the amount of
/// work spent reaching those decisions differs. The full sweep is kept
/// as the correctness *oracle* for equivalence tests and as the
/// reference row of the reorganization benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReorgMode {
    /// Incremental + columnar pass: an O(1) sound screen (driven by a
    /// cached upper bound on candidate member counts) skips the
    /// candidate scan of clusters that provably cannot split, merge
    /// benefits are evaluated in one batched column over the cluster
    /// slots, and the scans that do run batch the benefit arithmetic
    /// over the candidate counter columns.
    #[default]
    Incremental,
    /// The full sweep: every cluster's candidates are re-evaluated with
    /// per-candidate scalar benefit arithmetic each pass.
    FullOracle,
}

impl std::str::FromStr for ReorgMode {
    type Err = String;

    /// Parses `"incremental"` or `"full"`/`"oracle"`/`"full-oracle"`
    /// (case-insensitive) — the spelling used by the bench CLI flags.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "incremental" => Ok(ReorgMode::Incremental),
            "full" | "oracle" | "full-oracle" | "full_oracle" => Ok(ReorgMode::FullOracle),
            other => Err(format!("unknown reorganization mode {other:?}")),
        }
    }
}

/// Where candidate statistics columns live.
///
/// Both layouts hold **bit-identical data** operated on by the **same
/// view code** ([`crate::candidates::CandidateSlice`] /
/// [`crate::candidates::CandidateSliceMut`]), so every recorded
/// statistic, every [`crate::ReorgReport`], and every snapshot is
/// identical across the toggle; only the memory placement — and
/// therefore the cache behavior of the reorganization pass — differs.
/// The per-cluster layout is kept as the *oracle* for equivalence
/// tests and as the reference row of the reorganization benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StatsLayout {
    /// One index-wide slab per column family
    /// ([`crate::candidates::StatsArena`]): each cluster owns a
    /// `(base, len)` range, ranges are bump-allocated at the tail and
    /// compacted during the reorganization pass, so the pass streams
    /// contiguous columns instead of chasing per-cluster heap `Vec`s.
    #[default]
    Arena,
    /// The pre-arena layout: every cluster owns its own
    /// [`crate::candidates::CandidateSet`] with ~11 private heap
    /// `Vec`s — scattered, but simple; the decision oracle.
    PerClusterOracle,
}

impl std::str::FromStr for StatsLayout {
    type Err = String;

    /// Parses `"arena"` or `"per-cluster"`/`"per_cluster"`/`"oracle"`
    /// (case-insensitive) — the spelling used by the bench CLI flags.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "arena" => Ok(StatsLayout::Arena),
            "per-cluster" | "per_cluster" | "oracle" => Ok(StatsLayout::PerClusterOracle),
            other => Err(format!("unknown stats layout {other:?}")),
        }
    }
}

/// Configuration of an [`crate::AdaptiveClusterIndex`].
#[derive(Debug, Clone, PartialEq)]
pub struct IndexConfig {
    /// Dimensionality of indexed objects.
    pub dims: usize,
    /// Domain division factor `f` of the clustering function (§4.2).
    /// The paper uses 4.
    pub division_factor: u8,
    /// Trigger a reorganization every this many executed queries
    /// (§7.1 uses 100). `0` disables automatic reorganization;
    /// call [`crate::AdaptiveClusterIndex::reorganize`] manually.
    pub reorg_period: u64,
    /// Storage scenario priced by the cost model.
    pub scenario: StorageScenario,
    /// Device cost constants (defaults to the paper's Table 2).
    pub profile: DeviceProfile,
    /// Fraction of places reserved at the end of each cluster segment
    /// (§6 uses 20–30 %).
    pub reserve_fraction: f64,
    /// Minimum queries observed in a cluster's statistics epoch before
    /// reorganization decisions apply to it. Guards against acting on
    /// noise right after an epoch reset.
    pub min_epoch_queries: u64,
    /// Weight retained by previous-epoch statistics at each
    /// reorganization, in `[0, 1)`. `0` reproduces the paper's
    /// single-period statistics; the default `0.5` smooths access
    /// probabilities over an effective window of about two periods,
    /// damping split/merge oscillation at the profitability margin.
    pub stats_decay: f64,
    /// Pay-back horizon (in queries) used as a reorganization hysteresis:
    /// a split or merge must save more than the cost of moving the
    /// affected objects amortized over this many queries. Prevents
    /// marginal clusters from ping-ponging between epochs.
    pub reorg_cost_horizon: f64,
    /// Confidence factor for reorganization decisions: benefits must
    /// exceed `z` standard errors of their own estimate (driven by the
    /// binomial noise of sampled access probabilities). `0` acts on any
    /// positive benefit, reproducing the paper's bare benefit functions.
    /// Defaults are per scenario: `2.0` in memory, `1.5` on disk, where
    /// the first split at reduced database scale is marginal and a two-
    /// standard-error gate never lets clustering start.
    pub confidence_z: f64,
    /// Member verification strategy of cluster exploration. Defaults to
    /// [`ScanMode::Columnar`]; [`ScanMode::ScalarOracle`] selects the
    /// bit-identical object-at-a-time reference path.
    pub scan_mode: ScanMode,
    /// Candidate-statistics matching strategy of recorded execution:
    /// [`ScanMode::Columnar`] (default) drives the per-candidate `q`
    /// increments from the batch kernel's survivors bitmask
    /// ([`acx_geom::scan::scan_candidates`]);
    /// [`ScanMode::ScalarOracle`] keeps the candidate-at-a-time loop.
    /// Bit-identical recorded statistics either way.
    pub candidate_scan: ScanMode,
    /// Whether member verification consults the segment store's
    /// per-block zone maps to skip whole 64-object blocks. Defaults to
    /// `true`; match sets and every access statistic are identical
    /// either way (skipped blocks still charge their `dims_checked`).
    pub zone_maps: bool,
    /// Evaluation strategy of the periodic reorganization pass.
    /// Defaults to [`ReorgMode::Incremental`];
    /// [`ReorgMode::FullOracle`] selects the decision-identical full
    /// scalar sweep kept as the reference path.
    pub reorg_mode: ReorgMode,
    /// Split→merge thrash hysteresis: a candidate whose signature was
    /// merged away within the last `merge_cooldown` reorganization
    /// passes is not eligible for re-materialization. `0` (the default)
    /// disables the cool-down, reproducing the paper's bare benefit
    /// functions. The veto is applied identically by both
    /// [`ReorgMode`]s, so decision-identity between them is preserved
    /// for every value. Thrash cycles are *counted* either way (see
    /// [`crate::ReorgProfile::thrash_cycles`]); the cool-down only
    /// changes whether they are acted on.
    pub merge_cooldown: u64,
    /// Memory placement of the candidate statistics columns. Defaults
    /// to [`StatsLayout::Arena`] (one index-wide slab, compacted at
    /// reorganization); [`StatsLayout::PerClusterOracle`] selects the
    /// bit-identical per-cluster-`Vec` reference layout.
    pub stats_layout: StatsLayout,
}

impl IndexConfig {
    /// Memory-scenario defaults from the paper: `f = 4`, reorganization
    /// every 100 queries, 25 % reserve.
    pub fn memory(dims: usize) -> Self {
        Self {
            dims,
            division_factor: 4,
            reorg_period: 100,
            scenario: StorageScenario::Memory,
            profile: DeviceProfile::edbt2004(),
            reserve_fraction: 0.25,
            min_epoch_queries: 20,
            stats_decay: 0.5,
            reorg_cost_horizon: 400.0,
            confidence_z: 2.0,
            scan_mode: ScanMode::Columnar,
            candidate_scan: ScanMode::Columnar,
            zone_maps: true,
            reorg_mode: ReorgMode::Incremental,
            merge_cooldown: 0,
            stats_layout: StatsLayout::Arena,
        }
    }

    /// Disk-scenario defaults from the paper.
    ///
    /// The confidence gate is looser than in memory: disk benefits are
    /// dominated by the 15 ms seek in `B`, so at reduced database scale
    /// the first profitable split sits within two standard errors of its
    /// own estimate and a `z = 2` gate would freeze the index at one
    /// cluster forever.
    pub fn disk(dims: usize) -> Self {
        Self {
            scenario: StorageScenario::Disk,
            confidence_z: 1.5,
            ..Self::memory(dims)
        }
    }

    /// The cost model implied by this configuration.
    pub fn cost_model(&self) -> CostModel {
        CostModel::new(self.profile, self.scenario, object_size_bytes(self.dims))
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), crate::IndexError> {
        if self.dims == 0 {
            return Err(crate::IndexError::InvalidConfig(
                "dims must be positive".into(),
            ));
        }
        if self.division_factor < 2 {
            return Err(crate::IndexError::InvalidConfig(
                "division factor must be at least 2".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.reserve_fraction) {
            return Err(crate::IndexError::InvalidConfig(
                "reserve fraction must be in [0, 1]".into(),
            ));
        }
        if !(0.0..1.0).contains(&self.stats_decay) {
            return Err(crate::IndexError::InvalidConfig(
                "stats decay must be in [0, 1)".into(),
            ));
        }
        if self.reorg_cost_horizon <= 0.0 {
            return Err(crate::IndexError::InvalidConfig(
                "reorganization cost horizon must be positive".into(),
            ));
        }
        if self.confidence_z < 0.0 {
            return Err(crate::IndexError::InvalidConfig(
                "confidence factor must be non-negative".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_defaults_match_paper() {
        let c = IndexConfig::memory(16);
        assert_eq!(c.division_factor, 4);
        assert_eq!(c.reorg_period, 100);
        assert_eq!(c.scenario, StorageScenario::Memory);
        assert!((0.20..=0.30).contains(&c.reserve_fraction));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn disk_config_prices_seeks() {
        let c = IndexConfig::disk(16);
        assert_eq!(c.scenario, StorageScenario::Disk);
        assert!(c.cost_model().b() > 15.0);
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut c = IndexConfig::memory(0);
        assert!(c.validate().is_err());
        c.dims = 4;
        c.division_factor = 1;
        assert!(c.validate().is_err());
        c.division_factor = 4;
        c.reserve_fraction = 1.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn reorg_mode_parses_strictly() {
        assert_eq!("incremental".parse::<ReorgMode>(), Ok(ReorgMode::Incremental));
        assert_eq!("Full".parse::<ReorgMode>(), Ok(ReorgMode::FullOracle));
        assert_eq!("oracle".parse::<ReorgMode>(), Ok(ReorgMode::FullOracle));
        assert_eq!("full-oracle".parse::<ReorgMode>(), Ok(ReorgMode::FullOracle));
        assert!("fullish".parse::<ReorgMode>().is_err());
        assert_eq!(ReorgMode::default(), ReorgMode::Incremental);
    }

    #[test]
    fn stats_layout_parses_strictly() {
        assert_eq!("arena".parse::<StatsLayout>(), Ok(StatsLayout::Arena));
        assert_eq!(
            "per-cluster".parse::<StatsLayout>(),
            Ok(StatsLayout::PerClusterOracle)
        );
        assert_eq!(
            "Per_Cluster".parse::<StatsLayout>(),
            Ok(StatsLayout::PerClusterOracle)
        );
        assert_eq!("oracle".parse::<StatsLayout>(), Ok(StatsLayout::PerClusterOracle));
        assert!("slab".parse::<StatsLayout>().is_err());
        assert_eq!(StatsLayout::default(), StatsLayout::Arena);
    }

    #[test]
    fn cost_model_uses_object_size() {
        let c = IndexConfig::memory(16);
        assert_eq!(c.cost_model().object_bytes(), 132);
    }
}
