//! Cost-based adaptive clustering of multidimensional extended objects —
//! the primary contribution of Saita & Llirbat (EDBT 2004).
//!
//! Large collections of hyper-rectangles with many dimensions defeat
//! R-tree-family indexes: minimum bounding boxes overlap so much that range
//! queries explore most of the tree, losing even to a sequential scan.
//! This crate implements the paper's alternative:
//!
//! 1. **Signatures instead of bounding boxes** ([`Signature`]): a cluster
//!    groups objects whose interval *starts* and *ends* fall into
//!    per-dimension variation intervals — similarity on a restrained number
//!    of dimensions instead of minimal bounding in all of them.
//! 2. **Virtual candidate subclusters** ([`candidates`]): each cluster
//!    tracks `≈ f²·Nd` possible specializations of its signature, each by
//!    just two counters (qualifying objects, matching queries).
//! 3. **A cost model** ([`cost`]): expected per-cluster query time
//!    `T = A + p·(B + n·C)` parameterized by the storage scenario
//!    (in-memory or disk-based).
//! 4. **Adaptive reorganization** ([`AdaptiveClusterIndex::reorganize`]):
//!    periodically, clusters are merged into their parents or split along
//!    their most profitable candidates, following the materialization and
//!    merging benefit functions.
//!
//! The result adapts to both the data distribution and the query
//! distribution, and by construction never performs worse on average than
//! a sequential scan: when exploration is not worth avoiding, the index
//! degenerates to a single root cluster scanned sequentially.

mod batch;
pub mod candidates;
mod config;
pub mod cost;
mod error;
mod index;
mod metrics;
pub mod signature;

pub use batch::StatsDelta;
pub use config::{IndexConfig, ReorgMode, ScanMode, StatsLayout};
pub use error::IndexError;
pub use index::{AdaptiveClusterIndex, QueryScratch, ReorgFaultPoint};
pub use metrics::{
    ClusterSnapshot, QueryMetrics, QueryResult, RecoveryReport, ReorgProfile, ReorgReport,
};
pub use signature::Signature;
