use acx_geom::GeomError;
use acx_storage::{StoreError, WalError};

/// Errors raised by the adaptive clustering index.
#[derive(Debug)]
pub enum IndexError {
    /// The configuration is internally inconsistent.
    InvalidConfig(String),
    /// An object's dimensionality does not match the index.
    DimensionMismatch {
        /// Dimensionality the index was created with.
        expected: usize,
        /// Dimensionality of the offending value.
        actual: usize,
    },
    /// Insertion of an object id that is already present.
    DuplicateObject(u32),
    /// Removal or lookup of an object id that is not present.
    UnknownObject(u32),
    /// Underlying geometry error.
    Geom(GeomError),
    /// Underlying persistence error.
    Store(StoreError),
    /// Underlying write-ahead-log error.
    Wal(WalError),
    /// A surviving WAL record could not be applied to the checkpoint it
    /// was logged against — the two artifacts are mismatched or one of
    /// them is corrupt past what checksums can detect.
    Recovery {
        /// Zero-based index of the offending record in the replayed
        /// suffix.
        record: u64,
        /// What went wrong applying it.
        detail: String,
    },
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            IndexError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: index has {expected}, got {actual}")
            }
            IndexError::DuplicateObject(id) => write!(f, "object #{id} already indexed"),
            IndexError::UnknownObject(id) => write!(f, "object #{id} not found"),
            IndexError::Geom(e) => write!(f, "geometry error: {e}"),
            IndexError::Store(e) => write!(f, "store error: {e}"),
            IndexError::Wal(e) => write!(f, "wal error: {e}"),
            IndexError::Recovery { record, detail } => {
                write!(f, "recovery failed at wal record {record}: {detail}")
            }
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Geom(e) => Some(e),
            IndexError::Store(e) => Some(e),
            IndexError::Wal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeomError> for IndexError {
    fn from(e: GeomError) -> Self {
        IndexError::Geom(e)
    }
}

impl From<StoreError> for IndexError {
    fn from(e: StoreError) -> Self {
        IndexError::Store(e)
    }
}

impl From<WalError> for IndexError {
    fn from(e: WalError) -> Self {
        IndexError::Wal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = IndexError::DimensionMismatch {
            expected: 16,
            actual: 4,
        };
        assert!(e.to_string().contains("16"));
        assert!(e.to_string().contains('4'));
        assert!(IndexError::DuplicateObject(9).to_string().contains("#9"));
        assert!(IndexError::UnknownObject(3).to_string().contains("#3"));
    }

    #[test]
    fn wraps_geom_errors() {
        let ge = GeomError::EmptyRect;
        let e: IndexError = ge.into();
        assert!(matches!(e, IndexError::Geom(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn wraps_wal_errors_with_fault_context() {
        let we = WalError::Io {
            op: "append",
            offset: 96,
            source: std::io::Error::from(std::io::ErrorKind::StorageFull),
        };
        let e: IndexError = we.into();
        let text = e.to_string();
        assert!(text.contains("append"), "io op surfaces: {text}");
        assert!(text.contains("96"), "byte offset surfaces: {text}");
        assert!(std::error::Error::source(&e).is_some());
        match &e {
            IndexError::Wal(w) => assert_eq!(w.io_kind(), Some(std::io::ErrorKind::StorageFull)),
            other => panic!("expected Wal variant, got {other:?}"),
        }
    }

    #[test]
    fn wraps_corrupt_wal_with_record_index() {
        let we = WalError::Corrupt {
            offset: 44,
            record: 7,
            reason: "checksum mismatch".into(),
        };
        let e: IndexError = we.into();
        let text = e.to_string();
        assert!(text.contains("44") && text.contains('7'), "{text}");
        assert!(text.contains("checksum mismatch"), "{text}");
    }

    #[test]
    fn recovery_error_reports_record_index() {
        let e = IndexError::Recovery {
            record: 12,
            detail: "object #3 already indexed".into(),
        };
        let text = e.to_string();
        assert!(text.contains("12") && text.contains("#3"), "{text}");
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn store_tail_corruption_carries_fault_context() {
        let se = StoreError::CorruptTail(acx_storage::TailCorruption {
            record: 5,
            offset: 1024,
            reason: "record checksum mismatch".into(),
        });
        assert_eq!(se.io_kind(), None);
        let e: IndexError = se.into();
        let text = e.to_string();
        assert!(text.contains('5') && text.contains("1024"), "{text}");
    }

    #[test]
    fn io_conversions_preserve_kind() {
        let io = std::io::Error::from(std::io::ErrorKind::UnexpectedEof);
        let se: StoreError = io.into();
        assert_eq!(se.io_kind(), Some(std::io::ErrorKind::UnexpectedEof));
        let io = std::io::Error::from(std::io::ErrorKind::PermissionDenied);
        let we: WalError = io.into();
        assert_eq!(we.io_kind(), Some(std::io::ErrorKind::PermissionDenied));
        let e: IndexError = IndexError::Wal(we);
        assert!(e.to_string().contains("wal error"));
    }
}
