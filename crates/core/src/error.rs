use acx_geom::GeomError;
use acx_storage::StoreError;

/// Errors raised by the adaptive clustering index.
#[derive(Debug)]
pub enum IndexError {
    /// The configuration is internally inconsistent.
    InvalidConfig(String),
    /// An object's dimensionality does not match the index.
    DimensionMismatch {
        /// Dimensionality the index was created with.
        expected: usize,
        /// Dimensionality of the offending value.
        actual: usize,
    },
    /// Insertion of an object id that is already present.
    DuplicateObject(u32),
    /// Removal or lookup of an object id that is not present.
    UnknownObject(u32),
    /// Underlying geometry error.
    Geom(GeomError),
    /// Underlying persistence error.
    Store(StoreError),
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            IndexError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: index has {expected}, got {actual}")
            }
            IndexError::DuplicateObject(id) => write!(f, "object #{id} already indexed"),
            IndexError::UnknownObject(id) => write!(f, "object #{id} not found"),
            IndexError::Geom(e) => write!(f, "geometry error: {e}"),
            IndexError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Geom(e) => Some(e),
            IndexError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeomError> for IndexError {
    fn from(e: GeomError) -> Self {
        IndexError::Geom(e)
    }
}

impl From<StoreError> for IndexError {
    fn from(e: StoreError) -> Self {
        IndexError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = IndexError::DimensionMismatch {
            expected: 16,
            actual: 4,
        };
        assert!(e.to_string().contains("16"));
        assert!(e.to_string().contains('4'));
        assert!(IndexError::DuplicateObject(9).to_string().contains("#9"));
        assert!(IndexError::UnknownObject(3).to_string().contains("#3"));
    }

    #[test]
    fn wraps_geom_errors() {
        let ge = GeomError::EmptyRect;
        let e: IndexError = ge.into();
        assert!(matches!(e, IndexError::Geom(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
